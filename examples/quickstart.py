#!/usr/bin/env python3
"""Quickstart: partition the paper's LoG pattern and inspect the result.

Walks the exact example from the paper's Sections 2 and 5.1: the 13-element
Laplacian-of-Gaussian access pattern over a 640x480 frame, partitioned with
the constant-time transform, then constrained to at most 10 banks.

Run:  python examples/quickstart.py
"""

from repro import BankMapping, partition
from repro.core import same_size_sweep, transformed_values
from repro.patterns import log_pattern
from repro.viz import render_bank_grid, render_pattern


def main() -> None:
    pattern = log_pattern()
    print("LoG access pattern (13 of 25 kernel taps are nonzero):")
    print(render_pattern(pattern))
    print()

    # Step 1: the constant-time transform (Section 4.1).
    transform, z_values = transformed_values(pattern)
    print(f"derived transform alpha = {transform.alpha}")
    print(f"transformed values z    = {sorted(z_values)}")
    print()

    # Step 2: Algorithm 1 picks the minimum conflict-free bank count.
    solution = partition(pattern)
    print(f"unconstrained solution: {solution.n_banks} banks, "
          f"extra II = {solution.delta_ii} (whole pattern in one cycle)")
    print()

    print("bank index of every array element (any 13-dot LoG window hits")
    print("13 distinct banks — one instance highlighted):")
    print(render_bank_grid(solution, 7, 9, highlight=pattern.translated((1, 2))))
    print()

    # Step 3: the paper's N_max = 10 constraint.
    constrained = partition(pattern, n_max=10)
    sweep = same_size_sweep(pattern, 10)
    print(f"deltaP|N + 1 for N = 1..10: {sweep.conflicts_by_n[1:]}")
    print(f"constrained to N_max = 10: {constrained.n_banks} same-size banks, "
          f"{constrained.delta_ii + 1} cycles per pattern access")
    print()

    # Step 4: materialize the full address mapping for a real frame.
    mapping = BankMapping(solution=solution, shape=(640, 480))
    print(f"frame 640x480 -> {mapping.n_banks} banks of "
          f"{mapping.inner_bank_size} elements each")
    print(f"storage overhead: {mapping.overhead_elements} elements "
          f"(paper: 640) — only the last dimension pads")


if __name__ == "__main__":
    main()
