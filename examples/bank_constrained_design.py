#!/usr/bin/env python3
"""Design-space exploration under a bank-count budget.

The paper's Problem 1 is multi-objective: cycles (δII), banks (N), and
storage (ΔW) trade against each other, and hardware cost (muxes, address
logic) grows with N.  This example sweeps the LoG pattern across every
bank budget, under each optimization-order policy, and prints the frontier
a designer would choose from.

Run:  python examples/bank_constrained_design.py
"""

from repro.core import Objective, solve
from repro.hw import estimate_resources
from repro.patterns import log_pattern


def sweep_budgets(shape=(320, 240)) -> None:
    pattern = log_pattern()
    print(f"LoG pattern ({pattern.size} parallel reads) over a {shape} frame")
    print()
    print(f"{'N_max':>6} {'banks':>6} {'cycles':>7} {'overhead':>9} "
          f"{'blocks':>7} {'mux LUTs':>9} {'mults':>6}")
    for n_max in (1, 2, 3, 5, 7, 9, 10, 13, 16):
        result = solve(pattern, shape=shape, n_max=n_max)
        est = estimate_resources(result.mapping)
        print(
            f"{n_max:>6} {result.solution.n_banks:>6} "
            f"{result.solution.delta_ii + 1:>7} "
            f"{result.overhead_elements:>9} {est.memory_blocks:>7} "
            f"{est.mux_luts:>9} {est.multipliers:>6}"
        )
    print()


def compare_objectives(shape=(320, 240), n_max=10) -> None:
    pattern = log_pattern()
    print(f"objective-order policies at N_max = {n_max} (Problem 1):")
    print(f"{'policy':>10} {'banks':>6} {'cycles':>7} {'overhead':>9}")
    rows = [
        ("latency", solve(pattern, shape=shape, n_max=n_max, objective=Objective.LATENCY)),
        ("storage", solve(pattern, shape=shape, n_max=n_max, objective=Objective.STORAGE)),
        ("banks d=1", solve(pattern, shape=shape, n_max=n_max, objective=Objective.BANKS, delta_max=1)),
        ("banks d=3", solve(pattern, shape=shape, n_max=n_max, objective=Objective.BANKS, delta_max=3)),
    ]
    for label, result in rows:
        print(
            f"{label:>10} {result.solution.n_banks:>6} "
            f"{result.solution.delta_ii + 1:>7} {result.overhead_elements:>9}"
        )
    print()
    print("latency minimizes cycles first; storage forces zero padding by")
    print("picking a divisor of w[-1]; banks-first trades cycles for muxes.")


def main() -> None:
    sweep_budgets()
    compare_objectives()


if __name__ == "__main__":
    main()
