#!/usr/bin/env python3
"""Program-level banking: one array, several kernels, one physical layout.

A smoothing pass and a detection pass both read the same frame X.  The
array gets exactly one banking, so the partitioner must serve the *union*
of both access patterns.  This example schedules the two-kernel program,
shows the joint solution, and contrasts it with what each kernel would
have chosen alone.

Run:  python examples/program_flow.py
"""

from repro.core import partition
from repro.hls import parse_program, schedule_program
from repro.viz import render_pattern

PROGRAM = """
array X[256][256];
for (i = 2; i <= 253; i++)
  for (j = 2; j <= 253; j++)
    S[i][j] = X[i][j-1] + 2*X[i][j] + X[i][j+1];

for (i = 2; i <= 253; i++)
  for (j = 2; j <= 253; j++)
    E[i][j] = X[i-2][j] + X[i-1][j] - 4*X[i][j] + X[i+1][j] + X[i+2][j];
"""


def main() -> None:
    program = parse_program(PROGRAM)
    print(f"program: {len(program.nests)} kernels sharing array X")
    print()

    patterns = program.patterns_of("X")
    for index, pattern in enumerate(patterns):
        alone = partition(pattern)
        print(f"kernel {index}: {pattern.size} taps, alone it would take "
              f"{alone.n_banks} banks")
        print(render_pattern(pattern.normalized()))
        print()

    schedule = schedule_program(program)
    joint = schedule.solution_for("X")
    union = joint.pattern
    print(f"union pattern ({union.size} taps) drives the shared banking:")
    print(render_pattern(union.normalized()))
    print()
    print(f"joint solution: {joint.n_banks} banks, alpha = {joint.transform.alpha}")
    print(f"per-kernel achieved II: {schedule.kernel_iis}")
    print(f"whole-program cycles: {schedule.total_cycles}")
    print()
    print("Both kernels run at II = 1 on one physical layout.  A private")
    print("optimum need not transfer: the smoothing kernel's own 3-bank")
    print("solution maps the detection kernel's whole column to one bank.")


if __name__ == "__main__":
    main()
