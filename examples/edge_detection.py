#!/usr/bin/env python3
"""Edge detection through banked memory — the paper's motivating workload.

Builds synthetic test frames, partitions the memory for each detector's
access pattern, runs the convolution with *every pixel read going through
the banks*, verifies the result against a direct golden model, and reports
the measured memory-cycle speedup over an unpartitioned memory.

Run:  python examples/edge_detection.py
"""

from repro.workloads import (
    box_image,
    checkerboard_image,
    detect_edges,
    edge_density,
)


def run_frame(label: str, image, operators=("log", "se", "prewitt", "median")) -> None:
    print(f"--- {label} frame {image.shape} ---")
    header = f"{'operator':>10} {'banks':>6} {'golden?':>8} {'cycles':>8} {'speedup':>8} {'edges':>7}"
    print(header)
    for operator in operators:
        report = detect_edges(image, operator)
        print(
            f"{operator:>10} {report.n_banks:>6} "
            f"{'yes' if report.matches_golden else 'NO':>8} "
            f"{report.memory_cycles:>8} {report.speedup:>8.2f} "
            f"{edge_density(report):>7.3f}"
        )
    print()


def main() -> None:
    # A bright box: one closed edge contour.
    run_frame("box", box_image(24, 25))

    # A fine checkerboard: edges everywhere.
    run_frame("checkerboard", checkerboard_image(24, 25, tile=3))

    # The bank-constrained variant: 7 banks instead of 13 halve the
    # bandwidth but still verify bit-exact.
    print("--- LoG with the paper's N_max = 10 constraint ---")
    image = box_image(24, 29)
    unconstrained = detect_edges(image, "log")
    constrained = detect_edges(image, "log", n_max=10)
    print(f"unconstrained: {unconstrained.n_banks} banks, "
          f"speedup {unconstrained.speedup:.2f}x, golden={unconstrained.matches_golden}")
    print(f"N_max=10:      {constrained.n_banks} banks, "
          f"speedup {constrained.speedup:.2f}x, golden={constrained.matches_golden}")


if __name__ == "__main__":
    main()
