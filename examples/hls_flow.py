#!/usr/bin/env python3
"""Full HLS-style flow: C-like source in, banked C code out.

Parses the paper's Fig. 1(b) LoG kernel, extracts the access pattern,
partitions the array, schedules the loop nest, and emits the banked kernel
an HLS memory-partitioning pass would hand downstream.

Run:  python examples/hls_flow.py
"""

from repro.core import BankMapping
from repro.hls import (
    LOG_KERNEL_SOURCE,
    banking_speedup,
    extract_pattern,
    generate_kernel,
    log_kernel_nest,
    partition_pragma,
    schedule_nest,
    unpartitioned_ii,
)


def main() -> None:
    print("input kernel (paper Fig. 1(b)):")
    print(LOG_KERNEL_SOURCE)

    nest = log_kernel_nest()
    pattern = extract_pattern(nest)
    print(f"extracted access pattern: {pattern.size} elements, "
          f"bounding box {pattern.extents}")
    print()

    schedule = schedule_nest(nest)
    solution = schedule.solution_for("X")
    print(f"schedule: II = {schedule.ii} with {solution.n_banks} banks "
          f"(single-memory II would be {unpartitioned_ii(nest)})")
    print(f"end-to-end speedup over unpartitioned memory: "
          f"{banking_speedup(nest):.2f}x over {nest.trip_count} iterations")
    print()

    mapping = BankMapping(solution=solution, shape=nest.array_shape("X"))
    print(partition_pragma("X", mapping))
    print()

    print("generated banked kernel:")
    print(generate_kernel(nest, {"X": mapping}))


if __name__ == "__main__":
    main()
