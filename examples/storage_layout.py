#!/usr/bin/env python3
"""Visualize the Section 4.4 storage reorganization (paper Fig. 2(d)(e)).

Shows, for a small array, where every element lands after partitioning:
the per-cell bank indices, then each bank's internal layout with padding
slots marked — the text rendition of the paper's reorganization figure.

Run:  python examples/storage_layout.py
"""

from repro.core import BankMapping, partition
from repro.patterns import log_pattern, se_pattern
from repro.viz import render_bank_grid, render_bank_layout


def show(pattern, shape, n_max=None, label="") -> None:
    solution = partition(pattern, n_max=n_max)
    mapping = BankMapping(solution=solution, shape=shape)
    mapping.verify_bijective()
    print(f"=== {label}: {solution.n_banks} banks over {shape}, "
          f"overhead {mapping.overhead_elements} elements ===")
    print("bank index per element:")
    print(render_bank_grid(solution, *shape))
    print()
    print("per-bank layout ((row,col) stored at each slot, (--) = padding):")
    print(render_bank_layout(mapping, max_width=100))
    print()


def main() -> None:
    # The 5-point cross: 5 banks over an 6x7 array (7 % 5 != 0 -> padding).
    show(se_pattern(), (6, 7), label="SE cross, padded case")

    # Divisible case: zero overhead, every slot used.
    show(se_pattern(), (6, 10), label="SE cross, zero-overhead case")

    # The paper's 7-bank LoG solution under N_max = 10 (Fig. 2(c)(d)(e)).
    show(log_pattern(), (6, 14), n_max=10, label="LoG under N_max=10")


if __name__ == "__main__":
    main()
