#!/usr/bin/env python3
"""Profiling: see where a solve + simulation spends its time and cycles.

Enables the observability layer, runs a bank-constrained LoG partition and
a cycle-accurate sweep, then prints the three telemetry views the
``repro-profile`` CLI is built from: the span tree (wall-clock + op
attribution per phase), the cycles-per-iteration histogram, and the
per-bank conflict table naming the exact pattern-offset pairs that fight
over a bank.

Run:  python examples/profiling.py
(Equivalent CLI: REPRO_OBS=1 repro-profile log --nmax 8)
"""

from repro import BankMapping, obs, partition
from repro.obs.report import (
    render_conflict_report,
    render_cycle_histogram,
    render_span_tree,
)
from repro.patterns import log_pattern
from repro.sim import simulate_sweep


def main() -> None:
    obs.enable()
    obs.reset()

    # Solve with a live op counter: spans capture per-phase op deltas and
    # the registry accumulates per-category counts under "example.ops.*".
    ops = obs.registry().op_counter("example.ops")
    pattern = log_pattern()
    solution = partition(pattern, n_max=8, ops=ops)
    print(f"solution: N={solution.n_banks}, deltaII={solution.delta_ii}, "
          f"solve ops={ops.total}")
    print()

    # Simulate with conflict attribution: the table and the report are two
    # views of the same sweep and must agree exactly.
    mapping = BankMapping(solution=solution, shape=(16, 20))
    conflicts = obs.ConflictTable(ports_per_bank=1)
    report = simulate_sweep(mapping, conflicts=conflicts, verify=False)
    assert conflicts.cycle_histogram == report.cycle_histogram
    assert conflicts.verify_consistent()

    print("span tree (wall-clock + ops per phase):")
    print(render_span_tree(obs.tracer().records()))
    print()
    print("cycles per iteration:")
    print(render_cycle_histogram(report.cycle_histogram))
    print()
    print(render_conflict_report(conflicts, n_banks=solution.n_banks))
    print()

    # The registry snapshot is what --emit-metrics writes to disk.
    snapshot = obs.registry().snapshot()
    print(f"registry holds {len(snapshot['counters'])} counters, "
          f"{len(snapshot['histograms'])} histogram(s); e.g. "
          f"example.ops.total = {snapshot['counters']['example.ops.total']}")

    obs.disable()


if __name__ == "__main__":
    main()
