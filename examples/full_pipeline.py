#!/usr/bin/env python3
"""End-to-end accelerator datapath: banked reads, banked writes, one clock.

Models the complete LoG edge-detection datapath the paper's Fig. 1(b)
implies: the input frame X and the output frame Y each live in their own
banked memory behind a shared clock; every iteration issues its 13 reads
and 1 write as transactions and the true cycle count is measured.  The
chosen partitioning is then serialized to JSON — the artifact a real HLS
flow would hand to downstream build steps — and reloaded to show the
round trip.

Run:  python examples/full_pipeline.py
"""

import json
import tempfile
from pathlib import Path

from repro.core import BankMapping, partition
from repro.io import load_solution, save_solution, solution_to_dict
from repro.patterns import log_pattern
from repro.workloads import box_image, run_full_pipeline


def main() -> None:
    image = box_image(20, 21)
    print(f"frame: {image.shape}, operator: LoG (13 parallel reads + 1 write)")
    print()

    report = run_full_pipeline(image, "log")
    print(f"read banks:  {report.read_banks}")
    print(f"write banks: {report.write_banks}")
    print(f"iterations:  {report.iterations}")
    print(f"cycles:      {report.total_cycles} "
          f"({report.cycles_per_iteration:.1f} per iteration: 1 read + 1 write)")
    print(f"bit-exact against the golden model: {report.matches_golden}")
    print()

    # The same run with the paper's N_max = 10 constraint on the read side.
    constrained = run_full_pipeline(image, "log", n_max=10)
    print(f"with N_max = 10: {constrained.read_banks} read banks, "
          f"{constrained.cycles_per_iteration:.1f} cycles/iteration, "
          f"golden={constrained.matches_golden}")
    print()

    # Persist the partitioning decision like a real tool would.
    solution = partition(log_pattern())
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "log_partitioning.json"
        save_solution(solution, path)
        restored = load_solution(path)
        print(f"solution serialized to JSON ({path.stat().st_size} bytes) "
              f"and reloaded: banks={restored.n_banks}, "
              f"alpha={restored.transform.alpha}")
        print()
        print("payload:")
        print(json.dumps(solution_to_dict(solution), indent=2)[:400] + " ...")


if __name__ == "__main__":
    main()
