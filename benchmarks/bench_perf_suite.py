"""Performance trajectory suite: time the hot paths, write ``BENCH_perf.json``.

Unlike the ``bench_*`` pytest benches (which regenerate *paper numbers*),
this suite tracks the *implementation's* speed across PRs: solver, sweep,
and simulator timings for scalar vs vectorized engines and cold vs warm
cache, written as one JSON document at the repo root so CI can archive the
trajectory.

Run directly (not through pytest)::

    PYTHONPATH=src python benchmarks/bench_perf_suite.py --preset small
    PYTHONPATH=src python benchmarks/bench_perf_suite.py --preset full

The ``full`` preset includes the acceptance workload: a 512×512 image
swept by the 3×3 stencil, where the vectorized engine must beat the scalar
reference by ≥ 10× while producing a bit-identical report.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.baselines import (
    BlockScheme,
    CyclicScheme,
    block_mapping,
    cyclic_mapping,
    ltb_partition,
)
from repro import native as repro_native
from repro.core import OpCounter, partition, same_size_sweep, solve, solve_cache
from repro.core.mapping import BankMapping
from repro.core.pattern import Pattern
from repro.eval.parallel import run_parallel
from repro.patterns.generators import rectangle, unrolled
from repro.patterns.library import gaussian_pattern, log_pattern, median_pattern
from repro.sched import Task, run_stream
from repro.sim import simulate_sweep

#: (name, pattern factory, simulation shape) per preset.  ``micro`` exists
#: for the regression gate's tests: small enough to run twice in a test,
#: same document shape as the real presets.
PRESETS: Dict[str, List[Any]] = {
    "micro": [
        ("stencil3x3_24", lambda: rectangle((3, 3), name="avg3x3"), (24, 24)),
    ],
    "small": [
        ("stencil3x3_64", lambda: rectangle((3, 3), name="avg3x3"), (64, 64)),
        ("log_48", log_pattern, (48, 48)),
    ],
    "full": [
        ("stencil3x3_512", lambda: rectangle((3, 3), name="avg3x3"), (512, 512)),
        ("log_256", log_pattern, (256, 256)),
        ("median_256", median_pattern, (256, 256)),
    ],
}

#: (name, pattern factory) for the LTB search bench.  The full preset adds
#: the unrolled acceptance workloads, where the vectorized engine must beat
#: the scalar enumeration by >= 20x with bit-identical results.
LTB_WORKLOADS: Dict[str, List[Any]] = {
    "micro": [
        ("median", median_pattern),
    ],
    "small": [
        ("median", median_pattern),
        ("gaussian", gaussian_pattern),
    ],
    "full": [
        ("median", median_pattern),
        ("gaussian", gaussian_pattern),
        ("gaussian_unroll2", lambda: unrolled(gaussian_pattern(), 2)),
        ("median_unroll5", lambda: unrolled(median_pattern(), 5)),
    ],
}


def _best_of(fn, repeat: int) -> float:
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _native_sim_columns(
    mapping: BankMapping, scalar_report, scalar_s: float, repeat: int
) -> Dict[str, Any]:
    """``native_*`` columns for a simulate row, or ``{}`` when not built.

    The native columns are *additive*: a tree without the extension emits
    the same document minus these keys, and ``repro-bench-check`` treats
    them as optional (gated only when present).
    """
    if not repro_native.available():
        return {}
    native_s = _best_of(
        lambda: simulate_sweep(mapping, verify=False, engine="native"), repeat
    )
    native_report = simulate_sweep(mapping, verify=False, engine="native")
    return {
        "native_s": native_s,
        "native_speedup": scalar_s / native_s if native_s else float("inf"),
        "native_identical": scalar_report == native_report,
    }


def _bench_simulate(
    name: str, pattern: Pattern, shape: Sequence[int], repeat: int
) -> Dict[str, Any]:
    solution = partition(pattern, cache=False)
    mapping = BankMapping(solution=solution, shape=tuple(shape))
    # verify=False for the timing runs: the scalar verify path re-derives
    # every element in Python and would otherwise dominate both engines.
    scalar_s = _best_of(
        lambda: simulate_sweep(mapping, verify=False, engine="scalar"), repeat
    )
    vector_s = _best_of(
        lambda: simulate_sweep(mapping, verify=False, engine="vectorized"), repeat
    )
    scalar_report = simulate_sweep(mapping, verify=False, engine="scalar")
    vector_report = simulate_sweep(mapping, verify=False, engine="vectorized")
    row = {
        "workload": name,
        "shape": list(shape),
        "pattern_elements": pattern.size,
        "iterations": scalar_report.iterations,
        "scalar_s": scalar_s,
        "vectorized_s": vector_s,
        "speedup": scalar_s / vector_s if vector_s else float("inf"),
        "reports_identical": scalar_report == vector_report,
    }
    row.update(_native_sim_columns(mapping, scalar_report, scalar_s, repeat))
    return row


def _bench_solve(name: str, pattern: Pattern, repeat: int) -> Dict[str, Any]:
    solve_cache.clear()
    cold_s = _best_of(lambda: solve(pattern, n_max=8, cache=False), repeat)
    solve_cache.clear()
    solve(pattern, n_max=8)  # prime
    warm_s = _best_of(lambda: solve(pattern, n_max=8), repeat)
    cache = solve_cache.cache()
    return {
        "workload": name,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": cold_s / warm_s if warm_s else float("inf"),
        "cache_hits": cache.hits,
        "cache_misses": cache.misses,
    }


def _bench_sweep(name: str, pattern: Pattern, n_max: int, repeat: int) -> Dict[str, Any]:
    scalar_s = _best_of(
        lambda: same_size_sweep(pattern, n_max, engine="scalar"), repeat
    )
    vector_s = _best_of(
        lambda: same_size_sweep(pattern, n_max, engine="vectorized"), repeat
    )
    identical = same_size_sweep(pattern, n_max, engine="scalar") == same_size_sweep(
        pattern, n_max, engine="vectorized"
    )
    return {
        "workload": name,
        "n_max": n_max,
        "scalar_s": scalar_s,
        "vectorized_s": vector_s,
        "speedup": scalar_s / vector_s if vector_s else float("inf"),
        "results_identical": identical,
    }


def _ltb_observables(pattern: Pattern, engine: str):
    ops = OpCounter()
    result = ltb_partition(pattern, ops=ops, engine=engine)
    return (
        result.solution.n_banks,
        result.solution.transform.alpha,
        result.vectors_tried,
        result.candidates_tried,
        ops.counts,
    )


def _bench_ltb_search(name: str, pattern: Pattern, repeat: int) -> Dict[str, Any]:
    scalar_s = _best_of(lambda: ltb_partition(pattern, engine="scalar"), repeat)
    vector_s = _best_of(lambda: ltb_partition(pattern, engine="vectorized"), repeat)
    scalar_obs = _ltb_observables(pattern, "scalar")
    vector_obs = _ltb_observables(pattern, "vectorized")
    n_banks, alpha, vectors_tried, _, _ = vector_obs
    row = {
        "workload": name,
        "pattern_elements": pattern.size,
        "solution": {"n_banks": n_banks, "alpha": list(alpha)},
        "vectors_tried": vectors_tried,
        "scalar_s": scalar_s,
        "vectorized_s": vector_s,
        "speedup": scalar_s / vector_s if vector_s else float("inf"),
        "reports_identical": scalar_obs == vector_obs,
    }
    if repro_native.available():
        native_s = _best_of(
            lambda: ltb_partition(pattern, engine="native"), repeat
        )
        row.update(
            native_s=native_s,
            native_speedup=scalar_s / native_s if native_s else float("inf"),
            native_identical=scalar_obs == _ltb_observables(pattern, "native"),
        )
    return row


def _bench_baseline_sim(
    name: str, shape: Sequence[int], repeat: int
) -> List[Dict[str, Any]]:
    """Time the registered cyclic/block bulk kernels against scalar replay."""
    pattern = rectangle((3, 3), name="avg3x3")
    mappings = [
        ("cyclic", cyclic_mapping(CyclicScheme(dim=0, n_banks=8, ndim=2), pattern, shape)),
        ("block", block_mapping(BlockScheme(dim=0, n_banks=4, shape=tuple(shape)), pattern)),
    ]
    rows = []
    for scheme_name, mapping in mappings:
        scalar_s = _best_of(
            lambda: simulate_sweep(mapping, verify=False, engine="scalar"), repeat
        )
        vector_s = _best_of(
            lambda: simulate_sweep(mapping, verify=False, engine="vectorized"), repeat
        )
        scalar_report = simulate_sweep(mapping, verify=False, engine="scalar")
        vector_report = simulate_sweep(mapping, verify=False, engine="vectorized")
        row = {
            "workload": f"{name}_{scheme_name}",
            "scheme": scheme_name,
            "shape": list(shape),
            "n_banks": mapping.n_banks,
            "scalar_s": scalar_s,
            "vectorized_s": vector_s,
            "speedup": scalar_s / vector_s if vector_s else float("inf"),
            "reports_identical": scalar_report == vector_report,
        }
        row.update(_native_sim_columns(mapping, scalar_report, scalar_s, repeat))
        rows.append(row)
    return rows


#: DAG-vs-flat grids: translated copies of each base pattern share one
#: canonical solve, so a grid of ``len(bases) × len(n_maxes)`` distinct
#: solves fans out to ``× translations`` cells (8x sharing everywhere —
#: comfortably past the 4x the acceptance criterion asks for).
DAG_GRIDS: Dict[str, Dict[str, Any]] = {
    "micro": {
        "bases": [("log", log_pattern)],
        "n_maxes": [8, 10],
        "translations": 8,
        "shape": (32, 32),
    },
    "small": {
        "bases": [("log", log_pattern), ("median", median_pattern)],
        "n_maxes": [8, 10],
        "translations": 8,
        "shape": (48, 48),
    },
    "full": {
        "bases": [
            ("log", log_pattern),
            ("median", median_pattern),
            ("gaussian", gaussian_pattern),
        ],
        "n_maxes": [8, 10],
        "translations": 8,
        "shape": (64, 64),
    },
}

#: A dag-bench grid cell: (base name, base factory, translation, n_max, shape).
_DagCell = Any


def _dag_shared_solve(base_name: str, factory_name: str, n_max: int, shape) -> Dict[str, Any]:
    """The shareable unit of cell work: canonical solve + simulation.

    ``cache=False`` on the solve is deliberate: the bench counts *actual
    solver executions*, and the per-process memo dict would otherwise hide
    them (per-worker, so nondeterministically).  The scheduler's saving
    must come from structural deduplication, not from a lucky cache hit.
    """
    pattern = _DAG_FACTORIES[factory_name]()
    result = solve(pattern, shape=tuple(shape), n_max=n_max, cache=False)
    report = simulate_sweep(result.mapping, verify=False, engine="vectorized")
    solution = result.solution
    return {
        "base": base_name,
        "n_banks": solution.n_banks,
        "delta_ii": solution.delta_ii,
        "alpha": list(solution.transform.alpha),
        "measured_ii": report.measured_ii,
        "overhead_elements": result.overhead_elements,
    }


def _dag_cell_row(cell, shared: Dict[str, Any]) -> Dict[str, Any]:
    """Per-cell arithmetic on the shared solve: cheap, translation-specific."""
    base_name, factory_name, translation, n_max, _shape = cell
    offsets = _DAG_FACTORIES[factory_name]().translated(translation).offsets
    alpha, n_banks = shared["alpha"], shared["n_banks"]
    bank0 = sum(a * o for a, o in zip(alpha, offsets[0])) % n_banks
    return {
        "cell": f"{base_name}@t{translation[0]}_{translation[1]}_n{n_max}",
        "n_banks": n_banks,
        "delta_ii": shared["delta_ii"],
        "measured_ii": shared["measured_ii"],
        "overhead_elements": shared["overhead_elements"],
        "first_offset_bank": bank0,
    }


def _dag_flat_cell(cell) -> Dict[str, Any]:
    """Flat-pool task: every cell re-derives the full solve + simulation."""
    base_name, factory_name, translation, n_max, shape = cell
    shared = _dag_shared_solve(base_name, factory_name, n_max, shape)
    return _dag_cell_row(cell, shared)


#: Named pattern factories so dag tasks ship names (picklable) not lambdas.
_DAG_FACTORIES = {
    "log": log_pattern,
    "median": median_pattern,
    "gaussian": gaussian_pattern,
}


def _dag_grid_cells(grid: Dict[str, Any]) -> List[_DagCell]:
    cells: List[_DagCell] = []
    for t in range(grid["translations"]):
        # Interleave keys across the cell order (worst case for any
        # executor that might batch neighbors onto one worker).
        for base_name, factory in grid["bases"]:
            for n_max in grid["n_maxes"]:
                cells.append(
                    (base_name, base_name, (t, 2 * t), n_max, grid["shape"])
                )
    return cells


def _run_dag_flat(cells, jobs) -> List[Dict[str, Any]]:
    return run_parallel(_dag_flat_cell, cells, jobs=jobs)


def _run_dag_sched(cells, jobs) -> Any:
    """Scheduler phase: one keyed solve task *per cell*, inline row tasks.

    Every cell registers its own solve node — the scheduler's digest-keyed
    deduplication (via :func:`repro.core.cache.stable_digest` on the
    canonical solve key, which already normalizes translation) is what
    collapses them onto one execution per distinct pattern.  The executed
    count is measured from the result stream, not assumed.
    """
    from repro.core.cache import solve_key

    row_tasks: List[Task] = []
    for cell in cells:
        base_name, factory_name, translation, n_max, shape = cell
        pattern = _DAG_FACTORIES[factory_name]().translated(translation)
        key = ("dag.solve", solve_key(pattern, tuple(shape), n_max, "latency", 0))
        solve_task = Task(
            _dag_shared_solve,
            args=(base_name, factory_name, n_max, shape),
            key=key,
            placement="process",
            name=f"dag.solve.{base_name}.n{n_max}",
        )
        row_tasks.append(
            Task(
                _dag_cell_row,
                args=(cell,),
                deps=(solve_task,),
                placement="inline",
                name="dag.row",
            )
        )
    rows: List[Any] = [None] * len(row_tasks)
    index = {t: i for i, t in enumerate(row_tasks)}
    executed_solves = 0
    for outcome in run_stream(row_tasks, jobs=jobs):
        if outcome.task in index:
            if not outcome.ok:
                raise outcome.error
            rows[index[outcome.task]] = outcome.value
        elif outcome.state == "done" and not outcome.deduped:
            executed_solves += 1
        elif outcome.state != "done":
            raise outcome.error
    return rows, executed_solves


def _bench_dag(preset: str, repeat: int) -> List[Dict[str, Any]]:
    """Flat pool vs DAG scheduler on a sweep grid with shared patterns.

    Both phases run the identical grid with the solve memo disabled, so
    ``solver invocations`` counts real solver executions: the flat pool
    pays one per cell, the scheduler one per distinct canonical digest.
    Rows must come back bit-identical — the scheduler is a wall-clock and
    work-count optimization, never a semantics change.
    """
    import os as _os

    grid = DAG_GRIDS[preset]
    cells = _dag_grid_cells(grid)
    distinct = len(grid["bases"]) * len(grid["n_maxes"])
    jobs = min(4, _os.cpu_count() or 1)
    state: Dict[str, Any] = {}

    def flat_pass():
        state["flat_rows"] = _run_dag_flat(cells, jobs)

    def sched_pass():
        state["dag_rows"], state["dag_solves"] = _run_dag_sched(cells, jobs)

    # Correctness data (rows, executed-solve count) comes from one direct
    # pass; _best_of is purely the timing harness (tests stub it out).
    flat_pass()
    sched_pass()
    flat_wall_s = _best_of(flat_pass, repeat)
    dag_wall_s = _best_of(sched_pass, repeat)
    flat_solves = len(cells)  # one real solve per cell, by construction
    dag_solves = state["dag_solves"]
    identical = state["flat_rows"] == state["dag_rows"]
    return [
        {
            "workload": f"shared_grid_{preset}",
            "cells": len(cells),
            "distinct_solves": distinct,
            "sharing": len(cells) / distinct,
            "jobs": jobs,
            "flat_solver_invocations": flat_solves,
            "dag_solver_invocations": dag_solves,
            "solver_invocation_reduction": 1.0 - dag_solves / flat_solves,
            "flat_wall_s": flat_wall_s,
            "dag_wall_s": dag_wall_s,
            "flat_rows_per_s": len(cells) / flat_wall_s if flat_wall_s else float("inf"),
            "dag_rows_per_s": len(cells) / dag_wall_s if dag_wall_s else float("inf"),
            "rows_identical": identical,
        }
    ]


def _percentile_ms(latencies_s: List[float], fraction: float) -> float:
    """Nearest-rank percentile of a latency sample, in milliseconds."""
    ordered = sorted(latencies_s)
    rank = max(0, min(len(ordered) - 1, int(fraction * len(ordered))))
    return ordered[rank] * 1e3


def _bench_serve(preset: str) -> List[Dict[str, Any]]:
    """Round-trip latency/throughput against a live in-process server.

    Cold phase: every request is a distinct solve (same ``log`` pattern,
    varying ``n_max`` — translations share a solve key, so ``n_max`` is the
    knob that makes keys distinct).  Warm phase: a *new* server against the
    same store directory with the in-memory cache cleared, so every request
    is answered from the on-disk store — the restart story the store exists
    for.
    """
    import tempfile

    from repro.serve import ServeClient, serve_in_thread

    n_keys = {"micro": 2, "small": 8}.get(preset, 16)
    n_max_values = list(range(4, 4 + n_keys))
    rows: List[Dict[str, Any]] = []
    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as store_dir:
        for phase in ("cold_store", "warm_store"):
            solve_cache.clear()  # the store, not the memo dict, should answer
            latencies: List[float] = []
            started = time.perf_counter()
            with serve_in_thread(store_dir=store_dir) as srv:
                with ServeClient(port=srv.port) as client:
                    for n_max in n_max_values:
                        t0 = time.perf_counter()
                        client.solve(benchmark="log", n_max=n_max)
                        latencies.append(time.perf_counter() - t0)
                    store_stats = client.healthz()["store"]
            total_s = time.perf_counter() - started
            rows.append(
                {
                    "workload": f"log_nmax_sweep_{phase}",
                    "phase": phase,
                    "requests": len(latencies),
                    "distinct_keys": len(n_max_values),
                    "rps": len(latencies) / sum(latencies),
                    "p50_ms": _percentile_ms(latencies, 0.50),
                    "p99_ms": _percentile_ms(latencies, 0.99),
                    "total_s": total_s,
                    "store_entries": store_stats["entries"],
                    "store_hits": store_stats["hits"],
                }
            )
    return rows


#: Zipf warm-traffic bench knobs per preset.  ``sweep`` is the n_max walk
#: the prefetch phase replays per kernel (constant stride, so the
#: prefetcher's direction extrapolation can land ahead of the client).
ZIPF_CONFIGS: Dict[str, Dict[str, Any]] = {
    "micro": {"requests": 60, "n_max": 8, "sweep": [4, 6, 8, 10], "sweep_kernels": 2},
    "small": {"requests": 150, "n_max": 8, "sweep": [4, 6, 8, 10, 12], "sweep_kernels": 3},
    "full": {"requests": 400, "n_max": 8, "sweep": [4, 6, 8, 10, 12, 14], "sweep_kernels": 4},
}

#: Deliberately *asymmetric* base kernels: every 2-D benchmark stencil in
#: the library (log, se, prewitt, median, gaussian) is reflection-symmetric,
#: so its symmetry orbit collapses to the translation orbit and the quotient
#: would have nothing to show.  A corner stencil and a 3-D slab have real
#: orbits under reflection and leading-axis permutation.
ZIPF_BASES: List[Tuple[str, Tuple[Tuple[int, ...], ...], Tuple[int, ...]]] = [
    ("corner2d", ((0, 0), (0, 1), (1, 0)), (24, 24)),
    ("slab3d", ((0, 0, 0), (0, 1, 0), (1, 1, 0), (0, 0, 1)), (8, 8, 8)),
]


def _zipf_universe() -> List[Tuple[str, Pattern, Tuple[int, ...]]]:
    """Every kernel variant Zipf traffic draws from.

    Per base: the identity, its reflections, its leading-axis permutations
    (3-D only), two seeded compositions, and a translated twin of each —
    the full symmetry orbit the canonical cache claims to collapse.
    """
    from repro.verify.gen import symmetry_variants

    universe: List[Tuple[str, Pattern, Tuple[int, ...]]] = []
    for name, offsets, shape in ZIPF_BASES:
        base = Pattern(offsets, name=name)
        members = [(f"{name}/id", base, shape)]
        for kind in ("reflection", "permutation", "composed"):
            if kind == "permutation" and base.ndim < 3:
                continue
            members.extend(
                (f"{name}/{tag}", variant, v_shape)
                for tag, variant, v_shape in symmetry_variants(
                    base, shape, kind, seed=7, count=2
                )
            )
        seen: set = set()
        distinct: List[Tuple[str, Pattern, Tuple[int, ...]]] = []
        for tag, variant, v_shape in members:
            key = (variant.offsets, v_shape)
            if key in seen:
                continue
            seen.add(key)
            distinct.append((tag, variant.with_name(tag), v_shape))
        for tag, variant, v_shape in list(distinct):
            shifted = variant.translated(tuple(1 for _ in range(variant.ndim)))
            distinct.append((f"{tag}+t1", shifted.with_name(f"{tag}+t1"), v_shape))
        universe.extend(distinct)
    return universe


def _zipf_traffic(
    universe: List[Any], requests: int, seed_tag: str
) -> List[Any]:
    """A seeded Zipf(s=1.1) request sequence over the variant universe."""
    rng = random.Random(f"repro-zipf:{seed_tag}")
    order = list(range(len(universe)))
    rng.shuffle(order)  # decouple popularity rank from construction order
    weights = [1.0 / (rank + 1) ** 1.1 for rank in range(len(order))]
    return [universe[i] for i in rng.choices(order, weights=weights, k=requests)]


def _zipf_phase(
    workload: str,
    mode: str,
    traffic: List[Any],
    n_max_of: Any,
    store_dir: str,
    prefetch: bool = False,
    inter_request_sleep_s: float = 0.0,
    reference: Optional[List[Dict[str, Any]]] = None,
) -> Dict[str, Any]:
    """One server lifetime replaying ``traffic`` under canonical mode ``mode``.

    ``n_max_of(i, tag)`` supplies the per-request bank ceiling (constant for
    the Zipf phases, the sweep walk for the prefetch phase).  Every response
    is checked bit-identical against an in-process cold solve with the same
    mode; when ``reference`` responses are given (the warm-restart phase)
    the response stream must also match them element-for-element.
    """
    from repro.io import solution_to_dict
    from repro.serve import ServeClient, serve_in_thread

    previous_mode = os.environ.get("REPRO_SOLVE_CANON")
    os.environ["REPRO_SOLVE_CANON"] = mode
    solve_cache.reset()  # fresh memo under the new canonicalization mode
    try:
        kwargs: Dict[str, Any] = {"store_dir": store_dir}
        if prefetch:
            kwargs.update(prefetch=True, prefetch_cap=64)
        latencies: List[float] = []
        responses: List[Dict[str, Any]] = []
        requested: List[Any] = []
        with serve_in_thread(**kwargs) as srv:
            with ServeClient(port=srv.port) as client:
                entries_before = client.healthz()["store"]["entries"]
                for i, (tag, pattern, shape) in enumerate(traffic):
                    n_max = n_max_of(i, tag)
                    t0 = time.perf_counter()
                    doc = client.solve(pattern=pattern, shape=shape, n_max=n_max)
                    latencies.append(time.perf_counter() - t0)
                    responses.append(doc["solution"])
                    requested.append((pattern, shape, n_max))
                    if inter_request_sleep_s:
                        time.sleep(inter_request_sleep_s)
                if prefetch and srv.server.prefetcher is not None:
                    srv.server.prefetcher.drain()
                health = client.healthz()
        entries_after = health["store"]["entries"]
        prefetch_stats = health.get("prefetch") or {}

        # Bit-identity: every response equals a fresh in-process solve of
        # the requester's own pattern under the same canonical mode.
        expected_memo: Dict[Any, Dict[str, Any]] = {}
        identical = True
        for (pattern, shape, n_max), got in zip(requested, responses):
            memo_key = (pattern.offsets, shape, n_max)
            if memo_key not in expected_memo:
                expected_memo[memo_key] = solution_to_dict(
                    solve(
                        pattern, shape, n_max=n_max, cache=False, canon=mode
                    ).solution
                )
            if got != expected_memo[memo_key]:
                identical = False
        if reference is not None and responses != reference:
            identical = False

        prefetch_stored = int(prefetch_stats.get("stored", 0)) if prefetch else 0
        cold_solves = max(0, entries_after - entries_before - prefetch_stored)
        row: Dict[str, Any] = {
            "workload": workload,
            "mode": mode,
            "requests": len(traffic),
            "distinct_variants": len({t[0] for t in traffic}),
            "cold_solves": cold_solves,
            "canonical_hit_rate": 1.0 - cold_solves / len(traffic) if traffic else 0.0,
            "p50_ms": _percentile_ms(latencies, 0.50),
            "p99_ms": _percentile_ms(latencies, 0.99),
            "store_entries": entries_after,
            "responses_identical": identical,
        }
        if prefetch:
            row["prefetch"] = {
                key: prefetch_stats.get(key, 0)
                for key in ("enqueued", "solved", "stored", "skipped", "dropped", "errors")
            }
        row["_responses"] = responses  # stripped before the document is written
        return row
    finally:
        if previous_mode is None:
            os.environ.pop("REPRO_SOLVE_CANON", None)
        else:
            os.environ["REPRO_SOLVE_CANON"] = previous_mode
        solve_cache.reset()


def _bench_zipf(preset: str) -> List[Dict[str, Any]]:
    """Zipf warm traffic: translation-only vs the full symmetry quotient.

    Four phases over one seeded request sequence: (1) translation-only
    canonicalization on a cold store, (2) the symmetry quotient on a cold
    store — the canonical-hit-rate / cold-solve collapse the cache exists
    for, (3) the same store after a server restart (every answer from
    disk), and (4) a sweep workload against a prefetching server, where
    the store is warmed *ahead* of the client by the idle-time neighbor
    solver.
    """
    import tempfile

    config = ZIPF_CONFIGS[preset]
    universe = _zipf_universe()
    traffic = _zipf_traffic(universe, config["requests"], preset)
    fixed_n_max = config["n_max"]
    constant = lambda i, tag: fixed_n_max  # noqa: E731

    rows: List[Dict[str, Any]] = []
    with tempfile.TemporaryDirectory(prefix="repro-zipf-") as root:
        trans_dir = os.path.join(root, "translation")
        sym_dir = os.path.join(root, "symmetry")
        prefetch_dir = os.path.join(root, "prefetch")
        rows.append(
            _zipf_phase(
                f"zipf_{preset}_translation", "translation", traffic, constant, trans_dir
            )
        )
        cold = _zipf_phase(
            f"zipf_{preset}_symmetry_cold", "symmetry", traffic, constant, sym_dir
        )
        rows.append(cold)
        rows.append(
            _zipf_phase(
                f"zipf_{preset}_symmetry_warm",
                "symmetry",
                traffic,
                constant,
                sym_dir,
                reference=cold["_responses"],
            )
        )
        # Sweep traffic: each kernel walks the n_max ladder in order, with a
        # small gap between requests so the idle-gated prefetcher can run.
        kernels = universe[: config["sweep_kernels"]]
        sweep_traffic = [
            (tag, pattern, shape)
            for tag, pattern, shape in kernels
            for _ in config["sweep"]
        ]
        sweep_values = config["sweep"] * len(kernels)
        rows.append(
            _zipf_phase(
                f"zipf_{preset}_symmetry_warm_prefetch",
                "symmetry",
                sweep_traffic,
                lambda i, tag: sweep_values[i],
                prefetch_dir,
                prefetch=True,
                inter_request_sleep_s=0.02,
            )
        )
    for row in rows:
        row.pop("_responses", None)
    return rows


#: Cluster bench knobs per preset.  ``keys`` distinct solve specs (plus a
#: simulate variant every 4th request), driven by ``concurrency`` threaded
#: clients.  ``micro`` stays lean because the regression-gate tests run it
#: repeatedly inside the tier-1 suite.
CLUSTER_CONFIGS: Dict[str, Dict[str, int]] = {
    "micro": {
        "shards": 3,
        "keys": 6,
        "warm_requests": 48,
        "concurrency": 4,
        "chaos_requests": 24,
    },
    "small": {
        "shards": 4,
        "keys": 10,
        "warm_requests": 120,
        "concurrency": 8,
        "chaos_requests": 48,
    },
    "full": {
        "shards": 4,
        "keys": 16,
        "warm_requests": 320,
        "concurrency": 12,
        "chaos_requests": 96,
    },
}

#: Simulation shape/limit for the cluster bench's simulate requests — small
#: on purpose; the bench measures serving, not the simulator.
_CLUSTER_SIM_SHAPE = [24, 24]
_CLUSTER_SIM_LIMIT = 32


def _cluster_request_mix(keys: int, total: int) -> List[Tuple[str, int]]:
    """``total`` interleaved ``("solve"|"simulate", n_max)`` descriptors.

    Every 4th request is a simulate; keys repeat round-robin so duplicates
    land on every shard and the warm path dominates.
    """
    n_values = list(range(4, 4 + keys))
    mix: List[Tuple[str, int]] = []
    for i in range(total):
        kind = "simulate" if i % 4 == 3 else "solve"
        mix.append((kind, n_values[i % keys]))
    return mix


def _cluster_issue(client: Any, kind: str, n_max: int) -> Dict[str, Any]:
    if kind == "simulate":
        return client.simulate(
            shape=_CLUSTER_SIM_SHAPE,
            benchmark="log",
            n_max=n_max,
            limit=_CLUSTER_SIM_LIMIT,
        )
    return client.solve(benchmark="log", n_max=n_max)


def _cluster_drive(
    port: int,
    mix: List[Tuple[str, int]],
    concurrency: int,
    retries: int = 0,
) -> Tuple[List[float], Dict[Tuple[str, int], Dict[str, Any]], List[str]]:
    """Drive the request mix with ``concurrency`` threaded clients.

    Returns per-request latencies, one response per distinct descriptor,
    and a list of failure strings (empty on a clean run).  The same
    harness drives the single-process reference and the cluster, so the
    rps comparison is apples-to-apples.
    """
    import queue as queue_mod
    import threading

    from repro.serve import ServeClient

    work: "queue_mod.Queue[Tuple[str, int]]" = queue_mod.Queue()
    for item in mix:
        work.put(item)
    latencies: List[float] = []
    responses: Dict[Tuple[str, int], Dict[str, Any]] = {}
    failures: List[str] = []
    lock = threading.Lock()

    def worker() -> None:
        client = ServeClient(port=port, retries=retries, backoff_s=0.05)
        try:
            while True:
                try:
                    kind, n_max = work.get_nowait()
                except queue_mod.Empty:
                    return
                t0 = time.perf_counter()
                try:
                    resp = _cluster_issue(client, kind, n_max)
                except Exception as exc:  # noqa: BLE001 - tallied, not fatal
                    with lock:
                        failures.append(f"{kind} n_max={n_max}: {exc}")
                    continue
                elapsed = time.perf_counter() - t0
                with lock:
                    latencies.append(elapsed)
                    responses[(kind, n_max)] = resp
        finally:
            client.close()

    threads = [
        threading.Thread(target=worker, name=f"cluster-bench-{i}")
        for i in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return latencies, responses, failures


def _bench_cluster(preset: str) -> List[Dict[str, Any]]:
    """Sharded-cluster serving vs the single-process server, plus chaos.

    Three phases under one threaded-client harness:

    1. **single** — a single in-process server is seeded cold, then the
       mixed solve/simulate traffic is replayed warm; its responses are
       the identity reference.
    2. **cluster** — a :class:`repro.cluster.LocalCluster` (front router +
       N worker shards) serves the same traffic; every response must be
       identical to the single-process reference (routing must not
       perturb bytes), and per-shard p99s come from the router.
    3. **chaos** — the shard owning the hottest key is SIGKILLed mid-load;
       retrying clients must lose zero requests, the supervisor must
       respawn the worker, and post-recovery responses must still match
       the reference.

    ``speedup_vs_single_warm`` is recorded honestly for the machine the
    bench runs on — multi-process speedup needs multiple cores, so the
    ≥2x acceptance claim is gated in CI only where ``os.cpu_count() >= 4``
    (the identity and zero-loss claims are asserted everywhere).
    """
    import signal as signal_mod
    import tempfile
    import threading

    from repro.cluster import LocalCluster
    from repro.serve import serve_in_thread
    from repro.serve.protocol import parse_solve_spec

    config = CLUSTER_CONFIGS[preset]
    shards = config["shards"]
    keys = config["keys"]
    mix = _cluster_request_mix(keys, config["warm_requests"])
    seed_mix = sorted(set(mix))
    chaos_mix = _cluster_request_mix(keys, config["chaos_requests"])

    # Phase 1: single-process reference under the identical harness.
    solve_cache.clear()
    with tempfile.TemporaryDirectory(prefix="repro-cluster-bench-") as store_dir:
        with serve_in_thread(store_dir=store_dir) as srv:
            _cluster_drive(srv.port, seed_mix, 1)
            started = time.perf_counter()
            _, ref_responses, ref_failures = _cluster_drive(
                srv.port, mix, config["concurrency"]
            )
            single_warm_s = time.perf_counter() - started
    single_warm_rps = len(mix) / single_warm_s

    # Phases 2 + 3: the cluster.
    solve_cache.clear()
    with LocalCluster(shards=shards) as cluster:
        _cluster_drive(cluster.port, seed_mix, 1)
        cluster.router.reset_shard_latency()
        started = time.perf_counter()
        latencies, cl_responses, cl_failures = _cluster_drive(
            cluster.port, mix, config["concurrency"]
        )
        warm_s = time.perf_counter() - started
        per_shard = cluster.router.shard_latency_summary()

        warm_identical = not ref_failures and not cl_failures and all(
            cl_responses.get(key) == ref_responses.get(key) for key in ref_responses
        )

        # Chaos: kill the owner of the hottest key mid-load.
        hot_digest = parse_solve_spec(
            {"benchmark": "log", "n_max": 4}
        ).canonical_digest()
        victim = cluster.supervisor.preference(hot_digest)[0]
        killer = threading.Timer(
            0.05, cluster.supervisor.kill, args=(victim, signal_mod.SIGKILL)
        )
        killer.start()
        _, _, chaos_failures = _cluster_drive(
            cluster.port, chaos_mix, config["concurrency"], retries=10
        )
        killer.join()
        respawned = cluster.supervisor.wait_all_alive(timeout_s=30.0)
        _, post_responses, post_failures = _cluster_drive(cluster.port, seed_mix, 1)
        post_identical = not post_failures and all(
            post_responses.get(key) == ref_responses.get(key)
            for key in ref_responses
        )

    warm_rps = len(mix) / warm_s
    return [
        {
            "workload": f"mixed_{preset}_{shards}shards",
            "shards": shards,
            "requests": len(mix),
            "distinct_keys": len(seed_mix),
            "concurrency": config["concurrency"],
            "warm_rps": warm_rps,
            "single_warm_rps": single_warm_rps,
            "speedup_vs_single_warm": warm_rps / single_warm_rps,
            "p50_ms": _percentile_ms(latencies, 0.50),
            "p99_ms": _percentile_ms(latencies, 0.99),
            "per_shard_p99_ms": {
                str(shard): stats["p99_ms"] for shard, stats in per_shard.items()
            },
            "max_shard_p99_ms": max(
                (stats["p99_ms"] for stats in per_shard.values()), default=0.0
            ),
            "responses_identical": warm_identical,
            "chaos": {
                "requests": len(chaos_mix),
                "killed_shard": victim,
                "failed": len(chaos_failures),
                "failures": chaos_failures[:5],
                "respawned": respawned,
                "post_recovery_identical": post_identical,
            },
        }
    ]


def run_suite(preset: str, repeat: int = 3) -> Dict[str, Any]:
    """Execute every bench in ``preset`` and return the JSON document."""
    workloads = PRESETS[preset]
    doc: Dict[str, Any] = {
        "preset": preset,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "native_available": repro_native.available(),
        "simulate": [],
        "solve": [],
        "sweep": [],
        "ltb_search": [],
        "baseline_sim": [],
        "serve": [],
        "dag": [],
        "zipf": [],
        "cluster": [],
    }
    for name, factory, shape in workloads:
        pattern = factory()
        doc["simulate"].append(_bench_simulate(name, pattern, shape, repeat))
        doc["solve"].append(_bench_solve(name, pattern, repeat))
        doc["sweep"].append(
            _bench_sweep(name, pattern, n_max=max(64, 4 * pattern.size), repeat=repeat)
        )
    for name, factory in LTB_WORKLOADS[preset]:
        doc["ltb_search"].append(_bench_ltb_search(name, factory(), repeat))
    baseline_shape = {"micro": (24, 24), "small": (64, 64)}.get(preset, (256, 256))
    doc["baseline_sim"].extend(
        _bench_baseline_sim(f"stencil3x3_{baseline_shape[0]}", baseline_shape, repeat)
    )
    doc["serve"].extend(_bench_serve(preset))
    doc["dag"].extend(_bench_dag(preset, repeat))
    doc["zipf"].extend(_bench_zipf(preset))
    doc["cluster"].extend(_bench_cluster(preset))
    return doc


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Time solve/sweep/simulate hot paths; write BENCH_perf.json."
    )
    parser.add_argument(
        "--preset", choices=sorted(PRESETS), default="small", help="workload size"
    )
    parser.add_argument(
        "--repeat", type=int, default=3, help="best-of repetitions per timing"
    )
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_perf.json"),
        help="output path (default: BENCH_perf.json at the repo root)",
    )
    args = parser.parse_args(argv)

    doc = run_suite(args.preset, repeat=args.repeat)
    Path(args.output).write_text(json.dumps(doc, indent=2) + "\n")

    for row in doc["simulate"]:
        native = (
            f", native {row['native_s']:.3f}s ({row['native_speedup']:.1f}x, "
            f"identical={row['native_identical']})"
            if "native_s" in row
            else ""
        )
        print(
            f"simulate {row['workload']}: scalar {row['scalar_s']:.3f}s, "
            f"vectorized {row['vectorized_s']:.3f}s "
            f"({row['speedup']:.1f}x, identical={row['reports_identical']})"
            f"{native}"
        )
    for row in doc["solve"]:
        print(
            f"solve {row['workload']}: cold {row['cold_s'] * 1e3:.2f}ms, "
            f"warm {row['warm_s'] * 1e6:.1f}us ({row['speedup']:.0f}x)"
        )
    for row in doc["sweep"]:
        print(
            f"sweep {row['workload']} (n_max={row['n_max']}): "
            f"scalar {row['scalar_s'] * 1e3:.2f}ms, "
            f"vectorized {row['vectorized_s'] * 1e3:.2f}ms ({row['speedup']:.1f}x)"
        )
    for row in doc["ltb_search"]:
        native = (
            f", native {row['native_s'] * 1e3:.2f}ms "
            f"({row['native_speedup']:.1f}x, identical={row['native_identical']})"
            if "native_s" in row
            else ""
        )
        print(
            f"ltb_search {row['workload']}: scalar {row['scalar_s'] * 1e3:.2f}ms, "
            f"vectorized {row['vectorized_s'] * 1e3:.2f}ms "
            f"({row['speedup']:.1f}x, N={row['solution']['n_banks']}, "
            f"identical={row['reports_identical']}){native}"
        )
    for row in doc["baseline_sim"]:
        native = (
            f", native {row['native_s'] * 1e3:.2f}ms "
            f"({row['native_speedup']:.1f}x, identical={row['native_identical']})"
            if "native_s" in row
            else ""
        )
        print(
            f"baseline_sim {row['workload']}: scalar {row['scalar_s'] * 1e3:.2f}ms, "
            f"vectorized {row['vectorized_s'] * 1e3:.2f}ms "
            f"({row['speedup']:.1f}x, identical={row['reports_identical']})"
            f"{native}"
        )
    for row in doc["serve"]:
        print(
            f"serve {row['workload']}: {row['requests']} reqs, "
            f"{row['rps']:.0f} rps, p50 {row['p50_ms']:.2f}ms, "
            f"p99 {row['p99_ms']:.2f}ms "
            f"(store entries={row['store_entries']}, hits={row['store_hits']})"
        )
    for row in doc["dag"]:
        print(
            f"dag {row['workload']}: {row['cells']} cells / "
            f"{row['distinct_solves']} distinct solves "
            f"({row['sharing']:.0f}x sharing, jobs={row['jobs']}): "
            f"solver invocations {row['flat_solver_invocations']} -> "
            f"{row['dag_solver_invocations']} "
            f"(-{row['solver_invocation_reduction'] * 100:.0f}%), "
            f"wall {row['flat_wall_s'] * 1e3:.1f}ms -> "
            f"{row['dag_wall_s'] * 1e3:.1f}ms, "
            f"rows identical={row['rows_identical']}"
        )
    for row in doc["zipf"]:
        extra = ""
        if "prefetch" in row:
            pf = row["prefetch"]
            extra = f", prefetch stored={pf['stored']} skipped={pf['skipped']}"
        print(
            f"zipf {row['workload']}: {row['requests']} reqs over "
            f"{row['distinct_variants']} variants, cold solves "
            f"{row['cold_solves']} (hit rate {row['canonical_hit_rate']:.2f}), "
            f"p50 {row['p50_ms']:.2f}ms, p99 {row['p99_ms']:.2f}ms, "
            f"identical={row['responses_identical']}{extra}"
        )
    for row in doc["cluster"]:
        chaos = row["chaos"]
        print(
            f"cluster {row['workload']}: {row['requests']} reqs x"
            f"{row['concurrency']} clients, warm {row['warm_rps']:.0f} rps "
            f"(single {row['single_warm_rps']:.0f} rps, "
            f"{row['speedup_vs_single_warm']:.2f}x), "
            f"p99 {row['p99_ms']:.2f}ms, max shard p99 "
            f"{row['max_shard_p99_ms']:.2f}ms, "
            f"identical={row['responses_identical']}; chaos: "
            f"killed shard {chaos['killed_shard']}, "
            f"failed {chaos['failed']}/{chaos['requests']}, "
            f"respawned={chaos['respawned']}, "
            f"post identical={chaos['post_recovery_identical']}"
        )
    print(f"written: {args.output}")

    ok = (
        all(r["reports_identical"] for r in doc["simulate"])
        and all(r["results_identical"] for r in doc["sweep"])
        and all(r["reports_identical"] for r in doc["ltb_search"])
        and all(r["reports_identical"] for r in doc["baseline_sim"])
        and all(
            r.get("native_identical", True)
            for section in ("simulate", "ltb_search", "baseline_sim")
            for r in doc[section]
        )
        and all(r["rows_identical"] for r in doc["dag"])
        and all(r["responses_identical"] for r in doc["zipf"])
        and all(
            r["responses_identical"]
            and r["chaos"]["failed"] == 0
            and r["chaos"]["respawned"]
            and r["chaos"]["post_recovery_identical"]
            for r in doc["cluster"]
        )
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
