"""Memory-system simulation benches: measured bandwidth gains.

The paper's premise — banking multiplies effective memory bandwidth — is
validated here with the cycle-level simulator: every benchmark pattern is
swept over an array through real (modelled) banks, and the measured cycles
are compared against the single-bank baseline and against the naive
cyclic/block banking schemes.
"""

import pytest

from repro.baselines import BlockScheme, cyclic_delta_ii
from repro.core import BankMapping, partition
from repro.patterns import benchmark_pattern
from repro.sim import simulate_sweep, simulate_unpartitioned

from _bench_util import emit

CASES = [
    ("log", (16, 15)),
    ("canny", (12, 27)),
    ("prewitt", (12, 11)),
    ("se", (10, 11)),
    ("median", (12, 10)),
    ("gaussian", (12, 14)),
]


@pytest.mark.parametrize("name, shape", CASES, ids=[n for n, _ in CASES])
def test_measured_speedup(benchmark, name, shape):
    pattern = benchmark_pattern(name)
    solution = partition(pattern)
    mapping = BankMapping(solution=solution, shape=shape)

    report = benchmark(simulate_sweep, mapping)
    baseline = simulate_unpartitioned(pattern.size, report.iterations)
    speedup = baseline / report.total_cycles
    emit(
        f"[sim] {name:9s} banks={solution.n_banks:3d} "
        f"measured II={report.measured_ii:.2f} speedup={speedup:.1f}x"
    )
    # conflict-free solution -> speedup equals the pattern size
    assert report.worst_cycles == 1
    assert speedup == pytest.approx(pattern.size)


def test_constrained_speedup_halves(benchmark):
    pattern = benchmark_pattern("log")
    solution = partition(pattern, n_max=10)
    mapping = BankMapping(solution=solution, shape=(12, 21))
    report = benchmark(simulate_sweep, mapping)
    baseline = simulate_unpartitioned(pattern.size, report.iterations)
    speedup = baseline / report.total_cycles
    emit(f"[sim] log @ Nmax=10: II={report.measured_ii:.2f} speedup={speedup:.2f}x")
    assert report.worst_cycles == 2
    assert speedup == pytest.approx(6.5)


def test_naive_schemes_underperform(benchmark):
    """Same bank budget, naive hashes: cyclic conflicts, block serializes."""
    pattern = benchmark_pattern("log")

    def measure():
        ours_delta = partition(pattern).delta_ii
        cyc_delta = cyclic_delta_ii(pattern, 13)
        blk_delta = BlockScheme(dim=0, n_banks=13, shape=(40, 40)).worst_delta_ii(pattern)
        return ours_delta, cyc_delta, blk_delta

    ours, cyclic, block = benchmark(measure)
    emit(f"[sim] delta_ii with 13 banks: ours={ours} cyclic={cyclic} block={block}")
    assert ours == 0
    assert cyclic >= 1
    assert block >= 6
