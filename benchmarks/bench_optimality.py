"""Optimality-gap study: what does the constant-time construction pay?

Table 1 shows the trade concretely (Median +1 bank, Gaussian +3); this
bench generalizes it into a distribution over seeded random patterns and
verifies the analytical bounds the trade lives under.
"""

from repro.core import (
    gap_survey,
    minimize_nf,
    nf_upper_bound,
    optimality_gap,
)
from repro.patterns import all_benchmarks, gaussian_pattern, median_pattern

from _bench_util import emit


def test_benchmark_gaps(benchmark):
    """The Table 1 gaps, recomputed from scratch."""

    def gaps():
        return {
            "median": optimality_gap(median_pattern()),
            "gaussian": optimality_gap(gaussian_pattern()),
        }

    values = benchmark(gaps)
    emit(f"[optimality] median gap = {values['median']} (paper: 8 - 7 = 1)")
    emit(f"[optimality] gaussian gap = {values['gaussian']} (paper: 13 - 10 = 3)")
    assert values == {"median": 1, "gaussian": 3}


def test_gap_distribution(benchmark):
    """Distribution over 40 random 7-element patterns in a 5x5 box."""
    survey = benchmark.pedantic(
        gap_survey, kwargs={"count": 40, "size": 7, "seed": 11}, rounds=1, iterations=1
    )
    emit(
        f"[optimality] random 7-in-5x5: optimal on "
        f"{survey.optimal_fraction * 100:.0f}%, mean gap {survey.mean_gap:.2f}, "
        f"max {survey.max_gap}; histogram {dict(sorted(survey.histogram.items()))}"
    )
    assert survey.mean_gap >= 0
    assert survey.optimal_fraction > 0  # the construction is often optimal
    # ... but not always: the gap the paper accepts for constant-time speed
    assert survey.max_gap >= 1


def test_bounds_hold_everywhere(benchmark):
    """N_f <= max(m, spread + 1) on every benchmark (Section 4.2)."""

    def check():
        rows = []
        for name, pattern in all_benchmarks():
            n_f, _, _ = minimize_nf(pattern)
            rows.append((name, n_f, nf_upper_bound(pattern)))
        return rows

    for name, n_f, bound in benchmark(check):
        emit(f"[optimality] {name:9s} N_f={n_f:3d} bound={bound:3d}")
        assert n_f <= bound
