"""Table 1, 'Arithmetic operations' column: instrumented op counts.

Both algorithms run with the same :class:`OpCounter` accounting; the column
reproduced is the count of scalar arithmetic (+, -, *, /, %) performed
while *finding* the partitioning solution.  Absolute counts depend on
accounting conventions the paper does not pin down, so cells are checked
to the right order of magnitude and the improvement column to the right
shape (ours is 83-99% cheaper).
"""

import pytest

from repro.baselines import ltb_partition
from repro.core import OpCounter, partition
from repro.eval.paper_data import PAPER_TABLE1
from repro.patterns import all_benchmarks

from _bench_util import OPS_REL_TOLERANCE, emit

BENCHES = all_benchmarks()


def count_ops(pattern, algorithm):
    ops = OpCounter()
    if algorithm == "ours":
        partition(pattern, ops=ops)
    else:
        ltb_partition(pattern, ops=ops)
    return ops.arithmetic


@pytest.mark.parametrize("name, pattern", BENCHES, ids=[n for n, _ in BENCHES])
def test_ops_ours(benchmark, name, pattern):
    mine = benchmark(count_ops, pattern, "ours")
    published = PAPER_TABLE1[name]["ours"].operations
    emit(f"[table1/ops] {name:9s} ours mine={mine} paper={published}")
    assert mine <= published * OPS_REL_TOLERANCE


@pytest.mark.parametrize(
    "name, pattern",
    [(n, p) for n, p in BENCHES if n != "sobel3d"],
    ids=[n for n, _ in BENCHES if n != "sobel3d"],
)
def test_ops_ltb(benchmark, name, pattern):
    mine = benchmark(count_ops, pattern, "ltb")
    published = PAPER_TABLE1[name]["ltb"].operations
    emit(f"[table1/ops] {name:9s} ltb  mine={mine} paper={published}")
    assert published / OPS_REL_TOLERANCE <= mine <= published * OPS_REL_TOLERANCE


def test_ops_ltb_sobel3d(benchmark):
    name, pattern = "sobel3d", dict(BENCHES)["sobel3d"]
    mine = benchmark.pedantic(count_ops, args=(pattern, "ltb"), rounds=1, iterations=1)
    published = PAPER_TABLE1[name]["ltb"].operations
    emit(f"[table1/ops] {name:9s} ltb  mine={mine} paper={published}")
    assert mine > 1_000_000  # the exponential 3-D search dominates the table


def test_ops_improvement_column(benchmark):
    """Shape check on the improvement column: every row >= 80%, and the
    Sobel3D row is essentially 100% (paper: 86.2-100%, average 93.7%)."""

    def improvements():
        rows = {}
        for name, pattern in BENCHES:
            ours = count_ops(pattern, "ours")
            ltb = count_ops(pattern, "ltb")
            rows[name] = (ltb - ours) / ltb * 100.0
        return rows

    rows = benchmark.pedantic(improvements, rounds=1, iterations=1)
    for name, value in rows.items():
        published_ours = PAPER_TABLE1[name]["ours"].operations
        published_ltb = PAPER_TABLE1[name]["ltb"].operations
        published = (published_ltb - published_ours) / published_ltb * 100.0
        emit(f"[table1/ops] {name:9s} improvement {value:.1f}% (paper {published:.1f}%)")
        assert value >= 60.0, name
    assert rows["sobel3d"] > 99.5
    average = sum(rows.values()) / len(rows)
    emit(f"[table1/ops] average improvement {average:.1f}% (paper 93.7%)")
    assert average >= 80.0
