"""Sections 2 and 5.1: the LoG case study (Fig. 2 and the δP|N table).

Regenerates, with exact-match assertions, every number the paper walks
through: α = (5,1), the z set, N_f = 13, the Fig. 2(b) bank indices, the
δP|N sweep row, the N_max = 10 choices (fast fold → 7 banks x 2 rounds;
same-size sweep → N_c ∈ {7, 9}), and the Section 2 motivational op- and
overhead-comparison anchors (640 vs 5450 elements).
"""

from repro.eval import (
    PAPER_CASESTUDY_SWEEP,
    PAPER_LOG_BANKS,
    PAPER_MOTIVATION,
    run_case_study,
)

from _bench_util import emit


def test_case_study(benchmark):
    study = benchmark(run_case_study)

    emit(f"[casestudy] alpha = {study.alpha} (paper (5, 1))")
    assert study.alpha == (5, 1)

    assert sorted(study.z_values) == [
        14, 18, 19, 20, 22, 23, 24, 25, 26, 28, 29, 30, 34,
    ]

    emit(f"[casestudy] N_f = {study.n_f} (paper 13)")
    assert study.n_f == 13

    emit(f"[casestudy] Fig.2(b) banks = {study.bank_indices}")
    assert study.bank_indices == PAPER_LOG_BANKS

    emit(f"[casestudy] deltaP|N+1 = {study.sweep_row} (paper {PAPER_CASESTUDY_SWEEP})")
    assert study.sweep_row == PAPER_CASESTUDY_SWEEP

    emit(
        f"[casestudy] Nmax=10: fast Nc={study.fast_nc} x{study.fast_rounds} rounds, "
        f"same-size Nc={study.same_size_nc} of {study.same_size_candidates}"
    )
    assert (study.fast_nc, study.fast_rounds) == (7, 2)
    assert study.same_size_candidates == (7, 9)

    emit(
        f"[casestudy] overhead ours/ltb = "
        f"{study.ours_overhead_elements}/{study.ltb_overhead_elements} elements "
        f"(paper 640/5450)"
    )
    assert study.ours_overhead_elements == PAPER_MOTIVATION["ours_overhead_elements"]
    assert study.ltb_overhead_elements == PAPER_MOTIVATION["ltb_overhead_elements"]

    emit(
        f"[casestudy] ops ours/ltb = "
        f"{study.ours_operations}/{study.ltb_operations} (paper 92/1053)"
    )
    assert study.ltb_operations / study.ours_operations > 3


def test_fig2b_grid_rendering(benchmark):
    """Fig. 2(b) as a picture: the 13-bank assignment over the array."""
    from repro.core import partition
    from repro.patterns import log_pattern
    from repro.viz import render_bank_grid

    solution = partition(log_pattern())
    art = benchmark(render_bank_grid, solution, 7, 9, log_pattern().translated((1, 2)))
    emit("[casestudy] Fig.2(b):")
    emit(art)
    assert art.count("[") == 13  # the highlighted window has 13 cells

    # and those 13 highlighted cells show 13 distinct bank glyphs
    import re

    glyphs = re.findall(r"\[(.)\]", art)
    assert len(set(glyphs)) == 13


def test_fig2c_seven_bank_solution(benchmark):
    """Fig. 2(c): the same-size 7-bank solution under N_max = 10 — at most
    2 of the 13 LoG elements share any bank."""
    from repro.core import partition
    from repro.patterns import log_pattern

    solution = benchmark(partition, log_pattern(), 10)
    assert solution.n_banks == 7
    banks = solution.bank_indices()
    assert max(banks.count(b) for b in set(banks)) == 2
