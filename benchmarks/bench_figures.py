"""Figures 1-3: access patterns, storage reorganization, kernel extraction.

* Fig. 1 — the LoG kernel and loop nest: parsed from source and checked to
  induce the 13-element pattern.
* Fig. 2(d)(e) — the storage reorganization: per-bank layouts rendered and
  machine-verified (every element exactly once; padding where expected).
* Fig. 3 — the five benchmark patterns rendered with their element counts.
"""

from repro.core import BankMapping, partition
from repro.hls import extract_pattern, log_kernel_nest
from repro.patterns import (
    EXPECTED_SIZES,
    canny_pattern,
    log_pattern,
    prewitt_pattern,
    se_pattern,
    sobel3d_pattern,
)
from repro.viz import render_bank_layout, render_pattern, render_pattern_3d

from _bench_util import emit


def test_fig1_kernel_extraction(benchmark):
    """Fig. 1(b) source → the Fig. 2(a) access pattern."""
    nest = log_kernel_nest()
    pattern = benchmark(extract_pattern, nest)
    assert pattern.size == 13
    assert pattern.normalized() == log_pattern().normalized()
    emit("[fig1] LoG kernel parsed; 13-tap pattern extracted:")
    emit(render_pattern(pattern.normalized()))


def test_fig2de_storage_reorganization(benchmark):
    """Fig. 2(d)(e): move each column, fold the overflow back, one row per
    bank — reproduced by the F(x) mapping and verified bijective."""
    solution = partition(log_pattern(), n_max=10)

    def build():
        mapping = BankMapping(solution=solution, shape=(8, 14))
        mapping.verify_bijective()
        return mapping

    mapping = benchmark(build)
    emit(f"[fig2de] 7-bank layout of an 8x14 array (overhead "
         f"{mapping.overhead_elements} elements):")
    emit(render_bank_layout(mapping, max_width=100))
    assert mapping.n_banks == 7


def test_fig3_pattern_gallery(benchmark):
    """Fig. 3: the five benchmark patterns and their bracketed sizes."""
    gallery = {
        "log": log_pattern(),
        "canny": canny_pattern(),
        "prewitt": prewitt_pattern(),
        "se": se_pattern(),
    }

    def render_all():
        return {name: render_pattern(p) for name, p in gallery.items()}

    art = benchmark(render_all)
    for name, drawing in art.items():
        emit(f"[fig3] {name} ({gallery[name].size} elements):")
        emit(drawing)
        assert drawing.count("#") == EXPECTED_SIZES[name]

    sobel_art = render_pattern_3d(sobel3d_pattern())
    emit(f"[fig3] sobel3d ({sobel3d_pattern().size} elements):")
    emit(sobel_art)
    assert sobel_art.count("#") == 26
