"""Table 1, 'Storage overhead' columns: 9 kb memory blocks, 5 resolutions.

Regenerates every storage cell of the paper's Table 1 (7 benchmarks x 5
resolutions x 2 algorithms) and checks each against the published value
within a small tolerance.  The benchmarked quantity is the full 70-cell
table computation.
"""

import pytest

from repro.eval.metrics import improvement, storage_blocks
from repro.eval.paper_data import PAPER_TABLE1, RESOLUTION_ORDER
from repro.patterns import EXPECTED_BANKS, BENCHMARKS, benchmark_shape

from _bench_util import PAPER_TOLERANCE_BLOCKS, emit


def compute_full_storage_table():
    table = {}
    for name in BENCHMARKS:
        ours_n, ltb_n = EXPECTED_BANKS[name]
        table[name] = {
            "ours": tuple(
                storage_blocks(benchmark_shape(name, r), ours_n, "ours")
                for r in RESOLUTION_ORDER
            ),
            "ltb": tuple(
                storage_blocks(benchmark_shape(name, r), ltb_n, "ltb")
                for r in RESOLUTION_ORDER
            ),
        }
    return table


def test_storage_table(benchmark):
    table = benchmark(compute_full_storage_table)
    mismatches = []
    for name, rows in table.items():
        for algorithm in ("ltb", "ours"):
            published = PAPER_TABLE1[name][algorithm].storage_blocks
            mine = rows[algorithm]
            emit(
                f"[table1/storage] {name:9s} {algorithm:5s} "
                f"mine={mine} paper={published}"
            )
            for resolution, a, b in zip(RESOLUTION_ORDER, mine, published):
                # Sobel3D cells are huge (up to 10^5 blocks); use a relative
                # criterion there and the absolute tolerance elsewhere.
                limit = max(PAPER_TOLERANCE_BLOCKS, int(0.05 * b))
                if abs(a - b) > limit:
                    mismatches.append((name, algorithm, resolution, a, b))
    assert not mismatches, mismatches


def test_average_storage_improvement(benchmark):
    """The paper's footer: 31.1% average storage saving."""

    def average():
        cells = []
        for name, rows in compute_full_storage_table().items():
            for l, o in zip(rows["ltb"], rows["ours"]):
                cells.append(improvement(l, o))
        return sum(cells) / len(cells)

    value = benchmark(average)
    emit(f"[table1/storage] average improvement {value:.1f}% (paper 31.1%)")
    assert 20.0 <= value <= 45.0


@pytest.mark.parametrize("name", list(BENCHMARKS))
def test_equal_bank_rows_never_worse(benchmark, name):
    """When bank counts match (first five patterns), ours <= LTB per cell."""
    ours_n, ltb_n = EXPECTED_BANKS[name]
    if ours_n != ltb_n:
        pytest.skip("bank counts differ; the guarantee does not apply")

    def cells():
        return [
            (
                storage_blocks(benchmark_shape(name, r), ours_n, "ours"),
                storage_blocks(benchmark_shape(name, r), ltb_n, "ltb"),
            )
            for r in RESOLUTION_ORDER
        ]

    for mine, ltb in benchmark(cells):
        assert mine <= ltb
