"""The complete Table 1, regenerated through the evaluation harness.

The per-column benches (`bench_table1_*.py`) isolate each metric; this one
runs the same end-to-end harness as the ``repro-table1`` CLI — all seven
rows, all four metric groups — and asserts the paper's three footer
averages land in range.  Its captured output *is* the reproduced table.
"""

from repro.eval import build_table, render_table1

from _bench_util import emit


def test_full_table1(benchmark):
    table = benchmark.pedantic(
        build_table, kwargs={"time_repetitions": 5}, rounds=1, iterations=1
    )
    emit(render_table1(table))

    # Bank counts: every row exact.
    from repro.eval import PAPER_TABLE1

    for row in table.rows:
        assert row.ours.n_banks == PAPER_TABLE1[row.benchmark]["ours"].n_banks
        assert row.ltb.n_banks == PAPER_TABLE1[row.benchmark]["ltb"].n_banks

    # Footer averages: same ballpark and direction as the paper.
    assert 20.0 <= table.average_storage_improvement <= 45.0   # paper 31.1
    assert table.average_operations_improvement >= 80.0        # paper 93.7
    assert table.average_time_improvement >= 60.0              # paper 96.9
