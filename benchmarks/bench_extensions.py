"""Extension benches: wide banks, packed tails, unrolling, energy.

These cover the paper's briefly-mentioned extensions (bank bandwidth B,
the zero-overhead tail option of §4.4.2) and natural ablation series the
paper motivates but does not tabulate.
"""

import pytest

from repro.core import (
    BankMapping,
    packed_mapping,
    partition,
    widen_solution,
)
from repro.eval.sweeps import (
    bandwidth_vs_ports,
    energy_vs_scheme,
    throughput_vs_unroll,
)
from repro.patterns import log_pattern
from repro.sim import simulate_sweep

from _bench_util import emit


def test_wide_bank_fold_series(benchmark):
    """Section 3 / case-study closing remark: bandwidth B folds N_f banks
    into ceil(N_f / B)."""
    rows = benchmark(bandwidth_vs_ports, log_pattern(), [1, 2, 3, 4, 7, 13])
    for bandwidth, banks, ports in rows:
        emit(f"[ext/wide] B={bandwidth}: {banks} banks x {ports} ports")
    assert rows[1][1] == 7   # the paper's 13 -> 7 example
    assert rows[-1][1] == 1  # a 13-ported single bank degenerates correctly


def test_wide_banks_still_single_cycle(benchmark):
    wide = widen_solution(partition(log_pattern()), 2)
    mapping = BankMapping(solution=wide, shape=(10, 20))
    report = benchmark(simulate_sweep, mapping)
    assert report.worst_cycles == 1


def test_packed_vs_padded_overhead(benchmark):
    """§4.4.2's two tail options, measured on awkward shapes."""
    solution = partition(log_pattern())
    shapes = [(64, 60), (64, 61), (64, 70), (64, 75)]

    def compare():
        rows = []
        for shape in shapes:
            padded = BankMapping(solution=solution, shape=shape)
            packed = packed_mapping(solution, shape)
            rows.append((shape, padded.overhead_elements, packed.overhead_elements))
        return rows

    rows = benchmark(compare)
    for shape, padded, packed in rows:
        emit(f"[ext/packed] {shape}: padded={padded} packed={packed} elements")
        assert packed == 0
        assert padded >= 0


def test_packed_mapping_simulates(benchmark):
    mapping = packed_mapping(partition(log_pattern()), (10, 20))
    report = benchmark(simulate_sweep, mapping)
    assert report.worst_cycles == 1


def test_unroll_throughput_series(benchmark):
    """Throughput scaling with unroll factor — linear until the bank cap."""
    rows = benchmark(throughput_vs_unroll, log_pattern(), [1, 2, 3, 4])
    previous = 0.0
    for factor, banks, ii, throughput in rows:
        emit(
            f"[ext/unroll] x{factor}: {banks} banks, II={ii}, "
            f"{throughput:.1f} elements/cycle"
        )
        assert throughput > previous
        previous = throughput


def test_energy_architecture_comparison(benchmark):
    """Section 1's qualitative argument, quantified by the energy model."""
    rows = benchmark(energy_vs_scheme, log_pattern(), (64, 65), 2000)
    totals = {}
    for name, dynamic, leakage, total in rows:
        totals[name] = total
        emit(
            f"[ext/energy] {name:10s} dynamic={dynamic:12.1f} "
            f"leakage={leakage:12.1f} total={total:12.1f}"
        )
    assert totals["banked"] < totals["multiport"]
    assert totals["banked"] < totals["duplicate"]
