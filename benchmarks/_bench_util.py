"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables or figures.  Rows are
printed through :func:`emit` so running with ``-s`` (or reading captured
output) shows the same rows/series the paper reports, with the published
value alongside for drift inspection.
"""

from __future__ import annotations

#: Allowed drift per storage cell, in 9 kb memory blocks.  Most cells match
#: the published Table 1 exactly; a few differ by 1-4 blocks from rounding
#: details the paper does not specify (EXPERIMENTS.md lists every cell).
PAPER_TOLERANCE_BLOCKS = 5

#: Relative tolerance for op-count comparisons against the published
#: numbers: accounting conventions (what counts as "one operation") are not
#: specified by the paper, so only the order of magnitude is checked.
OPS_REL_TOLERANCE = 4.0


def emit(*lines: str) -> None:
    """Print benchmark report rows (visible with pytest -s)."""
    for line in lines:
        print(line)


def bench_jobs() -> int | None:
    """Worker count for parallel-capable benches (``REPRO_BENCH_JOBS``).

    Defaults to serial so timing benches stay comparable run to run; CI
    sets it to spread Table-1-style regenerations across cores.
    """
    import os

    raw = os.environ.get("REPRO_BENCH_JOBS", "").strip()
    return int(raw) if raw else None


def time_call(fn, *args, repeat: int = 3, **kwargs) -> float:
    """Best-of-``repeat`` wall-clock seconds for ``fn(*args, **kwargs)``."""
    import time

    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return best
