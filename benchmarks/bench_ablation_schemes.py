"""Ablation: the design choices DESIGN.md calls out.

* fast two-level fold vs same-size sweep under N_max (Section 4.3.2's two
  schemes): same bank count for LoG, different bank-size uniformity and
  address-logic depth.
* optimization-order policies (Problem 1): what each order costs on the
  other objectives.
* our last-dimension-only padding vs LTB's all-dimension padding, swept
  over bank counts.
"""

import pytest

from repro.baselines.ltb import ltb_overhead_elements
from repro.core import (
    BankMapping,
    Objective,
    ours_overhead_elements,
    partition,
    solve,
)
from repro.patterns import log_pattern

from _bench_util import emit


def test_fast_vs_same_size(benchmark):
    def both():
        fast = partition(log_pattern(), n_max=10, same_size=False)
        uniform = partition(log_pattern(), n_max=10, same_size=True)
        return fast, uniform

    fast, uniform = benchmark(both)
    assert fast.n_banks == uniform.n_banks == 7
    assert fast.delta_ii == uniform.delta_ii == 1

    fast_map = BankMapping(solution=fast, shape=(8, 26))
    uniform_map = BankMapping(solution=uniform, shape=(8, 26))
    fast_sizes = {fast_map.bank_size(b) for b in range(7)}
    uniform_sizes = {uniform_map.bank_size(b) for b in range(7)}
    emit(f"[ablation/schemes] fast fold bank sizes: {sorted(fast_sizes)}")
    emit(f"[ablation/schemes] same-size bank sizes: {sorted(uniform_sizes)}")
    assert len(uniform_sizes) == 1  # the scheme's defining property
    assert len(fast_sizes) == 2     # 13 inner banks folded into 7

    for mapping in (fast_map, uniform_map):
        assert mapping.verify_bijective()


def test_objective_order_matrix(benchmark):
    """Each policy wins its own objective on a shape where they differ."""
    shape = (64, 60)  # 60 divisible by 2..6,10,12 but not by 13

    def run_all():
        return {
            "latency": solve(log_pattern(), shape=shape, n_max=12),
            "storage": solve(
                log_pattern(), shape=shape, n_max=12, objective=Objective.STORAGE
            ),
            "banks": solve(
                log_pattern(),
                shape=shape,
                n_max=12,
                objective=Objective.BANKS,
                delta_max=3,
            ),
        }

    results = benchmark(run_all)
    for label, result in results.items():
        d, n, w = result.objective_vector
        emit(f"[ablation/objectives] {label:8s} delta={d} banks={n} overhead={w}")

    assert results["storage"].overhead_elements == 0
    assert (
        results["latency"].solution.delta_ii
        <= results["storage"].solution.delta_ii
    )
    assert results["banks"].solution.n_banks <= results["latency"].solution.n_banks


@pytest.mark.parametrize("shape", [(640, 480), (1920, 1080)])
def test_padding_strategy_sweep(benchmark, shape):
    """Ours vs LTB padding across bank counts: the n-fold gap of §4.4.2."""

    def sweep():
        rows = []
        for n in range(2, 33):
            rows.append((n, ours_overhead_elements(shape, n), ltb_overhead_elements(shape, n)))
        return rows

    rows = benchmark(sweep)
    worse = 0
    for n, ours, ltb in rows:
        if ours > ltb:
            worse += 1
    emit(
        f"[ablation/padding] shape={shape}: ours <= ltb on "
        f"{len(rows) - worse}/{len(rows)} bank counts"
    )
    assert worse == 0  # same N -> our padding never exceeds LTB's
    # and the average gap is substantial (the paper's §4.4.2 says ours is
    # 1/n of LTB's overhead on average; n = 2 here, ratio ≈ 1.5-2.0)
    ratio = sum(l for _, _, l in rows) / max(1, sum(o for _, o, _ in rows))
    emit(f"[ablation/padding] aggregate LTB/ours element ratio {ratio:.1f}x")
    assert ratio > 1.4
