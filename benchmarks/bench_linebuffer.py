"""Banking vs line-buffer reuse: the other way HLS serves stencils.

Not a paper experiment, but the comparison every reader asks about: for
raster-order sliding windows a line buffer reads one pixel per cycle with
no banking at all.  The series shows where each architecture wins on
storage and what capability separates them (random access).
"""

from repro.baselines import LineBufferDesign, linebuffer_vs_banking_storage
from repro.core import partition
from repro.patterns import RESOLUTIONS, log_pattern

from _bench_util import emit


def test_storage_across_resolutions(benchmark):
    pattern = log_pattern()
    n = partition(pattern).n_banks

    def series():
        rows = []
        for name, (cols, rows_px) in RESOLUTIONS.items():
            lb, banking = linebuffer_vs_banking_storage(
                pattern, (rows_px, cols), n
            )
            rows.append((name, lb, banking))
        return rows

    rows = benchmark(series)
    for name, lb, banking in rows:
        winner = "banking" if banking < lb else "linebuf"
        emit(
            f"[linebuffer] {name:7s} linebuffer={lb:6d} "
            f"banking-overhead={banking:6d} elements -> {winner}"
        )
    # Both outcomes occur across the sweep or banking dominates — the
    # point is the magnitudes, which the emitted series shows.
    assert all(lb > 0 for _, lb, _ in rows)


def test_capability_difference(benchmark):
    """The line buffer's II = 1 only holds for raster order; banking is
    order-independent.  Quantify the cycle cost of each on one frame."""
    pattern = log_pattern()
    design = LineBufferDesign(pattern=pattern, image_shape=(60, 64))

    def cycles():
        return design.total_cycles()

    lb_cycles = benchmark(cycles)
    banked_cycles = 60 * 64  # II = 1, one window per cycle, any order
    emit(
        f"[linebuffer] raster sweep: linebuffer={lb_cycles} cycles "
        f"(incl. {design.warmup_cycles} warmup), banked={banked_cycles}"
    )
    assert lb_cycles > banked_cycles  # warmup is the line buffer's tax
    assert design.supports_access_order(raster=True)
    assert not design.supports_access_order(raster=False)
