"""Table 1, 'Bank number' column: minimum banks, ours vs LTB.

Regenerates the first column of the paper's Table 1 for all seven
benchmarks and benchmarks the *search* that produces it (our constant-time
construction + Algorithm 1 vs LTB's exhaustive vector enumeration).
"""

import pytest

from repro.baselines import ltb_partition
from repro.core import partition
from repro.patterns import EXPECTED_BANKS, all_benchmarks

from _bench_util import emit

BENCHES = all_benchmarks()


@pytest.mark.parametrize("name, pattern", BENCHES, ids=[n for n, _ in BENCHES])
def test_bank_number_ours(benchmark, name, pattern):
    solution = benchmark(partition, pattern)
    expected_ours, expected_ltb = EXPECTED_BANKS[name]
    assert solution.n_banks == expected_ours
    emit(
        f"[table1/banks] {name:9s} ours={solution.n_banks:3d} "
        f"(paper {expected_ours}) ltb_paper={expected_ltb}"
    )


@pytest.mark.parametrize(
    "name, pattern",
    [(n, p) for n, p in BENCHES if n != "sobel3d"],
    ids=[n for n, _ in BENCHES if n != "sobel3d"],
)
def test_bank_number_ltb(benchmark, name, pattern):
    result = benchmark(ltb_partition, pattern)
    assert result.solution.n_banks == EXPECTED_BANKS[name][1]


def test_bank_number_ltb_sobel3d(benchmark):
    """Separate, single-round bench: the 3-D exhaustive search is ~10^6 ops."""
    name, pattern = "sobel3d", dict(BENCHES)["sobel3d"]
    result = benchmark.pedantic(ltb_partition, args=(pattern,), rounds=1, iterations=1)
    assert result.solution.n_banks == EXPECTED_BANKS[name][1]


def test_bank_gap_summary(benchmark):
    """Ours equals LTB on the five Fig. 3 patterns; +1 / +3 on the extras."""

    def compute_gaps():
        return {name: partition(pattern).n_banks for name, pattern in BENCHES}

    ours_banks = benchmark(compute_gaps)
    gaps = {}
    for name, _ in BENCHES:
        ltb = EXPECTED_BANKS[name][1]
        gaps[name] = ours_banks[name] - ltb
        emit(
            f"[table1/banks] {name:9s} ours={ours_banks[name]:3d} "
            f"ltb={ltb:3d} gap={gaps[name]}"
        )
    assert gaps == {
        "log": 0, "canny": 0, "prewitt": 0, "se": 0, "sobel3d": 0,
        "median": 1, "gaussian": 3,
    }
