"""Ablation: complexity scaling (the paper's O(m²) vs O(C·N^n·m²) claim).

Sweeps pattern size and dimensionality with generated patterns and
measures how the instrumented op counts of both algorithms grow.  Ours
must grow polynomially in m and stay independent of the bounding-box /
bank count; LTB must blow up with N^n.
"""

import pytest

from repro.baselines import ltb_partition
from repro.core import OpCounter, partition
from repro.patterns import cross, random_pattern, rectangle

from _bench_util import emit


def ours_ops(pattern):
    ops = OpCounter()
    partition(pattern, ops=ops)
    return ops.arithmetic


def ltb_ops(pattern):
    ops = OpCounter()
    ltb_partition(pattern, ops=ops)
    return ops.arithmetic


def test_ours_scales_quadratically_in_m(benchmark):
    """Dense k x k windows: m = k², ours ~ m²/2 pairwise differences."""

    def sweep():
        return {k: ours_ops(rectangle((k, k))) for k in (2, 3, 4, 5, 6)}

    counts = benchmark(sweep)
    for k, count in counts.items():
        emit(f"[ablation/scaling] ours rect {k}x{k} (m={k * k}): {count} ops")
    # growth ratio between m=9 and m=36 should be ~(36/9)^2 = 16, not 100+
    ratio = counts[6] / counts[3]
    assert 4 < ratio < 40


def test_ltb_explodes_with_dimension(benchmark):
    """The same 5-element cross in 2-D vs 3-D: LTB pays N^n vectors."""

    def sweep():
        return {
            "2d": ltb_ops(cross(1, 2)),
            "3d": ltb_ops(cross(1, 3).translated((0, 0, 0))),
        }

    counts = benchmark(sweep)
    ours2 = ours_ops(cross(1, 2))
    ours3 = ours_ops(cross(1, 3))
    emit(f"[ablation/scaling] cross 2d: ours={ours2} ltb={counts['2d']}")
    emit(f"[ablation/scaling] cross 3d: ours={ours3} ltb={counts['3d']}")
    # our cost is nearly dimension-independent; LTB's grows by ~N per dim
    assert ours3 < ours2 * 3
    assert counts["3d"] > counts["2d"] * 2


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_gap_on_random_patterns(benchmark, seed):
    """Random 8-element patterns in a 6x6 box: ours always wins on ops."""
    pattern = random_pattern(8, (6, 6), seed=seed)

    def both():
        return ours_ops(pattern), ltb_ops(pattern)

    ours, ltb = benchmark(both)
    emit(f"[ablation/scaling] rand seed={seed}: ours={ours} ltb={ltb}")
    assert ours < ltb


def test_bounding_box_does_not_hurt_ours(benchmark):
    """Stretching a pattern's bounding box (same m) leaves our op count
    nearly unchanged — the construction never searches the box."""
    compact = random_pattern(7, (4, 4), seed=5)
    stretched = compact.translated((0, 0))
    stretched = type(compact)(
        [(r * 3, c * 5) for (r, c) in compact.offsets], name="stretched"
    )

    def both():
        return ours_ops(compact), ours_ops(stretched)

    a, b = benchmark(both)
    emit(f"[ablation/scaling] compact={a} ops, stretched={b} ops")
    assert b <= a * 3
