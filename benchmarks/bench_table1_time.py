"""Table 1, 'Execution time' column: wall-clock solve time, ours vs LTB.

This is the column pytest-benchmark measures directly: the time each
algorithm needs to produce a partitioning solution.  Absolute times differ
from the paper's 4-core 2.9 GHz host (and Python vs the authors' native
code); the reproduced claim is the *ratio* — our constant-time construction
is orders of magnitude faster than the exhaustive search, most extremely on
the 3-D pattern (paper: 1108 ms vs 0.025 ms).
"""

import time

import pytest

from repro.baselines import ltb_partition
from repro.core import partition
from repro.patterns import all_benchmarks

from _bench_util import emit

BENCHES = all_benchmarks()


@pytest.mark.parametrize("name, pattern", BENCHES, ids=[n for n, _ in BENCHES])
def test_time_ours(benchmark, name, pattern):
    solution = benchmark(partition, pattern)
    assert solution.delta_ii == 0


@pytest.mark.parametrize(
    "name, pattern",
    [(n, p) for n, p in BENCHES if n != "sobel3d"],
    ids=[n for n, _ in BENCHES if n != "sobel3d"],
)
def test_time_ltb(benchmark, name, pattern):
    result = benchmark(ltb_partition, pattern)
    assert result.solution.delta_ii == 0


def test_time_ltb_sobel3d(benchmark):
    pattern = dict(BENCHES)["sobel3d"]
    result = benchmark.pedantic(ltb_partition, args=(pattern,), rounds=1, iterations=1)
    assert result.solution.n_banks == 27


def test_time_improvement_column(benchmark):
    """Measure both algorithms back-to-back and report the paper's
    improvement column (paper: 92.0-100%, average 96.9%)."""

    def measure():
        rows = {}
        for name, pattern in BENCHES:
            reps = 5 if name != "sobel3d" else 1
            start = time.perf_counter()
            for _ in range(reps):
                partition(pattern)
            ours = (time.perf_counter() - start) / reps
            start = time.perf_counter()
            ltb_reps = 1
            for _ in range(ltb_reps):
                ltb_partition(pattern)
            ltb = (time.perf_counter() - start) / ltb_reps
            rows[name] = (ours, ltb)
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    improvements = []
    for name, (ours, ltb) in rows.items():
        value = (ltb - ours) / ltb * 100.0
        improvements.append(value)
        emit(
            f"[table1/time] {name:9s} ours={ours * 1e3:8.3f}ms "
            f"ltb={ltb * 1e3:9.3f}ms improvement={value:.1f}%"
        )
        assert ours < ltb, name
    emit(
        f"[table1/time] average improvement "
        f"{sum(improvements) / len(improvements):.1f}% (paper 96.9%)"
    )
    # The 3-D row alone demonstrates the complexity gap.
    ours3d, ltb3d = rows["sobel3d"]
    assert ltb3d / ours3d > 100
