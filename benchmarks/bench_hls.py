"""HLS front-end benches: source-to-banked-kernel throughput.

Times each stage of the flow the paper's partitioner would sit inside —
parse, extract, schedule, generate — on the Fig. 1(b) LoG kernel and on a
two-kernel program, and checks the load-balance of the resulting banking
with the access heatmap.
"""

from repro.core import BankMapping, partition
from repro.hls import (
    LOG_KERNEL_SOURCE,
    extract_pattern,
    generate_kernel,
    log_kernel_nest,
    parse_kernel,
    parse_program,
    schedule_nest,
    schedule_program,
)
from repro.patterns import log_pattern
from repro.viz import render_access_heatmap

from _bench_util import emit

TWO_PASS_PROGRAM = """
array X[128][128];
for (i = 1; i <= 126; i++)
  for (j = 1; j <= 126; j++)
    Y[i][j] = X[i-1][j] + X[i+1][j];

for (i = 1; i <= 126; i++)
  for (j = 1; j <= 126; j++)
    Z[i][j] = X[i][j-1] + X[i][j] + X[i][j+1];
"""


def test_parse_log_kernel(benchmark):
    nest = benchmark(parse_kernel, LOG_KERNEL_SOURCE)
    assert len(nest.statement.reads) == 13


def test_extract_pattern(benchmark):
    nest = log_kernel_nest()
    pattern = benchmark(extract_pattern, nest)
    assert pattern.size == 13


def test_schedule_kernel(benchmark):
    nest = log_kernel_nest()
    schedule = benchmark(schedule_nest, nest)
    assert schedule.ii == 1
    emit(f"[hls] LoG kernel: II={schedule.ii}, banks={schedule.total_banks}, "
         f"total cycles={schedule.total_cycles}")


def test_generate_banked_kernel(benchmark):
    nest = log_kernel_nest()
    mapping = BankMapping(solution=partition(log_pattern()), shape=(640, 480))
    code = benchmark(generate_kernel, nest, {"X": mapping})
    assert "X_bank12" in code
    emit(f"[hls] generated kernel: {len(code.splitlines())} lines of C")


def test_schedule_two_pass_program(benchmark):
    program = parse_program(TWO_PASS_PROGRAM)
    schedule = benchmark(schedule_program, program)
    emit(
        f"[hls] two-pass program: X gets {schedule.solution_for('X').n_banks} "
        f"banks jointly, per-kernel II={schedule.kernel_iis}"
    )
    assert schedule.kernel_iis == (1, 1)


def test_bank_load_balance(benchmark):
    """Sweep the LoG pattern and chart per-bank access counts: the linear
    hash spreads load evenly (a hot bank would mean hidden conflicts)."""
    from repro.hw import BankedMemory
    from repro.sim import simulate_sweep

    mapping = BankMapping(solution=partition(log_pattern()), shape=(14, 15))

    def run():
        return simulate_sweep(mapping)

    report = benchmark(run)
    assert report.worst_cycles == 1
    # Rebuild a memory to read final access counters.
    memory = BankedMemory(mapping=mapping)
    import numpy as np

    memory.load_array(np.zeros((14, 15), dtype=np.int64))
    for offset0 in range(10):
        for offset1 in range(11):
            memory.read_pattern((offset0, offset1))
    counts = [bank.accesses for bank in memory.banks]
    emit("[hls] per-bank access counts over a full sweep:")
    emit(render_access_heatmap(counts, width=30))
    assert max(counts) <= min(counts) * 2  # no hot bank
