"""Optional compiled fast tier (``engine="native"``).

The hand-written C extension :mod:`repro.native._native` implements the two
hottest inner loops of the reproduction — whole-trace banked-memory conflict
simulation and the per-``N`` LTB candidate scan — and is exposed through the
existing ``engine=`` dispatch in :func:`repro.sim.memsim.simulate_sweep` and
:func:`repro.baselines.ltb.ltb_partition`.  It is **never** a hard
dependency:

* build it with ``make build-ext`` (any C compiler; no third-party headers);
* :func:`available` reports whether the compiled module can be used;
* ``engine="native"`` without the extension raises
  :class:`~repro.errors.NativeUnavailableError` with the build hint;
* ``engine="auto"`` silently falls back to the NumPy engines;
* ``REPRO_NATIVE=0`` force-disables the tier even when the extension is
  importable (the kill-switch idiom shared with ``REPRO_SOLVE_CACHE`` and
  ``REPRO_SCHED``).

Like the NumPy bulk tier's kernel registry
(:func:`repro.core.vectorized.register_bulk_kernel`), mapping types opt into
the *fused* native trace kernel by registering a spec builder with
:func:`register_native_spec` (keyed by exact type — subclasses do not
inherit, mirroring the conservative bulk dispatch).  The stock
:class:`~repro.core.mapping.BankMapping` registers here; the cyclic/block
baselines register theirs in :mod:`repro.baselines.mapping`.  Bulk-capable
types *without* a spec (e.g. ``PackedBankMapping``) still run under
``engine="native"`` through a hybrid path: addresses from the registered
NumPy bulk kernel, conflict accounting in C.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, Optional

from ..core.mapping import BankMapping
from ..errors import MappingError, NativeUnavailableError

__all__ = [
    "BUILD_HINT",
    "NativeUnavailableError",
    "available",
    "build_info",
    "has_native_spec",
    "native_spec_for",
    "register_native_spec",
    "require",
]

#: One-line build instruction quoted by every unavailability error.
BUILD_HINT = (
    "build it with `make build-ext` (equivalently "
    "`REPRO_BUILD_NATIVE=1 python setup.py build_ext --inplace`; "
    "requires a C compiler)"
)

_module: Any = None
_import_error: Optional[str] = None


def _load() -> Any:
    """Import the compiled module once; remember the failure otherwise."""
    global _module, _import_error
    if _module is None and _import_error is None:
        try:
            from . import _native as compiled  # type: ignore[attr-defined]

            _module = compiled
        except ImportError as exc:
            _import_error = str(exc)
    return _module


def _kill_switched() -> bool:
    return os.environ.get("REPRO_NATIVE", "").strip() == "0"


def available() -> bool:
    """Whether ``engine="native"`` can run right now.

    False when the extension is not built *or* when ``REPRO_NATIVE=0``
    disables it; ``engine="auto"`` callers use this to fall back to the
    NumPy engines silently.
    """
    if _kill_switched():
        return False
    return _load() is not None


def require() -> Any:
    """The compiled module, or a :class:`NativeUnavailableError` that says
    exactly how to get one (explicit ``engine="native"`` path)."""
    if _kill_switched():
        raise NativeUnavailableError(
            "the native engine is disabled by REPRO_NATIVE=0; unset it or "
            "use engine='auto' to fall back to the NumPy engines"
        )
    module = _load()
    if module is None:
        raise NativeUnavailableError(
            f"the repro native extension is not built ({_import_error}); "
            f"{BUILD_HINT}, or use engine='auto' to fall back to the NumPy "
            "engines"
        )
    return module


def build_info() -> Dict[str, Any]:
    """Diagnostic snapshot: availability, ABI, kill switch, import error."""
    module = _load()
    return {
        "available": available(),
        "abi_version": getattr(module, "ABI_VERSION", None),
        "kill_switched": _kill_switched(),
        "import_error": _import_error,
    }


# -- fused-kernel spec registry ---------------------------------------------

#: A native spec builder: ``mapping -> dict`` of fused-kernel parameters
#: (see ``repro.sim.native`` for the consumer).
NativeSpecBuilder = Callable[[Any], Dict[str, Any]]

_NATIVE_SPECS: Dict[type, NativeSpecBuilder] = {}


def register_native_spec(mapping_type: type, builder: NativeSpecBuilder) -> None:
    """Register a fused native trace-kernel spec for a mapping type.

    The builder must describe address math identical to the type's scalar
    ``address_of`` — the dual-engine test matrix and the ``repro.verify``
    differential oracles enforce exactly that.  Lookup is by exact type,
    like :func:`repro.core.vectorized.register_bulk_kernel`.
    """
    if not (isinstance(mapping_type, type) and issubclass(mapping_type, BankMapping)):
        raise MappingError(
            f"native specs require a BankMapping subclass, got {mapping_type!r}"
        )
    if not callable(builder):
        raise MappingError(
            f"native spec builder for {mapping_type.__name__} is not callable"
        )
    _NATIVE_SPECS[mapping_type] = builder


def has_native_spec(mapping_type: type) -> bool:
    """Whether ``mapping_type`` (exactly, not via inheritance) has a spec."""
    return mapping_type in _NATIVE_SPECS


def native_spec_for(mapping: BankMapping) -> Optional[Dict[str, Any]]:
    """The fused-kernel spec for ``mapping``, or None (hybrid path)."""
    builder = _NATIVE_SPECS.get(type(mapping))
    return None if builder is None else builder(mapping)


_SCHEME_CODES = {"two-level": 1, "wide": 2}


def _linear_spec(mapping: BankMapping) -> Dict[str, Any]:
    """Fused-kernel parameters for the stock Section 4.4 mapping.

    Unknown scheme labels fold into the direct formula, matching
    ``PartitionSolution.bank_of``'s fall-through.
    """
    solution = mapping.solution
    inner = mapping._inner_banks
    return {
        "kind": 0,
        "scheme": _SCHEME_CODES.get(solution.scheme, 0),
        "n_banks": mapping.n_banks,
        "inner": inner,
        "window": mapping.rows_per_bank * inner,
        "bank_ports": solution.bank_ports,
        "inner_bank_size": mapping.inner_bank_size,
        "dim": 0,
        "divisor": 1,
        "alpha": tuple(int(a) for a in solution.transform.alpha),
        "bank_shape": mapping.bank_shape,
    }


register_native_spec(BankMapping, _linear_spec)
