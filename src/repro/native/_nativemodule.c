/* Compiled inner loops for the repro library (optional fast tier).
 *
 * Three entry points, all operating on caller-provided contiguous int64
 * buffers (the Python wrappers in repro.sim.native / repro.baselines.ltb
 * guarantee dtype and layout, so this file never touches the NumPy C API):
 *
 *   sweep_chunk    - fused per-chunk trace replay for mappings with a
 *                    registered native spec (stock linear schemes plus the
 *                    cyclic/block baselines): address translation,
 *                    uninitialized-read / corruption checks, and bank
 *                    conflict accounting in one pass per read.
 *   conflict_stats - the conflict-accounting segment alone, for the hybrid
 *                    path where addresses come from a registered NumPy bulk
 *                    kernel (repro.core.vectorized.register_bulk_kernel).
 *   ltb_scan       - the whole per-N LTB candidate search: lexicographic
 *                    odometer enumeration, residue check with Python modulo
 *                    semantics, first-duplicate detection, and the
 *                    comparison-charge tally the OpCounter model requires.
 *
 * Bit-identity with the scalar and NumPy engines is the contract; the
 * dual-engine test matrix and the repro.verify differential oracles enforce
 * it.  Two semantic traps are handled explicitly: C's `%` truncates toward
 * zero while Python floors (pattern deltas and transform values can be
 * negative), and the scalar simulator reports a missing read anywhere in a
 * chunk before a corruption earlier in it (the NumPy engine checks the two
 * conditions in that order over the whole chunk).
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

/* ---------------------------------------------------------------- helpers */

/* Python floor-mod for a positive modulus. */
static inline int64_t
pymod(int64_t a, int64_t n)
{
    int64_t r = a % n;
    if (r < 0)
        r += n;
    return r;
}

/* Python floor-div via the matching floor-mod (positive divisor). */
static inline int64_t
pydiv(int64_t a, int64_t n)
{
    return (a - pymod(a, n)) / n;
}

typedef struct {
    Py_buffer view;
    int held;
    int64_t *data;
    Py_ssize_t len; /* in int64 elements */
} I64Buf;

typedef struct {
    Py_buffer view;
    int held;
    const uint8_t *data;
    Py_ssize_t len;
} U8Buf;

/* Acquire a contiguous int64 buffer (or accept None -> data NULL). */
static int
get_i64(PyObject *obj, I64Buf *buf, int writable, Py_ssize_t expect,
        const char *name)
{
    buf->held = 0;
    buf->data = NULL;
    buf->len = 0;
    if (obj == Py_None) {
        if (expect >= 0) {
            PyErr_Format(PyExc_ValueError, "%s buffer is required", name);
            return -1;
        }
        return 0;
    }
    if (PyObject_GetBuffer(obj, &buf->view,
                           writable ? PyBUF_CONTIG : PyBUF_CONTIG_RO) < 0)
        return -1;
    buf->held = 1;
    if (buf->view.len % (Py_ssize_t)sizeof(int64_t) != 0) {
        PyErr_Format(PyExc_ValueError,
                     "%s buffer length %zd is not a multiple of 8", name,
                     buf->view.len);
        return -1;
    }
    buf->data = (int64_t *)buf->view.buf;
    buf->len = buf->view.len / (Py_ssize_t)sizeof(int64_t);
    if (expect >= 0 && buf->len != expect) {
        PyErr_Format(PyExc_ValueError,
                     "%s buffer holds %zd int64 values, expected %zd", name,
                     buf->len, expect);
        return -1;
    }
    return 0;
}

static int
get_u8(PyObject *obj, U8Buf *buf, Py_ssize_t expect, const char *name)
{
    buf->held = 0;
    buf->data = NULL;
    buf->len = 0;
    if (obj == Py_None) {
        PyErr_Format(PyExc_ValueError, "%s buffer is required", name);
        return -1;
    }
    if (PyObject_GetBuffer(obj, &buf->view, PyBUF_CONTIG_RO) < 0)
        return -1;
    buf->held = 1;
    if (buf->view.itemsize != 1) {
        PyErr_Format(PyExc_ValueError, "%s buffer must be byte-sized", name);
        return -1;
    }
    buf->data = (const uint8_t *)buf->view.buf;
    buf->len = buf->view.len;
    if (expect >= 0 && buf->len != expect) {
        PyErr_Format(PyExc_ValueError,
                     "%s buffer holds %zd bytes, expected %zd", name, buf->len,
                     expect);
        return -1;
    }
    return 0;
}

static void
release_i64(I64Buf *buf)
{
    if (buf->held)
        PyBuffer_Release(&buf->view);
}

static void
release_u8(U8Buf *buf)
{
    if (buf->held)
        PyBuffer_Release(&buf->view);
}

/* Mapping kinds understood by sweep_chunk (mirrors repro.native specs). */
enum { KIND_LINEAR = 0, KIND_CYCLIC = 1, KIND_BLOCK = 2 };
enum { SCHEME_DIRECT = 0, SCHEME_TWO_LEVEL = 1, SCHEME_WIDE = 2 };

/* sweep_chunk status codes (the Python wrapper turns them into the same
 * SimulationError messages the NumPy engine raises). */
enum {
    SWEEP_OK = 0,
    SWEEP_MISSING = 1,   /* err_index = chunk-flat read index i*m + j */
    SWEEP_CORRUPT = 2,   /* err_index = chunk iteration index i */
    SWEEP_BAD_ADDRESS = 3 /* err_index = chunk-flat read index (defensive) */
};

/* ------------------------------------------------------------ sweep_chunk */

static PyObject *
sweep_chunk(PyObject *self, PyObject *args)
{
    PyObject *block_o, *deltas_o, *alpha_o, *bank_shape_o, *shape_o;
    PyObject *bases_o, *storage_o, *written_o, *flat_o;
    PyObject *hist_o, *conf_o, *acc_o, *cycles_o, *banks_out_o;
    Py_ssize_t count, m, n, kind, scheme, n_banks, inner, window, bank_ports;
    Py_ssize_t inner_bank_size, dim, divisor, ports, verify;

    if (!PyArg_ParseTuple(
            args, "OOnnnnnnnnnnnnOOOOOOOnnOOOOO:sweep_chunk", &block_o,
            &deltas_o, &count, &m, &n, &kind, &scheme, &n_banks, &inner,
            &window, &bank_ports, &inner_bank_size, &dim, &divisor, &alpha_o,
            &bank_shape_o, &shape_o, &bases_o, &storage_o, &written_o,
            &flat_o, &ports, &verify, &hist_o, &conf_o, &acc_o, &cycles_o,
            &banks_out_o))
        return NULL;

    if (count < 0 || m < 1 || n < 1 || n_banks < 1 || ports < 1) {
        PyErr_SetString(PyExc_ValueError,
                        "sweep_chunk: count/m/n/n_banks/ports out of range");
        return NULL;
    }

    I64Buf block = {0}, deltas = {0}, alpha = {0}, bank_shape = {0};
    I64Buf shape = {0}, bases = {0}, storage = {0}, flat = {0};
    I64Buf hist = {0}, conf = {0}, acc = {0}, cycles = {0}, banks_out = {0};
    U8Buf written = {0};
    int64_t *counts = NULL, *touched = NULL;
    PyObject *result = NULL;

    if (get_i64(block_o, &block, 0, count * n, "block") < 0 ||
        get_i64(deltas_o, &deltas, 0, m * n, "deltas") < 0 ||
        get_i64(alpha_o, &alpha, 0, kind == KIND_LINEAR ? n : -1, "alpha") < 0 ||
        get_i64(bank_shape_o, &bank_shape, 0, n, "bank_shape") < 0 ||
        get_i64(shape_o, &shape, 0, n, "shape") < 0 ||
        get_i64(bases_o, &bases, 0, n_banks, "bases") < 0 ||
        get_i64(storage_o, &storage, 0, -1, "storage") < 0 ||
        get_u8(written_o, &written, storage.view.len / 8, "written") < 0 ||
        get_i64(flat_o, &flat, 0, verify ? -1 : -1, "flat") < 0 ||
        get_i64(hist_o, &hist, 1, -1, "hist") < 0 ||
        get_i64(conf_o, &conf, 1, n_banks, "conf") < 0 ||
        get_i64(acc_o, &acc, 1, n_banks, "acc") < 0 ||
        get_i64(cycles_o, &cycles, 1, -1, "cycles_out") < 0 ||
        get_i64(banks_out_o, &banks_out, 1, -1, "banks_out") < 0)
        goto done;

    if (verify && flat.data == NULL) {
        PyErr_SetString(PyExc_ValueError,
                        "sweep_chunk: verify requires the flat array buffer");
        goto done;
    }
    if (kind == KIND_LINEAR &&
        (alpha.data == NULL || inner < 1 || window < 1 ||
         (scheme == SCHEME_WIDE && bank_ports < 1))) {
        PyErr_SetString(PyExc_ValueError,
                        "sweep_chunk: incomplete linear-mapping parameters");
        goto done;
    }
    if ((kind == KIND_CYCLIC || kind == KIND_BLOCK) &&
        (divisor < 1 || dim < 0 || dim >= n)) {
        PyErr_SetString(PyExc_ValueError,
                        "sweep_chunk: incomplete cyclic/block parameters");
        goto done;
    }
    if (cycles.data != NULL && cycles.len != count) {
        PyErr_SetString(PyExc_ValueError, "sweep_chunk: cycles_out size");
        goto done;
    }
    if (banks_out.data != NULL && banks_out.len != count * m) {
        PyErr_SetString(PyExc_ValueError, "sweep_chunk: banks_out size");
        goto done;
    }
    /* Cycles per iteration cannot exceed ceil(m / ports). */
    if (hist.len < (m + ports - 1) / ports + 1) {
        PyErr_SetString(PyExc_ValueError, "sweep_chunk: hist too small");
        goto done;
    }

    counts = (int64_t *)calloc((size_t)n_banks, sizeof(int64_t));
    touched = (int64_t *)malloc((size_t)m * sizeof(int64_t));
    if (counts == NULL || touched == NULL) {
        PyErr_NoMemory();
        goto done;
    }

    int status = SWEEP_OK;
    int64_t err_index = -1;
    int64_t first_corrupt = -1;
    int64_t total_cycles = 0;
    int64_t worst = 0;
    Py_ssize_t total_slots = storage.len;

    Py_BEGIN_ALLOW_THREADS
    for (Py_ssize_t i = 0; i < count && status != SWEEP_MISSING &&
                           status != SWEEP_BAD_ADDRESS;
         i++) {
        const int64_t *base_coord = block.data + i * n;
        int64_t maxk = 0;
        Py_ssize_t n_touched = 0;

        for (Py_ssize_t j = 0; j < m; j++) {
            const int64_t *delta = deltas.data + j * n;
            int64_t bank, offset;

            if (kind == KIND_LINEAR) {
                int64_t value = 0;
                for (Py_ssize_t d = 0; d < n; d++)
                    value += alpha.data[d] * (base_coord[d] + delta[d]);
                int64_t vm = 0;
                if (scheme == SCHEME_DIRECT) {
                    bank = pymod(value, n_banks);
                } else {
                    vm = pymod(value, inner);
                    bank = (scheme == SCHEME_TWO_LEVEL) ? vm % n_banks
                                                        : vm / bank_ports;
                }
                int64_t x_new = pymod(value, window) / inner;
                offset = 0;
                for (Py_ssize_t d = 0; d < n - 1; d++)
                    offset = offset * bank_shape.data[d] +
                             (base_coord[d] + delta[d]);
                offset = offset * bank_shape.data[n - 1] + x_new;
                if (scheme == SCHEME_TWO_LEVEL)
                    offset += (vm / n_banks) * inner_bank_size;
                else if (scheme == SCHEME_WIDE)
                    offset += (vm % bank_ports) * inner_bank_size;
            } else {
                int64_t c = base_coord[dim] + delta[dim];
                int64_t r = pymod(c, divisor);
                int64_t q = (c - r) / divisor;
                int64_t in_bank;
                if (kind == KIND_CYCLIC) {
                    bank = r;
                    in_bank = q;
                } else {
                    bank = q;
                    in_bank = r;
                }
                offset = 0;
                for (Py_ssize_t d = 0; d < n; d++) {
                    int64_t coord = (d == dim) ? in_bank
                                               : base_coord[d] + delta[d];
                    offset = offset * bank_shape.data[d] + coord;
                }
            }

            if (bank < 0 || bank >= n_banks) {
                status = SWEEP_BAD_ADDRESS;
                err_index = i * m + j;
                break;
            }
            int64_t address = bases.data[bank] + offset;
            if (address < 0 || address >= total_slots) {
                status = SWEEP_BAD_ADDRESS;
                err_index = i * m + j;
                break;
            }
            if (!written.data[address]) {
                /* First missing read in chunk-flat order; it outranks any
                 * corruption already found (the NumPy engine checks all
                 * missing reads before any value comparison). */
                status = SWEEP_MISSING;
                err_index = i * m + j;
                break;
            }
            if (verify && first_corrupt < 0) {
                int64_t linear = 0;
                for (Py_ssize_t d = 0; d < n; d++)
                    linear = linear * shape.data[d] + (base_coord[d] + delta[d]);
                if (storage.data[address] != flat.data[linear])
                    first_corrupt = i;
            }
            if (banks_out.data != NULL)
                banks_out.data[i * m + j] = bank;
            if (counts[bank] == 0)
                touched[n_touched++] = bank;
            counts[bank]++;
        }

        for (Py_ssize_t t = 0; t < n_touched; t++) {
            int64_t bank = touched[t];
            int64_t k = counts[bank];
            if (k > maxk)
                maxk = k;
            acc.data[bank] += k;
            int64_t q = (k - 1) / ports;
            conf.data[bank] += q * k - ports * (q * (q + 1) / 2);
            counts[bank] = 0;
        }
        if (status == SWEEP_MISSING || status == SWEEP_BAD_ADDRESS)
            break;

        int64_t iter_cycles = (maxk + ports - 1) / ports;
        hist.data[iter_cycles]++;
        total_cycles += iter_cycles;
        if (iter_cycles > worst)
            worst = iter_cycles;
        if (cycles.data != NULL)
            cycles.data[i] = iter_cycles;
    }
    Py_END_ALLOW_THREADS

    if (status == SWEEP_OK && first_corrupt >= 0) {
        status = SWEEP_CORRUPT;
        err_index = first_corrupt;
    }
    result = Py_BuildValue("iLLL", status, (long long)err_index,
                           (long long)total_cycles, (long long)worst);

done:
    free(counts);
    free(touched);
    release_i64(&block);
    release_i64(&deltas);
    release_i64(&alpha);
    release_i64(&bank_shape);
    release_i64(&shape);
    release_i64(&bases);
    release_i64(&storage);
    release_u8(&written);
    release_i64(&flat);
    release_i64(&hist);
    release_i64(&conf);
    release_i64(&acc);
    release_i64(&cycles);
    release_i64(&banks_out);
    return result;
}

/* --------------------------------------------------------- conflict_stats */

static PyObject *
conflict_stats(PyObject *self, PyObject *args)
{
    PyObject *banks_o, *hist_o, *conf_o, *acc_o, *cycles_o;
    Py_ssize_t count, m, n_banks, ports;

    if (!PyArg_ParseTuple(args, "OnnnnOOOO:conflict_stats", &banks_o, &count,
                          &m, &n_banks, &ports, &hist_o, &conf_o, &acc_o,
                          &cycles_o))
        return NULL;
    if (count < 0 || m < 1 || n_banks < 1 || ports < 1) {
        PyErr_SetString(PyExc_ValueError,
                        "conflict_stats: count/m/n_banks/ports out of range");
        return NULL;
    }

    I64Buf banks = {0}, hist = {0}, conf = {0}, acc = {0}, cycles = {0};
    int64_t *counts = NULL, *touched = NULL;
    PyObject *result = NULL;

    if (get_i64(banks_o, &banks, 0, count * m, "banks") < 0 ||
        get_i64(hist_o, &hist, 1, -1, "hist") < 0 ||
        get_i64(conf_o, &conf, 1, n_banks, "conf") < 0 ||
        get_i64(acc_o, &acc, 1, n_banks, "acc") < 0 ||
        get_i64(cycles_o, &cycles, 1, -1, "cycles_out") < 0)
        goto done;
    if (cycles.data != NULL && cycles.len != count) {
        PyErr_SetString(PyExc_ValueError, "conflict_stats: cycles_out size");
        goto done;
    }
    if (hist.len < (m + ports - 1) / ports + 1) {
        PyErr_SetString(PyExc_ValueError, "conflict_stats: hist too small");
        goto done;
    }

    counts = (int64_t *)calloc((size_t)n_banks, sizeof(int64_t));
    touched = (int64_t *)malloc((size_t)m * sizeof(int64_t));
    if (counts == NULL || touched == NULL) {
        PyErr_NoMemory();
        goto done;
    }

    int status = SWEEP_OK;
    int64_t err_index = -1;
    int64_t total_cycles = 0;
    int64_t worst = 0;

    Py_BEGIN_ALLOW_THREADS
    for (Py_ssize_t i = 0; i < count && status == SWEEP_OK; i++) {
        int64_t maxk = 0;
        Py_ssize_t n_touched = 0;
        for (Py_ssize_t j = 0; j < m; j++) {
            int64_t bank = banks.data[i * m + j];
            if (bank < 0 || bank >= n_banks) {
                status = SWEEP_BAD_ADDRESS;
                err_index = i * m + j;
                break;
            }
            if (counts[bank] == 0)
                touched[n_touched++] = bank;
            counts[bank]++;
        }
        for (Py_ssize_t t = 0; t < n_touched; t++) {
            int64_t bank = touched[t];
            int64_t k = counts[bank];
            if (k > maxk)
                maxk = k;
            acc.data[bank] += k;
            int64_t q = (k - 1) / ports;
            conf.data[bank] += q * k - ports * (q * (q + 1) / 2);
            counts[bank] = 0;
        }
        if (status != SWEEP_OK)
            break;
        int64_t iter_cycles = (maxk + ports - 1) / ports;
        hist.data[iter_cycles]++;
        total_cycles += iter_cycles;
        if (iter_cycles > worst)
            worst = iter_cycles;
        if (cycles.data != NULL)
            cycles.data[i] = iter_cycles;
    }
    Py_END_ALLOW_THREADS

    result = Py_BuildValue("iLLL", status, (long long)err_index,
                           (long long)total_cycles, (long long)worst);

done:
    free(counts);
    free(touched);
    release_i64(&banks);
    release_i64(&hist);
    release_i64(&conf);
    release_i64(&acc);
    release_i64(&cycles);
    return result;
}

/* --------------------------------------------------------------- ltb_scan */

static PyObject *
ltb_scan(PyObject *self, PyObject *args)
{
    PyObject *deltas_o, *alpha_o;
    Py_ssize_t m, n, n_banks;

    if (!PyArg_ParseTuple(args, "OnnnO:ltb_scan", &deltas_o, &m, &n, &n_banks,
                          &alpha_o))
        return NULL;
    if (m < 1 || n < 1 || n_banks < 1) {
        PyErr_SetString(PyExc_ValueError,
                        "ltb_scan: m/n/n_banks must be positive");
        return NULL;
    }

    I64Buf deltas = {0}, alpha = {0};
    int64_t *stamp = NULL, *digits = NULL;
    PyObject *result = NULL;

    if (get_i64(deltas_o, &deltas, 0, m * n, "deltas") < 0 ||
        get_i64(alpha_o, &alpha, 1, n, "alpha_out") < 0)
        goto done;

    stamp = (int64_t *)calloc((size_t)n_banks, sizeof(int64_t));
    digits = (int64_t *)calloc((size_t)n, sizeof(int64_t));
    if (stamp == NULL || digits == NULL) {
        PyErr_NoMemory();
        goto done;
    }

    int found = 0;
    int64_t tried = 0;
    int64_t compares = 0;

    Py_BEGIN_ALLOW_THREADS
    for (;;) {
        tried++;
        /* Residue scan with early exit at the first duplicate; the charge
         * model below only needs the stop index, not the skipped work
         * (arithmetic is charged wholesale per tried vector in Python). */
        int64_t t = m;
        for (Py_ssize_t j = 0; j < m; j++) {
            const int64_t *delta = deltas.data + j * n;
            int64_t value = 0;
            for (Py_ssize_t d = 0; d < n; d++)
                value += digits[d] * delta[d];
            int64_t residue = pymod(value, n_banks);
            if (stamp[residue] == tried) {
                t = j;
                break;
            }
            stamp[residue] = tried;
        }
        int64_t scan = (t < m) ? t : m - 1;
        compares += 1 + scan * (scan + 1) / 2;
        if (t == m) {
            found = 1;
            for (Py_ssize_t d = 0; d < n; d++)
                alpha.data[d] = digits[d];
            break;
        }
        /* Odometer increment, rightmost digit fastest (itertools.product
         * lexicographic order). */
        Py_ssize_t d2;
        for (d2 = n - 1; d2 >= 0; d2--) {
            digits[d2]++;
            if (digits[d2] < n_banks)
                break;
            digits[d2] = 0;
        }
        if (d2 < 0)
            break; /* candidate space exhausted */
    }
    Py_END_ALLOW_THREADS

    result = Py_BuildValue("iLL", found, (long long)tried,
                           (long long)compares);

done:
    free(stamp);
    free(digits);
    release_i64(&deltas);
    release_i64(&alpha);
    return result;
}

/* ----------------------------------------------------------------- module */

static PyMethodDef native_methods[] = {
    {"sweep_chunk", sweep_chunk, METH_VARARGS,
     "Fused trace replay + conflict accounting for one iteration chunk."},
    {"conflict_stats", conflict_stats, METH_VARARGS,
     "Bank-conflict accounting over a precomputed (count, m) bank matrix."},
    {"ltb_scan", ltb_scan, METH_VARARGS,
     "Exhaustive per-N LTB transform-vector search (lexicographic first hit)."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef native_module = {
    PyModuleDef_HEAD_INIT,
    "repro.native._native",
    "Compiled inner loops for the repro simulator and the LTB baseline.",
    -1,
    native_methods,
};

PyMODINIT_FUNC
PyInit__native(void)
{
    PyObject *module = PyModule_Create(&native_module);
    if (module == NULL)
        return NULL;
    if (PyModule_AddIntConstant(module, "ABI_VERSION", 1) < 0) {
        Py_DECREF(module);
        return NULL;
    }
    return module;
}
