"""Banked memory: the multi-bank storage fabric behind a partitioned array.

Combines a :class:`~repro.core.mapping.BankMapping` (the address math) with
a set of :class:`~repro.hw.bank.MemoryBank` instances (the storage and port
arbitration).  This is the software stand-in for the FPGA memory subsystem
the paper evaluates on: loading an array distributes elements across banks
via ``B(x)``/``F(x)``, and a *parallel read* of a pattern instance succeeds
in one cycle exactly when the partitioning solution is conflict-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.mapping import BankMapping
from ..errors import SimulationError
from .bank import MemoryBank


@dataclass
class ParallelReadResult:
    """Outcome of one pattern-instance read.

    Attributes
    ----------
    values:
        Element values in pattern-offset order.
    cycles:
        Cycles consumed (1 when conflict-free; ``δP + 1`` otherwise).
    banks_touched:
        Bank index per element, for diagnostics.
    """

    values: List[int]
    cycles: int
    banks_touched: List[int]


@dataclass
class BankedMemory:
    """A partitioned array materialized over physical banks.

    Attributes
    ----------
    mapping:
        Address translation (which bank / which offset).
    ports_per_bank:
        Paper assumes 1; raise it to model dual-port BRAM.
    """

    mapping: BankMapping
    ports_per_bank: int = 1
    banks: List[MemoryBank] = field(default_factory=list, repr=False)
    _cycle: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.ports_per_bank < 1:
            raise SimulationError(
                f"ports_per_bank must be positive, got {self.ports_per_bank}"
            )
        # Wide-bank solutions carry their own bandwidth requirement.
        self.ports_per_bank = max(self.ports_per_bank, self.mapping.solution.bank_ports)
        self.banks = [
            MemoryBank(index=b, size=self.mapping.bank_size(b), ports=self.ports_per_bank)
            for b in range(self.mapping.n_banks)
        ]

    # -- bulk load/store ------------------------------------------------------

    def load_array(self, array: "np.ndarray") -> None:
        """Distribute a full array across the banks (no cycle accounting)."""
        data = np.asarray(array)
        if data.shape != self.mapping.shape:
            raise SimulationError(
                f"array shape {data.shape} does not match mapping shape "
                f"{self.mapping.shape}"
            )
        for element in self.mapping.iter_elements():
            bank, offset = self.mapping.address_of(element)
            self.banks[bank].poke(offset, int(data[element]))

    def dump_array(self) -> "np.ndarray":
        """Reassemble the original array from the banks (verification)."""
        out = np.zeros(self.mapping.shape, dtype=np.int64)
        for element in self.mapping.iter_elements():
            bank, offset = self.mapping.address_of(element)
            value = self.banks[bank].peek(offset)
            if value is None:
                raise SimulationError(f"element {element} was never loaded")
            out[element] = value
        return out

    # -- cycle-accounted access ---------------------------------------------------

    @property
    def cycle(self) -> int:
        """Current simulation cycle."""
        return self._cycle

    def advance(self, cycles: int = 1) -> None:
        """Advance the clock."""
        if cycles < 1:
            raise SimulationError(f"must advance by at least 1 cycle, got {cycles}")
        self._cycle += cycles

    def read_element(self, element: Sequence[int]) -> int:
        """Single-element read in the current cycle (port-arbitrated)."""
        bank, offset = self.mapping.address_of(element)
        value = self.banks[bank].read(offset, self._cycle)
        if value is None:
            raise SimulationError(f"read of uninitialized element {tuple(element)}")
        return value

    def write_element(self, element: Sequence[int], value: int) -> None:
        """Single-element write in the current cycle (port-arbitrated)."""
        bank, offset = self.mapping.address_of(element)
        self.banks[bank].write(offset, value, self._cycle)

    def parallel_read(self, elements: Sequence[Sequence[int]]) -> ParallelReadResult:
        """Read a set of elements with minimal cycles, like banked hardware.

        Elements whose banks have free ports are served in the current
        cycle; the remainder retries next cycle, and so on.  The cycle
        count therefore *measures* ``δP + 1`` instead of trusting the
        solver's claim.
        """
        pending: List[Tuple[int, Sequence[int]]] = list(enumerate(elements))
        values: List[Optional[int]] = [None] * len(pending)
        banks_touched: List[int] = [0] * len(pending)
        cycles = 0
        while pending:
            cycles += 1
            still_pending: List[Tuple[int, Sequence[int]]] = []
            for position, element in pending:
                bank, offset = self.mapping.address_of(element)
                banks_touched[position] = bank
                if self.banks[bank].try_claim(self._cycle):
                    value = self.banks[bank].peek(offset)
                    if value is None:
                        raise SimulationError(
                            f"read of uninitialized element {tuple(element)}"
                        )
                    values[position] = value
                else:
                    still_pending.append((position, element))
            pending = still_pending
            self.advance()
        if any(v is None for v in values):  # pragma: no cover - defensive
            raise SimulationError("parallel read terminated with unresolved elements")
        return ParallelReadResult(
            values=[int(v) for v in values],  # type: ignore[arg-type]
            cycles=cycles,
            banks_touched=banks_touched,
        )

    def read_pattern(self, offset: Sequence[int]) -> ParallelReadResult:
        """Read the solution's pattern at loop offset ``offset``."""
        pattern = self.mapping.solution.pattern.translated(offset)
        return self.parallel_read(list(pattern.offsets))

    # -- reporting -----------------------------------------------------------------

    def utilization(self) -> Dict[int, float]:
        """Fraction of each bank's slots holding real (non-padding) data."""
        return {
            bank.index: (bank.occupancy / bank.size if bank.size else 0.0)
            for bank in self.banks
        }

    def conflict_counts(self) -> Dict[int, int]:
        """Per-bank failed-claim tallies from the arbitration counters."""
        return {bank.index: bank.conflicts for bank in self.banks}

    def access_counts(self) -> Dict[int, int]:
        """Per-bank served-access tallies (load balance of a finished run)."""
        return {bank.index: bank.accesses for bank in self.banks}

    @property
    def total_conflicts(self) -> int:
        """Port-conflict events across all banks (from try_claim retries)."""
        return sum(bank.conflicts for bank in self.banks)

    @property
    def total_slots(self) -> int:
        return sum(bank.size for bank in self.banks)
