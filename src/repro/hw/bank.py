"""Single memory-bank model with port arbitration.

A bank is a linear store with a fixed number of ports (bandwidth ``B`` in
the paper's terms; the paper assumes ``B = 1`` and notes wider banks can be
modelled by combining banks).  The model tracks per-cycle port usage so the
simulator can detect conflicts: issuing more accesses to a bank than it has
ports in one cycle is exactly the event that inflates the initiation
interval.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import SimulationError


@dataclass
class MemoryBank:
    """One physical memory bank.

    Attributes
    ----------
    index:
        Bank number within its :class:`~repro.hw.banked_memory.BankedMemory`.
    size:
        Number of element slots.
    ports:
        Accesses the bank can serve per cycle (paper: 1).
    """

    index: int
    size: int
    ports: int = 1
    _data: List[Optional[int]] = field(default_factory=list, repr=False)
    _busy_cycle: int = field(default=-1, repr=False)
    _busy_count: int = field(default=0, repr=False)
    #: Total accesses served, for utilization reporting.
    accesses: int = 0
    #: Conflict events (access attempts beyond port capacity in a cycle).
    conflicts: int = 0

    def __post_init__(self) -> None:
        if self.size < 0:
            raise SimulationError(f"bank size must be non-negative, got {self.size}")
        if self.ports < 1:
            raise SimulationError(f"bank needs at least one port, got {self.ports}")
        self._data = [None] * self.size

    def _check_offset(self, offset: int) -> None:
        if not 0 <= offset < self.size:
            raise SimulationError(
                f"offset {offset} out of range for bank {self.index} of size {self.size}"
            )

    def _arbitrate(self, cycle: int) -> bool:
        """Claim a port in ``cycle``; False (and a conflict tally) if full."""
        if cycle != self._busy_cycle:
            self._busy_cycle = cycle
            self._busy_count = 0
        if self._busy_count >= self.ports:
            self.conflicts += 1
            return False
        self._busy_count += 1
        self.accesses += 1
        return True

    def read(self, offset: int, cycle: int) -> Optional[int]:
        """Read ``offset`` during ``cycle``.

        Raises :class:`SimulationError` if the bank has no free port this
        cycle — the caller (the banked-memory scheduler) is responsible for
        never over-subscribing a bank; a raise here means the partitioning
        solution was invalid.
        """
        self._check_offset(offset)
        if not self._arbitrate(cycle):
            raise SimulationError(
                f"bank {self.index} port conflict at cycle {cycle} "
                f"({self.ports} ports, offset {offset})"
            )
        return self._data[offset]

    def write(self, offset: int, value: int, cycle: int) -> None:
        """Write ``value`` to ``offset`` during ``cycle`` (port-arbitrated)."""
        self._check_offset(offset)
        if not self._arbitrate(cycle):
            raise SimulationError(
                f"bank {self.index} port conflict at cycle {cycle} (write)"
            )
        self._data[offset] = int(value)

    def try_claim(self, cycle: int) -> bool:
        """Non-raising arbitration used by the conflict-measuring simulator."""
        return self._arbitrate(cycle)

    def peek(self, offset: int) -> Optional[int]:
        """Read without arbitration (debug/verification only)."""
        self._check_offset(offset)
        return self._data[offset]

    def poke(self, offset: int, value: int) -> None:
        """Write without arbitration (initialization only)."""
        self._check_offset(offset)
        self._data[offset] = int(value)

    @property
    def occupancy(self) -> int:
        """Slots currently holding data."""
        return sum(1 for v in self._data if v is not None)
