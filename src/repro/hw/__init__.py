"""Hardware models: BRAM primitives, banks, banked memory, resources."""

from .bank import MemoryBank
from .energy import (
    EnergyModel,
    EnergyReport,
    banked_sweep_energy,
    duplicated_sweep_energy,
    monolithic_sweep_energy,
)
from .memory_system import MemorySystem, Transaction, TransactionResult
from .netlist import (
    NetlistSpec,
    generate_address_logic,
    generate_bank_module,
    generate_netlist,
    netlist_stats,
)
from .banked_memory import BankedMemory, ParallelReadResult
from .bram import (
    DEFAULT_ELEMENT_BITS,
    M9K,
    M9K_BITS,
    BlockRAM,
    overhead_blocks,
)
from .platform import DE2_115, Platform
from .resources import (
    ResourceEstimate,
    address_bits,
    estimate_resources,
    modulo_cost,
    mux_cost,
)

__all__ = [
    "MemoryBank",
    "EnergyModel",
    "EnergyReport",
    "banked_sweep_energy",
    "duplicated_sweep_energy",
    "monolithic_sweep_energy",
    "MemorySystem",
    "Transaction",
    "TransactionResult",
    "NetlistSpec",
    "generate_address_logic",
    "generate_bank_module",
    "generate_netlist",
    "netlist_stats",
    "BankedMemory",
    "ParallelReadResult",
    "DEFAULT_ELEMENT_BITS",
    "M9K",
    "M9K_BITS",
    "BlockRAM",
    "overhead_blocks",
    "DE2_115",
    "Platform",
    "ResourceEstimate",
    "address_bits",
    "estimate_resources",
    "modulo_cost",
    "mux_cost",
]
