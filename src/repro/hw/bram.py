"""Block-RAM primitive model (Cyclone-style M9K blocks).

The paper measures storage overhead "in the number of 9kb memory blocks" on
a Cyclone DE2-115.  An M9K block holds 9216 bits and can be configured in
several width modes (×1 … ×36, the wider modes trading depth for width).
The functions here convert element counts to block counts the way a
synthesis tool would: each bank is carved out of an integral number of
blocks wide and deep enough for its word width and depth.

Table 1 is reproduced with 16-bit elements and the simple capacity model
``blocks = ⌈bits / 9216⌉``, which matches most published cells exactly
(per-cell comparison in EXPERIMENTS.md).  The width-aware model
(:meth:`BlockRAM.blocks_for`) is provided for users who want the stricter
geometry-respecting count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from ..errors import HardwareModelError

#: Bits per M9K block on Cyclone-series devices.
M9K_BITS = 9216

#: Default element width used by the paper reproduction (16-bit pixels).
DEFAULT_ELEMENT_BITS = 16

#: M9K width modes: data width → maximum depth (Cyclone IV datasheet).
M9K_MODES: Dict[int, int] = {
    1: 8192,
    2: 4096,
    4: 2048,
    8: 1024,
    9: 1024,
    16: 512,
    18: 512,
    32: 256,
    36: 256,
}


@dataclass(frozen=True)
class BlockRAM:
    """A block-RAM primitive type.

    Attributes
    ----------
    bits:
        Raw capacity per block.
    modes:
        Width → depth configurations the primitive supports.
    name:
        Primitive family name, e.g. ``"M9K"``.
    """

    bits: int = M9K_BITS
    modes: Tuple[Tuple[int, int], ...] = tuple(sorted(M9K_MODES.items()))
    name: str = "M9K"

    def __post_init__(self) -> None:
        if self.bits <= 0:
            raise HardwareModelError(f"block capacity must be positive, got {self.bits}")
        for width, depth in self.modes:
            if width <= 0 or depth <= 0:
                raise HardwareModelError(
                    f"invalid mode (width={width}, depth={depth}) for {self.name}"
                )

    def capacity_blocks(self, elements: int, element_bits: int = DEFAULT_ELEMENT_BITS) -> int:
        """Pure-capacity block count: ``⌈elements·bits / block_bits⌉``.

        This is the model used for Table 1 (see module docstring).
        """
        if elements < 0:
            raise HardwareModelError(f"element count must be non-negative, got {elements}")
        if element_bits <= 0:
            raise HardwareModelError(f"element width must be positive, got {element_bits}")
        return math.ceil(elements * element_bits / self.bits)

    def best_mode(self, element_bits: int) -> Tuple[int, int]:
        """The narrowest mode at least as wide as one element.

        Wider elements span multiple blocks side by side; the mode chosen
        is the widest available, minimizing the parallel block count.
        """
        widths = sorted(w for w, _ in self.modes)
        for width in widths:
            if width >= element_bits:
                return width, dict(self.modes)[width]
        # Element wider than any mode: use the widest and gang blocks.
        widest = widths[-1]
        return widest, dict(self.modes)[widest]

    def blocks_for(
        self, depth: int, element_bits: int = DEFAULT_ELEMENT_BITS
    ) -> int:
        """Geometry-aware block count for one bank of ``depth`` elements.

        A bank needs ``⌈element_bits / mode_width⌉`` blocks in parallel for
        width and ``⌈depth / mode_depth⌉`` ranks for depth.
        """
        if depth < 0:
            raise HardwareModelError(f"depth must be non-negative, got {depth}")
        if depth == 0:
            return 0
        mode_width, mode_depth = self.best_mode(element_bits)
        lanes = math.ceil(element_bits / mode_width)
        ranks = math.ceil(depth / mode_depth)
        return lanes * ranks


#: The default primitive used throughout the reproduction.
M9K = BlockRAM()


def overhead_blocks(
    overhead_elements: int,
    element_bits: int = DEFAULT_ELEMENT_BITS,
    block: BlockRAM = M9K,
) -> int:
    """Convert a padding overhead in elements to 9 kb memory blocks.

    >>> overhead_blocks(640)
    2
    >>> overhead_blocks(5450)
    10
    """
    return block.capacity_blocks(overhead_elements, element_bits)
