"""First-order memory energy model for banking decisions.

Banking affects energy through two standard mechanisms:

* **Smaller banks are cheaper to access.**  SRAM read energy grows with
  the array's bit-line/word-line lengths; a common first-order model makes
  per-access energy proportional to ``sqrt(rows × cols)`` of the accessed
  macro.  Splitting one big array into N banks divides each access's cost.
* **Idle banks leak.**  Static power is proportional to total allocated
  bits, so padding overhead and duplication have a standing cost even when
  never accessed.

The model is deliberately coarse (no technology constants beyond two
normalization factors) but monotone in everything a banking decision
controls, which is all the comparative benchmarks need: it reproduces the
qualitative claim motivating partitioning over duplication and over
monolithic multi-porting (paper Section 1 and refs [7], [8]).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.mapping import BankMapping
from ..errors import HardwareModelError


@dataclass(frozen=True)
class EnergyModel:
    """Technology-ish constants for the first-order model.

    Attributes
    ----------
    read_unit:
        Energy per access to a 1-element bank (arbitrary units).
    leak_unit:
        Static energy per element per cycle.
    port_penalty:
        Multiplicative cost per extra port: an ``R``-ported SRAM cell is
        roughly ``1 + port_penalty · (R − 1)`` times larger/hungrier
        (Tatsumi & Mattausch, the paper's ref [8], measured quadratic
        growth in *area*; we use the linear energy proxy).
    """

    read_unit: float = 1.0
    leak_unit: float = 1e-4
    port_penalty: float = 0.8

    def __post_init__(self) -> None:
        if self.read_unit <= 0 or self.leak_unit < 0 or self.port_penalty < 0:
            raise HardwareModelError("energy model constants must be non-negative")

    def access_energy(self, bank_elements: int, ports: int = 1) -> float:
        """Energy for one access to a bank of the given size."""
        if bank_elements < 1:
            raise HardwareModelError(f"bank must hold >= 1 element, got {bank_elements}")
        if ports < 1:
            raise HardwareModelError(f"ports must be positive, got {ports}")
        port_factor = 1.0 + self.port_penalty * (ports - 1)
        return self.read_unit * math.sqrt(bank_elements) * port_factor

    def leakage_energy(self, total_elements: int, cycles: int) -> float:
        """Static energy over a run."""
        if total_elements < 0 or cycles < 0:
            raise HardwareModelError("leakage inputs must be non-negative")
        return self.leak_unit * total_elements * cycles


@dataclass(frozen=True)
class EnergyReport:
    """Energy of one sweep through a workload.

    Attributes
    ----------
    dynamic:
        Total access energy.
    leakage:
        Total static energy.
    """

    dynamic: float
    leakage: float

    @property
    def total(self) -> float:
        return self.dynamic + self.leakage


def banked_sweep_energy(
    mapping: BankMapping,
    iterations: int,
    model: EnergyModel | None = None,
) -> EnergyReport:
    """Energy of sweeping the mapping's pattern ``iterations`` times.

    Each iteration reads every pattern element once from its (small) bank;
    the run lasts ``iterations · (δP + 1)`` cycles of leakage on the full
    allocated footprint.
    """
    if iterations < 1:
        raise HardwareModelError(f"iterations must be positive, got {iterations}")
    model = model or EnergyModel()
    solution = mapping.solution
    per_read = model.access_energy(mapping.inner_bank_size, solution.bank_ports)
    dynamic = per_read * solution.pattern.size * iterations
    cycles = iterations * (solution.delta_ii + 1)
    leakage = model.leakage_energy(mapping.total_bank_elements, cycles)
    return EnergyReport(dynamic=dynamic, leakage=leakage)


def monolithic_sweep_energy(
    total_elements: int,
    pattern_size: int,
    iterations: int,
    ports: int = 1,
    model: EnergyModel | None = None,
) -> EnergyReport:
    """Energy with one big memory serving the same sweep.

    With ``ports`` ports, each iteration needs ``⌈m/ports⌉`` cycles and
    every access pays the full-array cost; a genuinely multi-ported macro
    additionally pays the port penalty on every access.
    """
    if min(total_elements, pattern_size, iterations, ports) < 1:
        raise HardwareModelError("all monolithic-energy inputs must be positive")
    model = model or EnergyModel()
    per_read = model.access_energy(total_elements, ports)
    dynamic = per_read * pattern_size * iterations
    cycles = iterations * math.ceil(pattern_size / ports)
    leakage = model.leakage_energy(total_elements, cycles)
    return EnergyReport(dynamic=dynamic, leakage=leakage)


def duplicated_sweep_energy(
    total_elements: int,
    pattern_size: int,
    iterations: int,
    model: EnergyModel | None = None,
) -> EnergyReport:
    """Energy with one full array copy per reader (paper ref [4]).

    Reads are single-cycle, but every copy is a full-size macro: each of
    the ``m`` reads pays the full-array access cost, and leakage covers
    ``m`` copies.
    """
    if min(total_elements, pattern_size, iterations) < 1:
        raise HardwareModelError("all duplication-energy inputs must be positive")
    model = model or EnergyModel()
    per_read = model.access_energy(total_elements, 1)
    dynamic = per_read * pattern_size * iterations
    leakage = model.leakage_energy(total_elements * pattern_size, iterations)
    return EnergyReport(dynamic=dynamic, leakage=leakage)
