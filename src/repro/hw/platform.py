"""FPGA platform descriptions.

The paper's hardware experiments target a Cyclone DE2-115 board (Cyclone IV
EP4CE115).  A :class:`Platform` bundles the BRAM primitive and device
capacities so the evaluation harness can flag solutions that would not fit,
and so resource estimates can be normalized to device fractions.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import HardwareModelError
from .bram import M9K, BlockRAM
from .resources import ResourceEstimate


@dataclass(frozen=True)
class Platform:
    """A target FPGA device.

    Attributes
    ----------
    name:
        Device/board label.
    block:
        BRAM primitive available on the device.
    total_blocks:
        Number of BRAM primitives on the device.
    total_luts:
        Logic elements (LUT4-equivalents).
    total_multipliers:
        Hard 9×9 multiplier count.
    """

    name: str
    block: BlockRAM
    total_blocks: int
    total_luts: int
    total_multipliers: int

    def __post_init__(self) -> None:
        if min(self.total_blocks, self.total_luts, self.total_multipliers) < 0:
            raise HardwareModelError(f"negative capacity in platform {self.name}")

    def fits(self, estimate: ResourceEstimate) -> bool:
        """Whether an estimate fits on the device."""
        return (
            estimate.memory_blocks <= self.total_blocks
            and estimate.total_luts <= self.total_luts
            and estimate.multipliers <= self.total_multipliers
        )

    def utilization(self, estimate: ResourceEstimate) -> dict:
        """Per-resource utilization fractions."""
        return {
            "blocks": estimate.memory_blocks / self.total_blocks if self.total_blocks else 0.0,
            "luts": estimate.total_luts / self.total_luts if self.total_luts else 0.0,
            "multipliers": (
                estimate.multipliers / self.total_multipliers
                if self.total_multipliers
                else 0.0
            ),
        }


#: The paper's board: Cyclone IV EP4CE115 (DE2-115).
DE2_115 = Platform(
    name="Cyclone DE2-115 (EP4CE115)",
    block=M9K,
    total_blocks=432,
    total_luts=114480,
    total_multipliers=532,
)
