"""Multi-array memory system: several banked arrays behind one clock.

A real accelerator kernel owns more than one array — the LoG detector
reads ``X`` and writes ``Y`` every iteration.  :class:`MemorySystem`
manages one :class:`~repro.hw.banked_memory.BankedMemory` per array on a
shared cycle counter, so a pipeline's per-iteration transaction (m reads
from one array + 1 write to another) can be issued as a unit and its true
cycle cost measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from ..core.mapping import BankMapping
from ..errors import SimulationError
from .banked_memory import BankedMemory


@dataclass(frozen=True)
class Transaction:
    """One loop iteration's memory traffic.

    Attributes
    ----------
    reads:
        array name → element coordinates to read this iteration.
    writes:
        array name → (element, value) pairs to store this iteration.
    """

    reads: Tuple[Tuple[str, Tuple[Tuple[int, ...], ...]], ...] = ()
    writes: Tuple[Tuple[str, Tuple[Tuple[Tuple[int, ...], int], ...]], ...] = ()

    @staticmethod
    def make(
        reads: Mapping[str, Sequence[Sequence[int]]] | None = None,
        writes: Mapping[str, Sequence[Tuple[Sequence[int], int]]] | None = None,
    ) -> "Transaction":
        read_part = tuple(
            (name, tuple(tuple(int(c) for c in e) for e in elements))
            for name, elements in (reads or {}).items()
        )
        write_part = tuple(
            (
                name,
                tuple(
                    (tuple(int(c) for c in e), int(v)) for e, v in pairs
                ),
            )
            for name, pairs in (writes or {}).items()
        )
        return Transaction(reads=read_part, writes=write_part)


@dataclass(frozen=True)
class TransactionResult:
    """Outcome of one transaction.

    Attributes
    ----------
    values:
        array name → values read, in request order.
    cycles:
        Cycles the transaction needed (max across arrays; arrays operate
        in parallel, conflicts within one array serialize).
    """

    values: Dict[str, List[int]]
    cycles: int


@dataclass
class MemorySystem:
    """Several banked arrays sharing one clock.

    Attributes
    ----------
    mappings:
        array name → address mapping.  One :class:`BankedMemory` is built
        per array.
    """

    mappings: Dict[str, BankMapping]
    memories: Dict[str, BankedMemory] = field(default_factory=dict, repr=False)
    _cycle: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if not self.mappings:
            raise SimulationError("a memory system needs at least one array")
        self.memories = {
            name: BankedMemory(mapping=mapping)
            for name, mapping in self.mappings.items()
        }

    def _memory(self, name: str) -> BankedMemory:
        if name not in self.memories:
            raise SimulationError(
                f"unknown array {name!r}; system has {sorted(self.memories)}"
            )
        return self.memories[name]

    @property
    def cycle(self) -> int:
        return self._cycle

    def load(self, name: str, array: "np.ndarray") -> None:
        """Initialize one array's contents (no cycle accounting)."""
        self._memory(name).load_array(array)

    def dump(self, name: str) -> "np.ndarray":
        """Reassemble one array from its banks."""
        return self._memory(name).dump_array()

    def execute(self, transaction: Transaction) -> TransactionResult:
        """Issue one transaction; all arrays start in the same cycle.

        Each array resolves its own traffic with port arbitration (reads
        and writes to the same array compete for the same ports); the
        transaction's cycle cost is the slowest array's cost.  The shared
        clock then advances by that amount so back-to-back transactions
        never overlap — a conservative (non-overlapped) pipeline model.
        """
        start = self._cycle
        values: Dict[str, List[int]] = {}
        worst = 1

        for name, elements in transaction.reads:
            memory = self._memory(name)
            memory._cycle = start
            result = memory.parallel_read(list(elements))
            values[name] = result.values
            worst = max(worst, result.cycles)

        for name, pairs in transaction.writes:
            memory = self._memory(name)
            memory._cycle = start
            cycles = self._write_all(memory, pairs)
            worst = max(worst, cycles)

        self._cycle = start + worst
        for memory in self.memories.values():
            memory._cycle = self._cycle
        return TransactionResult(values=values, cycles=worst)

    @staticmethod
    def _write_all(memory: BankedMemory, pairs) -> int:
        """Issue writes with retry-next-cycle arbitration; returns cycles."""
        pending = list(pairs)
        cycles = 0
        while pending:
            cycles += 1
            still = []
            for element, value in pending:
                bank, offset = memory.mapping.address_of(element)
                if memory.banks[bank].try_claim(memory.cycle):
                    memory.banks[bank].poke(offset, value)
                else:
                    still.append((element, value))
            pending = still
            memory.advance()
        return max(cycles, 1)

    def total_conflicts(self) -> int:
        return sum(memory.total_conflicts for memory in self.memories.values())
