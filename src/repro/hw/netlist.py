"""Structural Verilog generation for a banked memory subsystem.

Emits the RTL an HLS memory-partitioning pass would instantiate: one BRAM
per bank, per-lane address generators computing ``B(x)``/``F(x)``, and the
read steering network.  The output is plain synthesizable-style Verilog
2001 (behavioural BRAM template + combinational address/steering logic);
it is not simulated here, but the address arithmetic is string-generated
from the very :class:`~repro.core.mapping.BankMapping` the Python
simulator validates, and the module's structural facts (instance counts,
port widths) are machine-checked by tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from ..core.mapping import BankMapping
from ..errors import HardwareModelError


def _clog2(value: int) -> int:
    """Ceiling log2 with the Verilog convention ``clog2(1) = 1``."""
    if value < 1:
        raise HardwareModelError(f"clog2 needs a positive value, got {value}")
    return max(1, math.ceil(math.log2(value)))


@dataclass(frozen=True)
class NetlistSpec:
    """Parameters of one generated banked-memory module.

    Attributes
    ----------
    mapping:
        The address mapping to realize.
    module_name:
        Verilog module name.
    data_width:
        Element width in bits.
    lanes:
        Parallel read ports (defaults to the pattern size ``m``).
    """

    mapping: BankMapping
    module_name: str = "banked_memory"
    data_width: int = 16
    lanes: int = 0

    def __post_init__(self) -> None:
        if self.data_width < 1:
            raise HardwareModelError(f"data_width must be positive, got {self.data_width}")
        if self.lanes < 0:
            raise HardwareModelError(f"lanes must be non-negative, got {self.lanes}")
        if self.lanes == 0:
            object.__setattr__(self, "lanes", self.mapping.solution.pattern.size)

    @property
    def coord_widths(self) -> List[int]:
        return [_clog2(w) for w in self.mapping.shape]

    @property
    def bank_addr_width(self) -> int:
        return _clog2(max(self.mapping.bank_size(b) for b in range(self.mapping.n_banks)))

    @property
    def bank_sel_width(self) -> int:
        return _clog2(self.mapping.n_banks)


def _alpha_sum(spec: NetlistSpec, lane: int) -> str:
    alpha = spec.mapping.solution.transform.alpha
    terms = []
    for dim, coeff in enumerate(alpha):
        if coeff == 0:
            continue
        name = f"x{dim}_{lane}"
        terms.append(name if coeff == 1 else f"{coeff} * {name}")
    return " + ".join(terms) if terms else "0"


def generate_bank_module(spec: NetlistSpec) -> str:
    """The per-bank BRAM template (single-port behavioural pattern)."""
    return "\n".join(
        [
            f"module {spec.module_name}_bank #(",
            f"    parameter DEPTH = 16,",
            f"    parameter AW = {spec.bank_addr_width},",
            f"    parameter DW = {spec.data_width}",
            ") (",
            "    input  wire          clk,",
            "    input  wire          we,",
            "    input  wire [AW-1:0] addr,",
            "    input  wire [DW-1:0] wdata,",
            "    output reg  [DW-1:0] rdata",
            ");",
            "    reg [DW-1:0] mem [0:DEPTH-1];",
            "    always @(posedge clk) begin",
            "        if (we) mem[addr] <= wdata;",
            "        rdata <= mem[addr];",
            "    end",
            "endmodule",
        ]
    )


def generate_address_logic(spec: NetlistSpec) -> str:
    """Combinational ``B(x)``/``F(x)`` per read lane."""
    mapping = spec.mapping
    solution = mapping.solution
    n = solution.n_banks
    inner = mapping._inner_banks
    k = mapping.rows_per_bank
    lines: List[str] = []
    for lane in range(spec.lanes):
        dot = _alpha_sum(spec, lane)
        lines.append(f"    // lane {lane}: B(x) and F(x)")
        lines.append(f"    wire [31:0] dot_{lane} = {dot};")
        if solution.scheme == "two-level":
            lines.append(
                f"    assign bank_{lane} = (dot_{lane} % {solution.n_unconstrained}) % {n};"
            )
        elif solution.scheme == "wide":
            lines.append(
                f"    assign bank_{lane} = (dot_{lane} % {solution.n_unconstrained}) / {solution.bank_ports};"
            )
        else:
            lines.append(f"    assign bank_{lane} = dot_{lane} % {n};")
        lines.append(
            f"    wire [31:0] xnew_{lane} = (dot_{lane} % {k * inner}) / {inner};"
        )
        # Row-major ravel over (w_0, ..., w_{n-2}, K).
        bank_shape = mapping.bank_shape
        expr = f"xnew_{lane}"
        for dim in range(mapping.ndim - 2, -1, -1):
            stride = 1
            for w in bank_shape[dim + 1 :]:
                stride *= w
            expr = f"x{dim}_{lane} * {stride} + {expr}"
        if solution.scheme in ("two-level", "wide"):
            if solution.scheme == "two-level":
                sub = f"(dot_{lane} % {solution.n_unconstrained}) / {n}"
            else:
                sub = f"(dot_{lane} % {solution.n_unconstrained}) % {solution.bank_ports}"
            expr = f"({sub}) * {mapping.inner_bank_size} + {expr}"
        lines.append(f"    assign offset_{lane} = {expr};")
    return "\n".join(lines)


def generate_steering(spec: NetlistSpec) -> str:
    """Read-data steering: lane ← its selected bank's output."""
    lines: List[str] = []
    n = spec.mapping.n_banks
    for lane in range(spec.lanes):
        cases = " : ".join(
            [f"(bank_{lane} == {b}) ? bank_rdata[{b}]" for b in range(n)]
            + ["{DW{1'b0}}"]
        )
        lines.append(f"    assign rdata_{lane} = {cases};")
    return "\n".join(lines)


def generate_netlist(spec: NetlistSpec) -> str:
    """The full banked-memory module plus its bank template."""
    mapping = spec.mapping
    n = mapping.n_banks
    ndim = mapping.ndim
    ports: List[str] = ["    input  wire clk"]
    for lane in range(spec.lanes):
        for dim in range(ndim):
            ports.append(
                f"    input  wire [{spec.coord_widths[dim] - 1}:0] x{dim}_{lane}"
            )
        ports.append(f"    output wire [DW-1:0] rdata_{lane}")

    decls = [
        f"    localparam DW = {spec.data_width};",
        f"    wire [DW-1:0] bank_rdata [0:{n - 1}];",
    ]
    for lane in range(spec.lanes):
        decls.append(f"    wire [{spec.bank_sel_width - 1}:0] bank_{lane};")
        decls.append(f"    wire [{spec.bank_addr_width - 1}:0] offset_{lane};")

    instances: List[str] = []
    for b in range(n):
        instances.append(
            "\n".join(
                [
                    f"    {spec.module_name}_bank #(",
                    f"        .DEPTH({mapping.bank_size(b)}),",
                    f"        .AW({spec.bank_addr_width}),",
                    f"        .DW({spec.data_width})",
                    f"    ) u_bank{b} (",
                    "        .clk(clk),",
                    "        .we(1'b0),",
                    f"        .addr(offset_0),",  # write path elided: read-only fabric
                    "        .wdata({DW{1'b0}}),",
                    f"        .rdata(bank_rdata[{b}])",
                    "    );",
                ]
            )
        )

    module = "\n".join(
        [
            f"// generated by repro.hw.netlist — {n} banks, "
            f"{spec.lanes} read lanes, alpha={mapping.solution.transform.alpha}",
            f"module {spec.module_name} (",
            ",\n".join(ports),
            ");",
            "\n".join(decls),
            generate_address_logic(spec),
            generate_steering(spec),
            "\n".join(instances),
            "endmodule",
        ]
    )
    return generate_bank_module(spec) + "\n\n" + module


def netlist_stats(verilog: str) -> dict:
    """Structural facts of a generated netlist (for machine checking)."""
    return {
        "modules": verilog.count("\nmodule ") + verilog.startswith("module "),
        "bank_instances": verilog.count(") u_bank"),
        "assigns": verilog.count("assign "),
        "lines": len(verilog.splitlines()),
    }
