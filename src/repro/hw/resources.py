"""FPGA resource estimation for a banking solution.

Beyond storage, the paper motivates the ``N_max`` constraint with the
hardware cost of many banks: "area, routing and control logic".  This
module estimates those costs with standard structural models so the
benchmark harness can plot the full trade-off:

* **Memory blocks** — per-bank geometry-aware BRAM count (each bank is an
  independent physical memory, so each rounds up separately).
* **Steering muxes** — each of the ``m`` read ports needs an ``N``-to-1
  element-wide multiplexer; a ``k``-to-1 w-bit mux costs about
  ``(k−1)·w`` LUT4-equivalents (2-input mux per bit per stage).
* **Address generators** — computing ``(α·x) % N`` per port: one
  multiplier per nonzero non-unit ``α_j``, adders to reduce, plus a modulo
  unit (a full divider unless ``N`` is a power of two, where it is free).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..core.mapping import BankMapping
from ..core.partition import PartitionSolution
from .bram import DEFAULT_ELEMENT_BITS, M9K, BlockRAM


@dataclass(frozen=True)
class ResourceEstimate:
    """Structural cost estimate for one banked-memory instance.

    Attributes
    ----------
    memory_blocks:
        Total BRAM primitives across banks (geometry-aware).
    mux_luts:
        LUT4-equivalents in the read steering network.
    addr_luts:
        LUT4-equivalents in per-port address generation.
    multipliers:
        Hard multipliers consumed by the address transform.
    """

    memory_blocks: int
    mux_luts: int
    addr_luts: int
    multipliers: int

    @property
    def total_luts(self) -> int:
        return self.mux_luts + self.addr_luts


def mux_cost(n_inputs: int, width: int) -> int:
    """LUT4-equivalents of an ``n``-to-1 ``width``-bit multiplexer."""
    if n_inputs < 1 or width < 1:
        raise ValueError(f"mux needs positive inputs/width, got {n_inputs}/{width}")
    return (n_inputs - 1) * width


def modulo_cost(modulus: int, operand_bits: int) -> int:
    """LUT cost of a ``% modulus`` unit on an ``operand_bits`` operand.

    Powers of two are free (bit slicing); otherwise model a subtractive
    divider at roughly ``operand_bits²`` LUTs — deliberately coarse, but
    monotone in the quantities a designer controls.
    """
    if modulus < 1:
        raise ValueError(f"modulus must be positive, got {modulus}")
    if modulus & (modulus - 1) == 0:
        return 0
    return operand_bits * operand_bits


def address_bits(shape: Sequence[int]) -> int:
    """Bits needed to index the flattened array."""
    total = 1
    for w in shape:
        total *= w
    return max(1, math.ceil(math.log2(total)))


def estimate_resources(
    mapping: BankMapping,
    element_bits: int = DEFAULT_ELEMENT_BITS,
    block: BlockRAM = M9K,
) -> ResourceEstimate:
    """Estimate the hardware cost of one banked array.

    The pattern size ``m`` sets the port count (one read lane per pattern
    element); the bank count sets mux fan-in and address modulo width.
    """
    solution: PartitionSolution = mapping.solution
    n = mapping.n_banks
    m = solution.pattern.size
    abits = address_bits(mapping.shape)

    memory_blocks = sum(
        block.blocks_for(mapping.bank_size(b), element_bits) for b in range(n)
    )

    # One N-to-1 mux per parallel read lane.
    mux_luts = m * mux_cost(n, element_bits)

    # Address generation per lane: multiplies for non-trivial alpha terms,
    # an adder tree, and the bank/offset modulo logic.
    alpha = solution.transform.alpha
    nontrivial = sum(1 for a in alpha if a not in (0, 1))
    adders = max(0, len(alpha) - 1)
    addr_luts = m * (adders * abits + modulo_cost(n, abits))
    if solution.scheme == "two-level":
        addr_luts += m * modulo_cost(solution.n_unconstrained, abits)
    multipliers = m * nontrivial

    return ResourceEstimate(
        memory_blocks=memory_blocks,
        mux_luts=mux_luts,
        addr_luts=addr_luts,
        multipliers=multipliers,
    )
