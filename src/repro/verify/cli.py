"""``repro-verify`` — the differential fuzzing entry point.

Examples::

    repro-verify --cases 500 --seed 0
    repro-verify --cases 500 --seed 42 --jobs 2 --corpus corpus.jsonl \\
        --counterexamples out/
    repro-verify --replay tests/corpus/verify_seed.jsonl
    repro-verify --replay out/counterexample-42-17.json

Exit status is 0 iff every oracle passed on every case; failing runs
print one line per failing case plus the shrunk counterexample (when
shrinking is enabled) so the log alone is enough to reproduce.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from .runner import SuiteReport, replay_paths, run_suite
from .shrink import DEFAULT_BUDGET


def _emit_metrics(path: Optional[str]) -> None:
    """Write the telemetry snapshot via the one shared serializer."""
    from ..obs.export import emit_metrics

    emit_metrics(path)


def _print_report(report: SuiteReport) -> None:
    summary = report.summary()
    print(
        f"verify: {summary['cases']} case(s), "
        f"{summary['failing_cases']} failing, "
        f"{summary['failures']} oracle failure(s) "
        f"in {summary['elapsed_s']:.3f}s"
    )
    if report.corpus_path:
        print(f"corpus written to {report.corpus_path}")
    for record in report.failing_records:
        case = record["case"]
        oracles = ", ".join(sorted({f["oracle"] for f in record["failures"]}))
        print(f"FAIL seed={case['seed']} index={case['index']} [{oracles}]")
        for failure in record["failures"]:
            print(f"  {failure['oracle']}: {failure['message']}")
    for artifact in report.counterexamples:
        print("shrunk counterexample:")
        print(json.dumps(artifact["shrunk"], sort_keys=True))
        print(f"  still fails {artifact['failure']['oracle']}: "
              f"{artifact['failure']['message']}")


def main_verify(argv: Sequence[str] | None = None) -> int:
    """Run (or replay) a seeded differential-fuzzing suite."""
    parser = argparse.ArgumentParser(
        description=(
            "Seeded differential fuzzing of the memory-partitioning stack: "
            "cross-checks solver, LTB engines, simulators, and closed-form "
            "properties on deterministic random cases."
        )
    )
    parser.add_argument(
        "--cases", type=int, default=200, metavar="N",
        help="number of generated cases (ignored with --replay; default 200)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="suite seed; the same seed enumerates the same cases anywhere",
    )
    parser.add_argument(
        "--start", type=int, default=0, metavar="INDEX",
        help="first case index (resume/shard a long suite)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (default: serial in-process)",
    )
    parser.add_argument(
        "--replay", nargs="+", default=None, metavar="PATH",
        help="re-run cases from corpus/counterexample/spec files instead of "
        "generating them",
    )
    parser.add_argument(
        "--corpus", default=None, metavar="PATH",
        help="write every case + verdict to PATH as JSONL",
    )
    parser.add_argument(
        "--counterexamples", default=None, metavar="DIR",
        help="write shrunk counterexample artifacts for failing cases to DIR",
    )
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="report failures raw, without counterexample minimization",
    )
    parser.add_argument(
        "--shrink-budget", type=int, default=DEFAULT_BUDGET, metavar="N",
        help=f"max oracle re-runs per shrink (default {DEFAULT_BUDGET})",
    )
    parser.add_argument(
        "--emit-metrics", metavar="PATH", default=None,
        help="write the telemetry snapshot to PATH (.json, .csv, or .prom)",
    )
    args = parser.parse_args(argv)

    if args.replay:
        report = replay_paths(
            args.replay, jobs=args.jobs, corpus_path=args.corpus
        )
    else:
        if args.cases < 0:
            raise SystemExit(f"--cases must be non-negative, got {args.cases}")
        report = run_suite(
            args.cases,
            args.seed,
            jobs=args.jobs,
            corpus_path=args.corpus,
            counterexample_dir=args.counterexamples,
            shrink=not args.no_shrink,
            shrink_budget=args.shrink_budget,
            start=args.start,
        )

    _print_report(report)
    _emit_metrics(args.emit_metrics)
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main_verify())
