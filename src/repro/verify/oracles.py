"""Property oracles checked on every fuzz case.

Each oracle is an independent judge of one claim the paper (or one of our
engines) makes.  They deliberately avoid calling the code path under test
to produce the expected value — expected values come from closed forms,
exhaustive enumeration, or a *different* implementation of the same
quantity:

``theorem1``
    The derived ``α`` separates the pattern (distinct ``z`` values) and
    ``N_f >= m`` (no fewer banks can serve ``m`` parallel reads).
``conflict_free``
    A ``δ(II) = 0`` claim is checked on **exhaustive loop offsets**: for
    every shift class of ``α·s`` the pattern's bank indices are pairwise
    distinct.
``delta_claim``
    The claimed ``δ(II)`` matches the worst bank load over all shift
    classes — exact for direct-scheme solutions, an upper bound for the
    two-level fold (whose conflict count varies with the offset).
``nf_minimal``
    Brute force: every ``N in [m, N_f)`` has a colliding residue pair, so
    Algorithm 1's answer is minimal for this ``α``; constrained same-size
    solutions must match an independently recomputed ``δP|N`` sweep.
``mapping``
    ``F(x)`` is injective within each bank (exhaustive over the array),
    only the **last** dimension is padded, and the storage overhead equals
    the Section 4.4 closed form.
``sim_differential``
    The scalar (``hw.banked_memory`` replay), vectorized, and — when the
    compiled extension is built — native simulation engines produce
    bit-identical reports, and the measured ``δ(II)`` agrees with the
    solver's claim (equality for direct solutions, bounded above for
    two-level).
``ltb_differential``
    On small instances, every LTB search engine (scalar, vectorized, and
    native when built) returns the same first-hit vector, the same
    ``vectors_tried``/``candidates_tried`` and identical op charges (or
    fails identically), and LTB's minimum never exceeds our ``N_f``.
``symmetry_reflection`` / ``symmetry_permutation`` / ``symmetry_composed``
    The solve cache's symmetry quotient (translation × per-axis reflection
    × leading-axis permutation, :func:`repro.core.cache.canonicalize`) is
    checked per claimed invariance: every orbit member canonicalizes to
    the same representative and ``canonical_key``, its solve invariants
    (``N``, ``N_f``, ``δ``, scheme) are orbit-constant, the mapped-back
    solution is valid **in the variant's own frame** (separation,
    exhaustive-shift ``δ`` exactness, Section 4.4 bijectivity), and a
    simulated cache hit — canonical solve mapped back through the
    variant's :class:`~repro.core.cache.SymmetryOp` — is field-for-field
    identical to a cold solve of the variant.  ``symmetry_permutation``
    is not applicable below 3-D (the innermost-fixing subgroup is
    trivial there).

Oracles return a list of human-readable failure messages (empty = pass);
the runner wraps unexpected exceptions as ``crash`` failures, so a raising
solver is a caught defect, not a broken fuzzer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..baselines.ltb import ltb_partition
from ..core.cache import canonical_key, canonicalize
from ..core.mapping import BankMapping, build_mapping, ours_overhead_elements
from ..core.opcount import OpCounter
from ..core.partition import PartitionSolution, partition
from ..core.pattern import Pattern
from ..core.solver import Objective, _solve_impl, solve
from ..errors import PartitioningError, ReproError
from ..sim.memsim import simulate_sweep
from .gen import CaseSpec, symmetry_variants

#: Iteration cap for the differential simulation (conflict structure is
#: shift-periodic, so a bounded prefix of the sweep already covers every
#: residue class the full sweep would).
SIM_LIMIT = 96

#: Cost guard for the LTB exhaustive search: only instances whose scalar
#: enumeration is provably tiny run the differential (size**(ndim+2) grows
#: past any budget fast).
LTB_MAX_SIZE = 5
LTB_MAX_NDIM = 3
LTB_EXTRA_BANKS = 4


@dataclass(frozen=True)
class OracleFailure:
    """One violated property: which oracle, and what it saw."""

    oracle: str
    message: str

    def to_dict(self) -> Dict[str, str]:
        return {"oracle": self.oracle, "message": self.message}

    @classmethod
    def from_dict(cls, payload: Dict[str, str]) -> "OracleFailure":
        return cls(oracle=str(payload["oracle"]), message=str(payload["message"]))


@dataclass
class CaseOutcome:
    """All oracle verdicts for one case."""

    case: CaseSpec
    failures: List[OracleFailure] = field(default_factory=list)
    checked: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.failures


class _Context:
    """Solved-once state shared by the oracles of one case."""

    def __init__(self, case: CaseSpec) -> None:
        self.case = case
        self.pattern: Pattern = case.pattern()
        # cache=False: every fuzz case is a fresh solve, so a poisoned or
        # monkeypatched solver cannot hide behind a memoized good answer.
        self.solution: PartitionSolution = partition(
            self.pattern,
            n_max=case.n_max,
            same_size=(case.scheme == "same-size"),
            cache=False,
        )
        self.mapping: BankMapping = build_mapping(self.solution, case.shape)
        self.z_values: List[int] = self.solution.transform.transform_pattern(
            self.pattern
        )


def _mode(values: List[int]) -> int:
    histogram: Dict[int, int] = {}
    for v in values:
        histogram[v] = histogram.get(v, 0) + 1
    return max(histogram.values())


def _banks_at_shift(
    solution: PartitionSolution, z_values: List[int], shift: int
) -> List[int]:
    """Physical bank of every pattern element at transform shift ``shift``."""
    if solution.scheme == "two-level":
        return [
            ((z + shift) % solution.n_unconstrained) % solution.n_banks
            for z in z_values
        ]
    return [(z + shift) % solution.n_banks for z in z_values]


def _shift_space(solution: PartitionSolution) -> int:
    """How many shift classes cover every loop offset's conflict structure.

    ``α·s`` enters the direct hash mod ``N`` and the two-level hash mod
    ``N_f``, so those many consecutive shifts enumerate every reachable
    bank assignment of the pattern.
    """
    if solution.scheme == "two-level":
        return solution.n_unconstrained
    return solution.n_banks


def oracle_theorem1(ctx: _Context) -> List[str]:
    failures = []
    m = ctx.pattern.size
    if len(set(ctx.z_values)) != m:
        failures.append(
            f"alpha {ctx.solution.transform.alpha} does not separate the "
            f"pattern: z values {ctx.z_values} contain duplicates"
        )
    if ctx.solution.n_unconstrained < m:
        failures.append(
            f"N_f = {ctx.solution.n_unconstrained} < m = {m}: fewer banks than "
            "parallel accesses cannot be conflict-free"
        )
    if ctx.case.n_max is not None and ctx.solution.n_banks > ctx.case.n_max:
        failures.append(
            f"solution uses {ctx.solution.n_banks} banks over the ceiling "
            f"n_max = {ctx.case.n_max}"
        )
    return failures


def oracle_conflict_free(ctx: _Context) -> List[str]:
    if ctx.solution.delta_ii != 0:
        return []
    m = ctx.pattern.size
    for shift in range(_shift_space(ctx.solution)):
        banks = _banks_at_shift(ctx.solution, ctx.z_values, shift)
        if len(set(banks)) != m:
            return [
                f"delta_ii = 0 claimed but shift {shift} maps the pattern to "
                f"banks {banks} (collision)"
            ]
    return []


def oracle_delta_claim(ctx: _Context) -> List[str]:
    claimed = ctx.solution.delta_ii + 1
    worst = 0
    worst_shift = 0
    for shift in range(_shift_space(ctx.solution)):
        load = _mode(_banks_at_shift(ctx.solution, ctx.z_values, shift))
        if load > worst:
            worst, worst_shift = load, shift
    if ctx.solution.scheme == "two-level":
        if worst > claimed:
            return [
                f"two-level solution claims <= {claimed} accesses per bank but "
                f"shift {worst_shift} needs {worst} "
                f"(N_f={ctx.solution.n_unconstrained}, N_c={ctx.solution.n_banks})"
            ]
        return []
    if worst != claimed:
        return [
            f"direct solution claims exactly {claimed} accesses to the busiest "
            f"bank but shift {worst_shift} measures {worst}"
        ]
    return []


def oracle_nf_minimal(ctx: _Context) -> List[str]:
    failures = []
    m = ctx.pattern.size
    n_f = ctx.solution.n_unconstrained
    for n in range(m, n_f):
        residues = [z % n for z in ctx.z_values]
        if len(set(residues)) == m:
            failures.append(
                f"N_f = {n_f} is not minimal: N = {n} already separates the "
                f"pattern under alpha {ctx.solution.transform.alpha}"
            )
            break
    n_max = ctx.case.n_max
    sweep_path = (
        n_max is not None
        and n_f > n_max
        and ctx.solution.scheme == "direct"
    )
    if sweep_path:
        # Independent re-derivation of the Section 4.3.2 same-size sweep.
        conflicts = {
            n: _mode([z % n for z in ctx.z_values]) for n in range(1, n_max + 1)
        }
        best = min(conflicts.values())
        chosen = ctx.solution.n_banks
        if conflicts[chosen] != ctx.solution.delta_ii + 1:
            failures.append(
                f"sweep solution claims delta_ii = {ctx.solution.delta_ii} at "
                f"N = {chosen} but the residue mode there is {conflicts[chosen]}"
            )
        if conflicts[chosen] != best:
            failures.append(
                f"sweep chose N = {chosen} with {conflicts[chosen]} conflicts "
                f"but some N <= {n_max} achieves {best}"
            )
        elif any(n < chosen and conflicts[n] == best for n in conflicts):
            smaller = min(n for n in conflicts if conflicts[n] == best)
            failures.append(
                f"sweep chose N = {chosen} but N = {smaller} ties at "
                f"{best} conflicts (objective 2 wants the smallest N)"
            )
    return failures


def oracle_mapping(ctx: _Context) -> List[str]:
    failures = []
    mapping = ctx.mapping
    try:
        mapping.verify_bijective()
    except ReproError as exc:
        failures.append(f"F(x) is not injective within banks: {exc}")
    if mapping.bank_shape[:-1] != mapping.shape[:-1]:
        failures.append(
            f"padding touched a non-last dimension: bank shape "
            f"{mapping.bank_shape} vs array shape {mapping.shape}"
        )
    inner = (
        ctx.solution.n_unconstrained
        if ctx.solution.scheme == "two-level"
        else ctx.solution.n_banks
    )
    expected = ours_overhead_elements(ctx.case.shape, inner)
    if mapping.overhead_elements != expected:
        failures.append(
            f"storage overhead {mapping.overhead_elements} != Section 4.4 "
            f"closed form {expected} (shape {ctx.case.shape}, inner banks {inner})"
        )
    tail = math.ceil(ctx.case.shape[-1] / inner) * inner - ctx.case.shape[-1]
    if tail >= inner:
        failures.append(
            f"last-dimension padding {tail} >= bank granularity {inner}"
        )
    return failures


def _differential_engines() -> Tuple[str, ...]:
    """Engines the differential oracles cross-check.

    Always the scalar reference and the vectorized NumPy engine; the
    compiled native engine joins automatically whenever the extension is
    importable (and not disabled via ``REPRO_NATIVE=0``), so a built tree
    fuzzes three-way and an unbuilt tree degrades to the two-engine form
    without error.
    """
    from .. import native

    engines = ("scalar", "vectorized")
    if native.available():
        engines += ("native",)
    return engines


def oracle_sim_differential(ctx: _Context) -> List[str]:
    failures = []
    engines = _differential_engines()
    scalar = simulate_sweep(
        ctx.mapping, limit=SIM_LIMIT, verify=True, engine="scalar"
    )
    for engine in engines[1:]:
        fast = simulate_sweep(
            ctx.mapping, limit=SIM_LIMIT, verify=True, engine=engine
        )
        if scalar.to_dict() != fast.to_dict():
            failures.append(
                f"scalar and {engine} simulation reports diverge: "
                f"{scalar.to_dict()} vs {fast.to_dict()}"
            )
    claimed = ctx.solution.delta_ii
    measured = scalar.measured_delta_ii
    if ctx.solution.scheme == "two-level":
        if measured > claimed:
            failures.append(
                f"banked-memory replay measured delta_ii = {measured}, above "
                f"the two-level claim {claimed}"
            )
    elif measured != claimed:
        failures.append(
            f"banked-memory replay measured delta_ii = {measured} but the "
            f"solver claims {claimed} (direct scheme is offset-invariant)"
        )
    return failures


def _ltb_eligible(case: CaseSpec) -> bool:
    pattern_size = len(case.offsets)
    return pattern_size <= LTB_MAX_SIZE and len(case.shape) <= LTB_MAX_NDIM


def oracle_ltb_differential(ctx: _Context) -> Optional[List[str]]:
    if not _ltb_eligible(ctx.case):
        return None  # cost-gated out: not checked, not a pass
    cap = ctx.pattern.size + LTB_EXTRA_BANKS
    engines = _differential_engines()
    runs = {}
    for engine in engines:
        ops = OpCounter()
        try:
            result = ltb_partition(ctx.pattern, n_max=cap, ops=ops, engine=engine)
        except PartitioningError:
            runs[engine] = (None, ops)
        else:
            runs[engine] = (result, ops)
    scalar, scalar_ops = runs["scalar"]
    failures = []
    for engine in engines[1:]:
        fast, fast_ops = runs[engine]
        if (scalar is None) != (fast is None):
            failures.append(
                f"LTB engines disagree on feasibility under N <= {cap}: "
                f"scalar={'fail' if scalar is None else 'ok'}, "
                f"{engine}={'fail' if fast is None else 'ok'}"
            )
            continue
        if scalar is not None and fast is not None:
            if (
                scalar.solution.n_banks != fast.solution.n_banks
                or scalar.solution.transform.alpha
                != fast.solution.transform.alpha
            ):
                failures.append(
                    "LTB engines returned different solutions: scalar "
                    f"(N={scalar.solution.n_banks}, alpha="
                    f"{scalar.solution.transform.alpha}) vs {engine} "
                    f"(N={fast.solution.n_banks}, alpha="
                    f"{fast.solution.transform.alpha})"
                )
            if (scalar.vectors_tried, scalar.candidates_tried) != (
                fast.vectors_tried,
                fast.candidates_tried,
            ):
                failures.append(
                    "LTB engines searched different amounts: scalar "
                    f"({scalar.vectors_tried} vectors, {scalar.candidates_tried} "
                    f"candidates) vs {engine} ({fast.vectors_tried}, "
                    f"{fast.candidates_tried})"
                )
        if scalar_ops.counts != fast_ops.counts:
            failures.append(
                f"LTB engines charged different ops (scalar vs {engine}): "
                f"{scalar_ops.counts} vs {fast_ops.counts}"
            )
    if scalar is not None and scalar.solution.n_banks > ctx.solution.n_unconstrained:
        failures.append(
            f"LTB's exhaustive minimum {scalar.solution.n_banks} exceeds "
            f"our N_f = {ctx.solution.n_unconstrained}: impossible, ours "
            "is one of the vectors LTB enumerates"
        )
    return failures


def _solution_fields(solution: PartitionSolution) -> Dict[str, object]:
    """Everything a caller can observe about a solution, for bit-identity."""
    return {
        "offsets": solution.pattern.offsets,
        "alpha": solution.transform.alpha,
        "extents": solution.transform.extents,
        "n_banks": solution.n_banks,
        "n_unconstrained": solution.n_unconstrained,
        "delta_ii": solution.delta_ii,
        "scheme": solution.scheme,
        "algorithm": solution.algorithm,
    }


def _symmetry_reference(ctx: _Context):
    """Canonical representative, key, and cold solve of the base pattern.

    Computed once per case and shared by the three symmetry oracles (the
    checks are pure given these).  Uses ``Objective.LATENCY`` through the
    :func:`repro.core.solver.solve` driver — the path the canonical cache
    actually serves — rather than the scheme-selecting ``partition`` API.
    """
    ref = getattr(ctx, "_symmetry_ref", None)
    if ref is None:
        canon_pattern, _ = canonicalize(ctx.pattern, mode="symmetry")
        key = canonical_key(
            ctx.pattern,
            ctx.case.shape,
            ctx.case.n_max,
            Objective.LATENCY.value,
            0,
            mode="symmetry",
        )
        cold = solve(
            ctx.pattern,
            ctx.case.shape,
            n_max=ctx.case.n_max,
            cache=False,
            canon="symmetry",
        )
        ref = (canon_pattern, key, cold.solution)
        ctx._symmetry_ref = ref
    return ref


def _check_symmetry_variant(
    ctx: _Context, tag: str, variant: Pattern, v_shape: Tuple[int, ...]
) -> List[str]:
    """All claimed invariances for one orbit member of the case's pattern."""
    failures: List[str] = []
    canon_base, base_key, base_solution = _symmetry_reference(ctx)
    canon_v, op_v = canonicalize(variant, mode="symmetry")
    if canon_v.offsets != canon_base.offsets:
        failures.append(
            f"{tag}: orbit members canonicalize differently: variant to "
            f"{canon_v.offsets}, base to {canon_base.offsets}"
        )
        return failures  # downstream checks assume a shared representative
    v_key = canonical_key(
        variant, v_shape, ctx.case.n_max, Objective.LATENCY.value, 0, mode="symmetry"
    )
    if v_key != base_key:
        failures.append(
            f"{tag}: canonical_key is not orbit-invariant: {v_key} vs {base_key}"
        )
    cold = solve(
        variant, v_shape, n_max=ctx.case.n_max, cache=False, canon="symmetry"
    ).solution
    for name in ("n_banks", "n_unconstrained", "delta_ii", "scheme"):
        got, want = getattr(cold, name), getattr(base_solution, name)
        if got != want:
            failures.append(
                f"{tag}: solve invariant {name} = {got!r} for the variant but "
                f"{want!r} for the base pattern"
            )
    # Validity in the variant's own frame: the mapped-back transform (whose
    # alpha may carry negative components) must separate, meet its delta
    # claim exhaustively, and stay Section-4.4 bijective.
    z_values = cold.transform.transform_pattern(variant)
    if len(set(z_values)) != variant.size:
        failures.append(
            f"{tag}: mapped-back alpha {cold.transform.alpha} does not "
            f"separate the variant (z = {z_values})"
        )
    else:
        worst, worst_shift = 0, 0
        for shift in range(_shift_space(cold)):
            load = _mode(_banks_at_shift(cold, z_values, shift))
            if load > worst:
                worst, worst_shift = load, shift
        if worst != cold.delta_ii + 1:
            failures.append(
                f"{tag}: variant-frame solution claims {cold.delta_ii + 1} "
                f"accesses to the busiest bank but shift {worst_shift} "
                f"measures {worst}"
            )
        try:
            build_mapping(cold, v_shape).verify_bijective()
        except ReproError as exc:
            failures.append(
                f"{tag}: mapped-back F(x) is not injective within banks: {exc}"
            )
    # A warm hit — the canonical solution un-applied through the variant's
    # SymmetryOp — must be field-for-field identical to the cold solve.
    canon_shape = op_v.shape_to_canonical(v_shape)
    canon_solution = _solve_impl(
        canon_v, canon_shape, ctx.case.n_max, Objective.LATENCY, 0, None
    ).solution
    warm = op_v.solution_to_caller(canon_solution, variant)
    if _solution_fields(warm) != _solution_fields(cold):
        failures.append(
            f"{tag}: warm-hit solution differs from the cold solve: "
            f"{_solution_fields(warm)} vs {_solution_fields(cold)}"
        )
    return failures


def oracle_symmetry_reflection(ctx: _Context) -> List[str]:
    failures: List[str] = []
    for tag, variant, v_shape in symmetry_variants(
        ctx.pattern, ctx.case.shape, "reflection"
    ):
        failures.extend(_check_symmetry_variant(ctx, tag, variant, v_shape))
    return failures


def oracle_symmetry_permutation(ctx: _Context) -> Optional[List[str]]:
    if ctx.pattern.ndim < 3:
        return None  # the innermost-fixing permutation subgroup is trivial
    failures: List[str] = []
    for tag, variant, v_shape in symmetry_variants(
        ctx.pattern, ctx.case.shape, "permutation"
    ):
        failures.extend(_check_symmetry_variant(ctx, tag, variant, v_shape))
    return failures


def oracle_symmetry_composed(ctx: _Context) -> List[str]:
    failures: List[str] = []
    _, base_key, _ = _symmetry_reference(ctx)
    variants = symmetry_variants(
        ctx.pattern,
        ctx.case.shape,
        "composed",
        seed=ctx.case.seed * 1000003 + ctx.case.index,
    )
    for tag, variant, v_shape in variants:
        failures.extend(_check_symmetry_variant(ctx, tag, variant, v_shape))
        # The translation leg of the composition: a raw (un-normalized)
        # translate of the variant must still share the orbit key.
        shifted = variant.translated(tuple(e + 1 for e in variant.extents))
        s_key = canonical_key(
            shifted, v_shape, ctx.case.n_max, Objective.LATENCY.value, 0,
            mode="symmetry",
        )
        if s_key != base_key:
            failures.append(
                f"{tag}: translating the variant changed canonical_key: "
                f"{s_key} vs {base_key}"
            )
    return failures


#: Oracle catalog, in the order they run (cheap analytic checks first).
ORACLES: Dict[str, Callable[[_Context], List[str]]] = {
    "theorem1": oracle_theorem1,
    "conflict_free": oracle_conflict_free,
    "delta_claim": oracle_delta_claim,
    "nf_minimal": oracle_nf_minimal,
    "mapping": oracle_mapping,
    "sim_differential": oracle_sim_differential,
    "ltb_differential": oracle_ltb_differential,
    "symmetry_reflection": oracle_symmetry_reflection,
    "symmetry_permutation": oracle_symmetry_permutation,
    "symmetry_composed": oracle_symmetry_composed,
}

ORACLE_NAMES: Tuple[str, ...] = tuple(ORACLES)


def run_oracles(case: CaseSpec) -> CaseOutcome:
    """Solve ``case`` and check every oracle; never raises for a bad solve.

    Exceptions escaping the solve or an oracle are converted into ``crash``
    failures carrying the exception type and message: a crashing solver is
    a defect the fuzzer caught, not fuzzer breakage.
    """
    outcome = CaseOutcome(case=case)
    try:
        ctx = _Context(case)
    except Exception as exc:  # noqa: BLE001 - the fuzzer must survive any bug
        outcome.failures.append(
            OracleFailure("crash", f"{type(exc).__name__} while solving: {exc}")
        )
        outcome.checked = ("crash",)
        return outcome
    checked = []
    for name, oracle in ORACLES.items():
        try:
            messages = oracle(ctx)
        except Exception as exc:  # noqa: BLE001
            messages = [f"{type(exc).__name__} inside oracle: {exc}"]
        if messages is None:  # oracle declared itself not applicable
            continue
        checked.append(name)
        for message in messages:
            outcome.failures.append(OracleFailure(name, message))
    outcome.checked = tuple(checked)
    return outcome
