"""Deterministic, seed-driven generator of partitioning test cases.

A :class:`CaseSpec` is everything a fuzz case needs to be re-run anywhere:
the pattern offsets, the array shape, the ``N_max`` ceiling, and which
bank-limit scheme to solve with (the Section 4.3.2 same-size sweep or the
two-level modulo fold).  Specs are plain JSON-able records, so corpora are
diffable text files and a counterexample travels as one small artifact.

Generation is stratified, not uniform: index position cycles through
dimensionalities 1–4 and through four shape families —

* ``random`` — sparse offsets in a random bounding box;
* ``dense-box`` — the pattern *is* its bounding box (every residue class
  of the mixed-radix transform occupied);
* ``width1`` — at least one array dimension of width 1 (degenerate axes
  are where ravel/padding off-by-ones hide);
* ``narrow-tail`` — the innermost width is smaller than the bank count,
  so the Section 4.4 tail padding dominates the bank geometry.

Determinism contract: ``generate_case(seed, index)`` depends only on its
arguments (string-seeded :class:`random.Random`, which is stable across
processes and interpreter versions), never on global RNG state — the same
seed enumerates the same suite on a laptop, a CI runner, or a worker pool.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..core.pattern import Pattern

#: Shape families the generator cycles through (see module docstring).
STRATA = ("random", "dense-box", "width1", "narrow-tail")

#: Bank-limit schemes a case can solve with.
SCHEMES = ("same-size", "two-level")

#: Hard ceiling on array volume: every oracle that enumerates elements
#: (bijectivity, the scalar simulator's load) stays exhaustive and fast.
MAX_VOLUME = 1024

#: Per-dimensionality cap on pattern extents (keeps 4-D boxes enumerable).
_EXTENT_CAP = {1: 12, 2: 5, 3: 4, 4: 3}

#: Largest pattern size the generator asks for.
MAX_PATTERN_SIZE = 8


@dataclass(frozen=True)
class CaseSpec:
    """One fuzz case: a pattern, an array, a ceiling, and a scheme.

    Attributes
    ----------
    seed:
        Suite seed this case was derived from (0 for handwritten cases).
    index:
        Position within the suite (drives the stratification).
    label:
        Stratum tag (one of :data:`STRATA`, or a free-form tag for
        handwritten corpus entries).
    offsets:
        The pattern's offset vectors.
    shape:
        Array shape; always componentwise >= the pattern extents.
    n_max:
        Bank-count ceiling (``None`` = unconstrained).
    scheme:
        ``"same-size"`` or ``"two-level"`` (ignored when ``N_f <= n_max``).
    """

    seed: int
    index: int
    label: str
    offsets: Tuple[Tuple[int, ...], ...]
    shape: Tuple[int, ...]
    n_max: Optional[int]
    scheme: str

    def __post_init__(self) -> None:
        if self.scheme not in SCHEMES:
            raise ValueError(f"unknown scheme {self.scheme!r}; expected {SCHEMES}")
        pattern = self.pattern()  # validates offsets (distinct, rectangular)
        if len(self.shape) != pattern.ndim:
            raise ValueError(
                f"shape {self.shape} does not match pattern dimensionality "
                f"{pattern.ndim}"
            )
        lo, extents = pattern.mins, pattern.extents
        if any(c != 0 for c in lo):
            raise ValueError(f"case offsets must be normalized to origin, got min {lo}")
        if any(w < e for w, e in zip(self.shape, extents)):
            raise ValueError(
                f"shape {self.shape} cannot hold pattern extents {extents}"
            )
        if self.n_max is not None and self.n_max < 1:
            raise ValueError(f"n_max must be positive, got {self.n_max}")

    def pattern(self) -> Pattern:
        """Materialize the offsets as a :class:`~repro.core.pattern.Pattern`."""
        return Pattern(self.offsets, name=f"fuzz[{self.seed}:{self.index}]")

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def volume(self) -> int:
        total = 1
        for w in self.shape:
            total *= w
        return total

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able form (the corpus line / artifact payload)."""
        return {
            "seed": self.seed,
            "index": self.index,
            "label": self.label,
            "offsets": [list(v) for v in self.offsets],
            "shape": list(self.shape),
            "n_max": self.n_max,
            "scheme": self.scheme,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CaseSpec":
        """Inverse of :meth:`to_dict`; validates on construction."""
        return cls(
            seed=int(payload.get("seed", 0)),
            index=int(payload.get("index", 0)),
            label=str(payload.get("label", "corpus")),
            offsets=tuple(tuple(int(c) for c in v) for v in payload["offsets"]),
            shape=tuple(int(w) for w in payload["shape"]),
            n_max=None if payload.get("n_max") is None else int(payload["n_max"]),
            scheme=str(payload.get("scheme", "same-size")),
        )


def _rng(seed: int, index: int) -> random.Random:
    # String seeding is hashed with SHA-512 internally: stable across
    # processes (PYTHONHASHSEED does not apply) and Python versions.
    return random.Random(f"repro-verify:{seed}:{index}")


def _normalized(offsets) -> Tuple[Tuple[int, ...], ...]:
    ndim = len(next(iter(offsets)))
    lo = tuple(min(v[j] for v in offsets) for j in range(ndim))
    return tuple(sorted(tuple(c - lo[j] for j, c in enumerate(v)) for v in offsets))


def _random_extents(rng: random.Random, ndim: int, cap: int) -> Tuple[int, ...]:
    while True:
        extents = tuple(rng.randint(1, cap) for _ in range(ndim))
        volume = 1
        for e in extents:
            volume *= e
        if volume >= 2:
            return extents


def _sample_offsets(
    rng: random.Random, extents: Tuple[int, ...], size: int
) -> Tuple[Tuple[int, ...], ...]:
    chosen = set()
    while len(chosen) < size:
        chosen.add(tuple(rng.randrange(e) for e in extents))
    return _normalized(chosen)


def _dense_box(rng: random.Random, ndim: int) -> Tuple[Tuple[int, ...], ...]:
    # Keep the box small enough that m = volume stays a pattern, not an array.
    while True:
        extents = tuple(rng.randint(1, 3 if ndim <= 2 else 2) for _ in range(ndim))
        volume = 1
        for e in extents:
            volume *= e
        if 2 <= volume <= 12:
            break
    offsets = [()]
    for e in extents:
        offsets = [prefix + (c,) for prefix in offsets for c in range(e)]
    return tuple(sorted(offsets))


def _fit_shape(
    rng: random.Random, extents: Tuple[int, ...], tight_last: bool
) -> Tuple[int, ...]:
    """Extents plus random slack per dimension, trimmed to :data:`MAX_VOLUME`."""
    slack_cap = {1: 16, 2: 6, 3: 3, 4: 2}[len(extents)]
    shape = [e + rng.randint(0, slack_cap) for e in extents]
    if tight_last:
        shape[-1] = extents[-1]

    def volume() -> int:
        total = 1
        for w in shape:
            total *= w
        return total

    # Trim slack (largest dimension first) until the array is enumerable.
    while volume() > MAX_VOLUME:
        candidates = [j for j in range(len(shape)) if shape[j] > extents[j]]
        if not candidates:
            break
        j = max(candidates, key=lambda k: shape[k])
        shape[j] -= 1
    return tuple(shape)


def generate_case(seed: int, index: int) -> CaseSpec:
    """Derive the deterministic case at ``index`` of suite ``seed``."""
    rng = _rng(seed, index)
    ndim = 1 + index % 4
    label = STRATA[(index // 4) % len(STRATA)]
    cap = _EXTENT_CAP[ndim]

    if label == "dense-box":
        offsets = _dense_box(rng, ndim)
    elif label == "width1":
        extents = list(_random_extents(rng, ndim, cap))
        extents[rng.randrange(ndim)] = 1
        if all(e == 1 for e in extents):
            extents[rng.randrange(ndim)] = max(2, cap - 1)
        extents = tuple(extents)
        box_volume = 1
        for e in extents:
            box_volume *= e
        size = rng.randint(2, min(MAX_PATTERN_SIZE, box_volume))
        offsets = _sample_offsets(rng, extents, size)
    elif label == "narrow-tail":
        if ndim == 1:
            # A 1-D in-range pattern always has shape >= extents >= N_f -
            # slack, so "narrower than the bank count" degenerates to the
            # tightest legal shape (zero head room past the bounding box).
            extents = (rng.randint(3, cap),)
            size = rng.randint(2, min(MAX_PATTERN_SIZE, extents[0]))
            offsets = _sample_offsets(rng, extents, size)
        else:
            extents = list(_random_extents(rng, ndim, cap))
            extents[-1] = rng.randint(1, 2)
            head_volume = 1
            for e in extents[:-1]:
                head_volume *= e
            if head_volume < 2:
                extents[0] = max(2, cap - 1)
            extents = tuple(extents)
            box_volume = 1
            for e in extents:
                box_volume *= e
            size = rng.randint(min(3, box_volume), min(MAX_PATTERN_SIZE, box_volume))
            offsets = _sample_offsets(rng, extents, size)
    else:  # "random"
        extents = _random_extents(rng, ndim, cap)
        box_volume = 1
        for e in extents:
            box_volume *= e
        size = rng.randint(2, min(MAX_PATTERN_SIZE, box_volume))
        offsets = _sample_offsets(rng, extents, size)

    pattern_extents = tuple(
        max(v[j] for v in offsets) + 1 for j in range(ndim)
    )
    shape = _fit_shape(rng, pattern_extents, tight_last=(label == "narrow-tail"))

    size = len(offsets)
    roll = rng.random()
    if roll < 0.3:
        n_max = None
    elif roll < 0.65:
        # Binding ceilings below the likely N_f exercise both limit schemes.
        n_max = rng.randint(1, max(2, size))
    else:
        n_max = rng.randint(size, size + 4)
    scheme = rng.choice(SCHEMES)

    return CaseSpec(
        seed=seed,
        index=index,
        label=label,
        offsets=offsets,
        shape=shape,
        n_max=n_max,
        scheme=scheme,
    )


def iter_cases(count: int, seed: int, start: int = 0) -> Iterator[CaseSpec]:
    """The suite ``seed``'s cases ``start … start + count - 1`` in order."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    for index in range(start, start + count):
        yield generate_case(seed, index)


# -- symmetry variants --------------------------------------------------------
#
# The solve cache quotients patterns by translation × per-axis reflection ×
# leading-axis permutation (see repro.core.cache.canonicalize).  The builders
# below enumerate members of that orbit for a given (pattern, shape) pair so
# the symmetry oracles and the property tests share one variant vocabulary.


def leading_axis_permutations(ndim: int) -> List[Tuple[int, ...]]:
    """Axis permutations that keep the innermost axis innermost.

    This is the subgroup the canonicalizer quotients by: moving the last
    axis would change ``|α[-1]|`` and break the Section 4.4 intra-bank
    layout's bijectivity, so those permutations are never identified.
    """
    return [perm + (ndim - 1,) for perm in itertools.permutations(range(ndim - 1))]


def symmetry_variants(
    pattern: "Pattern",
    shape: Tuple[int, ...],
    kind: str,
    seed: int = 0,
    count: int = 3,
) -> List[Tuple[str, "Pattern", Tuple[int, ...]]]:
    """Orbit members of ``(pattern, shape)`` under one symmetry family.

    ``kind`` selects the family: ``"reflection"`` mirrors each axis (and,
    above 1-D, all axes at once), ``"permutation"`` applies every
    non-identity leading-axis permutation (shape permuted to match), and
    ``"composed"`` draws ``count`` seeded random permutation∘reflection∘
    translation compositions.  Variants are returned translation-normalized
    — the translation leg of a composition cancels under ``normalized()``,
    which is exactly the claim the key-invariance checks exercise — and
    variants identical to the input are dropped (a symmetric pattern can
    have a smaller orbit than its group).

    Returns ``(tag, variant_pattern, variant_shape)`` triples.
    """
    shape_t = tuple(int(w) for w in shape)
    ndim = pattern.ndim
    out: List[Tuple[str, "Pattern", Tuple[int, ...]]] = []
    if kind == "reflection":
        axis_sets = [(axis,) for axis in range(ndim)]
        if ndim > 1:
            axis_sets.append(tuple(range(ndim)))
        for axes in axis_sets:
            out.append(
                (
                    f"reflect{list(axes)}",
                    pattern.reflected(axes).normalized(),
                    shape_t,
                )
            )
    elif kind == "permutation":
        identity = tuple(range(ndim))
        for perm in leading_axis_permutations(ndim):
            if perm == identity:
                continue
            out.append(
                (
                    f"permute{list(perm)}",
                    pattern.permuted(perm),
                    tuple(shape_t[a] for a in perm),
                )
            )
    elif kind == "composed":
        rng = random.Random(f"repro-verify:symmetry:{seed}")
        perms = leading_axis_permutations(ndim)
        for i in range(count):
            perm = rng.choice(perms)
            axes = tuple(j for j in range(ndim) if rng.random() < 0.5)
            variant = pattern.permuted(perm)
            if axes:
                variant = variant.reflected(axes)
            shift = tuple(rng.randint(-3, 3) for _ in range(ndim))
            variant = variant.translated(shift).normalized()
            out.append(
                (
                    f"compose[{i}]perm{list(perm)}flip{list(axes)}",
                    variant,
                    tuple(shape_t[a] for a in perm),
                )
            )
    else:
        raise ValueError(
            f"unknown symmetry-variant kind {kind!r}; expected "
            "'reflection', 'permutation', or 'composed'"
        )
    return [
        (tag, variant, v_shape)
        for tag, variant, v_shape in out
        if variant.offsets != pattern.offsets or v_shape != shape_t
    ]
