"""Seeded differential fuzzing and property oracles (``repro-verify``).

Theorem 1's constant-time construction of ``α`` is only trustworthy if it
is conflict-free for *every* pattern / bounding-box / ``N_max`` combination
— not just the paper's Table 1 kernels.  This package cross-checks the
repo's four independent partitioner implementations (paper solver, LTB
scalar, LTB vectorized, the naive baselines) and two simulation engines
against each other and against closed-form properties, on deterministic
seed-driven random cases:

* :mod:`repro.verify.gen` — stratified case generator (dims 1–4,
  degenerate shapes, scheme choices), fully deterministic per seed.
* :mod:`repro.verify.oracles` — the property catalog checked per case.
* :mod:`repro.verify.shrink` — greedy counterexample minimizer.
* :mod:`repro.verify.runner` — seeded suites, JSONL corpora, replay,
  counterexample artifacts, ``verify.*`` metrics.
* :mod:`repro.verify.cli` — the ``repro-verify`` entry point.

See ``docs/VERIFICATION.md`` for the oracle catalog and triage workflow.
"""

from .gen import CaseSpec, generate_case, iter_cases
from .oracles import CaseOutcome, OracleFailure, ORACLE_NAMES, run_oracles
from .runner import SuiteReport, replay_paths, run_suite
from .shrink import shrink_case

__all__ = [
    "CaseSpec",
    "CaseOutcome",
    "OracleFailure",
    "ORACLE_NAMES",
    "SuiteReport",
    "generate_case",
    "iter_cases",
    "replay_paths",
    "run_oracles",
    "run_suite",
    "shrink_case",
]
