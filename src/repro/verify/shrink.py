"""Greedy counterexample shrinking.

A raw fuzz failure is rarely the story — a 4-D, 8-point pattern over a
700-element array obscures the one interaction that actually breaks.  The
shrinker repeatedly applies structure-reducing transformations and keeps
any variant on which the *same oracle* still fails:

1. **drop a dimension** — project the pattern (and shape) onto the
   remaining axes, deduplicating collapsed offsets;
2. **drop a pattern point**;
3. **shrink the bounding box** — pull the extreme coordinate of one
   dimension inward by one;
4. **tighten the shape** — down to the pattern extents;
5. **lower ``n_max``** — halving first, then decrements.

Transformations are tried most-aggressive-first and the loop restarts
after every accepted reduction, so the result is a local minimum: no
single listed transformation preserves the failure.  The predicate is
evaluated at most ``budget`` times, which bounds shrinking of expensive
cases.

The predicate contract is ``fails(case) -> Optional[OracleFailure]`` —
return the (first) matching failure or ``None``.  :func:`same_oracle`
builds the usual predicate: *some* failure from the oracle that flagged
the original case, so shrinking cannot drift onto an unrelated defect.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Tuple

from .gen import CaseSpec
from .oracles import OracleFailure, run_oracles

#: Default cap on predicate evaluations during one shrink.
DEFAULT_BUDGET = 250

Predicate = Callable[[CaseSpec], Optional[OracleFailure]]


def same_oracle(oracle: str) -> Predicate:
    """Predicate: the case still fails ``oracle`` (first such failure)."""

    def predicate(case: CaseSpec) -> Optional[OracleFailure]:
        for failure in run_oracles(case).failures:
            if failure.oracle == oracle:
                return failure
        return None

    return predicate


def _normalized(case: CaseSpec) -> CaseSpec:
    """Translate the offsets to the origin (canonical minimal form)."""
    ndim = len(case.shape)
    lo = tuple(min(v[j] for v in case.offsets) for j in range(ndim))
    if all(c == 0 for c in lo):
        return case
    offsets = tuple(
        sorted(tuple(c - lo[j] for j, c in enumerate(v)) for v in case.offsets)
    )
    return _replace(case, offsets=offsets)


def _replace(case: CaseSpec, **changes) -> CaseSpec:
    payload = case.to_dict()
    payload.update(
        {
            key: (
                [list(v) for v in value]
                if key == "offsets"
                else list(value)
                if key == "shape"
                else value
            )
            for key, value in changes.items()
        }
    )
    return CaseSpec.from_dict(payload)


def _try_build(case: CaseSpec, **changes) -> Optional[CaseSpec]:
    # PatternError subclasses ValueError, so one except covers a variant
    # that collapsed to an invalid spec (empty pattern, shape < extents).
    try:
        return _normalized(_replace(case, **changes))
    except ValueError:
        return None


def _candidates(case: CaseSpec) -> Iterator[CaseSpec]:
    """Strictly-smaller variants of ``case``, most aggressive first."""
    ndim = len(case.shape)
    extents = tuple(
        max(v[j] for v in case.offsets) - min(v[j] for v in case.offsets) + 1
        for j in range(ndim)
    )

    # 1. Drop a dimension (project offsets; collapsed duplicates merge).
    if ndim > 1:
        for j in range(ndim):
            offsets = {v[:j] + v[j + 1 :] for v in case.offsets}
            variant = _try_build(
                case,
                offsets=tuple(sorted(offsets)),
                shape=case.shape[:j] + case.shape[j + 1 :],
            )
            if variant is not None:
                yield variant

    # 2. Drop one pattern point.
    if len(case.offsets) > 1:
        for i in range(len(case.offsets)):
            offsets = case.offsets[:i] + case.offsets[i + 1 :]
            variant = _try_build(case, offsets=offsets)
            if variant is not None:
                yield variant

    # 3. Shrink the bounding box: pull one dimension's maximum inward.
    for j in range(ndim):
        if extents[j] <= 1:
            continue
        top = max(v[j] for v in case.offsets)
        moved = {
            v[:j] + (v[j] - 1 if v[j] == top else v[j],) + v[j + 1 :]
            for v in case.offsets
        }
        if len(moved) == len(case.offsets):
            variant = _try_build(case, offsets=tuple(sorted(moved)))
            if variant is not None:
                yield variant

    # 4. Tighten the shape toward the pattern extents.
    for j in range(ndim):
        if case.shape[j] > extents[j]:
            tight = case.shape[:j] + (extents[j],) + case.shape[j + 1 :]
            variant = _try_build(case, shape=tight)
            if variant is not None:
                yield variant
            if case.shape[j] - 1 > extents[j]:
                step = case.shape[:j] + (case.shape[j] - 1,) + case.shape[j + 1 :]
                variant = _try_build(case, shape=step)
                if variant is not None:
                    yield variant

    # 5. Lower the bank ceiling.
    if case.n_max is not None and case.n_max > 1:
        for smaller in dict.fromkeys((case.n_max // 2 or 1, case.n_max - 1)):
            variant = _try_build(case, n_max=smaller)
            if variant is not None:
                yield variant


def shrink_case(
    case: CaseSpec,
    predicate: Predicate,
    budget: int = DEFAULT_BUDGET,
) -> Tuple[CaseSpec, OracleFailure, int]:
    """Minimize ``case`` while ``predicate`` keeps failing.

    Returns ``(minimal_case, failure_on_minimal, predicate_evaluations)``.

    Raises
    ------
    ValueError
        If the starting case does not fail the predicate (there is nothing
        to shrink — a passing "counterexample" is itself a bug).
    """
    failure = predicate(case)
    if failure is None:
        raise ValueError("shrink_case needs a failing case to start from")
    current = _normalized(case)
    evaluations = 1
    progressed = True
    while progressed and evaluations < budget:
        progressed = False
        for candidate in _candidates(current):
            evaluations += 1
            verdict = predicate(candidate)
            if verdict is not None:
                current, failure = candidate, verdict
                progressed = True
                break
            if evaluations >= budget:
                break
    return current, failure, evaluations
