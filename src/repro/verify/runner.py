"""Suite execution: seeded runs, JSONL corpora, replay, counterexamples.

One **corpus record** per case, one JSON line each::

    {"format": "repro/verify-case", "case": {...}, "status": "ok"|"fail",
     "checked": [...], "failures": [{"oracle": ..., "message": ...}]}

A **counterexample artifact** is a standalone JSON file::

    {"format": "repro/verify-counterexample", "original": {...},
     "shrunk": {...}, "failure": {...}, "evaluations": N}

Replay accepts corpus files, counterexample artifacts, and bare
:class:`~repro.verify.gen.CaseSpec` JSON (one per line), so "re-run what
CI uploaded" is one command regardless of which file you grabbed.

Metrics: every run mirrors ``verify.cases`` / ``verify.failures`` (and
per-oracle ``verify.oracle.<name>.failures``) into the process-global
registry, visible through ``--emit-metrics`` like every other harness.

Parallelism goes through the DAG scheduler (:func:`repro.sched.map_tasks`,
``REPRO_SCHED=0`` falls back to the flat
:func:`repro.eval.parallel.run_parallel`) — case specs are JSON payloads,
so they pickle trivially and double as deduplication keys: replaying a
file set that contains the same case twice runs its oracles once, with the
identical record fanned out to every occurrence (corpus bytes unchanged).
Results come back in input order, keeping corpora deterministic for a
given seed regardless of ``jobs``.  Shrinking always happens in the parent
process (the predicate re-runs oracles many times on tiny cases; worker
startup would dominate).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from ..obs.metrics import registry as obs_registry
from ..sched import map_tasks
from .gen import CaseSpec, iter_cases
from .oracles import ORACLE_NAMES, CaseOutcome, OracleFailure, run_oracles
from .shrink import DEFAULT_BUDGET, same_oracle, shrink_case

CASE_FORMAT = "repro/verify-case"
COUNTEREXAMPLE_FORMAT = "repro/verify-counterexample"


def outcome_to_record(outcome: CaseOutcome) -> Dict[str, Any]:
    """The corpus-line form of one case verdict."""
    return {
        "format": CASE_FORMAT,
        "case": outcome.case.to_dict(),
        "status": "ok" if outcome.ok else "fail",
        "checked": list(outcome.checked),
        "failures": [f.to_dict() for f in outcome.failures],
    }


def record_to_outcome(record: Dict[str, Any]) -> CaseOutcome:
    """Inverse of :func:`outcome_to_record`."""
    return CaseOutcome(
        case=CaseSpec.from_dict(record["case"]),
        failures=[OracleFailure.from_dict(f) for f in record.get("failures", [])],
        checked=tuple(record.get("checked", ())),
    )


def _run_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point: dict in, dict out (picklable both ways)."""
    return outcome_to_record(run_oracles(CaseSpec.from_dict(payload)))


@dataclass
class SuiteReport:
    """Aggregate result of one verify run (generated or replayed)."""

    cases: int
    records: List[Dict[str, Any]] = field(default_factory=list)
    counterexamples: List[Dict[str, Any]] = field(default_factory=list)
    corpus_path: Optional[str] = None
    elapsed_s: float = 0.0

    @property
    def failing_records(self) -> List[Dict[str, Any]]:
        return [r for r in self.records if r["status"] != "ok"]

    @property
    def failures(self) -> int:
        return sum(len(r["failures"]) for r in self.records)

    @property
    def ok(self) -> bool:
        return self.failures == 0

    def failures_by_oracle(self) -> Dict[str, int]:
        tally: Dict[str, int] = {}
        for record in self.records:
            for failure in record["failures"]:
                tally[failure["oracle"]] = tally.get(failure["oracle"], 0) + 1
        return tally

    def summary(self) -> Dict[str, Any]:
        return {
            "cases": self.cases,
            "failing_cases": len(self.failing_records),
            "failures": self.failures,
            "failures_by_oracle": self.failures_by_oracle(),
            "counterexamples": len(self.counterexamples),
            "corpus": self.corpus_path,
            "elapsed_s": round(self.elapsed_s, 3),
        }


def _publish_metrics(records: Sequence[Dict[str, Any]]) -> None:
    registry = obs_registry()
    registry.counter("verify.cases").inc(len(records))
    total = 0
    for record in records:
        for failure in record["failures"]:
            total += 1
            registry.counter(f"verify.oracle.{failure['oracle']}.failures").inc()
    if total:
        registry.counter("verify.failures").inc(total)


def _write_corpus(path: Union[str, Path], records: Iterable[Dict[str, Any]]) -> None:
    target = Path(path)
    if target.parent != Path(""):
        target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")


def _shrink_record(record: Dict[str, Any], budget: int) -> Dict[str, Any]:
    """Build the counterexample artifact for one failing record."""
    case = CaseSpec.from_dict(record["case"])
    oracle = record["failures"][0]["oracle"]
    shrunk, failure, evaluations = shrink_case(
        case, same_oracle(oracle), budget=budget
    )
    return {
        "format": COUNTEREXAMPLE_FORMAT,
        "original": case.to_dict(),
        "shrunk": shrunk.to_dict(),
        "failure": failure.to_dict(),
        "evaluations": evaluations,
    }


def _write_counterexamples(
    directory: Union[str, Path], artifacts: Sequence[Dict[str, Any]]
) -> List[Path]:
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    paths = []
    for artifact in artifacts:
        case = artifact["original"]
        name = f"counterexample-{case['seed']}-{case['index']}.json"
        path = root / name
        path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")
        paths.append(path)
    return paths


def run_suite(
    cases: int,
    seed: int,
    jobs: Optional[int] = None,
    corpus_path: Optional[Union[str, Path]] = None,
    counterexample_dir: Optional[Union[str, Path]] = None,
    shrink: bool = True,
    shrink_budget: int = DEFAULT_BUDGET,
    start: int = 0,
) -> SuiteReport:
    """Generate and check ``cases`` seeded cases; optionally shrink failures.

    Deterministic for a given ``(cases, seed, start)`` triple — ``jobs``
    changes wall-clock only, never results or corpus bytes.
    """
    began = time.monotonic()
    specs = list(iter_cases(cases, seed, start=start))
    payloads = [s.to_dict() for s in specs]
    records = map_tasks(_run_payload, payloads, jobs=jobs, keys=payloads)
    _publish_metrics(records)

    report = SuiteReport(cases=len(records), records=records)
    if corpus_path is not None:
        _write_corpus(corpus_path, records)
        report.corpus_path = str(corpus_path)

    if shrink:
        for record in report.failing_records:
            # A crash during the solve has no oracle to re-match; shrink
            # against the crash marker itself (run_oracles reports it).
            try:
                report.counterexamples.append(
                    _shrink_record(record, budget=shrink_budget)
                )
            except ValueError:
                # Flaky failure (did not reproduce on re-run): keep the
                # original record as the artifact, unshrunk.
                report.counterexamples.append(
                    {
                        "format": COUNTEREXAMPLE_FORMAT,
                        "original": record["case"],
                        "shrunk": record["case"],
                        "failure": record["failures"][0],
                        "evaluations": 1,
                    }
                )
    if counterexample_dir is not None and report.counterexamples:
        _write_counterexamples(counterexample_dir, report.counterexamples)
    report.elapsed_s = time.monotonic() - began
    return report


def _validate_oracle_names(path: Path, document: Dict[str, Any]) -> None:
    """Reject records referencing oracles this build does not know.

    Renaming or removing an oracle must not let its corpus entries degrade
    into silently-unchecked specs: a record whose ``checked`` list or
    failure verdicts name an unknown oracle is a corpus/catalog mismatch,
    and replay errors loudly instead of replaying a weaker suite.  (Records
    that merely *lack* newer oracles replay fine — adding oracles never
    invalidates an old corpus.)
    """
    named = set(document.get("checked", ()))
    named.update(f.get("oracle") for f in document.get("failures", ()))
    if "failure" in document:  # counterexample artifact
        named.add(document["failure"].get("oracle"))
    known = set(ORACLE_NAMES) | {"crash"}
    unknown = sorted(str(n) for n in named - known)
    if unknown:
        raise ValueError(
            f"{path}: record references unknown oracle(s) {unknown}; this "
            f"build knows {sorted(known)} — regenerate the corpus or fix "
            "the oracle name"
        )


def _specs_from_file(path: Path) -> List[CaseSpec]:
    """Extract every case spec a corpus / artifact / spec file contains."""
    text = path.read_text()
    specs: List[CaseSpec] = []
    stripped = text.strip()
    documents: List[Any]
    if stripped.startswith("{") and "\n{" not in stripped:
        # One pretty-printed JSON document (counterexample artifact).
        documents = [json.loads(stripped)]
    else:
        documents = [json.loads(line) for line in text.splitlines() if line.strip()]
    for document in documents:
        if not isinstance(document, dict):
            raise ValueError(f"{path}: expected JSON objects, got {document!r}")
        if document.get("format") == COUNTEREXAMPLE_FORMAT:
            _validate_oracle_names(path, document)
            specs.append(CaseSpec.from_dict(document["shrunk"]))
        elif document.get("format") == CASE_FORMAT or "case" in document:
            _validate_oracle_names(path, document)
            specs.append(CaseSpec.from_dict(document["case"]))
        elif "offsets" in document:
            specs.append(CaseSpec.from_dict(document))
        else:
            raise ValueError(
                f"{path}: unrecognized record (no format/case/offsets key)"
            )
    return specs


def replay_paths(
    paths: Sequence[Union[str, Path]],
    jobs: Optional[int] = None,
    corpus_path: Optional[Union[str, Path]] = None,
) -> SuiteReport:
    """Re-run the oracles over every case stored in ``paths``.

    No random generation happens here — replay is exactly as deterministic
    as the stored specs, which is what makes the committed regression
    corpus a tier-1 test.
    """
    began = time.monotonic()
    specs: List[CaseSpec] = []
    for path in paths:
        specs.extend(_specs_from_file(Path(path)))
    payloads = [s.to_dict() for s in specs]
    records = map_tasks(_run_payload, payloads, jobs=jobs, keys=payloads)
    _publish_metrics(records)
    report = SuiteReport(cases=len(records), records=records)
    if corpus_path is not None:
        _write_corpus(corpus_path, records)
        report.corpus_path = str(corpus_path)
    report.elapsed_s = time.monotonic() - began
    return report
