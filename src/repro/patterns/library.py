"""The paper's benchmark access patterns (Fig. 3 plus Median and Gaussian).

Each factory returns a fresh :class:`~repro.core.pattern.Pattern` whose
element count matches the paper: LoG(13), Canny(25), Prewitt(8), SE(5),
Sobel3D(26), Median(7), Gaussian(9).  The expected bank counts under both
algorithms are recorded in :data:`EXPECTED_BANKS` and asserted by the test
suite, so any drift in the shapes breaks loudly.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Tuple

import numpy as np

from ..core.pattern import Pattern
from . import kernels


def log_pattern() -> Pattern:
    """LoG edge-detection pattern: 13 nonzero taps of the 5×5 kernel."""
    return Pattern.from_kernel(kernels.LOG_KERNEL, name="log")


def canny_pattern() -> Pattern:
    """Canny smoothing pattern: the full 5×5 window (25 taps)."""
    return Pattern.from_kernel(kernels.CANNY_SMOOTHING_KERNEL, name="canny")


def prewitt_pattern() -> Pattern:
    """Prewitt pattern: union of vertical and horizontal kernels (8 taps).

    The paper notes Prewitt "includes both vertical and horizontal kernels,
    which form the pattern" — their nonzero sets cover the 3×3 window minus
    the shared zero center.
    """
    vertical = Pattern.from_kernel(kernels.PREWITT_VERTICAL, name="prewitt_v")
    horizontal = Pattern.from_kernel(kernels.PREWITT_HORIZONTAL, name="prewitt_h")
    return vertical.union(horizontal, name="prewitt")


def se_pattern() -> Pattern:
    """Morphological structure element: the 3×3 cross (5 taps)."""
    return Pattern.from_mask(kernels.SE_MASK, name="se")


def sobel3d_pattern() -> Pattern:
    """3-D Sobel pattern: the 3×3×3 cube minus its center (26 taps)."""
    kernel = kernels.sobel_3d_kernel()
    offsets = [
        (i, j, k)
        for i, j, k in itertools.product(range(3), repeat=3)
        if kernel[i, j, k] != 0
    ]
    return Pattern(offsets, name="sobel3d")


def median_pattern() -> Pattern:
    """7-point median window (cross, 5-tall vertical × 3-wide horizontal)."""
    return Pattern.from_mask(kernels.MEDIAN_MASK, name="median")


def gaussian_pattern() -> Pattern:
    """9-point ring-plus-center Gaussian sampling pattern."""
    return Pattern.from_mask(kernels.GAUSSIAN_RING_MASK, name="gaussian")


def sobel2d_pattern() -> Pattern:
    """2-D Sobel pattern (8 taps), used by the workload examples."""
    x = Pattern.from_kernel(kernels.SOBEL_X, name="sobel_x")
    y = Pattern.from_kernel(kernels.SOBEL_Y, name="sobel_y")
    return x.union(y, name="sobel2d")


#: Factories for the seven Table 1 benchmarks, in the paper's row order.
BENCHMARKS: Dict[str, Callable[[], Pattern]] = {
    "log": log_pattern,
    "canny": canny_pattern,
    "prewitt": prewitt_pattern,
    "se": se_pattern,
    "sobel3d": sobel3d_pattern,
    "median": median_pattern,
    "gaussian": gaussian_pattern,
}

#: Expected element counts per benchmark (the paper's bracketed numbers).
EXPECTED_SIZES: Dict[str, int] = {
    "log": 13,
    "canny": 25,
    "prewitt": 8,
    "se": 5,
    "sobel3d": 26,
    "median": 7,
    "gaussian": 9,
}

#: Expected bank counts (ours, LTB) from Table 1.
EXPECTED_BANKS: Dict[str, Tuple[int, int]] = {
    "log": (13, 13),
    "canny": (25, 25),
    "prewitt": (9, 9),
    "se": (5, 5),
    "sobel3d": (27, 27),
    "median": (8, 7),
    "gaussian": (13, 10),
}

#: Image resolutions used for the Table 1 storage columns, (w_0, w_1).
RESOLUTIONS: Dict[str, Tuple[int, int]] = {
    "SD": (640, 480),
    "HD": (1280, 720),
    "FullHD": (1920, 1080),
    "WQXGA": (2560, 1600),
    "4K": (3840, 2160),
}

#: Third-dimension depth for the Sobel(3D) benchmark ("400 samples").
SOBEL3D_DEPTH = 400


def benchmark_pattern(name: str) -> Pattern:
    """Look up one of the seven Table 1 patterns by name (case-insensitive)."""
    key = name.lower()
    if key not in BENCHMARKS:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {sorted(BENCHMARKS)}"
        )
    return BENCHMARKS[key]()


def benchmark_shape(name: str, resolution: str) -> Tuple[int, ...]:
    """Array shape for a benchmark at a named resolution.

    2-D benchmarks use ``(width, height)`` as in the paper (so the padded
    dimension ``w_{n-1}`` is the vertical resolution — 480, 720, ...);
    Sobel(3D) appends the 400-sample third dimension, which becomes the
    padded one.
    """
    if resolution not in RESOLUTIONS:
        raise KeyError(
            f"unknown resolution {resolution!r}; available: {sorted(RESOLUTIONS)}"
        )
    base = RESOLUTIONS[resolution]
    if name.lower() == "sobel3d":
        return base + (SOBEL3D_DEPTH,)
    return base


def all_benchmarks() -> List[Tuple[str, Pattern]]:
    """(name, pattern) for every Table 1 benchmark, in row order."""
    return [(name, factory()) for name, factory in BENCHMARKS.items()]


def kernel_for(name: str) -> "np.ndarray":
    """The numeric kernel whose nonzeros induce the named pattern."""
    mapping = {
        "log": kernels.as_array(kernels.LOG_KERNEL),
        "canny": kernels.as_array(kernels.CANNY_SMOOTHING_KERNEL),
        "se": kernels.as_array(kernels.SE_MASK),
        "median": kernels.as_array(kernels.MEDIAN_MASK),
        "gaussian": kernels.as_array(kernels.GAUSSIAN_RING_KERNEL),
        "sobel3d": kernels.sobel_3d_kernel(),
    }
    key = name.lower()
    if key == "prewitt":
        # The pattern is the union of both operators; expose the vertical
        # one as the representative compute kernel.
        return kernels.as_array(kernels.PREWITT_VERTICAL)
    if key not in mapping:
        raise KeyError(f"no kernel recorded for benchmark {name!r}")
    return mapping[key]
