"""Numeric convolution kernels for the benchmark access patterns.

The partitioner only cares about *which* taps are nonzero (the pattern
shape); the functional simulator and the example applications also need the
tap *weights* to compute real convolutions.  This module holds both.

The LoG kernel is the paper's Fig. 1(a) verbatim.  Canny here denotes the
5×5 Gaussian-smoothing stage of the Canny detector (all 25 taps nonzero,
matching the paper's 25-element pattern).  Prewitt/Sobel are the standard
operators; the 3-D Sobel extends the 2-D operator along a third axis.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

#: Paper Fig. 1(a): 5×5 Laplacian-of-Gaussian kernel (13 nonzero taps).
LOG_KERNEL: Tuple[Tuple[int, ...], ...] = (
    (0, 0, -1, 0, 0),
    (0, -1, -2, -1, 0),
    (-1, -2, 16, -2, -1),
    (0, -1, -2, -1, 0),
    (0, 0, -1, 0, 0),
)

#: 5×5 binomial Gaussian used by the smoothing stage of Canny (25 nonzeros).
CANNY_SMOOTHING_KERNEL: Tuple[Tuple[int, ...], ...] = tuple(
    tuple(int(a * b) for b in (1, 4, 6, 4, 1)) for a in (1, 4, 6, 4, 1)
)

#: Standard Prewitt operators.  Their union touches all 3×3 taps but the
#: center (8 elements): the vertical kernel's zero column and the horizontal
#: kernel's zero row intersect exactly at the center.
PREWITT_VERTICAL: Tuple[Tuple[int, ...], ...] = (
    (-1, 0, 1),
    (-1, 0, 1),
    (-1, 0, 1),
)
PREWITT_HORIZONTAL: Tuple[Tuple[int, ...], ...] = (
    (-1, -1, -1),
    (0, 0, 0),
    (1, 1, 1),
)

#: Standard 2-D Sobel operators (used by workloads; not a Table 1 pattern).
SOBEL_X: Tuple[Tuple[int, ...], ...] = (
    (-1, 0, 1),
    (-2, 0, 2),
    (-1, 0, 1),
)
SOBEL_Y: Tuple[Tuple[int, ...], ...] = (
    (-1, -2, -1),
    (0, 0, 0),
    (1, 2, 1),
)

#: Morphological structure element from Zhao et al. (paper ref [11]):
#: the 3×3 cross (5 elements).
SE_MASK: Tuple[Tuple[int, ...], ...] = (
    (0, 1, 0),
    (1, 1, 1),
    (0, 1, 0),
)

#: 7-point median-filter window: a cross with a 5-tall vertical arm and a
#: 3-wide horizontal arm.  The paper uses a 7-element median pattern but
#: does not draw it; this shape reproduces Table 1's bank counts (ours 8,
#: LTB 7) — see DESIGN.md §3.
MEDIAN_MASK: Tuple[Tuple[int, ...], ...] = (
    (0, 1, 0),
    (0, 1, 0),
    (1, 1, 1),
    (0, 1, 0),
    (0, 1, 0),
)

#: 9-point ring-plus-center Gaussian sampling: eight taps on a radius-2
#: ring around the center tap, a sparse approximation of an isotropic
#: Gaussian.  Reproduces Table 1's bank counts (ours 13, LTB 10) — see
#: DESIGN.md §3.  Weights follow exp(-r²/2σ²) with σ=2, scaled to ints.
GAUSSIAN_RING_MASK: Tuple[Tuple[int, ...], ...] = (
    (0, 1, 0, 1, 0),
    (1, 0, 0, 0, 1),
    (0, 0, 1, 0, 0),
    (1, 0, 0, 0, 1),
    (0, 1, 0, 1, 0),
)
GAUSSIAN_RING_KERNEL: Tuple[Tuple[int, ...], ...] = (
    (0, 2, 0, 2, 0),
    (2, 0, 0, 0, 2),
    (0, 0, 8, 0, 0),
    (2, 0, 0, 0, 2),
    (0, 2, 0, 2, 0),
)


def sobel_3d_kernel() -> "np.ndarray":
    """3×3×3 Sobel-style gradient kernel: 26 nonzero taps (zero center).

    Built as the outer product of a derivative stencil ``(-1, 0, 1)`` along
    the third axis with a 2-D smoothing plane, then symmetrized so that all
    taps except the center are nonzero — matching the paper's 26-element
    Sobel(3D) pattern (Fig. 3(e)).
    """
    smooth = np.array([[1, 2, 1], [2, 4, 2], [1, 2, 1]], dtype=np.int64)
    derive = np.array([-1, 0, 1], dtype=np.int64)
    kernel = derive[:, None, None] * smooth[None, :, :]
    # The middle slice is all zero; fill it with a Laplacian-style plane
    # whose only zero is the center, giving the 26-tap pattern.
    middle = np.array([[1, 1, 1], [1, 0, 1], [1, 1, 1]], dtype=np.int64)
    kernel[1] = middle
    return kernel


def as_array(kernel: Tuple[Tuple[int, ...], ...]) -> "np.ndarray":
    """Convert a tuple-of-tuples kernel to a NumPy int array."""
    return np.asarray(kernel, dtype=np.int64)


def nonzero_count(kernel) -> int:
    """Number of nonzero taps (the pattern size the kernel induces)."""
    return int(np.count_nonzero(np.asarray(kernel)))


def all_kernels() -> List[Tuple[str, "np.ndarray"]]:
    """Name → kernel array for every 2-D kernel shipped here."""
    return [
        ("log", as_array(LOG_KERNEL)),
        ("canny", as_array(CANNY_SMOOTHING_KERNEL)),
        ("prewitt_v", as_array(PREWITT_VERTICAL)),
        ("prewitt_h", as_array(PREWITT_HORIZONTAL)),
        ("sobel_x", as_array(SOBEL_X)),
        ("sobel_y", as_array(SOBEL_Y)),
        ("se", as_array(SE_MASK)),
        ("median", as_array(MEDIAN_MASK)),
        ("gaussian_ring", as_array(GAUSSIAN_RING_KERNEL)),
    ]
