"""Extended pattern zoo: shapes from the wider stencil/vision literature.

Beyond the paper's seven benchmarks, these patterns exercise regimes the
Table 1 set does not: dilated taps (large bounding box, few elements),
separable passes (1-D lines), block-matching windows (dense rectangles at
an offset), and high-order finite-difference stars.  Used by the ablation
benches and available to users as ready-made shapes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from ..core.pattern import Pattern
from ..errors import PatternError
from .generators import cross, line, rectangle


def dilated_cross(arm: int = 2, dilation: int = 2) -> Pattern:
    """A 5-point cross with gaps: taps at multiples of ``dilation``.

    Dilated (à-trous) convolutions read widely spaced taps — small ``m``,
    big bounding box, the regime where the mixed-radix α is least tight.
    """
    if arm < 1 or dilation < 1:
        raise PatternError(f"arm and dilation must be positive, got {arm}, {dilation}")
    offsets = {(0, 0)}
    for step in range(1, arm + 1):
        d = step * dilation
        offsets.update({(d, 0), (-d, 0), (0, d), (0, -d)})
    return Pattern(offsets, name=f"dilated_cross{arm}d{dilation}")


def separable_pair() -> Tuple[Pattern, Pattern]:
    """The two 1-D passes of a separable 5-tap filter (rows then columns).

    Separable implementations replace a 2-D window with two line reads —
    each trivially bankable with ``m`` banks along one axis.
    """
    horizontal = line(5, 1, 2, name="sep_h")
    vertical = line(5, 0, 2, name="sep_v")
    return horizontal, vertical


def block_match(block: int = 4) -> Pattern:
    """A dense ``block × block`` window (motion-estimation SAD block)."""
    if block < 1:
        raise PatternError(f"block must be positive, got {block}")
    return rectangle((block, block), name=f"block{block}x{block}")


def fd_star(order: int = 4) -> Pattern:
    """High-order central finite-difference star (order/2 arms per axis)."""
    if order < 2 or order % 2:
        raise PatternError(f"order must be even and >= 2, got {order}")
    return cross(order // 2, 2, name=f"fd_star{order}")


def roberts() -> Pattern:
    """Roberts cross operator: both 2×2 diagonal kernels (4 taps)."""
    return Pattern([(0, 0), (0, 1), (1, 0), (1, 1)], name="roberts")


def kirsch() -> Pattern:
    """Kirsch compass operator: the full 3×3 ring plus center (9 taps)."""
    return rectangle((3, 3), name="kirsch")


def bilinear_taps() -> Pattern:
    """Bilinear interpolation: the 2×2 neighbourhood (4 taps)."""
    return Pattern([(0, 0), (0, 1), (1, 0), (1, 1)], name="bilinear")


def sad_window_pair(block: int = 4, displacement: int = 2) -> Pattern:
    """Current block + displaced candidate block, read together.

    Motion estimation reads two dense blocks per iteration; their union is
    a disjoint two-rectangle pattern — a shape with two far-apart clusters
    the single-window benchmarks never produce.
    """
    current = rectangle((block, block))
    candidate = current.translated((0, block + displacement))
    return current.union(candidate, name=f"sad{block}+{displacement}")


#: Name → factory for the whole zoo (used by ablation benches).
ZOO: Dict[str, Callable[[], Pattern]] = {
    "dilated_cross": dilated_cross,
    "block_match": block_match,
    "fd_star": fd_star,
    "roberts": roberts,
    "kirsch": kirsch,
    "bilinear": bilinear_taps,
    "sad_pair": sad_window_pair,
}


def zoo_patterns() -> List[Tuple[str, Pattern]]:
    """All zoo patterns, instantiated with defaults."""
    return [(name, factory()) for name, factory in ZOO.items()]
