"""Parametric and random pattern generators.

Used by property-based tests (shapes the paper never drew), by ablation
benchmarks (how does the bank-count gap scale with pattern size and
dimensionality?), and by users banking their own kernels.
All randomness is seeded for reproducibility.
"""

from __future__ import annotations

import itertools
import random
from typing import List, Sequence, Tuple

from ..core.pattern import Pattern
from ..errors import PatternError


def rectangle(shape: Sequence[int], name: str = "") -> Pattern:
    """Full dense window of the given shape (e.g. ``(3, 3)`` → 9 taps)."""
    dims = tuple(int(w) for w in shape)
    if any(w <= 0 for w in dims):
        raise PatternError(f"rectangle shape must be positive, got {dims}")
    offsets = list(itertools.product(*(range(w) for w in dims)))
    return Pattern(offsets, name=name or f"rect{'x'.join(map(str, dims))}")


def line(length: int, dim: int, ndim: int, name: str = "") -> Pattern:
    """``length`` consecutive taps along axis ``dim`` of an ``ndim``-D array."""
    if length <= 0:
        raise PatternError(f"line length must be positive, got {length}")
    if not 0 <= dim < ndim:
        raise PatternError(f"dim {dim} out of range for {ndim} dimensions")
    offsets = []
    for i in range(length):
        vec = [0] * ndim
        vec[dim] = i
        offsets.append(tuple(vec))
    return Pattern(offsets, name=name or f"line{length}d{dim}")


def cross(arm: int, ndim: int = 2, name: str = "") -> Pattern:
    """Axis-aligned cross: center plus ``arm`` taps in both directions per axis.

    ``cross(1, 2)`` is the 5-point von Neumann stencil; ``cross(2, 2)`` the
    9-point star used by higher-order finite differences.
    """
    if arm < 0:
        raise PatternError(f"arm must be non-negative, got {arm}")
    center = tuple(0 for _ in range(ndim))
    offsets = {center}
    for axis in range(ndim):
        for step in range(1, arm + 1):
            for sign in (1, -1):
                vec = [0] * ndim
                vec[axis] = sign * step
                offsets.add(tuple(vec))
    return Pattern(offsets, name=name or f"cross{arm}n{ndim}")


def diamond(radius: int, ndim: int = 2, name: str = "") -> Pattern:
    """All offsets with L1 norm ≤ ``radius`` (the diamond / von Neumann ball)."""
    if radius < 0:
        raise PatternError(f"radius must be non-negative, got {radius}")
    span = range(-radius, radius + 1)
    offsets = [
        vec
        for vec in itertools.product(span, repeat=ndim)
        if sum(abs(c) for c in vec) <= radius
    ]
    return Pattern(offsets, name=name or f"diamond{radius}n{ndim}")


def checkerboard(shape: Sequence[int], parity: int = 0, name: str = "") -> Pattern:
    """Taps of one checkerboard color inside a dense window."""
    dims = tuple(int(w) for w in shape)
    offsets = [
        vec
        for vec in itertools.product(*(range(w) for w in dims))
        if sum(vec) % 2 == parity % 2
    ]
    if not offsets:
        raise PatternError(f"checkerboard over {dims} parity {parity} is empty")
    return Pattern(offsets, name=name or "checkerboard")


def random_pattern(
    size: int,
    box: Sequence[int],
    seed: int = 0,
    name: str = "",
) -> Pattern:
    """``size`` distinct offsets sampled uniformly from the given box.

    Deterministic for a fixed ``seed``.  Raises if the box cannot hold
    ``size`` distinct points.
    """
    dims = tuple(int(w) for w in box)
    capacity = 1
    for w in dims:
        capacity *= w
    if size > capacity:
        raise PatternError(f"cannot place {size} distinct taps in a box of {capacity}")
    if size <= 0:
        raise PatternError(f"size must be positive, got {size}")
    rng = random.Random(seed)
    chosen: set = set()
    while len(chosen) < size:
        chosen.add(tuple(rng.randrange(w) for w in dims))
    return Pattern(chosen, name=name or f"random{size}s{seed}")


def sliding_windows(pattern: Pattern, steps: int) -> List[Pattern]:
    """The pattern translated along the last axis ``0 … steps−1`` times.

    Models unrolled loop iterations: the union of consecutive windows is
    what a ``steps``-way unrolled inner loop accesses per cycle.
    """
    if steps <= 0:
        raise PatternError(f"steps must be positive, got {steps}")
    shift = [0] * pattern.ndim
    result = []
    for s in range(steps):
        shift[-1] = s
        result.append(pattern.translated(shift))
    return result


def unrolled(pattern: Pattern, factor: int, name: str = "") -> Pattern:
    """Union of ``factor`` consecutive windows: the unrolled-loop pattern."""
    windows = sliding_windows(pattern, factor)
    merged = windows[0]
    for w in windows[1:]:
        merged = merged.union(w)
    return merged.with_name(name or f"{pattern.name}x{factor}")


def grid_of_patterns(max_size: int, seed: int = 0) -> List[Tuple[str, Pattern]]:
    """A labelled sweep of generated patterns used by ablation benches."""
    suite: List[Tuple[str, Pattern]] = []
    for k in (2, 3, 4, 5):
        suite.append((f"rect{k}x{k}", rectangle((k, k))))
    for r in (1, 2, 3):
        suite.append((f"diamond{r}", diamond(r)))
        suite.append((f"cross{r}", cross(r)))
    for size in (4, 8, 12):
        if size <= max_size:
            suite.append(
                (f"rand{size}", random_pattern(size, (7, 7), seed=seed + size))
            )
    return suite
