"""Human-readable telemetry reports (span trees, conflict tables).

Rendering follows the same conventions as :mod:`repro.viz.ascii_art`
(``█``-bar charts, fixed-width label columns) but lives here so the obs
package stays importable without the viz/numpy stack.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .conflicts import ConflictTable
from .tracer import SpanRecord


def render_span_tree(records: Sequence[SpanRecord], width: int = 44) -> str:
    """Tree view of finished spans: name, wall-clock, op delta, attrs.

    Roots appear in start order; children nest under their parent with
    box-drawing guides.  ``width`` fixes the label column so durations
    align into a scannable column.
    """
    if not records:
        return "(no spans recorded — is observability enabled?)"
    by_parent: Dict[Optional[int], List[SpanRecord]] = {}
    for record in records:
        by_parent.setdefault(record.parent_id, []).append(record)
    for children in by_parent.values():
        children.sort(key=lambda r: r.start)

    lines: List[str] = []

    def visit(record: SpanRecord, prefix: str, tail: bool, root: bool) -> None:
        connector = "" if root else ("└─ " if tail else "├─ ")
        label = prefix + connector + record.name
        detail = f"{record.duration_ms:10.3f} ms"
        if record.ops:
            detail += f"  ops={record.ops}"
        for key, value in record.attrs.items():
            detail += f"  {key}={value}"
        lines.append(f"{label:<{width}}{detail}")
        children = by_parent.get(record.span_id, [])
        child_prefix = prefix if root else prefix + ("   " if tail else "│  ")
        for i, child in enumerate(children):
            visit(child, child_prefix, i == len(children) - 1, root=False)

    for i, root in enumerate(by_parent.get(None, [])):
        visit(root, "", tail=i == len(by_parent.get(None, [])) - 1, root=True)
    return "\n".join(lines)


def render_conflict_report(
    table: ConflictTable, n_banks: int | None = None, width: int = 40
) -> str:
    """Per-bank conflict heatmap plus the hottest offending offset pairs.

    ``n_banks`` pads the bank axis so conflict-free banks still show a
    (zero) row — the absence of conflicts is information too.
    """
    banks = sorted(table.per_bank)
    top = (max(banks) + 1) if banks else 0
    if n_banks is not None:
        top = max(top, n_banks)
    peak = max(table.per_bank.values(), default=0)

    lines: List[str] = [
        f"bank conflicts ({table.iterations} iterations, "
        f"{table.ports_per_bank} port(s)/bank, "
        f"{table.total_conflicts} failed claims)"
    ]
    for bank in range(top):
        count = table.per_bank.get(bank, 0)
        filled = round(count / peak * width) if peak else 0
        bar = "█" * filled
        lines.append(f"  bank {bank:3d} |{bar:<{width}}| {count}")

    pairs = table.hottest_pairs()
    if pairs:
        lines.append("hottest pattern-offset pairs:")
        for (a, b), count in pairs:
            lines.append(f"  {a} <-> {b}: {count} conflicting iteration(s)")
    else:
        lines.append("no conflicting pairs: the sweep was fully parallel")

    check = table.verify_consistent()
    if table.observed_bank_conflicts is not None:
        lines.append(
            "attribution vs hardware counters: "
            + ("consistent" if check else "MISMATCH")
        )
    return "\n".join(lines)


def render_cycle_histogram(histogram: Dict[int, int], width: int = 40) -> str:
    """Bar view of cycles-per-iteration counts (1 cycle = conflict-free)."""
    if not histogram:
        return "(empty histogram)"
    peak = max(histogram.values())
    lines = []
    for cycles in sorted(histogram):
        count = histogram[cycles]
        filled = round(count / peak * width) if peak else 0
        lines.append(f"  {cycles} cycle(s) |{'█' * filled:<{width}}| {count}")
    return "\n".join(lines)
