"""The global observability switch.

Telemetry must be free when nobody is looking: every instrumented hot path
(the solver's N-selection loop, the simulator's sweep) guards its span and
counter work behind :func:`enabled`, which is a single module-level boolean
read.  The switch starts from the ``REPRO_OBS`` environment variable
(``1``/``true``/``yes``/``on`` enable it) and can be flipped at runtime via
:func:`enable` / :func:`disable` — e.g. ``repro-profile`` enables it for the
duration of the run regardless of the environment.
"""

from __future__ import annotations

import os

_FALSY = ("", "0", "false", "no", "off")


def _from_env() -> bool:
    return os.environ.get("REPRO_OBS", "").strip().lower() not in _FALSY


_enabled: bool = _from_env()


def enabled() -> bool:
    """True when spans and sim-side attribution should be recorded."""
    return _enabled


def enable() -> None:
    """Turn observability on for this process."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn observability off (instrumented paths revert to no-ops)."""
    global _enabled
    _enabled = False


def reset_from_env() -> None:
    """Re-read ``REPRO_OBS`` (used by tests to restore a known state)."""
    global _enabled
    _enabled = _from_env()
