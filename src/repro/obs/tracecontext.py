"""Request-scoped trace identity, propagated across tasks and threads.

A *trace id* names one logical request end to end: the serve layer mints
one per HTTP request, the coalescer carries it into the batch executor,
and :func:`repro.eval.parallel.run_parallel` ships it into pool workers —
so every span recorded anywhere on behalf of that request can be grouped
back into a single tree (see :mod:`repro.obs.reqtrace`).

The identity lives in a :class:`contextvars.ContextVar`, not thread-local
storage, because the serve path interleaves many requests on one asyncio
event loop: each task gets its own context copy, while explicit
:func:`trace` blocks cover the executor threads and worker processes that
contexts do not cross on their own.

Trace ids are opaque 16-hex-char strings; ``None`` means "not inside any
traced request" and is the ambient default everywhere.
"""

from __future__ import annotations

import contextvars
import os
from contextlib import contextmanager
from typing import Iterator, Optional

_TRACE_ID: "contextvars.ContextVar[Optional[str]]" = contextvars.ContextVar(
    "repro_trace_id", default=None
)


def new_trace_id() -> str:
    """A fresh random trace id (16 hex chars, collision-safe per process)."""
    return os.urandom(8).hex()


def current_trace_id() -> Optional[str]:
    """The trace id of the enclosing :func:`trace` block, or ``None``."""
    return _TRACE_ID.get()


@contextmanager
def trace(trace_id: Optional[str] = None) -> Iterator[str]:
    """Run a block under ``trace_id`` (minted fresh when omitted).

    Spans opened inside the block record the id; nested blocks shadow and
    restore it, so handing a request off to helper code that opens its own
    trace cannot leak identity across requests.
    """
    tid = trace_id if trace_id is not None else new_trace_id()
    token = _TRACE_ID.set(tid)
    try:
        yield tid
    finally:
        _TRACE_ID.reset(token)
