"""repro.obs — zero-dependency observability: spans, metrics, attribution.

The telemetry layer behind every performance claim in the repo:

* :func:`span` / :func:`tracer` — nested wall-clock + op-count spans,
  recorded only when observability is on (``REPRO_OBS=1`` or
  :func:`enable`), free otherwise.
* :func:`registry` — process-wide counters, gauges and histograms
  (always live; this is where Table 1 and the benchmarks put the numbers
  they print).
* :func:`trace` / :func:`current_trace_id` — request-scoped trace
  identity that follows work across asyncio tasks, executor threads and
  pool workers, so one HTTP request's spans regroup into one tree
  (:func:`build_trace_tree`, :class:`TraceBuffer`).
* :class:`LogHistogram` — O(1), bounded-memory latency distributions
  with p50/p95/p99/p999 and Prometheus cumulative-``le`` export.
* :class:`ConflictTable` — per-bank and per-offset-pair bank-conflict
  attribution filled by the cycle simulator.
* :mod:`repro.obs.export` — JSON-lines span streams and JSON/CSV metric
  snapshots (the ``--emit-metrics`` artifact).
* :mod:`repro.obs.report` — span-tree and conflict-heatmap text reports
  (the ``repro-profile`` output).

Span/metric naming conventions are documented in ``docs/OBSERVABILITY.md``.
"""

from .conflicts import ConflictTable, failed_claims
from .export import (
    SCHEMA,
    emit_metrics,
    metrics_document,
    metrics_to_csv,
    spans_to_jsonl,
    to_prometheus_text,
    write_metrics_csv,
    write_metrics_json,
    write_metrics_prometheus,
    write_spans_jsonl,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    LogHistogram,
    MetricsRegistry,
    TrackedOpCounter,
    registry,
)
from .report import render_conflict_report, render_cycle_histogram, render_span_tree
from .reqtrace import TraceBuffer, build_trace_tree
from .state import disable, enable, enabled, reset_from_env
from .tracecontext import current_trace_id, new_trace_id, trace
from .tracer import NULL_SPAN, Span, SpanRecord, Tracer, span, tracer


def reset() -> None:
    """Clear all recorded telemetry (spans and metrics), keep the switch."""
    tracer().reset()
    registry().reset()


__all__ = [
    "ConflictTable",
    "failed_claims",
    "SCHEMA",
    "emit_metrics",
    "metrics_document",
    "metrics_to_csv",
    "spans_to_jsonl",
    "to_prometheus_text",
    "write_metrics_csv",
    "write_metrics_json",
    "write_metrics_prometheus",
    "write_spans_jsonl",
    "Counter",
    "Gauge",
    "Histogram",
    "LogHistogram",
    "MetricsRegistry",
    "TrackedOpCounter",
    "registry",
    "render_conflict_report",
    "render_cycle_histogram",
    "render_span_tree",
    "TraceBuffer",
    "build_trace_tree",
    "disable",
    "enable",
    "enabled",
    "reset_from_env",
    "reset",
    "current_trace_id",
    "new_trace_id",
    "trace",
    "NULL_SPAN",
    "Span",
    "SpanRecord",
    "Tracer",
    "span",
    "tracer",
]
