"""Exporters: JSON-lines span events, JSON/CSV metric snapshots.

Three formats, one schema:

* ``*.jsonl`` — one JSON object per line, each a finished span event
  (streamable; what a trace viewer or ``jq`` pipeline consumes).
* ``*.json``  — a single document with top-level keys ``schema``,
  ``counters``, ``gauges``, ``histograms``, ``spans`` (plus any harness
  extras, e.g. a ``conflicts`` table).  This is the ``--emit-metrics``
  artifact CI diffs between runs.
* ``*.csv``   — the flat ``kind,name,field,value`` projection of the same
  snapshot for spreadsheet users.
* ``*.prom``  — the Prometheus text exposition format
  (:func:`to_prometheus_text`), which is also what the ``repro-serve``
  ``/metrics`` endpoint returns so a stock Prometheus scraper can watch a
  running partitioning service.

Everything here is pure stdlib (``json``/``io``/``re``) so the exporters
work in the most minimal environment the package supports.
"""

from __future__ import annotations

import json
import math
import re
from typing import Any, Dict, List, Optional, Sequence

from .conflicts import ConflictTable
from .metrics import MetricsRegistry, registry as _global_registry
from .tracer import SpanRecord, Tracer, tracer as _global_tracer

#: Version tag for the metrics-document layout.
SCHEMA = "repro.obs/v1"


def spans_to_jsonl(records: Sequence[SpanRecord]) -> str:
    """Render finished spans as a JSON-lines event stream."""
    return "\n".join(json.dumps(r.to_dict(), sort_keys=True) for r in records)


def write_spans_jsonl(path: str, trace: Tracer | None = None) -> None:
    """Write the tracer's finished spans to ``path`` as JSON lines."""
    records = (trace or _global_tracer()).records()
    with open(path, "w") as handle:
        text = spans_to_jsonl(records)
        handle.write(text + ("\n" if text else ""))


def metrics_document(
    metrics: MetricsRegistry | None = None,
    trace: Tracer | None = None,
    conflicts: ConflictTable | None = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the single-document snapshot shared by JSON export and CI.

    Histogram entries carry scalar summaries for both histogram kinds;
    log-bucketed histograms additionally include their cumulative
    ``buckets`` (``[le, count]`` pairs, the last ``le`` rendered as the
    string ``"+Inf"`` to stay valid JSON).
    """
    reg = metrics or _global_registry()
    snapshot = reg.snapshot()
    histograms = dict(snapshot["histograms"])
    for name, hist in reg.log_histograms().items():
        histograms[name] = dict(histograms.get(name, hist.summary()))
        histograms[name]["buckets"] = [
            ["+Inf" if math.isinf(bound) else bound, count]
            for bound, count in hist.buckets()
        ]
    document: Dict[str, Any] = {
        "schema": SCHEMA,
        "counters": snapshot["counters"],
        "gauges": snapshot["gauges"],
        "histograms": histograms,
        "spans": [r.to_dict() for r in (trace or _global_tracer()).records()],
    }
    if conflicts is not None:
        document["conflicts"] = conflicts.to_dict()
    if extra:
        document.update(extra)
    return document


def write_metrics_json(
    path: str,
    metrics: MetricsRegistry | None = None,
    trace: Tracer | None = None,
    conflicts: ConflictTable | None = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Write the snapshot document to ``path``; returns what was written."""
    document = metrics_document(metrics, trace, conflicts, extra)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document


def metrics_to_csv(metrics: MetricsRegistry | None = None) -> str:
    """Flatten a registry snapshot to ``kind,name,field,value`` rows."""
    snapshot = (metrics or _global_registry()).snapshot()
    rows: List[str] = ["kind,name,field,value"]
    for name, value in snapshot["counters"].items():
        rows.append(f"counter,{name},value,{value}")
    for name, value in snapshot["gauges"].items():
        rows.append(f"gauge,{name},value,{value}")
    for name, summary in snapshot["histograms"].items():
        for fld, value in summary.items():
            rows.append(f"histogram,{name},{fld},{value}")
    return "\n".join(rows)


def write_metrics_csv(path: str, metrics: MetricsRegistry | None = None) -> None:
    """Write the flat CSV projection of the registry to ``path``."""
    with open(path, "w") as handle:
        handle.write(metrics_to_csv(metrics) + "\n")


_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """Map a dotted registry name onto the Prometheus grammar.

    ``solve.cache.hits`` → ``repro_solve_cache_hits``.  The ``repro_``
    prefix namespaces the whole registry and guarantees the first character
    is a letter even for exotic registry names.
    """
    return "repro_" + _PROM_INVALID.sub("_", name)


def _format_le(bound: float) -> str:
    """Prometheus ``le`` label for a bucket upper bound."""
    return "+Inf" if math.isinf(bound) else format(bound, ".12g")


def to_prometheus_text(metrics: MetricsRegistry | None = None) -> str:
    """Render a registry snapshot in the Prometheus text exposition format.

    Counters follow the ``_total`` naming convention.  Raw histograms
    export as summaries (``{quantile="0.5"|"0.95"}`` sample lines plus
    ``_sum`` / ``_count``) with the observed maximum as a companion
    ``_max`` gauge — they keep nearest-rank percentiles, not buckets, so a
    summary is the honest mapping.  Log-bucketed histograms export as true
    Prometheus histograms: cumulative ``_bucket{le="..."}`` series with
    monotone non-decreasing counts ending in ``le="+Inf"``, plus ``_sum``
    and ``_count``.
    """
    reg = metrics or _global_registry()
    snapshot = reg.snapshot()
    log_histograms = reg.log_histograms()
    lines: List[str] = []
    for name, value in snapshot["counters"].items():
        prom = _prom_name(name) + "_total"
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {value}")
    for name, value in snapshot["gauges"].items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {value}")
    for name, summary in snapshot["histograms"].items():
        if name in log_histograms:
            continue
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} summary")
        lines.append(f'{prom}{{quantile="0.5"}} {summary["p50"]}')
        lines.append(f'{prom}{{quantile="0.95"}} {summary["p95"]}')
        lines.append(f"{prom}_sum {summary['sum']}")
        lines.append(f"{prom}_count {summary['count']}")
        lines.append(f"# TYPE {prom}_max gauge")
        lines.append(f"{prom}_max {summary['max']}")
    for name, hist in log_histograms.items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} histogram")
        for bound, cumulative in hist.buckets():
            lines.append(f'{prom}_bucket{{le="{_format_le(bound)}"}} {cumulative}')
        lines.append(f"{prom}_sum {hist.sum if hist.count else 0.0}")
        lines.append(f"{prom}_count {hist.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_metrics_prometheus(path: str, metrics: MetricsRegistry | None = None) -> None:
    """Write the Prometheus text projection of the registry to ``path``."""
    with open(path, "w") as handle:
        handle.write(to_prometheus_text(metrics))


def emit_metrics(
    path: Optional[str],
    conflicts: ConflictTable | None = None,
    extra: Optional[Dict[str, Any]] = None,
    announce: bool = True,
) -> Optional[str]:
    """The one ``--emit-metrics PATH`` implementation shared by every CLI.

    The suffix picks the format — ``.csv`` flat rows, ``.prom`` Prometheus
    text, anything else the JSON snapshot document (which is the only
    format that can carry ``conflicts``/``extra``).  ``None``/empty paths
    are a no-op so callers can pass the argparse value straight through.
    Returns the path written, or ``None``.
    """
    if not path:
        return None
    if path.endswith(".csv"):
        write_metrics_csv(path)
    elif path.endswith(".prom"):
        write_metrics_prometheus(path)
    else:
        write_metrics_json(path, conflicts=conflicts, extra=extra)
    if announce:
        print(f"metrics written to {path}")
    return path
