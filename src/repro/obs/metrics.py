"""Metrics registry: counters, gauges, and histograms with percentiles.

Where the tracer answers "where did the time go", the registry answers
"how much of everything happened": solver op counts, per-bank conflict
tallies, per-iteration cycle distributions, Table 1 numbers.  Three metric
kinds cover every consumer in the repo:

* :class:`Counter` — monotonically increasing totals (op counts, conflicts).
* :class:`Gauge` — last-value-wins observations (bank counts, improvements).
* :class:`Histogram` — full distributions with ``p50``/``p95``/``max``
  (cycles per iteration, solve times).

The registry *absorbs* the existing :class:`~repro.core.opcount.OpCounter`
protocol two ways: :meth:`MetricsRegistry.absorb_ops` merges a finished
counter's snapshot under a name prefix, and :meth:`MetricsRegistry.op_counter`
hands out a live :class:`TrackedOpCounter` that mirrors every charge into
registry counters while still satisfying every ``ops=`` parameter in the
solver APIs.

Unlike spans, registry operations are not gated on ``REPRO_OBS``: harnesses
that route their printed numbers through the registry (Table 1, the case
study) always populate it, so an ``--emit-metrics`` file carries the same
values the terminal shows.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Any, Dict, List, Optional, Tuple

from ..core.opcount import OpCounter


class Counter:
    """A monotonically increasing tally."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counters only go up; got increment {n}")
        self.value += n


class Gauge:
    """A last-value-wins observation."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """A value distribution summarized as count/sum/p50/p95/max."""

    __slots__ = ("_values",)

    def __init__(self) -> None:
        self._values: List[float] = []

    def observe(self, value: float, n: int = 1) -> None:
        """Record ``value`` ``n`` times (``n`` collapses histogram merges)."""
        if n < 1:
            raise ValueError(f"observation multiplicity must be >= 1, got {n}")
        self._values.extend([float(value)] * n)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def sum(self) -> float:
        return sum(self._values)

    @property
    def max(self) -> float:
        return max(self._values) if self._values else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, ``p`` in [0, 100]."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self._values:
            return 0.0
        ordered = sorted(self._values)
        rank = max(1, -(-len(ordered) * p // 100))  # ceil(n * p / 100)
        return ordered[int(rank) - 1]

    def summary(self) -> Dict[str, float]:
        """The exported shape: count, sum, mean, p50, p95, max."""
        count = self.count
        return {
            "count": count,
            "sum": self.sum,
            "mean": (self.sum / count) if count else 0.0,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "max": self.max,
        }


#: Default LogHistogram geometry: buckets at 0.001 * 2^i.  In milliseconds
#: that spans 1 µs to ~2 months with ~2x resolution, which is plenty for
#: latency data; values past the last bound land in an overflow bucket.
LOG_BUCKET_START = 1e-3
LOG_BUCKET_FACTOR = 2.0
LOG_BUCKET_COUNT = 48


class LogHistogram:
    """A log-bucketed distribution: O(1) observe, bounded memory.

    :class:`Histogram` keeps every raw sample, which is exact but grows
    without bound — fine for a bench harness, wrong for a server counting
    an unbounded request stream.  This primitive keeps a fixed array of
    geometrically spaced buckets plus exact ``count``/``sum``/``min``/
    ``max``, so every observation is an index increment and the memory
    footprint never changes.

    Quantiles come from the cumulative bucket counts: the reported value
    is the upper bound of the bucket containing the requested rank,
    clamped to the observed ``[min, max]`` — i.e. an over-estimate by at
    most one bucket ratio (2x by default), never an under-estimate.

    The bucket layout is exactly what the Prometheus *histogram* type
    wants (:meth:`buckets` yields cumulative ``le`` pairs), unlike the raw
    :class:`Histogram`, which exports as a summary.
    """

    __slots__ = ("_bounds", "_counts", "count", "sum", "min", "max")

    def __init__(
        self,
        start: float = LOG_BUCKET_START,
        factor: float = LOG_BUCKET_FACTOR,
        buckets: int = LOG_BUCKET_COUNT,
    ) -> None:
        if start <= 0 or factor <= 1 or buckets < 1:
            raise ValueError(
                f"need start > 0, factor > 1, buckets >= 1; "
                f"got ({start}, {factor}, {buckets})"
            )
        self._bounds: List[float] = [start * factor**i for i in range(buckets)]
        self._counts: List[int] = [0] * (buckets + 1)  # + overflow
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float, n: int = 1) -> None:
        if n < 1:
            raise ValueError(f"observation multiplicity must be >= 1, got {n}")
        value = float(value)
        self._counts[bisect_left(self._bounds, value)] += n
        self.count += n
        self.sum += value * n
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def percentile(self, p: float) -> float:
        """Bucket-resolution nearest-rank percentile, ``p`` in [0, 100]."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self.count:
            return 0.0
        rank = max(1, math.ceil(self.count * p / 100.0))
        cumulative = 0
        for idx, bucket_count in enumerate(self._counts):
            cumulative += bucket_count
            if cumulative >= rank:
                bound = self._bounds[idx] if idx < len(self._bounds) else self.max
                return min(max(bound, self.min), self.max)
        return self.max  # pragma: no cover - counts always sum to count

    def buckets(self) -> List[Tuple[float, int]]:
        """Cumulative ``(le_bound, count)`` pairs, ending with ``(inf, count)``."""
        pairs: List[Tuple[float, int]] = []
        cumulative = 0
        for bound, bucket_count in zip(self._bounds, self._counts):
            cumulative += bucket_count
            pairs.append((bound, cumulative))
        pairs.append((math.inf, cumulative + self._counts[-1]))
        return pairs

    def summary(self) -> Dict[str, float]:
        """The exported shape: count/sum/mean/min/max plus tail quantiles."""
        count = self.count
        return {
            "count": count,
            "sum": self.sum,
            "mean": (self.sum / count) if count else 0.0,
            "min": self.min if count else 0.0,
            "max": self.max if count else 0.0,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "p999": self.percentile(99.9),
        }

    # -- cross-process transport ------------------------------------------

    def to_dump(self) -> Dict[str, Any]:
        return {
            "bounds": [self._bounds[0], self._bounds[1] / self._bounds[0]]
            if len(self._bounds) > 1
            else [self._bounds[0], LOG_BUCKET_FACTOR],
            "counts": list(self._counts),
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }

    def merge_dump(self, dump: Dict[str, Any]) -> None:
        counts = dump["counts"]
        if len(counts) != len(self._counts):
            raise ValueError(
                f"cannot merge log histograms with different bucket layouts "
                f"({len(counts)} vs {len(self._counts)} buckets)"
            )
        added = 0
        for idx, n in enumerate(counts):
            self._counts[idx] += n
            added += n
        if not added:
            return
        self.count += added
        self.sum += dump["sum"]
        self.min = min(self.min, dump["min"])
        self.max = max(self.max, dump["max"])


class MetricsRegistry:
    """Thread-safe, name-keyed home for all three metric kinds."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._log_histograms: Dict[str, LogHistogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter()
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge()
            return metric

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            if name in self._log_histograms:
                raise ValueError(f"{name!r} is already a log histogram")
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram()
            return metric

    def log_histogram(self, name: str, **kwargs: Any) -> LogHistogram:
        """The :class:`LogHistogram` named ``name`` (created on first use).

        ``kwargs`` (``start``/``factor``/``buckets``) only apply on
        creation; later calls return the existing instance unchanged.
        """
        with self._lock:
            if name in self._histograms:
                raise ValueError(f"{name!r} is already a raw histogram")
            metric = self._log_histograms.get(name)
            if metric is None:
                metric = self._log_histograms[name] = LogHistogram(**kwargs)
            return metric

    def log_histograms(self) -> Dict[str, LogHistogram]:
        """Name-sorted snapshot of the log histograms (for exporters)."""
        with self._lock:
            return dict(sorted(self._log_histograms.items()))

    # -- OpCounter integration -------------------------------------------

    def absorb_ops(self, prefix: str, ops: OpCounter) -> None:
        """Merge a finished op counter under ``prefix`` (one counter per
        category plus ``<prefix>.total``)."""
        snapshot = ops.snapshot()
        for category, n in snapshot.items():
            self.counter(f"{prefix}.{category}").inc(n)
        self.counter(f"{prefix}.total").inc(sum(snapshot.values()))

    def op_counter(self, prefix: str) -> "TrackedOpCounter":
        """A live op counter mirroring every charge into this registry."""
        return TrackedOpCounter(self, prefix)

    # -- export -----------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Flat JSON-friendly view of everything recorded so far.

        Raw and log histograms share the ``histograms`` section — both
        summarize to scalars, log histograms just carry the extra
        ``min``/``p99``/``p999`` quantile fields (and export bucket
        detail separately, see :mod:`repro.obs.export`).
        """
        with self._lock:
            histograms = {k: h.summary() for k, h in self._histograms.items()}
            histograms.update(
                {k: h.summary() for k, h in self._log_histograms.items()}
            )
            return {
                "counters": {k: c.value for k, c in sorted(self._counters.items())},
                "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
                "histograms": dict(sorted(histograms.items())),
            }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._log_histograms.clear()

    # -- cross-process transport ------------------------------------------

    def dump(self, worker_id: Optional[str] = None) -> Dict[str, Any]:
        """Lossless, picklable export for shipping across process borders.

        Unlike :meth:`snapshot`, histograms carry their raw value lists
        (and log histograms their bucket counts) so the receiver can
        :meth:`merge` them without degrading percentiles.  ``worker_id``
        stamps the dump with its origin; the merging side then also
        publishes a ``worker.<id>.*`` namespaced copy of every metric, so
        per-worker skew survives the aggregation.
        """
        with self._lock:
            return {
                "worker_id": worker_id,
                "counters": {k: c.value for k, c in self._counters.items()},
                "gauges": {k: g.value for k, g in self._gauges.items()},
                "histograms": {
                    k: list(h._values) for k, h in self._histograms.items()
                },
                "log_histograms": {
                    k: h.to_dump() for k, h in self._log_histograms.items()
                },
            }

    def merge(self, dump: Dict[str, Any]) -> None:
        """Fold a :meth:`dump` from another process into this registry.

        Counters and histogram observations add; gauges are last-write-wins
        (the merge order is the caller's deterministic result order, so the
        outcome matches a serial run).  When the dump carries a
        ``worker_id``, every metric is *additionally* recorded under
        ``worker.<id>.<name>`` — the aggregate totals stay comparable to a
        serial run while the provenance stays inspectable.
        """
        worker = dump.get("worker_id")
        for name, value in dump.get("counters", {}).items():
            if value:
                self.counter(name).inc(value)
                if worker:
                    self.counter(f"worker.{worker}.{name}").inc(value)
        for name, value in dump.get("gauges", {}).items():
            self.gauge(name).set(value)
            if worker:
                self.gauge(f"worker.{worker}.{name}").set(value)
        for name, values in dump.get("histograms", {}).items():
            metric = self.histogram(name)
            for value in values:
                metric.observe(value)
            if worker:
                shadow = self.histogram(f"worker.{worker}.{name}")
                for value in values:
                    shadow.observe(value)
        for name, payload in dump.get("log_histograms", {}).items():
            self.log_histogram(name).merge_dump(payload)
            if worker:
                self.log_histogram(f"worker.{worker}.{name}").merge_dump(payload)


class TrackedOpCounter(OpCounter):
    """An :class:`OpCounter` whose charges also feed a metrics registry.

    Drop-in for any ``ops=`` parameter: algorithm code keeps calling
    ``ops.add()`` / ``ops.mod(n)`` and both the local snapshot *and* the
    registry's ``<prefix>.<category>`` counters advance.
    """

    def __init__(self, registry: MetricsRegistry, prefix: str) -> None:
        super().__init__()
        self._registry = registry
        self._prefix = prefix

    def charge(self, category: str, n: int = 1) -> None:
        super().charge(category, n)
        self._registry.counter(f"{self._prefix}.{category}").inc(n)
        self._registry.counter(f"{self._prefix}.total").inc(n)


_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _REGISTRY
