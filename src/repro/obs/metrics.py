"""Metrics registry: counters, gauges, and histograms with percentiles.

Where the tracer answers "where did the time go", the registry answers
"how much of everything happened": solver op counts, per-bank conflict
tallies, per-iteration cycle distributions, Table 1 numbers.  Three metric
kinds cover every consumer in the repo:

* :class:`Counter` — monotonically increasing totals (op counts, conflicts).
* :class:`Gauge` — last-value-wins observations (bank counts, improvements).
* :class:`Histogram` — full distributions with ``p50``/``p95``/``max``
  (cycles per iteration, solve times).

The registry *absorbs* the existing :class:`~repro.core.opcount.OpCounter`
protocol two ways: :meth:`MetricsRegistry.absorb_ops` merges a finished
counter's snapshot under a name prefix, and :meth:`MetricsRegistry.op_counter`
hands out a live :class:`TrackedOpCounter` that mirrors every charge into
registry counters while still satisfying every ``ops=`` parameter in the
solver APIs.

Unlike spans, registry operations are not gated on ``REPRO_OBS``: harnesses
that route their printed numbers through the registry (Table 1, the case
study) always populate it, so an ``--emit-metrics`` file carries the same
values the terminal shows.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List

from ..core.opcount import OpCounter


class Counter:
    """A monotonically increasing tally."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counters only go up; got increment {n}")
        self.value += n


class Gauge:
    """A last-value-wins observation."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """A value distribution summarized as count/sum/p50/p95/max."""

    __slots__ = ("_values",)

    def __init__(self) -> None:
        self._values: List[float] = []

    def observe(self, value: float, n: int = 1) -> None:
        """Record ``value`` ``n`` times (``n`` collapses histogram merges)."""
        if n < 1:
            raise ValueError(f"observation multiplicity must be >= 1, got {n}")
        self._values.extend([float(value)] * n)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def sum(self) -> float:
        return sum(self._values)

    @property
    def max(self) -> float:
        return max(self._values) if self._values else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, ``p`` in [0, 100]."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self._values:
            return 0.0
        ordered = sorted(self._values)
        rank = max(1, -(-len(ordered) * p // 100))  # ceil(n * p / 100)
        return ordered[int(rank) - 1]

    def summary(self) -> Dict[str, float]:
        """The exported shape: count, sum, mean, p50, p95, max."""
        count = self.count
        return {
            "count": count,
            "sum": self.sum,
            "mean": (self.sum / count) if count else 0.0,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "max": self.max,
        }


class MetricsRegistry:
    """Thread-safe, name-keyed home for all three metric kinds."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter()
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge()
            return metric

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram()
            return metric

    # -- OpCounter integration -------------------------------------------

    def absorb_ops(self, prefix: str, ops: OpCounter) -> None:
        """Merge a finished op counter under ``prefix`` (one counter per
        category plus ``<prefix>.total``)."""
        snapshot = ops.snapshot()
        for category, n in snapshot.items():
            self.counter(f"{prefix}.{category}").inc(n)
        self.counter(f"{prefix}.total").inc(sum(snapshot.values()))

    def op_counter(self, prefix: str) -> "TrackedOpCounter":
        """A live op counter mirroring every charge into this registry."""
        return TrackedOpCounter(self, prefix)

    # -- export -----------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Flat JSON-friendly view of everything recorded so far."""
        with self._lock:
            return {
                "counters": {k: c.value for k, c in sorted(self._counters.items())},
                "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
                "histograms": {
                    k: h.summary() for k, h in sorted(self._histograms.items())
                },
            }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # -- cross-process transport ------------------------------------------

    def dump(self) -> Dict[str, Any]:
        """Lossless, picklable export for shipping across process borders.

        Unlike :meth:`snapshot`, histograms carry their raw value lists so
        the receiver can :meth:`merge` them without degrading percentiles.
        """
        with self._lock:
            return {
                "counters": {k: c.value for k, c in self._counters.items()},
                "gauges": {k: g.value for k, g in self._gauges.items()},
                "histograms": {
                    k: list(h._values) for k, h in self._histograms.items()
                },
            }

    def merge(self, dump: Dict[str, Any]) -> None:
        """Fold a :meth:`dump` from another process into this registry.

        Counters and histogram observations add; gauges are last-write-wins
        (the merge order is the caller's deterministic result order, so the
        outcome matches a serial run).
        """
        for name, value in dump.get("counters", {}).items():
            if value:
                self.counter(name).inc(value)
        for name, value in dump.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, values in dump.get("histograms", {}).items():
            metric = self.histogram(name)
            for value in values:
                metric.observe(value)


class TrackedOpCounter(OpCounter):
    """An :class:`OpCounter` whose charges also feed a metrics registry.

    Drop-in for any ``ops=`` parameter: algorithm code keeps calling
    ``ops.add()`` / ``ops.mod(n)`` and both the local snapshot *and* the
    registry's ``<prefix>.<category>`` counters advance.
    """

    def __init__(self, registry: MetricsRegistry, prefix: str) -> None:
        super().__init__()
        self._registry = registry
        self._prefix = prefix

    def charge(self, category: str, n: int = 1) -> None:
        super().charge(category, n)
        self._registry.counter(f"{self._prefix}.{category}").inc(n)
        self._registry.counter(f"{self._prefix}.total").inc(n)


_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _REGISTRY
