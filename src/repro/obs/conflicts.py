"""Bank-conflict attribution: *which* accesses fight over *which* bank.

A cycle histogram says a sweep lost cycles; it does not say where.  This
table answers that with two views filled in by the simulator as it replays
a trace:

* **per-bank** — failed port claims charged to each bank, computed with the
  same arbitration arithmetic the hardware model uses (``k`` accesses on a
  ``P``-port bank lose ``Σ_j max(0, k − j·P)`` claims), and cross-checked
  against the banks' own conflict counters via :meth:`verify_consistent`.
* **per-pair** — for every over-subscribed bank, the pattern-offset pairs
  that landed on it together, counted once per iteration.  Because the
  paper's direct scheme is translation-invariant, a hot pair here names the
  exact two stencil taps a designer would re-map.

The table also keeps the iteration cycle histogram it observed, so its
totals can be checked against the :class:`~repro.sim.memsim.SimulationReport`
produced by the same sweep (they must match exactly).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

Element = Tuple[int, ...]
Pair = Tuple[Element, Element]


def failed_claims(accesses: int, ports: int) -> int:
    """Port claims that fail when ``accesses`` hit a ``ports``-wide bank.

    Mirrors the retry loop in ``BankedMemory.parallel_read``: each cycle
    serves ``ports`` requests and the rest retry, so the failure total is
    ``Σ_{j≥1} max(0, accesses − j·ports)``.
    """
    if ports < 1:
        raise ValueError(f"ports must be positive, got {ports}")
    total = 0
    remaining = accesses - ports
    while remaining > 0:
        total += remaining
        remaining -= ports
    return total


class ConflictTable:
    """Accumulates conflict attribution across a simulated sweep."""

    def __init__(self, ports_per_bank: int = 1) -> None:
        if ports_per_bank < 1:
            raise ValueError(
                f"ports_per_bank must be positive, got {ports_per_bank}"
            )
        self.ports_per_bank = ports_per_bank
        self.per_bank: Dict[int, int] = {}
        self.pair_counts: Dict[Pair, int] = {}
        self.cycle_histogram: Dict[int, int] = {}
        self.total_cycles = 0
        self.iterations = 0
        #: Per-bank conflict counts read back from the hardware model's own
        #: arbitration counters (set by the simulator after the sweep).
        self.observed_bank_conflicts: Optional[Dict[int, int]] = None

    def record_iteration(
        self,
        offsets: Sequence[Element],
        banks: Sequence[int],
        cycles: int,
    ) -> None:
        """Attribute one iteration: pattern offsets, their banks, its cycles."""
        if len(offsets) != len(banks):
            raise ValueError(
                f"{len(offsets)} offsets vs {len(banks)} bank indices"
            )
        self.iterations += 1
        self.total_cycles += cycles
        self.cycle_histogram[cycles] = self.cycle_histogram.get(cycles, 0) + 1

        groups: Dict[int, List[Element]] = {}
        for offset, bank in zip(offsets, banks):
            groups.setdefault(bank, []).append(tuple(offset))
        for bank, members in groups.items():
            lost = failed_claims(len(members), self.ports_per_bank)
            if not lost:
                continue
            self.per_bank[bank] = self.per_bank.get(bank, 0) + lost
            members.sort()
            for i in range(len(members) - 1):
                for j in range(i + 1, len(members)):
                    pair = (members[i], members[j])
                    self.pair_counts[pair] = self.pair_counts.get(pair, 0) + 1

    # -- consistency -------------------------------------------------------

    @property
    def total_conflicts(self) -> int:
        """Failed port claims across all banks."""
        return sum(self.per_bank.values())

    def verify_consistent(self) -> bool:
        """Attributed per-bank counts match the hardware's own counters.

        Only meaningful after the simulator stored the observed counts;
        returns True (vacuously) when it has not.
        """
        if self.observed_bank_conflicts is None:
            return True
        observed = {
            b: c for b, c in self.observed_bank_conflicts.items() if c
        }
        return observed == self.per_bank

    def hottest_pairs(self, limit: int = 10) -> List[Tuple[Pair, int]]:
        """The ``limit`` most conflict-prone pattern-offset pairs."""
        ranked = sorted(
            self.pair_counts.items(), key=lambda item: (-item[1], item[0])
        )
        return ranked[:limit]

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly form (tuple keys flattened to strings)."""
        return {
            "ports_per_bank": self.ports_per_bank,
            "iterations": self.iterations,
            "total_cycles": self.total_cycles,
            "total_conflicts": self.total_conflicts,
            "per_bank": {str(b): c for b, c in sorted(self.per_bank.items())},
            "cycle_histogram": {
                str(c): n for c, n in sorted(self.cycle_histogram.items())
            },
            "pairs": [
                {"a": list(a), "b": list(b), "conflicts": count}
                for (a, b), count in self.hottest_pairs(limit=len(self.pair_counts))
            ],
        }
