"""Span-based tracing: where the wall-clock time and operations go.

A *span* is a named interval of work.  Spans nest (per thread) to form a
tree — ``solve.partition`` contains ``solve.transform``, ``solve.qset_build``
and ``solve.select_n`` — and each records wall-clock duration, an optional
arithmetic-op delta (when an :class:`~repro.core.opcount.OpCounter` is
attached), and free-form attributes.

The public entry point is :func:`span`:

>>> from repro.obs import enable, span, tracer
>>> enable()
>>> with span("demo.outer"):
...     with span("demo.inner", items=3):
...         pass
>>> [r.name for r in tracer().records()]
['demo.inner', 'demo.outer']

When observability is disabled (the default unless ``REPRO_OBS`` is set),
``span()`` returns a shared inert object: no allocation, no clock read, no
lock — instrumented hot paths stay as fast as uninstrumented ones.

Finished spans land in a process-wide, thread-safe registry ordered by
completion time (children before parents, as usual for trace data); the
per-thread nesting stack lives in thread-local storage so concurrent
solves produce correctly-parented trees.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..core.opcount import OpCounter
from . import state


@dataclass(frozen=True)
class SpanRecord:
    """One finished span.

    Attributes
    ----------
    span_id / parent_id:
        Tree structure; ``parent_id`` is None for roots.
    name:
        Dotted span name, e.g. ``"solve.select_n"``.
    start:
        ``time.perf_counter()`` at entry (process-relative seconds).
    duration_ms:
        Wall-clock milliseconds between entry and exit.
    ops:
        Arithmetic operations charged to the attached counter while the
        span was open (0 when no counter was attached).
    thread_id:
        ``threading.get_ident()`` of the recording thread.
    attrs:
        Free-form annotations supplied at creation or via ``annotate``.
    """

    span_id: int
    parent_id: Optional[int]
    name: str
    start: float
    duration_ms: float
    ops: int = 0
    thread_id: int = 0
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly event (attrs coerced to strings where needed)."""
        return {
            "type": "span",
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration_ms": self.duration_ms,
            "ops": self.ops,
            "thread_id": self.thread_id,
            "attrs": {
                k: (v if isinstance(v, (int, float, str, bool, type(None))) else str(v))
                for k, v in self.attrs.items()
            },
        }


class Tracer:
    """Thread-safe registry of finished spans plus per-thread nesting."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: List[SpanRecord] = []
        self._local = threading.local()
        self._ids = itertools.count(1)

    # -- nesting ----------------------------------------------------------

    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current_parent(self) -> Optional[int]:
        """Span id the next span would nest under (None at top level)."""
        stack = self._stack()
        return stack[-1] if stack else None

    def next_id(self) -> int:
        return next(self._ids)

    def push(self, span_id: int) -> None:
        self._stack().append(span_id)

    def pop(self, span_id: int) -> None:
        stack = self._stack()
        if stack and stack[-1] == span_id:
            stack.pop()

    # -- registry ---------------------------------------------------------

    def record(self, record: SpanRecord) -> None:
        with self._lock:
            self._records.append(record)

    def records(self) -> List[SpanRecord]:
        """Finished spans in completion order (a snapshot copy)."""
        with self._lock:
            return list(self._records)

    def reset(self) -> None:
        """Drop all finished spans (nesting stacks are left alone)."""
        with self._lock:
            self._records.clear()


class _NullSpan:
    """Shared inert span used whenever observability is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def annotate(self, **attrs: Any) -> None:
        pass


NULL_SPAN = _NullSpan()


class Span:
    """A live (open) span; use as a context manager."""

    __slots__ = ("_tracer", "_name", "_attrs", "_ops", "_ops_base", "_id", "_parent", "_start")

    def __init__(
        self,
        tracer: Tracer,
        name: str,
        ops: Optional[OpCounter],
        attrs: Dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._ops = ops
        self._ops_base = 0
        self._id = tracer.next_id()
        self._parent: Optional[int] = None
        self._start = 0.0

    def annotate(self, **attrs: Any) -> None:
        """Attach extra attributes to the span while it is open."""
        self._attrs.update(attrs)

    def __enter__(self) -> "Span":
        self._parent = self._tracer.current_parent()
        self._tracer.push(self._id)
        if self._ops is not None:
            self._ops_base = self._ops.total
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        end = time.perf_counter()
        self._tracer.pop(self._id)
        ops_delta = (self._ops.total - self._ops_base) if self._ops is not None else 0
        self._tracer.record(
            SpanRecord(
                span_id=self._id,
                parent_id=self._parent,
                name=self._name,
                start=self._start,
                duration_ms=(end - self._start) * 1000.0,
                ops=ops_delta,
                thread_id=threading.get_ident(),
                attrs=self._attrs,
            )
        )
        return False


_TRACER = Tracer()


def tracer() -> Tracer:
    """The process-wide tracer."""
    return _TRACER


def span(name: str, ops: OpCounter | None = None, **attrs: Any):
    """Open a span named ``name`` (a no-op object when obs is disabled).

    Parameters
    ----------
    name:
        Dotted span name; conventions in ``docs/OBSERVABILITY.md``.
    ops:
        Optional op counter whose ``total`` delta across the span is
        captured into the record's ``ops`` field.
    attrs:
        Initial annotations (kept JSON-friendly by the exporter).
    """
    if not state.enabled():
        return NULL_SPAN
    return Span(_TRACER, name, ops, dict(attrs))
