"""Span-based tracing: where the wall-clock time and operations go.

A *span* is a named interval of work.  Spans nest (per thread) to form a
tree — ``solve.partition`` contains ``solve.transform``, ``solve.qset_build``
and ``solve.select_n`` — and each records wall-clock duration, an optional
arithmetic-op delta (when an :class:`~repro.core.opcount.OpCounter` is
attached), and free-form attributes.

The public entry point is :func:`span`:

>>> from repro.obs import enable, span, tracer
>>> enable()
>>> with span("demo.outer"):
...     with span("demo.inner", items=3):
...         pass
>>> [r.name for r in tracer().records()]
['demo.inner', 'demo.outer']

When observability is disabled (the default unless ``REPRO_OBS`` is set),
``span()`` returns a shared inert object: no allocation, no clock read, no
lock — instrumented hot paths stay as fast as uninstrumented ones.

Finished spans land in a process-wide, thread-safe registry ordered by
completion time (children before parents, as usual for trace data); the
per-thread nesting stack lives in thread-local storage so concurrent
solves produce correctly-parented trees.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.opcount import OpCounter
from . import state
from .tracecontext import current_trace_id


@dataclass(frozen=True)
class SpanRecord:
    """One finished span.

    Attributes
    ----------
    span_id / parent_id:
        Tree structure; ``parent_id`` is None for roots.
    name:
        Dotted span name, e.g. ``"solve.select_n"``.
    start:
        ``time.perf_counter()`` at entry (process-relative seconds).
    duration_ms:
        Wall-clock milliseconds between entry and exit.
    ops:
        Arithmetic operations charged to the attached counter while the
        span was open (0 when no counter was attached).
    thread_id:
        ``threading.get_ident()`` of the recording thread.
    attrs:
        Free-form annotations supplied at creation or via ``annotate``.
    trace_id:
        The request trace this span belongs to (see
        :mod:`repro.obs.tracecontext`), or None outside any trace.
    links:
        Trace ids of *other* requests whose work this span observed —
        e.g. a coalesced follower links the leader's trace instead of
        duplicating its solve spans.
    """

    span_id: int
    parent_id: Optional[int]
    name: str
    start: float
    duration_ms: float
    ops: int = 0
    thread_id: int = 0
    attrs: Dict[str, Any] = field(default_factory=dict)
    trace_id: Optional[str] = None
    links: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly event (attrs coerced to strings where needed)."""
        return {
            "type": "span",
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration_ms": self.duration_ms,
            "ops": self.ops,
            "thread_id": self.thread_id,
            "attrs": {
                k: (v if isinstance(v, (int, float, str, bool, type(None))) else str(v))
                for k, v in self.attrs.items()
            },
            "trace_id": self.trace_id,
            "links": list(self.links),
        }


class Tracer:
    """Thread-safe registry of finished spans plus per-thread nesting."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: List[SpanRecord] = []
        self._local = threading.local()
        self._ids = itertools.count(1)

    # -- nesting ----------------------------------------------------------

    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current_parent(self) -> Optional[int]:
        """Span id the next span would nest under (None at top level)."""
        stack = self._stack()
        return stack[-1] if stack else None

    def next_id(self) -> int:
        return next(self._ids)

    def push(self, span_id: int) -> None:
        self._stack().append(span_id)

    def pop(self, span_id: int) -> None:
        stack = self._stack()
        if stack and stack[-1] == span_id:
            stack.pop()

    # -- registry ---------------------------------------------------------

    def record(self, record: SpanRecord) -> None:
        with self._lock:
            self._records.append(record)

    def records(self) -> List[SpanRecord]:
        """Finished spans in completion order (a snapshot copy)."""
        with self._lock:
            return list(self._records)

    def reset(self) -> None:
        """Drop all finished spans (nesting stacks are left alone)."""
        with self._lock:
            self._records.clear()

    def trim(self, max_records: int) -> None:
        """Drop the oldest records beyond ``max_records`` (server hygiene)."""
        with self._lock:
            excess = len(self._records) - max_records
            if excess > 0:
                del self._records[:excess]

    # -- cross-process transport ------------------------------------------

    def mark(self) -> int:
        """An opaque cursor: pass to :meth:`dump_since` to get newer spans."""
        with self._lock:
            return len(self._records)

    def dump_since(self, mark: int = 0) -> List[Dict[str, Any]]:
        """Spans recorded after ``mark`` as picklable event dicts.

        The worker half of the dump/merge channel: a pool worker marks its
        tracer before the task, runs it, and ships ``dump_since(mark)``
        home alongside the result.
        """
        with self._lock:
            return [r.to_dict() for r in self._records[mark:]]

    def merge(
        self,
        events: Sequence[Dict[str, Any]],
        parent_id: Optional[int] = None,
        worker_id: Optional[str] = None,
    ) -> None:
        """Fold another process's :meth:`dump_since` into this tracer.

        Span ids are remapped onto this tracer's id space (worker counters
        collide across processes); events arrive in completion order —
        children before parents — so ids are assigned in a first pass and
        parent references rewritten in a second.  Spans whose parent is
        not in the dump (worker-side roots) are re-parented under
        ``parent_id``, and every merged span is stamped with ``worker_id``
        so per-worker skew stays visible.  ``start`` values are another
        process's ``perf_counter`` — tree *structure* survives the merge,
        cross-process start ordering is approximate.
        """
        if not events:
            return
        with self._lock:
            id_map = {event["span_id"]: next(self._ids) for event in events}
            for event in events:
                attrs = dict(event.get("attrs") or {})
                if worker_id is not None:
                    attrs.setdefault("worker_id", worker_id)
                self._records.append(
                    SpanRecord(
                        span_id=id_map[event["span_id"]],
                        parent_id=id_map.get(event.get("parent_id"), parent_id),
                        name=event["name"],
                        start=event.get("start", 0.0),
                        duration_ms=event.get("duration_ms", 0.0),
                        ops=event.get("ops", 0),
                        thread_id=event.get("thread_id", 0),
                        attrs=attrs,
                        trace_id=event.get("trace_id"),
                        links=tuple(event.get("links") or ()),
                    )
                )

    # -- per-trace retrieval ----------------------------------------------

    def records_for(self, trace_id: str) -> List[SpanRecord]:
        """All finished spans stamped with ``trace_id`` (completion order)."""
        with self._lock:
            return [r for r in self._records if r.trace_id == trace_id]

    def pop_trace(self, trace_id: str) -> List[SpanRecord]:
        """Remove and return ``trace_id``'s spans (bounds server memory)."""
        with self._lock:
            matched = [r for r in self._records if r.trace_id == trace_id]
            if matched:
                self._records = [r for r in self._records if r.trace_id != trace_id]
            return matched


class _NullSpan:
    """Shared inert span used whenever observability is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def annotate(self, **attrs: Any) -> None:
        pass

    def link(self, trace_id: str) -> None:
        pass


NULL_SPAN = _NullSpan()


class Span:
    """A live (open) span; use as a context manager."""

    __slots__ = (
        "_tracer", "_name", "_attrs", "_ops", "_ops_base", "_id",
        "_parent", "_start", "_trace", "_links",
    )

    def __init__(
        self,
        tracer: Tracer,
        name: str,
        ops: Optional[OpCounter],
        attrs: Dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._ops = ops
        self._ops_base = 0
        self._id = tracer.next_id()
        self._parent: Optional[int] = None
        self._start = 0.0
        self._trace: Optional[str] = None
        self._links: List[str] = []

    def annotate(self, **attrs: Any) -> None:
        """Attach extra attributes to the span while it is open."""
        self._attrs.update(attrs)

    def link(self, trace_id: str) -> None:
        """Reference another request's trace (e.g. a coalesced leader)."""
        if trace_id and trace_id not in self._links:
            self._links.append(trace_id)

    def __enter__(self) -> "Span":
        self._parent = self._tracer.current_parent()
        self._trace = current_trace_id()
        self._tracer.push(self._id)
        if self._ops is not None:
            self._ops_base = self._ops.total
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        end = time.perf_counter()
        self._tracer.pop(self._id)
        ops_delta = (self._ops.total - self._ops_base) if self._ops is not None else 0
        self._tracer.record(
            SpanRecord(
                span_id=self._id,
                parent_id=self._parent,
                name=self._name,
                start=self._start,
                duration_ms=(end - self._start) * 1000.0,
                ops=ops_delta,
                thread_id=threading.get_ident(),
                attrs=self._attrs,
                trace_id=self._trace,
                links=tuple(self._links),
            )
        )
        return False


_TRACER = Tracer()


def tracer() -> Tracer:
    """The process-wide tracer."""
    return _TRACER


def span(name: str, ops: OpCounter | None = None, **attrs: Any):
    """Open a span named ``name`` (a no-op object when obs is disabled).

    Parameters
    ----------
    name:
        Dotted span name; conventions in ``docs/OBSERVABILITY.md``.
    ops:
        Optional op counter whose ``total`` delta across the span is
        captured into the record's ``ops`` field.
    attrs:
        Initial annotations (kept JSON-friendly by the exporter).
    """
    if not state.enabled():
        return NULL_SPAN
    return Span(_TRACER, name, ops, dict(attrs))
