"""Per-request span trees and their bounded retention (``/debug/traces``).

The tracer stores spans flat, in completion order, across every request
the process has served.  The serve layer instead wants "what happened to
*this* request": :func:`build_trace_tree` folds one trace's spans into a
nested tree rooted at its ``serve.request`` span, and :class:`TraceBuffer`
keeps the most recent trees in a fixed-size ring so a live server can be
inspected without unbounded memory.

Orphan handling: spans recorded on executor threads or merged back from
pool workers have no recorded parent inside the trace (their lexical
parent lived in another thread's nesting stack, or another process).
They still carry the trace id, so the builder adopts every parentless
span under the request root — the tree stays complete even though the
parent edge crossed an execution boundary.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Sequence

from .tracer import SpanRecord

#: Span name the serve layer records for the whole HTTP request.
REQUEST_SPAN = "serve.request"

#: Default ring capacity; one tree per request, trees are small.
DEFAULT_TRACE_CAPACITY = 64


def _node(record: SpanRecord) -> Dict[str, Any]:
    node: Dict[str, Any] = {
        "name": record.name,
        "start": record.start,
        "duration_ms": record.duration_ms,
        "children": [],
    }
    if record.ops:
        node["ops"] = record.ops
    if record.attrs:
        node["attrs"] = {
            k: (v if isinstance(v, (int, float, str, bool, type(None))) else str(v))
            for k, v in record.attrs.items()
        }
    if record.links:
        node["links"] = list(record.links)
    return node


def build_trace_tree(
    trace_id: str, records: Sequence[SpanRecord]
) -> Dict[str, Any]:
    """Fold one trace's spans into a JSON-friendly tree document.

    Children are ordered by start time.  When a ``serve.request`` span is
    present it becomes the root and adopts every other parentless span;
    without one (e.g. a trace built from a profiling run) the parentless
    spans are listed as multiple roots.
    """
    by_id = {r.span_id: _node(r) for r in records}
    ordered = sorted(records, key=lambda r: (r.start, r.span_id))
    links: List[str] = []
    roots: List[Dict[str, Any]] = []
    request_root: Optional[Dict[str, Any]] = None
    for record in ordered:
        for linked in record.links:
            if linked not in links:
                links.append(linked)
        node = by_id[record.span_id]
        parent = (
            by_id.get(record.parent_id)
            if record.parent_id is not None and record.parent_id != record.span_id
            else None
        )
        if parent is not None:
            parent["children"].append(node)
        else:
            roots.append(node)
            if record.name == REQUEST_SPAN and request_root is None:
                request_root = node
    if request_root is not None:
        for node in roots:
            if node is not request_root:
                request_root["children"].append(node)
        roots = [request_root]
    duration = max((r["duration_ms"] for r in roots), default=0.0)
    return {
        "trace_id": trace_id,
        "spans": len(records),
        "duration_ms": duration,
        "links": links,
        "roots": roots,
    }


class TraceBuffer:
    """A thread-safe ring of the most recent request trace trees."""

    def __init__(self, capacity: int = DEFAULT_TRACE_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._trees: Deque[Dict[str, Any]] = deque(maxlen=capacity)

    def add(self, tree: Dict[str, Any]) -> None:
        with self._lock:
            self._trees.append(tree)

    def __len__(self) -> int:
        with self._lock:
            return len(self._trees)

    def snapshot(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Most-recent-first copies of the retained trees."""
        with self._lock:
            trees = list(self._trees)
        trees.reverse()
        return trees[:limit] if limit is not None else trees

    def find(self, trace_id: str) -> Optional[Dict[str, Any]]:
        """The retained tree for ``trace_id``, or ``None`` if evicted."""
        with self._lock:
            for tree in self._trees:
                if tree.get("trace_id") == trace_id:
                    return tree
        return None
