"""Naive block partitioning baseline.

Block banking splits one dimension into ``N`` contiguous chunks:
``bank = x_d // ⌈w_d / N⌉``.  For stencil patterns (small spatial windows)
block banking is pathological — at most two banks are ever touched by a
window that straddles a chunk boundary, and for interior offsets the whole
pattern lands in a *single* bank, i.e. ``δP = m − 1``.  It exists here to
anchor the low end of the banking design space in benchmark plots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..core.conflict import delta_ii as measure_delta_ii
from ..core.conflict import offset_window
from ..core.pattern import Pattern


@dataclass(frozen=True)
class BlockScheme:
    """Block banking of dimension ``dim`` of an array of shape ``shape``.

    Attributes
    ----------
    dim:
        Partitioned dimension.
    n_banks:
        Number of contiguous chunks.
    shape:
        Full array shape (needed to size the chunks).
    """

    dim: int
    n_banks: int
    shape: tuple

    def __post_init__(self) -> None:
        if not 0 <= self.dim < len(self.shape):
            raise ValueError(f"dim {self.dim} out of range for shape {self.shape}")
        if self.n_banks < 1:
            raise ValueError(f"n_banks must be positive, got {self.n_banks}")

    @property
    def chunk(self) -> int:
        """Elements of dimension ``dim`` per bank."""
        return math.ceil(self.shape[self.dim] / self.n_banks)

    def bank_of(self, element: Sequence[int]) -> int:
        coordinate = int(element[self.dim])
        # Clamp: pattern evaluation near the array edge may step outside.
        coordinate = min(max(coordinate, 0), self.shape[self.dim] - 1)
        return coordinate // self.chunk

    def worst_delta_ii(self, pattern: Pattern) -> int:
        """``δP`` measured over a window covering a chunk boundary."""
        radius = max(max(pattern.extents), self.chunk + 1)
        radius = min(radius, self.shape[self.dim] - 1)
        window = offset_window(pattern.ndim, radius)
        return measure_delta_ii(pattern, self.bank_of, window)

    def overhead_elements(self) -> int:
        """Padding from rounding the chunked dimension up."""
        pad = self.chunk * self.n_banks - self.shape[self.dim]
        others = 1
        for j, w in enumerate(self.shape):
            if j != self.dim:
                others *= w
        return pad * others
