"""Baseline partitioning schemes the paper compares against or dismisses.

* :mod:`repro.baselines.ltb` — the DAC 2013 linear-transform exhaustive
  search (the paper's head-to-head comparator, Table 1).
* :mod:`repro.baselines.cyclic` — single-dimension cyclic banking.
* :mod:`repro.baselines.block` — single-dimension block banking.
* :mod:`repro.baselines.duplication` — full array duplication.
"""

from .block import BlockScheme
from .cyclic import CyclicScheme, best_cyclic, cyclic_delta_ii
from .duplication import DuplicationScheme, duplication_for
from .linebuffer import LineBufferDesign, linebuffer_vs_banking_storage
from .ltb import (
    LTB_ENGINES,
    LTBResult,
    ltb_bank_of,
    ltb_chunk_budget,
    ltb_min_banks,
    ltb_overhead_elements,
    ltb_partition,
)
from .mapping import (
    BlockBankMapping,
    CyclicBankMapping,
    block_mapping,
    cyclic_mapping,
)

__all__ = [
    "BlockScheme",
    "BlockBankMapping",
    "CyclicScheme",
    "CyclicBankMapping",
    "best_cyclic",
    "block_mapping",
    "cyclic_delta_ii",
    "cyclic_mapping",
    "DuplicationScheme",
    "duplication_for",
    "LineBufferDesign",
    "linebuffer_vs_banking_storage",
    "LTB_ENGINES",
    "LTBResult",
    "ltb_bank_of",
    "ltb_chunk_budget",
    "ltb_min_banks",
    "ltb_overhead_elements",
    "ltb_partition",
]
