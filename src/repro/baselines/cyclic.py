"""Naive cyclic partitioning baseline.

Cyclic (interleaved) banking along a single dimension is the scheme most
HLS tools offer out of the box (e.g. ``#pragma HLS array_partition cyclic``).
Bank index is ``x_d % N`` for a chosen dimension ``d``; in-bank offset keeps
the other coordinates and divides ``x_d`` by ``N``.

Cyclic banking is conflict-free only for patterns whose footprint along
``d`` hits each residue class at most once — a 1-D window of width ``≤ N``.
General 2-D stencils (two taps sharing a column, like every pattern in the
paper) conflict for every single-dimension choice, which is exactly the
motivation for linear-transform banking.  This module quantifies that gap
for the benchmark harness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..core.conflict import profile_at
from ..core.partition import PartitionSolution
from ..core.pattern import Pattern
from ..core.transform import LinearTransform


@dataclass(frozen=True)
class CyclicScheme:
    """Cyclic banking along one dimension.

    Attributes
    ----------
    dim:
        The partitioned dimension.
    n_banks:
        Number of banks ``N``.
    ndim:
        Array dimensionality.
    """

    dim: int
    n_banks: int
    ndim: int

    def __post_init__(self) -> None:
        if not 0 <= self.dim < self.ndim:
            raise ValueError(f"dim {self.dim} out of range for {self.ndim} dimensions")
        if self.n_banks < 1:
            raise ValueError(f"n_banks must be positive, got {self.n_banks}")

    def bank_of(self, element: Sequence[int]) -> int:
        return int(element[self.dim]) % self.n_banks

    def as_solution(self, pattern: Pattern) -> PartitionSolution:
        """Wrap as a standard solution record with the *measured* ``δP``."""
        alpha = tuple(1 if j == self.dim else 0 for j in range(self.ndim))
        profile = profile_at(pattern, self.bank_of)
        return PartitionSolution(
            pattern=pattern,
            transform=LinearTransform(alpha=alpha),
            n_banks=self.n_banks,
            n_unconstrained=self.n_banks,
            delta_ii=profile.worst - 1,
            scheme="cyclic",
            algorithm="cyclic",
        )

    def overhead_elements(self, shape: Sequence[int]) -> int:
        """Pad the partitioned dimension to a multiple of ``N``."""
        pad = math.ceil(shape[self.dim] / self.n_banks) * self.n_banks - shape[self.dim]
        others = 1
        for j, w in enumerate(shape):
            if j != self.dim:
                others *= w
        return pad * others


def best_cyclic(pattern: Pattern, n_banks: int) -> CyclicScheme:
    """The single-dimension cyclic scheme with the fewest conflicts."""
    best: CyclicScheme | None = None
    best_worst = None
    for dim in range(pattern.ndim):
        scheme = CyclicScheme(dim=dim, n_banks=n_banks, ndim=pattern.ndim)
        worst = profile_at(pattern, scheme.bank_of).worst
        if best_worst is None or worst < best_worst:
            best, best_worst = scheme, worst
    assert best is not None
    return best


def cyclic_delta_ii(pattern: Pattern, n_banks: int) -> int:
    """``δP`` of the best single-dimension cyclic scheme."""
    scheme = best_cyclic(pattern, n_banks)
    return profile_at(pattern, scheme.bank_of).worst - 1
