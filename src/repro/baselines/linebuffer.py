"""Line-buffer baseline: reuse instead of banking.

For *sliding-window* stencils, HLS flows often avoid banking entirely:
keep the last ``h − 1`` image rows in FIFOs plus an ``h × w`` register
window, read **one new pixel per cycle**, and serve all ``m`` taps from
registers.  This is the classic line-buffer architecture (cf. the
partitioning-vs-reuse discussion in the paper's refs [2], [3]).

It is the right comparison point because its strengths and weaknesses
mirror banking's:

* storage: ``(h−1)·W_cols + h·w`` elements of buffering — independent of
  the bank count, usually far below banking's padding for big ``N``;
* bandwidth: only 1 array read per cycle, so II = 1 *only* for strictly
  row-major unit-stride sweeps;
* no random access: any non-raster iteration order, multi-rate access, or
  update-in-place breaks it, whereas a banked array serves any offset
  pattern every cycle (the paper's setting).

The model quantifies both sides so benchmarks can show where each wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from ..core.pattern import Pattern
from ..errors import SimulationError


@dataclass(frozen=True)
class LineBufferDesign:
    """A line-buffer realization of one 2-D sliding-window stencil.

    Attributes
    ----------
    pattern:
        The stencil (must be 2-D).
    image_shape:
        Frame shape ``(rows, cols)`` — the buffer length tracks ``cols``.
    """

    pattern: Pattern
    image_shape: Tuple[int, int]

    def __post_init__(self) -> None:
        if self.pattern.ndim != 2:
            raise SimulationError(
                f"line buffers serve 2-D stencils, got {self.pattern.ndim}-D"
            )
        if len(self.image_shape) != 2 or min(self.image_shape) < 1:
            raise SimulationError(f"bad image shape {self.image_shape}")
        h, w = self.pattern.extents
        if h > self.image_shape[0] or w > self.image_shape[1]:
            raise SimulationError("window larger than the frame")

    @property
    def window(self) -> Tuple[int, int]:
        """Window extent ``(h, w)``."""
        return self.pattern.extents

    @property
    def buffer_elements(self) -> int:
        """FIFO storage: ``(h−1)`` full image rows."""
        h, _ = self.window
        return (h - 1) * self.image_shape[1]

    @property
    def register_elements(self) -> int:
        """The ``h × w`` shift-register window."""
        h, w = self.window
        return h * w

    @property
    def total_storage(self) -> int:
        return self.buffer_elements + self.register_elements

    @property
    def array_reads_per_cycle(self) -> int:
        """One new pixel enters per cycle in steady state."""
        return 1

    @property
    def warmup_cycles(self) -> int:
        """Cycles before the first full window is resident."""
        h, w = self.window
        return (h - 1) * self.image_shape[1] + w

    def total_cycles(self) -> int:
        """Cycles for one full-frame raster sweep (II = 1 after warmup)."""
        rows, cols = self.image_shape
        return self.warmup_cycles + rows * cols

    def supports_access_order(self, raster: bool) -> bool:
        """Line buffers require strictly raster-order consumption."""
        return raster


def linebuffer_vs_banking_storage(
    pattern: Pattern, image_shape: Sequence[int], n_banks: int
) -> Tuple[int, int]:
    """(line-buffer storage, banking overhead) in elements.

    Banking's *overhead* is its incremental storage cost (the array itself
    is stored either way); the line buffer's cost is all incremental.
    """
    from ..core.mapping import ours_overhead_elements

    shape = tuple(int(w) for w in image_shape)
    design = LineBufferDesign(pattern=pattern, image_shape=(shape[0], shape[1]))
    return design.total_storage, ours_overhead_elements(shape, n_banks)
