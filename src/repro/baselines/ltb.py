"""LTB baseline: linear-transformation-based partitioning (Wang et al., DAC 2013).

The state-of-the-art the paper compares against.  For each candidate bank
count ``N = m, m+1, …`` it **exhaustively enumerates** all ``N^n`` transform
vectors ``α ∈ [0, N)^n`` and accepts the first vector under which all
pattern elements take distinct bank indices ``(α·Δ) % N``.  Because the
whole vector space is searched, LTB finds the *minimum* bank count
achievable by any linear transform — our algorithm's ``N_f`` can only match
or exceed it (it matches on all five Fig. 3 patterns; it exceeds it on the
Median and Gaussian patterns, by 1 and 3 banks respectively).

The price is the search itself — ``O(C · N^n · m²)`` arithmetic operations
versus our constant-time construction — and the storage model: LTB's
intra-bank mapping pads **every** dimension of the array to a multiple of
``N``, giving overhead

.. math::

    ΔW_{LTB} = \\prod_i ⌈w_i/N⌉·N − \\prod_i w_i

(640×480, N=13: ``650·481 − 640·480 = 5450`` elements, the paper's
Section 2 figure), versus our last-dimension-only padding (640 elements).

Two search engines share the loop over bank counts:

* ``"scalar"`` — the reference below, a line-by-line transcription of the
  published enumeration (`itertools.product` + per-vector residue scan);
* ``"vectorized"`` — a chunked NumPy engine that decodes candidate indices
  mixed-radix into ``(C, n)`` blocks, computes the ``(C, m)`` residue
  matrix with one matmul + mod, and tests row-wise injectivity via a
  per-row stable sort.  It returns the *same lexicographic first hit*,
  the same ``vectors_tried``/``candidates_tried``, and charges the same
  :class:`~repro.core.opcount.OpCounter` operations — the op model counts
  the mathematical work, not the execution strategy (the
  ``same_size_sweep`` precedent).  Block size is bounded by the
  ``REPRO_LTB_CHUNK`` budget (falling back to the bulk default), so peak
  memory stays ~``chunk × 8`` bytes however large ``N^n`` grows.
"""

from __future__ import annotations

import itertools
import math
import os
from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

import numpy as np

from ..core.opcount import OpCounter, resolve
from ..core.partition import PartitionSolution
from ..core.pattern import Pattern
from ..core.transform import LinearTransform
from ..core.vectorized import chunk_budget
from ..errors import PartitioningError

#: Engine names accepted by :func:`ltb_partition`.  ``"native"`` is the
#: optional compiled tier (:mod:`repro.native`): the whole per-``N`` scan —
#: odometer enumeration, residue check, first-duplicate detection — runs in
#: C, with charges identical to both Python engines.
LTB_ENGINES = ("auto", "scalar", "vectorized", "native")

#: Candidate spaces beyond int64 cannot be block-decoded (and could not be
#: enumerated by the scalar loop within a lifetime either).
_INT64_LIMIT = np.iinfo(np.int64).max


@dataclass(frozen=True)
class LTBResult:
    """Outcome of the LTB exhaustive search.

    Attributes
    ----------
    solution:
        The winning ``(N, α)`` wrapped as a standard solution record.
    vectors_tried:
        Total candidate transform vectors evaluated before success.
    candidates_tried:
        Bank counts attempted (``C + 1`` in the paper's complexity model).
    """

    solution: PartitionSolution
    vectors_tried: int
    candidates_tried: int


def ltb_chunk_budget(chunk: int | None = None) -> int:
    """Resolve the residue-matrix cell budget per vectorized block.

    Explicit argument > ``REPRO_LTB_CHUNK`` environment variable > the bulk
    default (:func:`repro.core.vectorized.chunk_budget`, itself overridable
    via ``REPRO_BULK_CHUNK``).  The budget counts residue cells, so a block
    holds ``max(1, budget // m)`` candidate vectors.
    """
    if chunk is not None:
        if chunk < 1:
            raise ValueError(f"chunk budget must be positive, got {chunk}")
        return chunk
    env = os.environ.get("REPRO_LTB_CHUNK", "").strip()
    if env:
        value = int(env)
        if value < 1:
            raise ValueError(f"REPRO_LTB_CHUNK must be positive, got {value}")
        return value
    return chunk_budget()


def _candidate_vectors(n_banks: int, ndim: int) -> Iterator[Tuple[int, ...]]:
    """Lexicographic enumeration of all ``N^n`` transform vectors."""
    return itertools.product(range(n_banks), repeat=ndim)


def _vector_is_valid(
    vector: Sequence[int],
    pattern: Pattern,
    n_banks: int,
    ops: OpCounter,
) -> bool:
    """Check that ``(vector · Δ) % N`` is injective over the pattern.

    Mirrors the published algorithm: compute the transformed residue of
    **all** ``m`` elements first (the linear transform is applied wholesale
    before justification), then check distinctness — the paper's
    ``O(m²)``-per-vector justification step.  Arithmetic is charged for
    every residue; the distinctness scan charges comparisons only.
    """
    ndim = pattern.ndim
    residues = []
    for delta in pattern.offsets:
        ops.mul(ndim)
        if ndim > 1:
            ops.add(ndim - 1)
        ops.mod()
        residues.append(sum(a * d for a, d in zip(vector, delta)) % n_banks)
    seen = set()
    for residue in residues:
        ops.compare(len(seen) if seen else 1)
        if residue in seen:
            return False
        seen.add(residue)
    return True


def _search_scalar(
    pattern: Pattern, n_banks: int, counter: OpCounter
) -> Tuple[Tuple[int, ...] | None, int]:
    """Reference per-``N`` search: first valid vector (or None) and vectors tried."""
    tried = 0
    for vector in _candidate_vectors(n_banks, pattern.ndim):
        tried += 1
        if _vector_is_valid(vector, pattern, n_banks, counter):
            return tuple(vector), tried
    return None, tried


def resolve_ltb_engine(engine: str = "auto") -> str:
    """Concrete engine :func:`ltb_partition` will run.

    ``"auto"`` prefers ``native`` when the compiled extension is usable
    (built, importable, not disabled via ``REPRO_NATIVE=0``) and falls back
    to ``vectorized`` silently otherwise; forcing ``engine="native"``
    without a usable extension raises
    :class:`~repro.errors.NativeUnavailableError`.
    """
    if engine not in LTB_ENGINES:
        raise ValueError(
            f"unknown LTB engine {engine!r}; choose one of {LTB_ENGINES}"
        )
    from .. import native

    if engine == "auto":
        return "native" if native.available() else "vectorized"
    if engine == "native":
        native.require()  # NativeUnavailableError when absent or disabled
    return engine


def _guard_candidate_space(n_banks: int, ndim: int) -> int:
    """Total candidates ``N^n``, or the shared too-large error."""
    total = n_banks**ndim
    if total > _INT64_LIMIT:
        raise PartitioningError(
            f"LTB candidate space {n_banks}^{ndim} exceeds the int64 index "
            "range; no engine can enumerate it"
        )
    return total


def _search_native(
    pattern: Pattern, n_banks: int, counter: OpCounter
) -> Tuple[Tuple[int, ...] | None, int]:
    """Compiled per-``N`` search, charge-identical to :func:`_search_scalar`.

    The C kernel (:mod:`repro.native._native`) enumerates candidates with a
    rightmost-fastest odometer (``itertools.product`` order), recomputes the
    ``m`` residues per candidate with Python modulo semantics, and detects
    the first duplicate with an epoch-stamped seen table — returning the
    lexicographic first hit, the exact vectors-tried count, and the
    comparison total ``Σ (1 + t(t+1)/2)`` the scalar scan would have
    charged.  Arithmetic charges follow the same wholesale-per-vector model
    as both Python engines.
    """
    from ..native import require

    compiled = require()
    m, ndim = pattern.size, pattern.ndim
    _guard_candidate_space(n_banks, ndim)
    deltas = np.ascontiguousarray(
        np.asarray(pattern.offsets, dtype=np.int64).reshape(m, ndim)
    )
    alpha_out = np.zeros(ndim, dtype=np.int64)
    found, tried, compares = compiled.ltb_scan(
        deltas, m, ndim, n_banks, alpha_out
    )
    counter.mul(tried * m * ndim)
    if ndim > 1:
        counter.add(tried * m * (ndim - 1))
    counter.mod(tried * m)
    counter.compare(compares)
    if found:
        return tuple(int(a) for a in alpha_out), tried
    return None, tried


def _decode_block(
    lo: int, hi: int, n_banks: int, ndim: int, dtype: type
) -> "np.ndarray":
    """Candidate vectors for lexicographic indices ``lo … hi - 1``.

    ``itertools.product(range(N), repeat=n)`` enumerates big-endian
    mixed-radix numbers (rightmost digit fastest), so digit ``j`` of index
    ``i`` is ``(i // N^(n-1-j)) % N`` — extracted right to left with one
    divmod per dimension.
    """
    linear = np.arange(lo, hi, dtype=dtype)
    block = np.empty((hi - lo, ndim), dtype=dtype)
    for dim in range(ndim - 1, -1, -1):
        linear, block[:, dim] = np.divmod(linear, n_banks)
    return block


def _search_vectorized(
    pattern: Pattern, n_banks: int, counter: OpCounter, chunk: int | None
) -> Tuple[Tuple[int, ...] | None, int]:
    """Chunked NumPy per-``N`` search, charge-identical to :func:`_search_scalar`.

    Each block computes the full ``(C, m)`` residue matrix in one matmul +
    mod, then finds every row's *first duplicate position* with one per-row
    sort of packed ``residue·m + column`` keys: equal residues become
    adjacent keys whose ties order by original column, so the minimum
    ``key % m`` over the latter element of each equal adjacent pair is
    exactly where the scalar scan would have stopped — which is what makes
    the comparison charges reproducible, not just the verdict.
    """
    m, ndim = pattern.size, pattern.ndim
    total = _guard_candidate_space(n_banks, ndim)
    deltas = np.asarray(pattern.offsets, dtype=np.int64).reshape(m, ndim).T
    # Narrow dtypes when every intermediate (candidate index, dot product,
    # packed key) provably fits — int32 sorts are ~2x faster and dominate
    # large blocks.
    magnitude = int(np.abs(deltas).sum(axis=0).max())
    fits32 = max(total, (n_banks - 1) * magnitude, n_banks * m + m) < 2**31
    dtype = np.int32 if fits32 else np.int64
    deltas = deltas.astype(dtype)
    columns = np.arange(m, dtype=dtype)
    block_vectors = max(1, ltb_chunk_budget(chunk) // m)
    for lo in range(0, total, block_vectors):
        hi = min(lo + block_vectors, total)
        vectors = _decode_block(lo, hi, n_banks, ndim, dtype)
        residues = (vectors @ deltas) % n_banks
        if m > 1:
            # Pack (residue, column) into one key and sort rows in place:
            # ties order by column, so equal residues are adjacent with
            # ascending original indices.
            np.multiply(residues, m, out=residues)
            np.add(residues, columns, out=residues)
            residues.sort(axis=1)
            index = residues % m
            base = residues - index
            dup_at = np.where(base[:, 1:] == base[:, :-1], index[:, 1:], m)
            first_dup = dup_at.min(axis=1)
        else:
            first_dup = np.full(hi - lo, m, dtype=np.int64)
        valid_rows = np.flatnonzero(first_dup == m)
        hit = int(valid_rows[0]) if valid_rows.size else None
        count = (hi - lo) if hit is None else hit + 1

        # Charge exactly what the scalar reference charges for these rows:
        # wholesale residue arithmetic for every tried vector, then a
        # distinctness scan of 1 + t(t+1)/2 comparisons where t is the
        # first-duplicate index (t = m-1 for valid vectors).
        counter.mul(count * m * ndim)
        if ndim > 1:
            counter.add(count * m * (ndim - 1))
        counter.mod(count * m)
        scan = np.minimum(first_dup[:count], m - 1)
        counter.compare(count + int((scan * (scan + 1) // 2).sum()))

        if hit is not None:
            return tuple(int(c) for c in vectors[hit]), lo + count
    return None, total


def ltb_partition(
    pattern: Pattern,
    n_max: int | None = None,
    ops: OpCounter | None = None,
    start_n: int | None = None,
    engine: str = "auto",
    chunk: int | None = None,
) -> LTBResult:
    """Run the LTB exhaustive search for ``pattern``.

    Parameters
    ----------
    pattern:
        The access pattern ``P`` (``m`` elements, ``n`` dimensions).
    n_max:
        Optional bank ceiling; the search stops (and raises) past it.
    ops:
        Optional instrumentation counter shared with our algorithm's runs.
    start_n:
        First bank count to try; defaults to ``m`` (no fewer banks can
        serve ``m`` parallel accesses at full bandwidth).
    engine:
        ``"scalar"`` runs the published enumeration verbatim;
        ``"vectorized"`` runs the chunked NumPy search; ``"native"`` runs
        the compiled scan when the optional extension is built
        (:class:`~repro.errors.NativeUnavailableError` otherwise).
        ``"auto"`` resolves to ``native`` when available, else
        ``vectorized``.  Results, counters, and op charges are identical
        across all engines — property-tested in
        ``tests/test_ltb_vectorized.py``.
    chunk:
        Optional residue-cell budget per vectorized block (overrides
        ``REPRO_LTB_CHUNK``); ignored by the scalar and native engines
        (the native scan streams candidates without materializing blocks).

    Raises
    ------
    PartitioningError
        When ``n_max`` is exhausted without a valid vector.

    Examples
    --------
    >>> from repro.patterns import log_pattern
    >>> ltb_partition(log_pattern()).solution.n_banks
    13
    """
    engine = resolve_ltb_engine(engine)
    counter = resolve(ops)
    m = pattern.size
    first = start_n if start_n is not None else m
    if first < 1:
        raise ValueError(f"start_n must be positive, got {first}")

    vectors_tried = 0
    candidates_tried = 0
    n = first
    while n_max is None or n <= n_max:
        candidates_tried += 1
        if engine == "native":
            alpha, tried = _search_native(pattern, n, counter)
        elif engine == "vectorized":
            alpha, tried = _search_vectorized(pattern, n, counter, chunk)
        else:
            alpha, tried = _search_scalar(pattern, n, counter)
        vectors_tried += tried
        if alpha is not None:
            transform = LinearTransform(alpha=alpha)
            solution = PartitionSolution(
                pattern=pattern,
                transform=transform,
                n_banks=n,
                n_unconstrained=n,
                delta_ii=0,
                scheme="direct",
                algorithm="ltb",
            )
            return LTBResult(
                solution=solution,
                vectors_tried=vectors_tried,
                candidates_tried=candidates_tried,
            )
        counter.add()  # N := N + 1
        n += 1
    raise PartitioningError(
        f"LTB found no conflict-free linear transform with N <= {n_max} "
        f"for pattern of {m} elements"
    )


def ltb_min_banks(
    pattern: Pattern, n_limit: int | None = None, engine: str = "auto"
) -> int:
    """The minimum bank count LTB can achieve (convenience wrapper)."""
    return ltb_partition(pattern, n_max=n_limit, engine=engine).solution.n_banks


def ltb_overhead_elements(shape: Sequence[int], n_banks: int) -> int:
    """LTB storage overhead: pad *every* dimension to a multiple of ``N``.

    >>> ltb_overhead_elements((640, 480), 13)
    5450
    """
    if n_banks <= 0:
        raise ValueError(f"n_banks must be positive, got {n_banks}")
    if not shape or any(w <= 0 for w in shape):
        raise ValueError(f"shape must be positive, got {tuple(shape)}")
    padded = 1
    original = 1
    for w in shape:
        padded *= math.ceil(w / n_banks) * n_banks
        original *= w
    return padded - original


def ltb_bank_of(
    transform: LinearTransform, n_banks: int, element: Sequence[int]
) -> int:
    """LTB's bank hash — identical form to ours, different ``α`` provenance."""
    return transform.apply(element) % n_banks
