"""LTB baseline: linear-transformation-based partitioning (Wang et al., DAC 2013).

The state-of-the-art the paper compares against.  For each candidate bank
count ``N = m, m+1, …`` it **exhaustively enumerates** all ``N^n`` transform
vectors ``α ∈ [0, N)^n`` and accepts the first vector under which all
pattern elements take distinct bank indices ``(α·Δ) % N``.  Because the
whole vector space is searched, LTB finds the *minimum* bank count
achievable by any linear transform — our algorithm's ``N_f`` can only match
or exceed it (it matches on all five Fig. 3 patterns; it exceeds it on the
Median and Gaussian patterns, by 1 and 3 banks respectively).

The price is the search itself — ``O(C · N^n · m²)`` arithmetic operations
versus our constant-time construction — and the storage model: LTB's
intra-bank mapping pads **every** dimension of the array to a multiple of
``N``, giving overhead

.. math::

    ΔW_{LTB} = \\prod_i ⌈w_i/N⌉·N − \\prod_i w_i

(640×480, N=13: ``650·481 − 640·480 = 5450`` elements, the paper's
Section 2 figure), versus our last-dimension-only padding (640 elements).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

from ..core.opcount import OpCounter, resolve
from ..core.partition import PartitionSolution
from ..core.pattern import Pattern
from ..core.transform import LinearTransform
from ..errors import PartitioningError


@dataclass(frozen=True)
class LTBResult:
    """Outcome of the LTB exhaustive search.

    Attributes
    ----------
    solution:
        The winning ``(N, α)`` wrapped as a standard solution record.
    vectors_tried:
        Total candidate transform vectors evaluated before success.
    candidates_tried:
        Bank counts attempted (``C + 1`` in the paper's complexity model).
    """

    solution: PartitionSolution
    vectors_tried: int
    candidates_tried: int


def _candidate_vectors(n_banks: int, ndim: int) -> Iterator[Tuple[int, ...]]:
    """Lexicographic enumeration of all ``N^n`` transform vectors."""
    return itertools.product(range(n_banks), repeat=ndim)


def _vector_is_valid(
    vector: Sequence[int],
    pattern: Pattern,
    n_banks: int,
    ops: OpCounter,
) -> bool:
    """Check that ``(vector · Δ) % N`` is injective over the pattern.

    Mirrors the published algorithm: compute the transformed residue of
    **all** ``m`` elements first (the linear transform is applied wholesale
    before justification), then check distinctness — the paper's
    ``O(m²)``-per-vector justification step.  Arithmetic is charged for
    every residue; the distinctness scan charges comparisons only.
    """
    ndim = pattern.ndim
    residues = []
    for delta in pattern.offsets:
        ops.mul(ndim)
        if ndim > 1:
            ops.add(ndim - 1)
        ops.mod()
        residues.append(sum(a * d for a, d in zip(vector, delta)) % n_banks)
    seen = set()
    for residue in residues:
        ops.compare(len(seen) if seen else 1)
        if residue in seen:
            return False
        seen.add(residue)
    return True


def ltb_partition(
    pattern: Pattern,
    n_max: int | None = None,
    ops: OpCounter | None = None,
    start_n: int | None = None,
) -> LTBResult:
    """Run the LTB exhaustive search for ``pattern``.

    Parameters
    ----------
    pattern:
        The access pattern ``P`` (``m`` elements, ``n`` dimensions).
    n_max:
        Optional bank ceiling; the search stops (and raises) past it.
    ops:
        Optional instrumentation counter shared with our algorithm's runs.
    start_n:
        First bank count to try; defaults to ``m`` (no fewer banks can
        serve ``m`` parallel accesses at full bandwidth).

    Raises
    ------
    PartitioningError
        When ``n_max`` is exhausted without a valid vector.

    Examples
    --------
    >>> from repro.patterns import log_pattern
    >>> ltb_partition(log_pattern()).solution.n_banks
    13
    """
    counter = resolve(ops)
    m = pattern.size
    first = start_n if start_n is not None else m
    if first < 1:
        raise ValueError(f"start_n must be positive, got {first}")

    vectors_tried = 0
    candidates_tried = 0
    n = first
    while n_max is None or n <= n_max:
        candidates_tried += 1
        for vector in _candidate_vectors(n, pattern.ndim):
            vectors_tried += 1
            if _vector_is_valid(vector, pattern, n, counter):
                transform = LinearTransform(alpha=tuple(vector))
                solution = PartitionSolution(
                    pattern=pattern,
                    transform=transform,
                    n_banks=n,
                    n_unconstrained=n,
                    delta_ii=0,
                    scheme="direct",
                    algorithm="ltb",
                )
                return LTBResult(
                    solution=solution,
                    vectors_tried=vectors_tried,
                    candidates_tried=candidates_tried,
                )
        counter.add()  # N := N + 1
        n += 1
    raise PartitioningError(
        f"LTB found no conflict-free linear transform with N <= {n_max} "
        f"for pattern of {m} elements"
    )


def ltb_min_banks(pattern: Pattern, n_limit: int | None = None) -> int:
    """The minimum bank count LTB can achieve (convenience wrapper)."""
    return ltb_partition(pattern, n_max=n_limit).solution.n_banks


def ltb_overhead_elements(shape: Sequence[int], n_banks: int) -> int:
    """LTB storage overhead: pad *every* dimension to a multiple of ``N``.

    >>> ltb_overhead_elements((640, 480), 13)
    5450
    """
    if n_banks <= 0:
        raise ValueError(f"n_banks must be positive, got {n_banks}")
    if not shape or any(w <= 0 for w in shape):
        raise ValueError(f"shape must be positive, got {tuple(shape)}")
    padded = 1
    original = 1
    for w in shape:
        padded *= math.ceil(w / n_banks) * n_banks
        original *= w
    return padded - original


def ltb_bank_of(
    transform: LinearTransform, n_banks: int, element: Sequence[int]
) -> int:
    """LTB's bank hash — identical form to ours, different ``α`` provenance."""
    return transform.apply(element) % n_banks
