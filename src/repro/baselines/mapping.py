"""Full address mappings (and bulk kernels) for the naive baseline schemes.

:class:`~repro.baselines.cyclic.CyclicScheme` and
:class:`~repro.baselines.block.BlockScheme` only hash elements to banks;
to run a baseline through the simulation harness we also need in-bank
offsets — i.e. a complete :class:`~repro.core.mapping.BankMapping`.  The
two frozen-dataclass subclasses below provide exactly that:

* :class:`CyclicBankMapping` — ``B(x) = x_d % N``, in-bank coordinate
  ``x_d // N``; the partitioned dimension is padded to ``⌈w_d/N⌉`` slots.
* :class:`BlockBankMapping` — ``B(x) = x_d // ⌈w_d/N⌉``, in-bank
  coordinate ``x_d % ⌈w_d/N⌉``.

Both are bijective over in-range elements, so the scalar simulator (which
only calls ``address_of``/``bank_size``) replays them as faithfully as any
stock mapping.  Note that block banking is **not** a modular linear hash:
its :class:`~repro.core.partition.PartitionSolution` is a carrier for the
bank count / measured ``δP`` / scheme label, and the bank hashing lives on
the mapping override, never on ``solution.bank_of``.

Importing this module registers NumPy bank-index kernels with the bulk
dispatcher (:func:`repro.core.vectorized.register_bulk_kernel`), which
makes ``simulate_sweep(engine="auto")`` batch baseline conflict
simulations instead of replaying element by element — the same eligibility
rule as the stock mappings, extended by registration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..core.mapping import BankMapping, Shape
from ..core.opcount import OpCounter
from ..core.partition import PartitionSolution
from ..core.pattern import Pattern
from ..core.transform import LinearTransform
from ..core.vectorized import register_bulk_kernel
from ..errors import MappingError
from ..native import register_native_spec
from .block import BlockScheme
from .cyclic import CyclicScheme


def _ravel_rows(coords: "np.ndarray", shape: Sequence[int]) -> "np.ndarray":
    """Row-major ravel of a ``(k, n)`` coordinate batch over ``shape``."""
    linear = np.zeros(len(coords), dtype=np.int64)
    for dim, width in enumerate(shape):
        linear = linear * int(width) + coords[:, dim]
    return linear


@dataclass(frozen=True)
class _DimBankMapping(BankMapping):
    """Shared plumbing for mappings that bank along one dimension ``dim``.

    Subclasses define the per-bank shape and the two scalar address
    methods; geometry and storage accounting follow from the bank shape
    (all banks are the same size, so overhead accounting matches the
    scheme's ``overhead_elements`` closed form).
    """

    dim: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0 <= self.dim < self.ndim:
            raise MappingError(
                f"dim {self.dim} out of range for shape {self.shape}"
            )

    @property
    def slots(self) -> int:
        """Padded extent of the partitioned dimension inside one bank."""
        return math.ceil(self.shape[self.dim] / self.n_banks)

    @property
    def bank_shape(self) -> Shape:
        return (
            self.shape[: self.dim] + (self.slots,) + self.shape[self.dim + 1 :]
        )

    def bank_size(self, bank: int) -> int:
        if not 0 <= bank < self.n_banks:
            raise ValueError(f"bank {bank} out of range [0, {self.n_banks})")
        size = 1
        for w in self.bank_shape:
            size *= w
        return size

    @property
    def total_bank_elements(self) -> int:
        return self.n_banks * self.bank_size(0)


@dataclass(frozen=True)
class CyclicBankMapping(_DimBankMapping):
    """Cyclic (interleaved) banking along ``dim`` as a full address mapping."""

    def bank_of(self, element: Sequence[int], ops: OpCounter | None = None) -> int:
        vec = self._check_element(element)
        return vec[self.dim] % self.n_banks

    def offset_of(self, element: Sequence[int], ops: OpCounter | None = None) -> int:
        vec = self._check_element(element)
        coords = (
            vec[: self.dim] + (vec[self.dim] // self.n_banks,) + vec[self.dim + 1 :]
        )
        return self._ravel(coords, self.bank_shape)


@dataclass(frozen=True)
class BlockBankMapping(_DimBankMapping):
    """Block (contiguous-chunk) banking along ``dim`` as a full mapping.

    Unlike :meth:`BlockScheme.bank_of` this never clamps: the mapping's
    contract is in-range elements only (enforced by ``_check_element``),
    and the simulator's trace generator keeps every read in range.
    """

    @property
    def chunk(self) -> int:
        """Elements of the partitioned dimension per bank (``= slots``)."""
        return self.slots

    def bank_of(self, element: Sequence[int], ops: OpCounter | None = None) -> int:
        vec = self._check_element(element)
        return vec[self.dim] // self.chunk

    def offset_of(self, element: Sequence[int], ops: OpCounter | None = None) -> int:
        vec = self._check_element(element)
        coords = (
            vec[: self.dim] + (vec[self.dim] % self.chunk,) + vec[self.dim + 1 :]
        )
        return self._ravel(coords, self.bank_shape)


def cyclic_mapping(
    scheme: CyclicScheme, pattern: Pattern, shape: Sequence[int]
) -> CyclicBankMapping:
    """Package a cyclic scheme as a full mapping over an array of ``shape``.

    The solution record carries the scheme's *measured* ``δP`` (from
    :meth:`CyclicScheme.as_solution`), so simulation reports can be checked
    against the analytic claim.
    """
    return CyclicBankMapping(
        solution=scheme.as_solution(pattern),
        shape=tuple(int(w) for w in shape),
        dim=scheme.dim,
    )


def block_mapping(scheme: BlockScheme, pattern: Pattern) -> BlockBankMapping:
    """Package a block scheme (which already knows its shape) as a mapping.

    Block banking has no linear transform; the solution's unit ``α`` is a
    placeholder and ``solution.bank_of`` must not be used for this scheme —
    the mapping's override is the only valid hash.  ``delta_ii`` is the
    scheme's measured worst case over a chunk-boundary window.
    """
    shape = tuple(int(w) for w in scheme.shape)
    alpha = tuple(1 if j == scheme.dim else 0 for j in range(len(shape)))
    solution = PartitionSolution(
        pattern=pattern,
        transform=LinearTransform(alpha=alpha),
        n_banks=scheme.n_banks,
        n_unconstrained=scheme.n_banks,
        delta_ii=scheme.worst_delta_ii(pattern),
        scheme="block",
        algorithm="block",
    )
    return BlockBankMapping(solution=solution, shape=shape, dim=scheme.dim)


def _cyclic_kernel(
    mapping: CyclicBankMapping, elements: "np.ndarray"
) -> Tuple["np.ndarray", "np.ndarray"]:
    in_bank, banks = np.divmod(elements[:, mapping.dim], mapping.n_banks)
    coords = elements.copy()
    coords[:, mapping.dim] = in_bank
    return banks, _ravel_rows(coords, mapping.bank_shape)


def _block_kernel(
    mapping: BlockBankMapping, elements: "np.ndarray"
) -> Tuple["np.ndarray", "np.ndarray"]:
    banks, in_bank = np.divmod(elements[:, mapping.dim], mapping.chunk)
    coords = elements.copy()
    coords[:, mapping.dim] = in_bank
    return banks, _ravel_rows(coords, mapping.bank_shape)


def _cyclic_spec(mapping: CyclicBankMapping) -> dict:
    return {
        "kind": 1,
        "n_banks": mapping.n_banks,
        "dim": mapping.dim,
        "divisor": mapping.n_banks,
        "bank_shape": mapping.bank_shape,
    }


def _block_spec(mapping: BlockBankMapping) -> dict:
    return {
        "kind": 2,
        "n_banks": mapping.n_banks,
        "dim": mapping.dim,
        "divisor": mapping.chunk,
        "bank_shape": mapping.bank_shape,
    }


register_bulk_kernel(CyclicBankMapping, _cyclic_kernel)
register_bulk_kernel(BlockBankMapping, _block_kernel)

# The same types also opt into the compiled tier's fused trace kernel
# (engine="native"); registration is pure metadata and costs nothing when
# the extension is not built.
register_native_spec(CyclicBankMapping, _cyclic_spec)
register_native_spec(BlockBankMapping, _block_spec)
