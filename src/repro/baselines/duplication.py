"""Array-duplication baseline (paper introduction, ref [4]).

The simplest way to serve ``m`` parallel reads is to keep ``m`` full copies
of the array, one per reader.  It trivially achieves ``δP = 0`` for *any*
pattern and needs no address transformation at all — but its storage
overhead is ``(m − 1) · W``, which is why the paper dismisses it.  The model
below quantifies that trade for the benchmark harness, including the write
cost (every store must be broadcast to all copies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from ..core.pattern import Pattern


@dataclass(frozen=True)
class DuplicationScheme:
    """Full duplication: one array copy per parallel read port.

    Attributes
    ----------
    copies:
        Number of copies (= pattern size for full parallelism).
    shape:
        Array shape.
    """

    copies: int
    shape: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.copies < 1:
            raise ValueError(f"copies must be positive, got {self.copies}")
        if not self.shape or any(w <= 0 for w in self.shape):
            raise ValueError(f"shape must be positive, got {self.shape}")

    @property
    def original_elements(self) -> int:
        total = 1
        for w in self.shape:
            total *= w
        return total

    @property
    def overhead_elements(self) -> int:
        """``(copies − 1) · W`` extra elements."""
        return (self.copies - 1) * self.original_elements

    @property
    def delta_ii(self) -> int:
        """Always 0 for reads: each reader owns a private copy."""
        return 0

    @property
    def write_amplification(self) -> int:
        """Each store is replicated to every copy."""
        return self.copies

    def bank_of(self, reader: int, element: Sequence[int]) -> int:
        """Reader ``i`` always reads copy ``i`` (the 'bank' is the copy)."""
        if not 0 <= reader < self.copies:
            raise ValueError(f"reader {reader} out of range [0, {self.copies})")
        return reader


def duplication_for(pattern: Pattern, shape: Sequence[int]) -> DuplicationScheme:
    """A duplication scheme sized for full parallel access of ``pattern``."""
    return DuplicationScheme(copies=pattern.size, shape=tuple(int(w) for w in shape))
