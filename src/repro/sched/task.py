"""Task nodes for the dependency-aware scheduler.

A :class:`Task` is one node of an evaluation DAG: a picklable function,
its static arguments, the tasks whose results it consumes, an optional
deduplication key, and a placement hint.  Tasks are compared by identity
(two nodes with the same function are still two nodes); *sharing* is
expressed through ``key`` — tasks whose keys digest identically are
collapsed to a single execution by the runtime (see
:mod:`repro.sched.runtime`).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional, Sequence, Tuple

#: Valid ``placement`` values, in documentation order.
PLACEMENTS = ("auto", "inline", "thread", "process")

_task_ids = itertools.count(1)


class Task:
    """One schedulable unit of work.

    Parameters
    ----------
    fn:
        The task body.  Called as ``fn(*args, *dep_values)`` where
        ``dep_values`` are the results of ``deps`` in order.  Must be a
        top-level (picklable) function when ``placement`` resolves to
        ``"process"``.
    args:
        Static positional arguments, bound before the dependency results.
    deps:
        Upstream tasks whose results this task consumes.  The runtime
        guarantees they have finished (successfully) before ``fn`` runs;
        if any of them fails, this task is cancelled instead of run.
    key:
        Optional deduplication identity.  Two tasks whose keys produce the
        same :func:`repro.core.cache.stable_digest` are the *same work*:
        only the first-registered one executes, and every duplicate
        receives the identical result object.  ``None`` (default) means
        "always unique".  The key must be JSON-expressible (nested
        tuples/lists/dicts of scalars) — the cache-key tuples built by
        :func:`repro.core.cache.solve_key` qualify directly.
    placement:
        Where the task body runs: ``"inline"`` in the scheduler loop
        (sub-millisecond arithmetic, aggregations), ``"thread"`` on a
        thread pool (I/O, store lookups), ``"process"`` on worker
        processes (heavy solves/simulations), or ``"auto"`` (process when
        the run is parallel, inline otherwise).  Serial runs
        (``jobs`` <= 1) execute everything inline regardless.
    name:
        Label for errors, spans, and debug output.
    """

    __slots__ = ("fn", "args", "deps", "key", "placement", "name", "task_id")

    def __init__(
        self,
        fn: Callable[..., Any],
        args: Sequence[Any] = (),
        deps: Sequence["Task"] = (),
        key: Optional[Any] = None,
        placement: str = "auto",
        name: str = "",
    ) -> None:
        if placement not in PLACEMENTS:
            raise ValueError(
                f"placement must be one of {PLACEMENTS}, got {placement!r}"
            )
        for dep in deps:
            if not isinstance(dep, Task):
                raise TypeError(f"deps must be Task instances, got {dep!r}")
        self.fn = fn
        self.args: Tuple[Any, ...] = tuple(args)
        self.deps: Tuple["Task", ...] = tuple(deps)
        self.key = key
        self.placement = placement
        self.task_id = next(_task_ids)
        self.name = name or getattr(fn, "__name__", "task")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Task(#{self.task_id} {self.name!r} placement={self.placement} "
            f"deps={len(self.deps)} key={'yes' if self.key is not None else 'no'})"
        )
