"""Deterministic DAG runtime: ready-queue execution with shared-solve dedup.

Every evaluation pipeline in this repo — Table 1 rows, case-study chains,
sweep grids, verify suites, the serve micro-batch tier — is a DAG
(pattern → solve → simulate → aggregate) whose upstream solve nodes are
heavily shared.  :func:`repro.eval.parallel.run_parallel` executes those
pipelines as a flat map: shared work re-dispatches per item and the whole
batch barriers on the slowest element.  This runtime replaces the flat map
where structure exists, while ``run_parallel`` stays as the flat fallback
(``REPRO_SCHED=0`` routes every rewired call site back onto it).

Semantics
---------
* **Topological ready-queue execution** — tasks run as soon as their
  dependencies finish; ties break on registration order, so a serial run
  (``jobs`` <= 1) executes in one deterministic topological order.
* **Digest-keyed deduplication** — tasks carrying equal keys (by
  :func:`repro.core.cache.stable_digest`) collapse onto one execution;
  every duplicate receives the *identical* result object, so N grid cells
  sharing one canonical pattern trigger exactly one solve whose result
  fans out bit-identically.
* **Per-task placement** — ``inline`` in the scheduler loop for
  sub-millisecond arithmetic, ``thread`` for I/O-bound work, ``process``
  for heavy solves/simulations (shipped through the same registry-dump +
  span-merge channel ``run_parallel`` uses, so worker metrics and trace
  trees reassemble in the parent).
* **Streaming** — :func:`run_stream` yields a :class:`TaskResult` the
  moment each task settles; there is no global barrier, so callers can
  emit finished rows while slower subgraphs are still running.
* **Subtree failure isolation** — an exception fails only its task;
  transitive dependents are cancelled with the failure surfaced per node
  (:class:`DependencyFailedError`), and unrelated subgraphs keep running.
* **Crash resilience** — a process worker that dies (OOM kill, hard
  ``exit``) breaks the pool; affected tasks are rescheduled once on a
  fresh pool before being failed.

Telemetry: ``sched.tasks_total`` / ``sched.dedup_hits`` /
``sched.rescheduled`` / ``sched.cancelled`` counters and the
``sched.task_ms`` log histogram land in the process-global registry
(visible on ``/metrics`` and every ``--emit-metrics`` snapshot), and the
caller's trace id rides into every worker so PR 6's span trees still
reassemble across the process border.
"""

from __future__ import annotations

import heapq
import os
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from concurrent.futures.thread import ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..core.cache import stable_digest
from ..errors import ReproError
from ..obs import state as obs_state
from ..obs.metrics import registry as obs_registry
from ..obs.tracecontext import current_trace_id, trace
from ..obs.tracer import tracer as obs_tracer
from .task import Task

_FALSY = ("", "0", "false", "no", "off")

#: Times a task whose process worker crashed is re-queued before failing.
RESCHEDULE_LIMIT = 1

#: Registry names (counters + the per-task wall-clock log histogram).
TASKS_TOTAL = "sched.tasks_total"
DEDUP_HITS = "sched.dedup_hits"
RESCHEDULED = "sched.rescheduled"
CANCELLED = "sched.cancelled"
TASK_HISTOGRAM = "sched.task_ms"


def sched_enabled() -> bool:
    """Whether rewired call sites use the DAG runtime (``REPRO_SCHED``).

    Default on; any falsy value (``0``/``false``/``off``) routes every
    rewired harness back onto the flat :func:`~repro.eval.parallel.run_parallel`
    executor.  Read per call so tests and CLIs can flip it cheaply.
    """
    return os.environ.get("REPRO_SCHED", "1").strip().lower() not in _FALSY


class CycleError(ReproError):
    """The submitted task graph contains a dependency cycle."""

    def __init__(self, names: Sequence[str]) -> None:
        super().__init__("task dependency cycle: " + " -> ".join(names))
        self.cycle = tuple(names)


class DependencyFailedError(ReproError):
    """A task was cancelled because an upstream dependency failed."""

    def __init__(self, task: Task, dep: Task, cause: BaseException) -> None:
        super().__init__(
            f"task {task.name!r} cancelled: dependency {dep.name!r} "
            f"{'was cancelled' if isinstance(cause, DependencyFailedError) else 'failed'}"
            f" ({type(cause).__name__}: {cause})"
        )
        self.task = task
        self.dep = dep
        self.__cause__ = cause


@dataclass
class TaskResult:
    """One settled task, as streamed by :func:`run_stream`.

    ``state`` is ``"done"`` (value valid), ``"failed"`` (``error`` is the
    task's own exception), or ``"cancelled"`` (``error`` is a
    :class:`DependencyFailedError` naming the failed ancestor).
    ``deduped`` marks results that fanned out from another task's
    execution; their ``duration_ms`` is 0 because no work ran.
    """

    task: Task
    state: str
    value: Any = None
    error: Optional[BaseException] = None
    attempts: int = 0
    deduped: bool = False
    duration_ms: float = 0.0

    @property
    def ok(self) -> bool:
        return self.state == "done"


# -- worker entry points (top-level: picklable) ---------------------------


def _process_entry(payload: Tuple[Any, ...]) -> Tuple[Any, ...]:
    """Run one task in a pool worker; ship metrics/spans home with the value.

    The worker-side half of the dump/merge channel: the process-global
    registry is reset first (a forked worker inherits an opaque copy of the
    parent's metrics), the task runs under the caller's trace id, and the
    return tuple carries the registry delta plus any spans recorded, for
    the parent to merge in completion order.
    """
    fn, args, dep_values, trace_id, traced = payload
    registry = obs_registry()
    registry.reset()
    tr = obs_tracer()
    mark = tr.mark()
    worker_id = f"pid{os.getpid()}"
    started = time.perf_counter()
    ctx = trace(trace_id) if trace_id is not None else nullcontext()
    with ctx:
        value = fn(*args, *dep_values)
    duration_ms = (time.perf_counter() - started) * 1000.0
    events = tr.dump_since(mark) if traced else []
    return value, registry.dump(worker_id=worker_id), events, worker_id, duration_ms


def _thread_entry(
    fn: Callable[..., Any],
    args: Tuple[Any, ...],
    dep_values: List[Any],
    trace_id: Optional[str],
) -> Tuple[Any, float]:
    """Run one task on a pool thread (shared registry, re-entered trace)."""
    started = time.perf_counter()
    ctx = trace(trace_id) if trace_id is not None else nullcontext()
    with ctx:
        value = fn(*args, *dep_values)
    return value, (time.perf_counter() - started) * 1000.0


def _resolve_workers(jobs: Optional[int], n_tasks: int) -> int:
    """Effective worker count; mirrors :func:`repro.eval.parallel.resolve_jobs`."""
    if jobs is None:
        return 1
    if jobs <= 0:
        raise ValueError(
            f"jobs must be a positive worker count (or None for serial), got {jobs}"
        )
    if jobs == 1 or n_tasks <= 1:
        return 1
    return min(jobs, n_tasks)


class _Run:
    """One scheduler execution: plan (validate, dedup) then iterate."""

    def __init__(self, roots: Iterable[Task], jobs: Optional[int]) -> None:
        self.order = self._register(roots)
        self.index = {t: i for i, t in enumerate(self.order)}
        self.alias_of: Dict[Task, Task] = {}
        self.aliases: Dict[Task, List[Task]] = {}
        self._dedup()
        self.executables = [t for t in self.order if t not in self.alias_of]
        self.workers = _resolve_workers(jobs, len(self.executables))
        self.resolved_deps: Dict[Task, List[Task]] = {
            t: [self._resolve(d) for d in t.deps] for t in self.executables
        }
        self.pending: Dict[Task, int] = {
            t: len(set(self.resolved_deps[t])) for t in self.executables
        }
        self.dependents: Dict[Task, List[Task]] = {t: [] for t in self.executables}
        for t in self.executables:
            for dep in set(self.resolved_deps[t]):
                self.dependents[dep].append(t)
        self.results: Dict[Task, TaskResult] = {}
        self.attempts: Dict[Task, int] = {}
        self._ready: List[Tuple[int, Task]] = []
        for t in self.executables:
            if self.pending[t] == 0:
                heapq.heappush(self._ready, (self.index[t], t))
        self._inflight: Dict[Future, Task] = {}
        self._procs: Optional[ProcessPoolExecutor] = None
        self._threads: Optional[ThreadPoolExecutor] = None
        self._traced = obs_state.enabled()
        self._trace_id = current_trace_id()
        self._parent_span = obs_tracer().current_parent() if self._traced else None

    # -- planning ---------------------------------------------------------

    @staticmethod
    def _register(roots: Iterable[Task]) -> List[Task]:
        """Dependency-first registration order; raises on cycles up front."""
        order: List[Task] = []
        VISITING, DONE = 0, 1
        state: Dict[Task, int] = {}
        path: List[Task] = []
        for root in roots:
            if state.get(root) == DONE:
                continue
            stack: List[Tuple[Task, Iterator[Task]]] = [(root, iter(root.deps))]
            state[root] = VISITING
            path.append(root)
            while stack:
                task, deps = stack[-1]
                dep = next(deps, None)
                if dep is None:
                    stack.pop()
                    path.pop()
                    state[task] = DONE
                    order.append(task)
                    continue
                dep_state = state.get(dep)
                if dep_state == DONE:
                    continue
                if dep_state == VISITING:
                    start = path.index(dep)
                    raise CycleError(
                        [t.name for t in path[start:]] + [dep.name]
                    )
                state[dep] = VISITING
                path.append(dep)
                stack.append((dep, iter(dep.deps)))
        return order

    def _dedup(self) -> None:
        primary: Dict[str, Task] = {}
        for task in self.order:
            if task.key is None:
                continue
            digest = stable_digest(task.key)
            rep = primary.get(digest)
            if rep is None:
                primary[digest] = task
            else:
                self.alias_of[task] = rep
                self.aliases.setdefault(rep, []).append(task)

    def _resolve(self, task: Task) -> Task:
        return self.alias_of.get(task, task)

    # -- placement / submission -------------------------------------------

    def _placement(self, task: Task) -> str:
        if self.workers == 1:
            return "inline"
        if task.placement == "auto":
            return "process"
        return task.placement

    def _dep_values(self, task: Task) -> List[Any]:
        return [self.results[self._resolve(d)].value for d in task.deps]

    def _submit(self, task: Task, placement: str) -> Future:
        self.attempts[task] = self.attempts.get(task, 0) + 1
        if placement == "process":
            if self._procs is None:
                self._procs = ProcessPoolExecutor(max_workers=self.workers)
            payload = (
                task.fn,
                task.args,
                self._dep_values(task),
                self._trace_id,
                self._traced,
            )
            return self._procs.submit(_process_entry, payload)
        if self._threads is None:
            self._threads = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-sched"
            )
        return self._threads.submit(
            _thread_entry, task.fn, task.args, self._dep_values(task), self._trace_id
        )

    def _broken_pool(self) -> None:
        if self._procs is not None:
            self._procs.shutdown(wait=False, cancel_futures=True)
            self._procs = None

    def _shutdown(self) -> None:
        # wait=True: free on normal exhaustion (nothing is running), and on
        # abandonment it joins the pool threads instead of racing their
        # atexit wakeup pipe ("Bad file descriptor" noise at interpreter exit).
        if self._procs is not None:
            self._procs.shutdown(wait=True, cancel_futures=True)
            self._procs = None
        if self._threads is not None:
            self._threads.shutdown(wait=True, cancel_futures=True)
            self._threads = None

    # -- completion --------------------------------------------------------

    def _settle(self, result: TaskResult) -> Iterator[TaskResult]:
        """Record one primary task's outcome; fan out to aliases/dependents."""
        registry = obs_registry()
        task = result.task
        self.results[task] = result
        if result.state != "cancelled":
            registry.counter(TASKS_TOTAL).inc()
            registry.log_histogram(TASK_HISTOGRAM).observe(result.duration_ms)
        yield result
        for alias in self.aliases.get(task, ()):
            shadow = TaskResult(
                task=alias,
                state=result.state,
                value=result.value,
                error=result.error,
                attempts=result.attempts,
                deduped=True,
            )
            self.results[alias] = shadow
            if result.state == "done":
                registry.counter(DEDUP_HITS).inc()
            yield shadow
        if result.state == "done":
            for dependent in self.dependents[task]:
                if dependent in self.results:
                    continue
                self.pending[dependent] -= 1
                if self.pending[dependent] == 0:
                    heapq.heappush(self._ready, (self.index[dependent], dependent))
        else:
            yield from self._cancel_dependents(task, result.error)

    def _cancel_dependents(
        self, failed: Task, cause: Optional[BaseException]
    ) -> Iterator[TaskResult]:
        """Cancel the failed task's transitive dependents, depth first."""
        registry = obs_registry()
        for dependent in sorted(self.dependents[failed], key=self.index.get):
            if dependent in self.results:
                continue
            error = DependencyFailedError(
                dependent, failed, cause if cause is not None else ReproError("failed")
            )
            registry.counter(CANCELLED).inc()
            yield from self._settle(
                TaskResult(task=dependent, state="cancelled", error=error)
            )

    def _run_inline(self, task: Task) -> Iterator[TaskResult]:
        self.attempts[task] = self.attempts.get(task, 0) + 1
        started = time.perf_counter()
        try:
            value = task.fn(*task.args, *self._dep_values(task))
        except Exception as exc:  # noqa: BLE001 - surfaced per node
            yield from self._settle(
                TaskResult(
                    task=task,
                    state="failed",
                    error=exc,
                    attempts=self.attempts[task],
                    duration_ms=(time.perf_counter() - started) * 1000.0,
                )
            )
            return
        yield from self._settle(
            TaskResult(
                task=task,
                state="done",
                value=value,
                attempts=self.attempts[task],
                duration_ms=(time.perf_counter() - started) * 1000.0,
            )
        )

    def _handle_future(self, task: Task, future: Future) -> Iterator[TaskResult]:
        try:
            payload = future.result()
        except BrokenProcessPool as exc:
            self._broken_pool()
            if self.attempts.get(task, 0) <= RESCHEDULE_LIMIT:
                obs_registry().counter(RESCHEDULED).inc()
                heapq.heappush(self._ready, (self.index[task], task))
                return
            yield from self._settle(
                TaskResult(
                    task=task,
                    state="failed",
                    error=exc,
                    attempts=self.attempts.get(task, 0),
                )
            )
            return
        except Exception as exc:  # noqa: BLE001 - surfaced per node
            yield from self._settle(
                TaskResult(
                    task=task,
                    state="failed",
                    error=exc,
                    attempts=self.attempts.get(task, 0),
                )
            )
            return
        if isinstance(payload, tuple) and len(payload) == 5:
            value, dump, events, worker_id, duration_ms = payload
            obs_registry().merge(dump)
            if self._traced and events:
                obs_tracer().merge(
                    events, parent_id=self._parent_span, worker_id=worker_id
                )
        else:  # thread placement: (value, duration_ms)
            value, duration_ms = payload
        yield from self._settle(
            TaskResult(
                task=task,
                state="done",
                value=value,
                attempts=self.attempts.get(task, 0),
                duration_ms=duration_ms,
            )
        )

    # -- the loop ----------------------------------------------------------

    def iterate(self) -> Iterator[TaskResult]:
        try:
            while self._ready or self._inflight:
                while self._ready:
                    _, task = heapq.heappop(self._ready)
                    if task in self.results:
                        continue  # cancelled while queued
                    placement = self._placement(task)
                    if placement == "inline":
                        yield from self._run_inline(task)
                    else:
                        self._inflight[self._submit(task, placement)] = task
                if not self._inflight:
                    continue
                done, _ = wait(self._inflight, return_when=FIRST_COMPLETED)
                for future in done:
                    yield from self._handle_future(self._inflight.pop(future), future)
        finally:
            self._shutdown()


def run_stream(
    tasks: Sequence[Task], jobs: Optional[int] = None
) -> Iterator[TaskResult]:
    """Execute the DAG reachable from ``tasks``; stream results as they settle.

    The graph is validated (cycle detection, dedup resolution) *before* any
    task runs — a :class:`CycleError` raises here, never mid-flight.  The
    returned iterator yields one :class:`TaskResult` per registered task
    (deduplicated twins included) in completion order; serial runs
    (``jobs`` <= 1) complete in deterministic topological registration
    order.  Abandoning the iterator shuts the worker pools down.
    """
    run = _Run(tasks, jobs)
    return run.iterate()


def gather(tasks: Sequence[Task], jobs: Optional[int] = None) -> List[Any]:
    """Execute the DAG and return ``tasks``'s values in input order.

    The barrier-style entry point for callers that need every result
    anyway (Table 1, verify suites).  If any requested task failed or was
    cancelled, the earliest-registered failure's exception is raised after
    the rest of the graph has settled.
    """
    tasks = list(tasks)
    results: Dict[Task, TaskResult] = {}
    for result in run_stream(tasks, jobs=jobs):
        results[result.task] = result
    failed = [results[t] for t in tasks if not results[t].ok]
    if failed:
        raise failed[0].error  # type: ignore[misc]
    return [results[t].value for t in tasks]


def map_tasks(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    jobs: Optional[int] = None,
    keys: Optional[Sequence[Any]] = None,
    placement: str = "auto",
) -> List[Any]:
    """Scheduler-backed drop-in for :func:`repro.eval.parallel.run_parallel`.

    Maps ``fn`` over ``items`` with results in input order.  ``keys``
    (parallel to ``items``) enables digest-keyed deduplication: items whose
    keys digest identically run once and share the result object.  When the
    scheduler is disabled (``REPRO_SCHED=0``), falls back to the flat
    ``run_parallel`` executor — same results, no dedup.
    """
    if not sched_enabled():
        from ..eval.parallel import run_parallel

        return run_parallel(fn, items, jobs=jobs)
    if keys is not None and len(keys) != len(items):
        raise ValueError(
            f"keys must parallel items ({len(keys)} keys, {len(items)} items)"
        )
    tasks = [
        Task(
            fn,
            args=(item,),
            key=keys[i] if keys is not None else None,
            placement=placement,
        )
        for i, item in enumerate(items)
    ]
    return gather(tasks, jobs=jobs)
