"""Dependency-aware task scheduler with shared-solve deduplication.

Public surface:

* :class:`~repro.sched.task.Task` — one DAG node: ``fn(*args, *dep_values)``,
  a dedup ``key``, and a ``placement`` hint.
* :func:`~repro.sched.runtime.run_stream` — execute a DAG, streaming
  :class:`~repro.sched.runtime.TaskResult`\\ s in completion order.
* :func:`~repro.sched.runtime.gather` — execute and return values in input
  order (raises the first failure).
* :func:`~repro.sched.runtime.map_tasks` — flat-map adapter used by the
  rewired eval/verify/serve harnesses; falls back to
  :func:`repro.eval.parallel.run_parallel` when ``REPRO_SCHED=0``.

See ``docs/SCHEDULER.md`` for the task model, placement rules, and
deduplication semantics.
"""

from .runtime import (
    CANCELLED,
    DEDUP_HITS,
    RESCHEDULE_LIMIT,
    RESCHEDULED,
    TASK_HISTOGRAM,
    TASKS_TOTAL,
    CycleError,
    DependencyFailedError,
    TaskResult,
    gather,
    map_tasks,
    run_stream,
    sched_enabled,
)
from .task import PLACEMENTS, Task

__all__ = [
    "Task",
    "TaskResult",
    "CycleError",
    "DependencyFailedError",
    "run_stream",
    "gather",
    "map_tasks",
    "sched_enabled",
    "PLACEMENTS",
    "RESCHEDULE_LIMIT",
    "TASKS_TOTAL",
    "DEDUP_HITS",
    "RESCHEDULED",
    "CANCELLED",
    "TASK_HISTOGRAM",
]
