"""Serialization of partitioning artifacts.

A real tool needs to persist its decisions — the banking chosen for each
array is consumed by later build steps (codegen, floorplanning, reports).
This module round-trips the core objects through plain JSON-compatible
dictionaries: no pickle, no custom binary, diff-able in version control.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from .core.mapping import BankMapping
from .core.partition import PartitionSolution
from .core.pattern import Pattern
from .core.transform import LinearTransform
from .errors import ReproError


class SerializationError(ReproError, ValueError):
    """The payload is not a valid serialized repro object."""


_FORMAT = "repro/partition-solution"
_FORMAT_MAPPING = "repro/bank-mapping"
_VERSION = 1


def pattern_to_dict(pattern: Pattern) -> Dict[str, Any]:
    """JSON-compatible form of a pattern."""
    return {
        "name": pattern.name,
        "offsets": [list(offset) for offset in pattern.offsets],
    }


def pattern_from_dict(payload: Dict[str, Any]) -> Pattern:
    """Inverse of :func:`pattern_to_dict`."""
    try:
        return Pattern(payload["offsets"], name=payload.get("name", ""))
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed pattern payload: {exc}") from exc


def solution_to_dict(solution: PartitionSolution) -> Dict[str, Any]:
    """JSON-compatible form of a partitioning solution."""
    return {
        "format": _FORMAT,
        "version": _VERSION,
        "pattern": pattern_to_dict(solution.pattern),
        "alpha": list(solution.transform.alpha),
        "extents": list(solution.transform.extents),
        "n_banks": solution.n_banks,
        "n_unconstrained": solution.n_unconstrained,
        "delta_ii": solution.delta_ii,
        "scheme": solution.scheme,
        "algorithm": solution.algorithm,
        "bank_ports": solution.bank_ports,
    }


def solution_from_dict(payload: Dict[str, Any]) -> PartitionSolution:
    """Inverse of :func:`solution_to_dict`, with validation."""
    if payload.get("format") != _FORMAT:
        raise SerializationError(
            f"expected format {_FORMAT!r}, got {payload.get('format')!r}"
        )
    if payload.get("version") != _VERSION:
        raise SerializationError(f"unsupported version {payload.get('version')!r}")
    try:
        solution = PartitionSolution(
            pattern=pattern_from_dict(payload["pattern"]),
            transform=LinearTransform(
                alpha=tuple(payload["alpha"]),
                extents=tuple(payload.get("extents", ())),
            ),
            n_banks=int(payload["n_banks"]),
            n_unconstrained=int(payload["n_unconstrained"]),
            delta_ii=int(payload["delta_ii"]),
            scheme=str(payload["scheme"]),
            algorithm=str(payload["algorithm"]),
            bank_ports=int(payload.get("bank_ports", 1)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed solution payload: {exc}") from exc
    # Sanity: the recorded bank hash must still separate the pattern to the
    # recorded delta; a corrupted file should not silently mis-bank.  Each
    # physical bank serves ``bank_ports`` accesses per cycle, so the busiest
    # bank's load divides by the port count before comparing.
    banks = solution.bank_indices()
    worst = max(banks.count(b) for b in set(banks))
    measured_delta = -(-worst // solution.bank_ports) - 1
    if measured_delta > solution.delta_ii:
        raise SerializationError(
            f"payload is inconsistent: measured delta {measured_delta} exceeds "
            f"recorded delta {solution.delta_ii}"
        )
    return solution


def mapping_to_dict(mapping: BankMapping) -> Dict[str, Any]:
    """JSON-compatible form of a full bank mapping."""
    return {
        "format": _FORMAT_MAPPING,
        "version": _VERSION,
        "solution": solution_to_dict(mapping.solution),
        "shape": list(mapping.shape),
    }


def mapping_from_dict(payload: Dict[str, Any]) -> BankMapping:
    """Inverse of :func:`mapping_to_dict`."""
    if payload.get("format") != _FORMAT_MAPPING:
        raise SerializationError(
            f"expected format {_FORMAT_MAPPING!r}, got {payload.get('format')!r}"
        )
    try:
        return BankMapping(
            solution=solution_from_dict(payload["solution"]),
            shape=tuple(payload["shape"]),
        )
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed mapping payload: {exc}") from exc


def save_solution(solution: PartitionSolution, path: Union[str, Path]) -> None:
    """Write a solution to a JSON file."""
    Path(path).write_text(json.dumps(solution_to_dict(solution), indent=2))


def load_solution(path: Union[str, Path]) -> PartitionSolution:
    """Read a solution from a JSON file."""
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise SerializationError(f"{path} is not valid JSON: {exc}") from exc
    return solution_from_dict(payload)


def save_mapping(mapping: BankMapping, path: Union[str, Path]) -> None:
    """Write a full mapping (solution + array shape) to a JSON file."""
    Path(path).write_text(json.dumps(mapping_to_dict(mapping), indent=2))


def load_mapping(path: Union[str, Path]) -> BankMapping:
    """Read a full mapping from a JSON file."""
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise SerializationError(f"{path} is not valid JSON: {exc}") from exc
    return mapping_from_dict(payload)
