"""Section 5.1 / Section 2 case study: the LoG worked example.

Regenerates every number the paper walks through for the 13-element LoG
pattern: the derived transform ``α = (5, 1)``, the transformed values
``z``, the 13-bank assignment of Fig. 2(b), the ``δP|N`` sweep row, the
``N_max = 10`` choices (fast 7-bank fold and same-size 7-bank solution of
Fig. 2(c)), and the Section 2 motivational op/overhead comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..baselines.ltb import ltb_overhead_elements, ltb_partition
from ..core.mapping import ours_overhead_elements
from ..core.opcount import OpCounter
from ..core.partition import (
    fast_nc,
    minimize_nf,
    partition,
    same_size_sweep,
)
from ..core.pattern import Pattern
from ..obs.metrics import registry as obs_registry
from ..obs.tracer import span
from ..patterns.library import log_pattern
from ..sched import Task, gather, sched_enabled
from .parallel import run_parallel


@dataclass(frozen=True)
class CaseStudy:
    """All derived quantities of the paper's LoG walk-through.

    Attributes mirror the narrative order of Sections 2 and 5.1.
    """

    pattern: Pattern
    alpha: Tuple[int, ...]
    z_values: Tuple[int, ...]
    n_f: int
    bank_indices: Tuple[int, ...]
    sweep_row: Tuple[int, ...]  # A_P = δP|N + 1 for N = 1..10
    fast_nc: int
    fast_rounds: int
    same_size_nc: int
    same_size_candidates: Tuple[int, ...]
    same_size_delta: int
    ours_operations: int
    ltb_operations: int
    ltb_vectors_tried: int
    ours_overhead_elements: int
    ltb_overhead_elements: int


def _ours_chain_task(task):
    """Worker half 1: everything derived by the paper's algorithm."""
    pattern, n_max = task
    ours_ops = OpCounter()
    n_f, transform, z_values = minimize_nf(pattern, ops=ours_ops)
    solution = partition(pattern)
    bank_indices = tuple(solution.bank_of(delta) for delta in pattern.offsets)
    sweep = same_size_sweep(pattern, n_max, transform)
    nc_fast, rounds = fast_nc(n_f, n_max)
    return (n_f, transform, tuple(z_values), bank_indices, sweep, nc_fast, rounds, ours_ops)


def _ltb_chain_task(task):
    """Worker half 2: the (much slower) LTB baseline.

    The task payload carries the chain-wide bank ceiling and the search
    engine; the worker *honors* the ceiling instead of re-deriving (or,
    as this task once did, silently discarding) it.  The bound is valid by
    construction — see :func:`run_case_study`.
    """
    pattern, bound, engine = task
    ltb_ops = OpCounter()
    ltb = ltb_partition(pattern, n_max=bound, ops=ltb_ops, engine=engine)
    return (ltb.solution.n_banks, ltb.vectors_tried, ltb_ops)


def _case_chain_task(task):
    kind, pattern, bound, engine = task
    if kind == "ours":
        return _ours_chain_task((pattern, bound))
    return _ltb_chain_task((pattern, bound, engine))


def _bound_task(pattern):
    """Scheduler node: the chain-wide LTB bank ceiling (sub-ms, inline)."""
    return partition(pattern).n_banks


def _ltb_after_bound_task(pattern, engine, bound):
    """Scheduler node: LTB search under the bound produced by its dep."""
    return _ltb_chain_task((pattern, bound, engine))


def _case_chains(pattern, n_max, ltb_bound_hint, jobs, ltb_engine):
    """Run the two algorithm chains; DAG-scheduled unless disabled.

    Under the scheduler the bank ceiling is a real dependency edge — an
    inline task feeding the (process-heavy) LTB node — instead of a value
    the parent computes before any parallelism starts.  The ours chain is
    an independent subgraph, so it runs concurrently with both.
    ``ltb_bound_hint`` keeps the flat path's call order identical to the
    pre-scheduler code.
    """
    if sched_enabled():
        t_ours = Task(
            _ours_chain_task,
            args=((pattern, n_max),),
            placement="process",
            name="casestudy.ours",
        )
        t_bound = Task(
            _bound_task, args=(pattern,), placement="inline", name="casestudy.bound"
        )
        t_ltb = Task(
            _ltb_after_bound_task,
            args=(pattern, ltb_engine),
            deps=(t_bound,),
            placement="process",
            name="casestudy.ltb",
        )
        return gather([t_ours, t_ltb], jobs=jobs)
    return run_parallel(
        _case_chain_task,
        [
            ("ours", pattern, n_max, None),
            ("ltb", pattern, ltb_bound_hint, ltb_engine),
        ],
        jobs=jobs,
    )


def run_case_study(
    shape: Tuple[int, int] = (640, 480),
    n_max: int = 10,
    jobs: int | None = None,
    ltb_engine: str = "auto",
) -> CaseStudy:
    """Execute the full LoG case study at the paper's SD resolution.

    The paper presents offsets in a frame shifted by (2, 2); we use the
    same shift so the ``z`` values and bank indices match the text
    verbatim ({14, 18, ..., 34} and {1, 5, 6, ...}).

    ``jobs`` > 1 runs the two independent algorithm chains (ours, LTB) on
    separate worker processes — as a scheduled DAG (bound → LTB, with the
    ours chain as a free subgraph) unless ``REPRO_SCHED=0`` selects the
    flat pool; the numbers are identical to a serial run either way.

    The LTB chain runs under a shared ceiling derived once by the parent:
    our unconstrained ``N_f``.  It is a sound bound — at ``N = N_f`` the
    component-wise residues ``α mod N_f`` form a valid candidate vector, so
    the exhaustive search always terminates at or below it.  (The
    case-study ``n_max`` itself is the *folding* ceiling of the ours chain
    and would be too tight: LoG's LTB minimum is 13 > 10.)
    """
    pattern = log_pattern().translated((2, 2))
    ltb_bound = partition(pattern).n_banks

    with span("eval.casestudy", jobs=jobs):
        chains = _case_chains(pattern, n_max, ltb_bound, jobs, ltb_engine)
        (n_f, transform, z_values, bank_indices, sweep, nc_fast, rounds, ours_ops) = chains[0]
        ltb_banks, ltb_vectors, ltb_ops = chains[1]

    registry = obs_registry()
    registry.absorb_ops("eval.casestudy.ours.ops", ours_ops)
    registry.absorb_ops("eval.casestudy.ltb.ops", ltb_ops)
    registry.gauge("eval.casestudy.n_f").set(n_f)
    registry.gauge("eval.casestudy.same_size_nc").set(sweep.best_n)
    registry.gauge("eval.casestudy.fast_nc").set(nc_fast)
    registry.gauge("eval.casestudy.ltb.vectors_tried").set(ltb_vectors)

    return CaseStudy(
        pattern=pattern,
        alpha=transform.alpha,
        z_values=tuple(z_values),
        n_f=n_f,
        bank_indices=bank_indices,
        sweep_row=tuple(c for c in sweep.conflicts_by_n[1:]),  # type: ignore[misc]
        fast_nc=nc_fast,
        fast_rounds=rounds,
        same_size_nc=sweep.best_n,
        same_size_candidates=sweep.best_candidates,
        same_size_delta=sweep.conflicts_by_n[sweep.best_n] - 1,  # type: ignore[operator]
        ours_operations=ours_ops.total,
        ltb_operations=ltb_ops.total,
        ltb_vectors_tried=ltb_vectors,
        ours_overhead_elements=ours_overhead_elements(shape, n_f),
        ltb_overhead_elements=ltb_overhead_elements(shape, ltb_banks),
    )
