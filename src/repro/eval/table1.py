"""Table 1 harness: regenerate the paper's main experimental table.

For every benchmark pattern (LoG, Canny, Prewitt, SE, Sobel3D, Median,
Gaussian) and both algorithms, compute: minimum bank count, storage
overhead in 9 kb memory blocks at five resolutions, instrumented arithmetic
operation count, and execution time.  Improvement rows follow the paper's
convention.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from ..obs.metrics import registry as obs_registry
from ..obs.tracer import span
from ..patterns.library import BENCHMARKS, benchmark_shape
from ..sched import map_tasks, sched_enabled
from .metrics import AlgorithmRun, improvement, run_ltb, run_ours, storage_blocks
from .paper_data import RESOLUTION_ORDER
from .parallel import run_parallel


@dataclass(frozen=True)
class Table1Row:
    """Measured results for one benchmark.

    Attributes
    ----------
    benchmark:
        Pattern name (Table 1 row label).
    ours / ltb:
        Algorithm runs (banks, op counts, timing).
    storage:
        algorithm → per-resolution overhead in memory blocks.
    """

    benchmark: str
    ours: AlgorithmRun
    ltb: AlgorithmRun
    storage: Dict[str, Tuple[int, ...]]

    def storage_improvements(self) -> Tuple[float, ...]:
        """Per-resolution storage saving, in percent."""
        return tuple(
            improvement(l, o)
            for l, o in zip(self.storage["ltb"], self.storage["ours"])
        )

    @property
    def operations_improvement(self) -> float:
        return improvement(self.ltb.operations, self.ours.operations)

    @property
    def time_improvement(self) -> float:
        return improvement(self.ltb.time_ms, self.ours.time_ms)


@dataclass(frozen=True)
class Table1:
    """The full measured table plus the paper-style averages."""

    rows: Tuple[Table1Row, ...]

    def row(self, benchmark: str) -> Table1Row:
        for r in self.rows:
            if r.benchmark == benchmark:
                return r
        raise KeyError(f"no row for benchmark {benchmark!r}")

    @property
    def average_storage_improvement(self) -> float:
        """Mean over every (benchmark, resolution) cell, paper footer style."""
        cells: List[float] = []
        for r in self.rows:
            cells.extend(r.storage_improvements())
        return sum(cells) / len(cells)

    @property
    def average_operations_improvement(self) -> float:
        vals = [r.operations_improvement for r in self.rows]
        return sum(vals) / len(vals)

    @property
    def average_time_improvement(self) -> float:
        vals = [r.time_improvement for r in self.rows]
        return sum(vals) / len(vals)


def build_row(
    benchmark: str,
    resolutions: Sequence[str] = RESOLUTION_ORDER,
    time_repetitions: int = 20,
    ltb_engine: str = "auto",
) -> Table1Row:
    """Measure one benchmark end to end.

    ``ltb_engine`` selects the LTB search engine for the instrumented run;
    the reported LTB milliseconds always time the scalar reference (see
    :func:`~repro.eval.metrics.run_ltb`).
    """
    if benchmark not in BENCHMARKS:
        raise KeyError(f"unknown benchmark {benchmark!r}")
    pattern = BENCHMARKS[benchmark]()
    with span("eval.table1.row", benchmark=benchmark):
        ours = run_ours(pattern, repetitions=time_repetitions)
        ltb = run_ltb(
            pattern,
            repetitions=max(1, time_repetitions // 10),
            engine=ltb_engine,
        )

        storage: Dict[str, Tuple[int, ...]] = {}
        registry = obs_registry()
        for algorithm, run in (("ours", ours), ("ltb", ltb)):
            cells = []
            for resolution in resolutions:
                shape = benchmark_shape(benchmark, resolution)
                blocks = storage_blocks(shape, run.n_banks, algorithm)
                cells.append(blocks)
                registry.gauge(
                    f"eval.{benchmark}.{algorithm}.storage_blocks.{resolution}"
                ).set(blocks)
            storage[algorithm] = tuple(cells)
    return Table1Row(benchmark=benchmark, ours=ours, ltb=ltb, storage=storage)


def _build_row_task(
    task: Tuple[str, int, str]
) -> Tuple[Table1Row, Dict[str, Any]]:
    """Flat-pool worker entry: one row, plus the metrics it recorded.

    Runs in a forked worker whose process-global registry is an opaque copy
    of the parent's — so it is reset first, and everything the row records
    travels home in the returned dump for the parent to merge.  All
    configuration (including the LTB engine) travels in the task payload:
    workers inherit no CLI state.
    """
    benchmark, time_repetitions, ltb_engine = task
    registry = obs_registry()
    registry.reset()
    row = build_row(
        benchmark, time_repetitions=time_repetitions, ltb_engine=ltb_engine
    )
    # worker_id makes the parent's merge publish worker.<id>.* shadows, so
    # per-worker skew (one slow forked worker) stays attributable.
    return row, registry.dump(worker_id=f"pid{os.getpid()}")


def _row_task(task: Tuple[str, int, str]) -> Table1Row:
    """Scheduler task body: one row, bare.

    The scheduler's process channel resets the worker registry and merges
    its dump home automatically, so unlike :func:`_build_row_task` this
    returns only the row — doing the dump here too would double-count
    every metric the row records.
    """
    benchmark, time_repetitions, ltb_engine = task
    return build_row(
        benchmark, time_repetitions=time_repetitions, ltb_engine=ltb_engine
    )


def build_table(
    benchmarks: Sequence[str] | None = None,
    time_repetitions: int = 20,
    jobs: int | None = None,
    ltb_engine: str = "auto",
) -> Table1:
    """Measure the full Table 1 (or a subset of rows).

    ``jobs`` > 1 measures rows on that many worker processes — through the
    DAG scheduler (:func:`repro.sched.map_tasks`) by default, or the flat
    pool when ``REPRO_SCHED=0``; results (and the metrics each row
    publishes) come back in benchmark order either way, so the table and
    the registry match a serial run.
    """
    names = list(benchmarks) if benchmarks is not None else list(BENCHMARKS)
    with span("eval.table1.build", benchmarks=",".join(names), jobs=jobs):
        if jobs is not None and jobs > 1:
            payloads = [(name, time_repetitions, ltb_engine) for name in names]
            if sched_enabled():
                rows = tuple(map_tasks(_row_task, payloads, jobs=jobs))
            else:
                outcomes = run_parallel(_build_row_task, payloads, jobs=jobs)
                registry = obs_registry()
                for _, dump in outcomes:
                    registry.merge(dump)
                rows = tuple(row for row, _ in outcomes)
        else:
            rows = tuple(
                build_row(
                    name,
                    time_repetitions=time_repetitions,
                    ltb_engine=ltb_engine,
                )
                for name in names
            )
    table = Table1(rows=rows)
    registry = obs_registry()
    registry.gauge("eval.table1.average_storage_improvement").set(
        table.average_storage_improvement
    )
    registry.gauge("eval.table1.average_operations_improvement").set(
        table.average_operations_improvement
    )
    registry.gauge("eval.table1.average_time_improvement").set(
        table.average_time_improvement
    )
    return table
