"""Parameter-sweep series: figure-style data beyond the single Table 1.

Each function returns a list of (x, ...) rows — the series a plot would
show — so benchmark output can report trends: overhead vs bank count,
overhead vs resolution, throughput vs unroll factor, energy vs scheme.

The parallel sweeps run through the DAG scheduler (:mod:`repro.sched`;
``REPRO_SCHED=0`` falls back to the flat pool), which adds streaming: pass
``on_row`` to receive ``(index, row)`` callbacks the moment each point
completes — no barrier on the slowest point — while the returned list
stays in input order and byte-identical to a serial run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..baselines.ltb import ltb_overhead_elements
from ..core.mapping import BankMapping, ours_overhead_elements
from ..core.partition import partition, widen_solution
from ..core.pattern import Pattern
from ..core.solver import solve
from ..hw.bram import overhead_blocks
from ..hw.energy import (
    EnergyModel,
    banked_sweep_energy,
    duplicated_sweep_energy,
    monolithic_sweep_energy,
)
from ..patterns.generators import unrolled
from ..patterns.library import RESOLUTIONS
from ..sched import Task, run_stream, sched_enabled
from .parallel import run_parallel

#: Streaming callback: ``on_row(index, row)`` as each point completes.
RowCallback = Callable[[int, Any], None]


def _map_rows(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    jobs: Optional[int],
    on_row: Optional[RowCallback] = None,
) -> List[Any]:
    """Ordered map over sweep points, streaming completions to ``on_row``.

    The list comes back in input order regardless of completion order, so
    the default (no callback) behavior is indistinguishable from the old
    flat map.  With ``REPRO_SCHED=0`` the flat pool runs the batch and the
    callbacks fire after the barrier, in input order.
    """
    if not sched_enabled():
        results = run_parallel(fn, items, jobs=jobs)
        if on_row is not None:
            for i, row in enumerate(results):
                on_row(i, row)
        return results
    tasks = [Task(fn, args=(item,)) for item in items]
    index = {task: i for i, task in enumerate(tasks)}
    results: List[Any] = [None] * len(tasks)
    for outcome in run_stream(tasks, jobs=jobs):
        if not outcome.ok:
            raise outcome.error
        i = index[outcome.task]
        results[i] = outcome.value
        if on_row is not None:
            on_row(i, outcome.value)
    return results


@dataclass(frozen=True)
class OverheadPoint:
    """One point of an overhead-vs-banks series.

    ``delta_ii`` is populated only when the series was computed for a
    concrete pattern (it is the solver's achieved ``δP`` under the point's
    bank budget); pure-geometry series leave it ``None``.
    """

    n_banks: int
    ours_elements: int
    ltb_elements: int
    delta_ii: Optional[int] = None

    @property
    def ratio(self) -> float:
        if self.ours_elements == 0:
            return float("inf") if self.ltb_elements else 1.0
        return self.ltb_elements / self.ours_elements


def _overhead_point_task(
    task: Tuple[Tuple[int, ...], int, Optional[Pattern]]
) -> OverheadPoint:
    shape, n, pattern = task
    delta = None
    if pattern is not None:
        delta = solve(pattern, n_max=n).solution.delta_ii
    return OverheadPoint(
        n_banks=n,
        ours_elements=ours_overhead_elements(shape, n),
        ltb_elements=ltb_overhead_elements(shape, n),
        delta_ii=delta,
    )


def overhead_vs_banks(
    shape: Sequence[int],
    bank_range: Sequence[int],
    pattern: Pattern | None = None,
    jobs: int | None = None,
    on_row: Optional[RowCallback] = None,
) -> List[OverheadPoint]:
    """Padding overhead of both strategies across bank counts.

    With a ``pattern``, each point additionally reports the achieved
    ``δP`` under that bank budget (a :func:`repro.core.solver.solve` per
    point — memoized by the canonical cache, so a warm re-run is pure
    lookups).  ``jobs`` fans the points out over worker processes;
    ``on_row`` streams each finished point.
    """
    tasks = [(tuple(shape), n, pattern) for n in bank_range]
    return _map_rows(_overhead_point_task, tasks, jobs=jobs, on_row=on_row)


def _resolution_row_task(
    task: Tuple[str, Tuple[int, ...], int]
) -> Tuple[str, int, int]:
    name, shape, banks = task
    ours = overhead_blocks(ours_overhead_elements(shape, banks))
    ltb = overhead_blocks(ltb_overhead_elements(shape, banks))
    return (name, ours, ltb)


def overhead_vs_resolution(
    pattern: Pattern,
    algorithm_banks: int | None = None,
    jobs: int | None = None,
    on_row: Optional[RowCallback] = None,
) -> List[Tuple[str, int, int]]:
    """(resolution, ours blocks, ltb blocks) across the Table 1 sizes.

    ``algorithm_banks`` defaults to the pattern's own ``N_f`` so callers
    can pass just the pattern.
    """
    banks = (
        algorithm_banks if algorithm_banks is not None else partition(pattern).n_banks
    )
    tasks = [(name, shape, banks) for name, shape in RESOLUTIONS.items()]
    return _map_rows(_resolution_row_task, tasks, jobs=jobs, on_row=on_row)


def _unroll_row_task(
    task: Tuple[Pattern, int, Optional[int]]
) -> Tuple[int, int, int, float]:
    pattern, factor, n_max = task
    widened = unrolled(pattern, factor) if factor > 1 else pattern
    solution = partition(widened, n_max=n_max)
    ii = solution.delta_ii + 1
    return (factor, solution.n_banks, ii, factor * pattern.size / ii)


def throughput_vs_unroll(
    pattern: Pattern,
    factors: Sequence[int],
    n_max: int | None = None,
    jobs: int | None = None,
    on_row: Optional[RowCallback] = None,
) -> List[Tuple[int, int, int, float]]:
    """(factor, banks, II, elements-per-cycle) for unrolled variants.

    Throughput is the base pattern's elements delivered per cycle:
    ``factor · m / II`` — the series shows bandwidth scaling linearly with
    banks until ``n_max`` caps it.
    """
    tasks = [(pattern, factor, n_max) for factor in factors]
    return _map_rows(_unroll_row_task, tasks, jobs=jobs, on_row=on_row)


def energy_vs_scheme(
    pattern: Pattern,
    shape: Sequence[int],
    iterations: int,
    model: EnergyModel | None = None,
) -> List[Tuple[str, float, float, float]]:
    """(scheme, dynamic, leakage, total) for the three architectures.

    Compares the paper's banking against the two Section 1 alternatives it
    argues against: a monolithic multi-ported memory and full duplication.
    """
    model = model or EnergyModel()
    solution = partition(pattern)
    mapping = BankMapping(solution=solution, shape=tuple(shape))
    total = mapping.original_elements
    m = pattern.size

    banked = banked_sweep_energy(mapping, iterations, model)
    mono = monolithic_sweep_energy(total, m, iterations, ports=m, model=model)
    dup = duplicated_sweep_energy(total, m, iterations, model)
    return [
        ("banked", banked.dynamic, banked.leakage, banked.total),
        ("multiport", mono.dynamic, mono.leakage, mono.total),
        ("duplicate", dup.dynamic, dup.leakage, dup.total),
    ]


def bandwidth_vs_ports(
    pattern: Pattern, bandwidths: Sequence[int]
) -> List[Tuple[int, int, int]]:
    """(bank bandwidth B, physical banks, ports per bank) fold series."""
    base = partition(pattern)
    rows = []
    for bandwidth in bandwidths:
        wide = widen_solution(base, bandwidth)
        rows.append((bandwidth, wide.n_banks, wide.bank_ports))
    return rows
