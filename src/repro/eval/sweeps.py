"""Parameter-sweep series: figure-style data beyond the single Table 1.

Each function returns a list of (x, ...) rows — the series a plot would
show — so benchmark output can report trends: overhead vs bank count,
overhead vs resolution, throughput vs unroll factor, energy vs scheme.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..baselines.ltb import ltb_overhead_elements
from ..core.mapping import BankMapping, ours_overhead_elements
from ..core.partition import partition, widen_solution
from ..core.pattern import Pattern
from ..hw.bram import overhead_blocks
from ..hw.energy import (
    EnergyModel,
    banked_sweep_energy,
    duplicated_sweep_energy,
    monolithic_sweep_energy,
)
from ..patterns.generators import unrolled
from ..patterns.library import RESOLUTIONS


@dataclass(frozen=True)
class OverheadPoint:
    """One point of an overhead-vs-banks series."""

    n_banks: int
    ours_elements: int
    ltb_elements: int

    @property
    def ratio(self) -> float:
        if self.ours_elements == 0:
            return float("inf") if self.ltb_elements else 1.0
        return self.ltb_elements / self.ours_elements


def overhead_vs_banks(
    shape: Sequence[int], bank_range: Sequence[int]
) -> List[OverheadPoint]:
    """Padding overhead of both strategies across bank counts."""
    return [
        OverheadPoint(
            n_banks=n,
            ours_elements=ours_overhead_elements(tuple(shape), n),
            ltb_elements=ltb_overhead_elements(tuple(shape), n),
        )
        for n in bank_range
    ]


def overhead_vs_resolution(
    pattern: Pattern, algorithm_banks: int | None = None
) -> List[Tuple[str, int, int]]:
    """(resolution, ours blocks, ltb blocks) across the Table 1 sizes.

    ``algorithm_banks`` defaults to the pattern's own ``N_f`` so callers
    can pass just the pattern.
    """
    banks = (
        algorithm_banks if algorithm_banks is not None else partition(pattern).n_banks
    )
    rows = []
    for name, shape in RESOLUTIONS.items():
        ours = overhead_blocks(ours_overhead_elements(shape, banks))
        ltb = overhead_blocks(ltb_overhead_elements(shape, banks))
        rows.append((name, ours, ltb))
    return rows


def throughput_vs_unroll(
    pattern: Pattern, factors: Sequence[int], n_max: int | None = None
) -> List[Tuple[int, int, int, float]]:
    """(factor, banks, II, elements-per-cycle) for unrolled variants.

    Throughput is the base pattern's elements delivered per cycle:
    ``factor · m / II`` — the series shows bandwidth scaling linearly with
    banks until ``n_max`` caps it.
    """
    rows = []
    m = pattern.size
    for factor in factors:
        widened = unrolled(pattern, factor) if factor > 1 else pattern
        solution = partition(widened, n_max=n_max)
        ii = solution.delta_ii + 1
        rows.append((factor, solution.n_banks, ii, factor * m / ii))
    return rows


def energy_vs_scheme(
    pattern: Pattern,
    shape: Sequence[int],
    iterations: int,
    model: EnergyModel | None = None,
) -> List[Tuple[str, float, float, float]]:
    """(scheme, dynamic, leakage, total) for the three architectures.

    Compares the paper's banking against the two Section 1 alternatives it
    argues against: a monolithic multi-ported memory and full duplication.
    """
    model = model or EnergyModel()
    solution = partition(pattern)
    mapping = BankMapping(solution=solution, shape=tuple(shape))
    total = mapping.original_elements
    m = pattern.size

    banked = banked_sweep_energy(mapping, iterations, model)
    mono = monolithic_sweep_energy(total, m, iterations, ports=m, model=model)
    dup = duplicated_sweep_energy(total, m, iterations, model)
    return [
        ("banked", banked.dynamic, banked.leakage, banked.total),
        ("multiport", mono.dynamic, mono.leakage, mono.total),
        ("duplicate", dup.dynamic, dup.leakage, dup.total),
    ]


def bandwidth_vs_ports(
    pattern: Pattern, bandwidths: Sequence[int]
) -> List[Tuple[int, int, int]]:
    """(bank bandwidth B, physical banks, ports per bank) fold series."""
    base = partition(pattern)
    rows = []
    for bandwidth in bandwidths:
        wide = widen_solution(base, bandwidth)
        rows.append((bandwidth, wide.n_banks, wide.bank_ports))
    return rows
