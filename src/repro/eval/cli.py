"""Command-line entry points.

* ``repro-table1`` — regenerate the paper's Table 1.
* ``repro-casestudy`` — regenerate the Sections 2 / 5.1 LoG walk-through.
* ``repro-partition`` — partition a user-supplied pattern or kernel: the
  library as a standalone tool.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from ..core.mapping import BankMapping
from ..core.pattern import Pattern
from ..core.solver import Objective, solve
from ..patterns.library import BENCHMARKS, benchmark_pattern
from .casestudy import run_case_study
from .report import render_case_study, render_table1
from .table1 import build_table


def main_table1(argv: Sequence[str] | None = None) -> int:
    """Regenerate Table 1 and print it with the published values inline."""
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's Table 1 (DAC 2015 memory partitioning)."
    )
    parser.add_argument(
        "--benchmarks",
        nargs="*",
        choices=sorted(BENCHMARKS),
        default=None,
        help="subset of rows to run (default: all seven)",
    )
    parser.add_argument(
        "--repetitions",
        type=int,
        default=20,
        help="timing repetitions for our algorithm (LTB uses 1/10th)",
    )
    parser.add_argument(
        "--no-paper", action="store_true", help="omit the published reference rows"
    )
    args = parser.parse_args(argv)
    table = build_table(args.benchmarks, time_repetitions=args.repetitions)
    print(render_table1(table, include_paper=not args.no_paper))
    return 0


def main_casestudy(argv: Sequence[str] | None = None) -> int:
    """Regenerate the Sections 2 / 5.1 LoG walk-through."""
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's LoG case study (Sections 2 and 5.1)."
    )
    parser.add_argument("--nmax", type=int, default=10, help="bank-count ceiling")
    args = parser.parse_args(argv)
    print(render_case_study(run_case_study(n_max=args.nmax)))
    return 0


def _pattern_from_args(args: argparse.Namespace) -> Pattern:
    if args.benchmark:
        return benchmark_pattern(args.benchmark)
    if args.mask:
        rows = [[int(ch) for ch in row] for row in args.mask.split(",")]
        return Pattern.from_mask(rows, name="cli")
    if args.kernel:
        from ..hls.extract import extract_pattern
        from ..hls.frontend import parse_kernel

        with open(args.kernel) as handle:
            nest = parse_kernel(handle.read())
        return extract_pattern(nest, args.array)
    raise SystemExit("one of --benchmark, --mask, or --kernel is required")


def main_partition(argv: Sequence[str] | None = None) -> int:
    """Partition a pattern given on the command line.

    Examples::

        repro-partition --benchmark log --nmax 10
        repro-partition --mask 010,111,010 --shape 64,48
        repro-partition --kernel mykernel.c --shape 640,480 --save sol.json
    """
    parser = argparse.ArgumentParser(
        description="Memory-partition an access pattern (DAC 2015 algorithm)."
    )
    source = parser.add_argument_group("pattern source (choose one)")
    source.add_argument("--benchmark", choices=sorted(BENCHMARKS), help="a Table 1 pattern")
    source.add_argument(
        "--mask", help="comma-separated 0/1 rows, e.g. 010,111,010 for the cross"
    )
    source.add_argument("--kernel", help="path to a mini-C stencil kernel file")
    parser.add_argument("--array", default=None, help="array to extract (for --kernel)")
    parser.add_argument("--shape", default=None, help="array shape, e.g. 640,480")
    parser.add_argument("--nmax", type=int, default=None, help="bank-count ceiling")
    parser.add_argument(
        "--objective",
        choices=[o.value for o in Objective],
        default=Objective.LATENCY.value,
        help="Problem 1 optimization order",
    )
    parser.add_argument("--save", default=None, help="write the solution to a JSON file")
    parser.add_argument(
        "--emit-c", action="store_true", help="print B(x)/F(x) helper functions in C"
    )
    parser.add_argument("--grid", action="store_true", help="print a bank-index grid")
    args = parser.parse_args(argv)

    pattern = _pattern_from_args(args)
    shape = tuple(int(w) for w in args.shape.split(",")) if args.shape else None

    result = solve(
        pattern,
        shape=shape,
        n_max=args.nmax,
        objective=Objective(args.objective),
    )
    solution = result.solution
    print(f"pattern: {pattern.size} elements, {pattern.ndim} dimensions")
    print(f"transform alpha = {solution.transform.alpha}")
    print(f"banks = {solution.n_banks} (unconstrained N_f = {solution.n_unconstrained})")
    print(f"extra initiation interval = {solution.delta_ii} "
          f"({solution.delta_ii + 1} cycle(s) per pattern access)")
    if shape:
        print(f"storage overhead = {result.overhead_elements} elements over {shape}")

    if args.grid and pattern.ndim == 2:
        from ..viz.ascii_art import render_bank_grid

        rows = pattern.extents[0] + 2
        cols = pattern.extents[1] + 4
        print(render_bank_grid(solution, rows, cols, highlight=pattern))

    if args.emit_c:
        if shape is None:
            raise SystemExit("--emit-c requires --shape")
        from ..hls.codegen import generate_bank_helpers

        mapping = BankMapping(solution=solution, shape=shape)
        print(generate_bank_helpers("X", mapping))

    if args.save:
        from ..io import save_solution

        save_solution(solution, args.save)
        print(f"solution written to {args.save}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main_table1())
