"""Command-line entry points.

* ``repro-table1`` — regenerate the paper's Table 1.
* ``repro-casestudy`` — regenerate the Sections 2 / 5.1 LoG walk-through.
* ``repro-partition`` — partition a user-supplied pattern or kernel: the
  library as a standalone tool.
* ``repro-profile`` — solve + simulate one pattern with full telemetry:
  span tree, cycle histogram, per-bank conflict heatmap and attribution.

Every command accepts ``--emit-metrics PATH`` to write the obs-layer
snapshot (counters/gauges/histograms plus any recorded spans) as JSON, or
as flat CSV when ``PATH`` ends in ``.csv``.
"""

from __future__ import annotations

import argparse
import re
import sys
from typing import Optional, Sequence, Tuple

from ..core.mapping import BankMapping
from ..core.pattern import Pattern
from ..core.solver import Objective, solve
from ..patterns.library import BENCHMARKS, benchmark_pattern
from .casestudy import run_case_study
from .report import render_case_study, render_table1
from .table1 import build_table


def _add_jobs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        default=None,
        help="worker processes for independent rows (default: serial)",
    )


def _add_ltb_engine(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--ltb-engine",
        choices=["auto", "scalar", "vectorized", "native"],
        default="auto",
        help="LTB search engine for the instrumented run (identical results; "
        "reported LTB times always measure the scalar reference; native "
        "requires the compiled extension, see `make build-ext`)",
    )


def _add_emit_metrics(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--emit-metrics",
        metavar="PATH",
        default=None,
        help="write the telemetry snapshot to PATH (.json, .csv, or .prom)",
    )


def _emit_metrics(path: Optional[str], conflicts=None, extra=None) -> None:
    """Write the telemetry snapshot via the one shared serializer."""
    from ..obs.export import emit_metrics

    emit_metrics(path, conflicts=conflicts, extra=extra)


def main_table1(argv: Sequence[str] | None = None) -> int:
    """Regenerate Table 1 and print it with the published values inline."""
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's Table 1 (DAC 2015 memory partitioning)."
    )
    parser.add_argument(
        "--benchmarks",
        nargs="*",
        choices=sorted(BENCHMARKS),
        default=None,
        help="subset of rows to run (default: all seven)",
    )
    parser.add_argument(
        "--repetitions",
        type=int,
        default=20,
        help="timing repetitions for our algorithm (LTB uses 1/10th)",
    )
    parser.add_argument(
        "--no-paper", action="store_true", help="omit the published reference rows"
    )
    _add_jobs(parser)
    _add_ltb_engine(parser)
    _add_emit_metrics(parser)
    args = parser.parse_args(argv)
    table = build_table(
        args.benchmarks,
        time_repetitions=args.repetitions,
        jobs=args.jobs,
        ltb_engine=args.ltb_engine,
    )
    print(render_table1(table, include_paper=not args.no_paper))
    _emit_metrics(args.emit_metrics)
    return 0


def main_casestudy(argv: Sequence[str] | None = None) -> int:
    """Regenerate the Sections 2 / 5.1 LoG walk-through."""
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's LoG case study (Sections 2 and 5.1)."
    )
    parser.add_argument("--nmax", type=int, default=10, help="bank-count ceiling")
    _add_jobs(parser)
    _add_ltb_engine(parser)
    _add_emit_metrics(parser)
    args = parser.parse_args(argv)
    print(
        render_case_study(
            run_case_study(
                n_max=args.nmax, jobs=args.jobs, ltb_engine=args.ltb_engine
            )
        )
    )
    _emit_metrics(args.emit_metrics)
    return 0


def main_sweeps(argv: Sequence[str] | None = None) -> int:
    """Run the figure-style parameter sweeps for one benchmark pattern.

    Examples::

        repro-sweeps --benchmark log --banks 2-16
        repro-sweeps --benchmark se --factors 1,2,4,8 --jobs 4
    """
    parser = argparse.ArgumentParser(
        description=(
            "Parameter sweeps: overhead vs banks (with achieved deltaII), "
            "overhead vs resolution, throughput vs unroll factor."
        )
    )
    parser.add_argument(
        "--benchmark", choices=sorted(BENCHMARKS), default="log", help="pattern"
    )
    parser.add_argument("--shape", default="640,480", help="array shape for overhead")
    parser.add_argument("--banks", default="2-16", help="bank-count range, e.g. 2-16")
    parser.add_argument(
        "--factors", default="1,2,4", help="comma-separated unroll factors"
    )
    parser.add_argument(
        "--nmax", type=int, default=None, help="bank ceiling for the unroll series"
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print each row the moment the scheduler completes it "
        "(completion order) instead of after the section's last point",
    )
    _add_jobs(parser)
    _add_emit_metrics(parser)
    args = parser.parse_args(argv)

    from ..obs.metrics import registry as obs_registry
    from .sweeps import overhead_vs_banks, overhead_vs_resolution, throughput_vs_unroll

    pattern = benchmark_pattern(args.benchmark)
    shape = tuple(int(w) for w in args.shape.split(","))
    try:
        lo, hi = (int(part) for part in args.banks.split("-"))
    except ValueError:
        raise SystemExit(f"--banks expects LO-HI, got {args.banks!r}")
    factors = [int(f) for f in args.factors.split(",")]
    registry = obs_registry()

    def emit_overhead(_i, point):
        registry.gauge(f"sweeps.overhead.{point.n_banks}.ours").set(point.ours_elements)
        registry.gauge(f"sweeps.overhead.{point.n_banks}.ltb").set(point.ltb_elements)
        if point.delta_ii is not None:
            registry.gauge(
                f"sweeps.overhead.{point.n_banks}.delta_ii"
            ).set(point.delta_ii)
        print(
            f"{point.n_banks:>4} {point.ours_elements:>10} {point.ltb_elements:>10} "
            f"{point.delta_ii if point.delta_ii is not None else '-':>8}",
            flush=args.progress,
        )

    def emit_unroll(_i, row):
        factor, banks, ii, throughput = row
        registry.gauge(f"sweeps.unroll.{factor}.banks").set(banks)
        registry.gauge(f"sweeps.unroll.{factor}.ii").set(ii)
        registry.gauge(f"sweeps.unroll.{factor}.throughput").set(throughput)
        print(f"{factor:>6} {banks:>6} {ii:>4} {throughput:>12.2f}",
              flush=args.progress)

    def emit_resolution(_i, row):
        name, ours, ltb = row
        registry.gauge(f"sweeps.resolution.{name}.ours").set(ours)
        registry.gauge(f"sweeps.resolution.{name}.ltb").set(ltb)
        print(f"{name:>12} {ours:>6} {ltb:>6}", flush=args.progress)

    # With --progress the emitters ride the scheduler's streaming callback
    # (rows appear in completion order, no barrier); without it they replay
    # over the returned list, so output order stays the input order.
    streaming = args.progress

    print(f"overhead vs banks ({args.benchmark}, shape {shape}):")
    print(f"{'N':>4} {'ours':>10} {'ltb':>10} {'deltaII':>8}", flush=streaming)
    points = overhead_vs_banks(
        shape, range(lo, hi + 1), pattern=pattern, jobs=args.jobs,
        on_row=emit_overhead if streaming else None,
    )
    if not streaming:
        for i, point in enumerate(points):
            emit_overhead(i, point)

    print()
    print(f"throughput vs unroll (n_max={args.nmax}):")
    print(f"{'factor':>6} {'banks':>6} {'II':>4} {'elems/cycle':>12}",
          flush=streaming)
    unroll_rows = throughput_vs_unroll(
        pattern, factors, n_max=args.nmax, jobs=args.jobs,
        on_row=emit_unroll if streaming else None,
    )
    if not streaming:
        for i, row in enumerate(unroll_rows):
            emit_unroll(i, row)

    print()
    print("overhead vs resolution (9 kb blocks):")
    print(f"{'resolution':>12} {'ours':>6} {'ltb':>6}", flush=streaming)
    resolution_rows = overhead_vs_resolution(
        pattern, jobs=args.jobs, on_row=emit_resolution if streaming else None
    )
    if not streaming:
        for i, row in enumerate(resolution_rows):
            emit_resolution(i, row)

    _emit_metrics(args.emit_metrics)
    return 0


def _pattern_from_args(args: argparse.Namespace) -> Pattern:
    if args.benchmark:
        return benchmark_pattern(args.benchmark)
    if args.mask:
        rows = [[int(ch) for ch in row] for row in args.mask.split(",")]
        return Pattern.from_mask(rows, name="cli")
    if args.kernel:
        from ..hls.extract import extract_pattern
        from ..hls.frontend import parse_kernel

        with open(args.kernel) as handle:
            nest = parse_kernel(handle.read())
        return extract_pattern(nest, args.array)
    raise SystemExit("one of --benchmark, --mask, or --kernel is required")


def main_partition(argv: Sequence[str] | None = None) -> int:
    """Partition a pattern given on the command line.

    Examples::

        repro-partition --benchmark log --nmax 10
        repro-partition --mask 010,111,010 --shape 64,48
        repro-partition --kernel mykernel.c --shape 640,480 --save sol.json
    """
    parser = argparse.ArgumentParser(
        description="Memory-partition an access pattern (DAC 2015 algorithm)."
    )
    source = parser.add_argument_group("pattern source (choose one)")
    source.add_argument("--benchmark", choices=sorted(BENCHMARKS), help="a Table 1 pattern")
    source.add_argument(
        "--mask", help="comma-separated 0/1 rows, e.g. 010,111,010 for the cross"
    )
    source.add_argument("--kernel", help="path to a mini-C stencil kernel file")
    parser.add_argument("--array", default=None, help="array to extract (for --kernel)")
    parser.add_argument("--shape", default=None, help="array shape, e.g. 640,480")
    parser.add_argument("--nmax", type=int, default=None, help="bank-count ceiling")
    parser.add_argument(
        "--objective",
        choices=[o.value for o in Objective],
        default=Objective.LATENCY.value,
        help="Problem 1 optimization order",
    )
    parser.add_argument("--save", default=None, help="write the solution to a JSON file")
    parser.add_argument(
        "--emit-c", action="store_true", help="print B(x)/F(x) helper functions in C"
    )
    parser.add_argument("--grid", action="store_true", help="print a bank-index grid")
    _add_emit_metrics(parser)
    args = parser.parse_args(argv)

    from ..obs.metrics import registry as obs_registry

    pattern = _pattern_from_args(args)
    shape = tuple(int(w) for w in args.shape.split(",")) if args.shape else None

    result = solve(
        pattern,
        shape=shape,
        n_max=args.nmax,
        objective=Objective(args.objective),
        ops=obs_registry().op_counter("cli.partition.ops"),
    )
    solution = result.solution
    print(f"pattern: {pattern.size} elements, {pattern.ndim} dimensions")
    print(f"transform alpha = {solution.transform.alpha}")
    print(f"banks = {solution.n_banks} (unconstrained N_f = {solution.n_unconstrained})")
    print(f"extra initiation interval = {solution.delta_ii} "
          f"({solution.delta_ii + 1} cycle(s) per pattern access)")
    if shape:
        print(f"storage overhead = {result.overhead_elements} elements over {shape}")

    if args.grid and pattern.ndim == 2:
        from ..viz.ascii_art import render_bank_grid

        rows = pattern.extents[0] + 2
        cols = pattern.extents[1] + 4
        print(render_bank_grid(solution, rows, cols, highlight=pattern))

    if args.emit_c:
        if shape is None:
            raise SystemExit("--emit-c requires --shape")
        from ..hls.codegen import generate_bank_helpers

        mapping = BankMapping(solution=solution, shape=shape)
        print(generate_bank_helpers("X", mapping))

    if args.save:
        from ..io import save_solution

        save_solution(solution, args.save)
        print(f"solution written to {args.save}")
    _emit_metrics(args.emit_metrics)
    return 0


#: ``repro-profile avg2x2``-style synthetic pattern names.
_AVG_RE = re.compile(r"(?:avg|rect)(\d+)x(\d+)$")


def _profile_pattern(name: str) -> Pattern:
    """Resolve a profile target: benchmark name, ``avgRxC``, or a 0/1 mask."""
    key = name.lower()
    if key in BENCHMARKS:
        return benchmark_pattern(key)
    match = _AVG_RE.fullmatch(key)
    if match:
        from ..patterns.generators import rectangle

        rows, cols = int(match.group(1)), int(match.group(2))
        return rectangle((rows, cols), name=key)
    if set(key) <= set("01,"):
        return Pattern.from_mask(
            [[int(ch) for ch in row] for row in key.split(",")], name="mask"
        )
    raise SystemExit(
        f"unknown pattern {name!r}: use a benchmark ({', '.join(sorted(BENCHMARKS))}), "
        "an avgRxC window (e.g. avg2x2), or a 0/1 mask like 010,111,010"
    )


def _default_profile_shape(pattern: Pattern) -> Tuple[int, ...]:
    """A shape big enough to sweep and small enough to simulate quickly."""
    if pattern.ndim >= 3:
        return tuple(max(3 * e, e + 4) for e in pattern.extents)
    return tuple(max(4 * e, e + 8) for e in pattern.extents)


def main_profile(argv: Sequence[str] | None = None) -> int:
    """Profile one pattern end to end: solve, simulate, attribute.

    Examples::

        repro-profile avg2x2
        repro-profile log --nmax 8 --shape 24,24
        REPRO_OBS=1 repro-profile median --emit-metrics profile.json
    """
    parser = argparse.ArgumentParser(
        description=(
            "Solve and simulate one access pattern with telemetry enabled: "
            "span tree, cycle histogram, per-bank conflict attribution."
        )
    )
    parser.add_argument(
        "pattern",
        help="benchmark name, avgRxC window (e.g. avg2x2), or 0/1 mask rows",
    )
    parser.add_argument("--shape", default=None, help="array shape, e.g. 24,24")
    parser.add_argument("--nmax", type=int, default=None, help="bank-count ceiling")
    parser.add_argument("--step", type=int, default=1, help="domain stride")
    parser.add_argument("--limit", type=int, default=None, help="iteration cap")
    parser.add_argument(
        "--ports", type=int, default=1, help="ports per bank (bank bandwidth B)"
    )
    parser.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the per-element data-corruption check (faster timings)",
    )
    parser.add_argument(
        "--engine",
        choices=["auto", "scalar", "vectorized", "native"],
        default="auto",
        help="simulation engine (identical reports; scalar shows the "
        "reference span tree, vectorized the fast path, native the "
        "compiled extension — see `make build-ext`)",
    )
    _add_emit_metrics(parser)
    args = parser.parse_args(argv)

    from .. import obs
    from ..obs.report import (
        render_conflict_report,
        render_cycle_histogram,
        render_span_tree,
    )
    from ..sim.memsim import simulate_sweep, speedup_vs_unpartitioned

    obs.enable()
    obs.reset()

    pattern = _profile_pattern(args.pattern)
    shape = (
        tuple(int(w) for w in args.shape.split(","))
        if args.shape
        else _default_profile_shape(pattern)
    )
    if len(shape) != pattern.ndim:
        raise SystemExit(
            f"shape {shape} does not match pattern dimensionality {pattern.ndim}"
        )

    ops = obs.registry().op_counter("profile.solve.ops")
    result = solve(pattern, shape=shape, n_max=args.nmax, ops=ops)
    solution = result.solution
    assert result.mapping is not None  # shape is always supplied here

    ports = max(args.ports, solution.bank_ports)
    conflicts = obs.ConflictTable(ports)
    report = simulate_sweep(
        result.mapping,
        step=args.step,
        limit=args.limit,
        ports_per_bank=args.ports,
        verify=not args.no_verify,
        conflicts=conflicts,
        engine=args.engine,
    )

    print(
        f"pattern {pattern.name or args.pattern}: {pattern.size} elements over "
        f"shape {shape}"
    )
    print(
        f"solution: N={solution.n_banks} (N_f={solution.n_unconstrained}), "
        f"deltaII={solution.delta_ii}, scheme={solution.scheme}, "
        f"solve ops={ops.total}"
    )
    print(
        f"simulated: {report.iterations} iterations, II={report.measured_ii:.3f}, "
        f"worst={report.worst_cycles} cycle(s), "
        f"speedup vs single bank={speedup_vs_unpartitioned(report, pattern.size):.1f}x"
    )
    print()
    print("span tree:")
    print(render_span_tree(obs.tracer().records()))
    print()
    print("cycles per iteration:")
    print(render_cycle_histogram(report.cycle_histogram))
    print()
    print(render_conflict_report(conflicts, n_banks=solution.n_banks))
    consistent = conflicts.cycle_histogram == report.cycle_histogram
    print(
        "attribution totals vs simulation report: "
        + ("consistent" if consistent else "MISMATCH")
    )

    _emit_metrics(
        args.emit_metrics,
        conflicts=conflicts,
        extra={
            "report": report.to_dict(),
            "solution": {
                "pattern": pattern.name or args.pattern,
                "n_banks": solution.n_banks,
                "n_unconstrained": solution.n_unconstrained,
                "delta_ii": solution.delta_ii,
                "scheme": solution.scheme,
            },
        },
    )
    return 0 if consistent and conflicts.verify_consistent() else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main_table1())
