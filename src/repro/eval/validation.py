"""Exhaustive cross-validation harness (the repository's ``make validate``).

Runs every benchmark pattern through every applicable scheme
(unconstrained, same-size constrained, two-level fast fold, wide banks,
packed tail) over a battery of array shapes, and machine-checks, for each
combination:

1. bijectivity of the address mapping,
2. the advertised ``δ(II)`` against the cycle-level simulator,
3. the closed-form storage overhead against the mapping's accounting,
4. bulk/scalar address-path agreement.

This is slower than the unit tests (it is the belt *and* the suspenders)
and is what ``repro-validate`` runs; the test suite exercises a trimmed
configuration of it so the harness itself cannot rot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..core.mapping import BankMapping, ours_overhead_elements
from ..core.packed import packed_mapping
from ..core.partition import PartitionSolution, partition, widen_solution
from ..core.vectorized import verify_bulk_matches_scalar
from ..errors import ReproError
from ..patterns.library import BENCHMARKS
from ..sim.memsim import simulate_sweep


@dataclass(frozen=True)
class ValidationCase:
    """One (pattern, scheme, shape) combination to validate."""

    benchmark: str
    scheme: str
    shape: Tuple[int, ...]


@dataclass(frozen=True)
class ValidationResult:
    """Outcome of one case."""

    case: ValidationCase
    passed: bool
    detail: str = ""


@dataclass
class ValidationReport:
    """Aggregate outcome of a validation run."""

    results: List[ValidationResult] = field(default_factory=list)

    @property
    def passed(self) -> int:
        return sum(1 for r in self.results if r.passed)

    @property
    def failed(self) -> int:
        return sum(1 for r in self.results if not r.passed)

    @property
    def ok(self) -> bool:
        return self.failed == 0

    def failures(self) -> List[ValidationResult]:
        return [r for r in self.results if not r.passed]

    def summary(self) -> str:
        lines = [f"validation: {self.passed} passed, {self.failed} failed"]
        for failure in self.failures():
            lines.append(
                f"  FAIL {failure.case.benchmark}/{failure.case.scheme}"
                f"@{failure.case.shape}: {failure.detail}"
            )
        return "\n".join(lines)


def _shapes_for(pattern, quick: bool) -> List[Tuple[int, ...]]:
    """Shapes exercising divisible, off-by-one, and awkward tails."""
    extents = pattern.normalized().extents
    base0 = max(extents[0] + 2, 6)
    if pattern.ndim == 2:
        shapes = [
            (base0, extents[1] + 9),
            (base0, extents[1] + 14),
            (base0 + 3, extents[1] + 22),
        ]
        return shapes[:2] if quick else shapes
    # 3-D: keep tiny, the enumeration is cubic.
    shapes = [(extents[0] + 1, extents[1] + 2, extents[2] + 26)]
    if not quick:
        shapes.append((extents[0] + 2, extents[1] + 1, extents[2] + 29))
    return shapes


def _build_mapping(
    scheme: str, pattern, shape: Tuple[int, ...]
) -> Optional[BankMapping]:
    """Mapping for one scheme; None when the scheme does not apply."""
    if scheme == "direct":
        return BankMapping(solution=partition(pattern), shape=shape)
    if scheme == "constrained":
        n_f = partition(pattern).n_banks
        if n_f < 3:
            return None
        return BankMapping(
            solution=partition(pattern, n_max=n_f - 1), shape=shape
        )
    if scheme == "two-level":
        n_f = partition(pattern).n_banks
        if n_f < 3:
            return None
        return BankMapping(
            solution=partition(pattern, n_max=n_f - 1, same_size=False),
            shape=shape,
        )
    if scheme == "wide":
        return BankMapping(
            solution=widen_solution(partition(pattern), 2), shape=shape
        )
    if scheme == "packed":
        return packed_mapping(partition(pattern), shape)
    raise ValueError(f"unknown scheme {scheme!r}")


def validate_case(case: ValidationCase, sim_limit: int = 150) -> ValidationResult:
    """Run all four checks for one combination."""
    pattern = BENCHMARKS[case.benchmark]()
    try:
        mapping = _build_mapping(case.scheme, pattern, case.shape)
        if mapping is None:
            return ValidationResult(case=case, passed=True, detail="skipped (n/a)")
        solution: PartitionSolution = mapping.solution

        mapping.verify_bijective(sample_limit=50_000)
        verify_bulk_matches_scalar(mapping, sample=512)

        report = simulate_sweep(mapping, limit=sim_limit)
        if report.worst_cycles > solution.delta_ii + 1:
            return ValidationResult(
                case=case,
                passed=False,
                detail=(
                    f"measured {report.worst_cycles} cycles > advertised "
                    f"{solution.delta_ii + 1}"
                ),
            )

        if case.scheme in ("direct", "constrained"):
            expected = ours_overhead_elements(case.shape, solution.n_banks)
            if mapping.overhead_elements != expected:
                return ValidationResult(
                    case=case,
                    passed=False,
                    detail=(
                        f"overhead {mapping.overhead_elements} != closed-form "
                        f"{expected}"
                    ),
                )
        if case.scheme == "packed" and mapping.overhead_elements != 0:
            return ValidationResult(
                case=case, passed=False, detail="packed mapping has overhead"
            )
    except ReproError as exc:
        return ValidationResult(case=case, passed=False, detail=str(exc))
    return ValidationResult(case=case, passed=True)


SCHEMES: Tuple[str, ...] = ("direct", "constrained", "two-level", "wide", "packed")


def run_validation(
    benchmarks: Sequence[str] | None = None,
    schemes: Sequence[str] = SCHEMES,
    quick: bool = False,
    progress: Callable[[str], None] | None = None,
) -> ValidationReport:
    """Validate the full (or restricted) matrix."""
    names = list(benchmarks) if benchmarks is not None else list(BENCHMARKS)
    report = ValidationReport()
    for name in names:
        pattern = BENCHMARKS[name]()
        for shape in _shapes_for(pattern, quick):
            for scheme in schemes:
                case = ValidationCase(benchmark=name, scheme=scheme, shape=shape)
                if progress:
                    progress(f"{name}/{scheme}@{shape}")
                report.results.append(validate_case(case))
    return report


def main_validate(argv: Sequence[str] | None = None) -> int:
    """CLI: ``repro-validate [--quick] [--benchmarks ...]``."""
    import argparse

    parser = argparse.ArgumentParser(
        description="Cross-validate every scheme on every benchmark pattern."
    )
    parser.add_argument(
        "--benchmarks", nargs="*", choices=sorted(BENCHMARKS), default=None
    )
    parser.add_argument("--quick", action="store_true", help="fewer shapes")
    parser.add_argument("--verbose", action="store_true", help="print each case")
    args = parser.parse_args(argv)

    progress = print if args.verbose else None
    report = run_validation(args.benchmarks, quick=args.quick, progress=progress)
    print(report.summary())
    return 0 if report.ok else 1
