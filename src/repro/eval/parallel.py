"""Process-parallel sweep execution with deterministic result order.

The evaluation harnesses are embarrassingly parallel — Table 1 rows, sweep
points, and case-study chains are independent solves — but each worker
must keep three properties the serial code guarantees:

* **Deterministic ordering** — results come back in the order of the
  input items (``executor.map`` semantics), never in completion order, so
  parallel output is byte-identical to serial output.
* **Per-worker cache reuse** — worker processes persist for the lifetime
  of the pool, so the canonical solve cache (:mod:`repro.core.cache`)
  inside each worker warms up across the items it handles.
* **Metrics round-trip** — the process-global registry in a worker is
  invisible to the parent.  Task functions that record metrics should
  reset their registry, do the work, and return a
  :meth:`~repro.obs.metrics.MetricsRegistry.dump` alongside the result;
  the parent merges dumps in result order (see
  :func:`repro.eval.table1.build_table` for the pattern).
* **Config in the payload** — workers inherit no CLI state or parent
  globals, so every knob a task needs (engine selection such as
  ``ltb_engine``, repetition counts, chain bounds) must travel inside the
  task tuple itself, not via module-level configuration.

``jobs=None``/``1`` (and single-item workloads) run serially in the
calling process — no pool, no pickling, identical code path for tests.
``jobs <= 0`` is a :class:`ValueError`: a caller that computed zero
workers has a bug upstream, and silently clamping it to serial used to
hide that bug.

This module is the *flat* executor.  Call sites with DAG structure
(shared solves, mixed placements, streaming consumers) go through
:mod:`repro.sched`, which keeps ``run_parallel`` as its fallback path
(``REPRO_SCHED=0``).

A crashed worker (OOM kill, hard ``exit``, interpreter abort) surfaces as
:class:`~concurrent.futures.process.BrokenProcessPool`.  A one-shot CLI
could let that propagate, but a long-lived server cannot die because one
worker did, so :func:`run_parallel` retries once on a fresh pool and then
falls back to serial execution in the calling process.  Task functions are
pure solves, so re-running the whole batch is safe; each degradation is
counted under ``parallel.pool.broken`` in the metrics registry.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, List, Optional, Sequence, TypeVar

from ..obs import state as obs_state
from ..obs.metrics import registry as obs_registry
from ..obs.tracecontext import current_trace_id, trace
from ..obs.tracer import tracer as obs_tracer

Item = TypeVar("Item")
Result = TypeVar("Result")

#: Fresh-pool retries before degrading to serial execution.
POOL_RETRIES = 1

#: Per-task wall-clock distribution (ms), serial and parallel tiers alike.
TASK_HISTOGRAM = "parallel.task_ms"


def resolve_jobs(jobs: Optional[int], n_items: int) -> int:
    """Effective worker count: clamp to the workload, ``None``/``1`` is serial.

    ``jobs <= 0`` raises — "zero workers" is always an upstream arithmetic
    bug (a miscomputed CLI default, a bad division), and the old behavior
    of silently clamping it to serial masked exactly that class of bug.
    """
    if jobs is not None and jobs <= 0:
        raise ValueError(
            f"jobs must be a positive worker count (or None for serial), got {jobs}"
        )
    if jobs is None or jobs == 1 or n_items <= 1:
        return 1
    return min(jobs, n_items)


class _TracedTask:
    """Wrap a task so worker-side spans travel home with each result.

    Picklable by construction (top-level class, plain attributes).  In the
    worker it re-establishes the parent's trace id, marks the worker-local
    tracer, runs the task, and returns ``(result, span events, worker id,
    duration)`` — the span half of the worker-registry dump/merge channel.
    Only used when observability is enabled; disabled runs ship the bare
    ``fn`` so the hot path pays nothing.
    """

    def __init__(self, fn: Callable[[Item], Result], trace_id: Optional[str]) -> None:
        self.fn = fn
        self.trace_id = trace_id

    def __call__(self, item: Item) -> Any:
        tr = obs_tracer()
        mark = tr.mark()
        started = time.perf_counter()
        if self.trace_id is not None:
            with trace(self.trace_id):
                result = self.fn(item)
        else:
            result = self.fn(item)
        duration_ms = (time.perf_counter() - started) * 1000.0
        return (result, tr.dump_since(mark), f"pid{os.getpid()}", duration_ms)


def _merge_traced(
    wrapped: Sequence[Any], parent_id: Optional[int]
) -> List[Result]:
    """Unwrap :class:`_TracedTask` results, folding spans/durations home."""
    tr = obs_tracer()
    registry = obs_registry()
    task_hist = registry.log_histogram(TASK_HISTOGRAM)
    results: List[Result] = []
    for result, events, worker_id, duration_ms in wrapped:
        tr.merge(events, parent_id=parent_id, worker_id=worker_id)
        task_hist.observe(duration_ms)
        registry.counter(f"worker.{worker_id}.parallel.tasks").inc()
        results.append(result)
    return results


def _run_serial(fn: Callable[[Item], Result], items: Sequence[Item]) -> List[Result]:
    registry = obs_registry()
    task_hist = registry.log_histogram(TASK_HISTOGRAM)
    results: List[Result] = []
    for item in items:
        started = time.perf_counter()
        results.append(fn(item))
        task_hist.observe((time.perf_counter() - started) * 1000.0)
    return results


def run_parallel(
    fn: Callable[[Item], Result],
    items: Sequence[Item],
    jobs: Optional[int] = None,
) -> List[Result]:
    """Map ``fn`` over ``items`` on ``jobs`` worker processes.

    ``fn`` must be a top-level (picklable) function, and idempotent: when a
    worker dies mid-batch the whole batch is re-run (once on a fresh pool,
    then serially), so partial side effects must be harmless.  Results
    preserve the order of ``items`` regardless of which worker finishes
    first.

    Telemetry: every task's wall-clock lands in the ``parallel.task_ms``
    log histogram.  When observability is enabled, the calling context's
    trace id rides into the workers and every span a worker records is
    merged back into the parent tracer (re-parented under the span open at
    the call site, stamped with a ``worker_id`` attribute) — so a traced
    request keeps a single end-to-end tree across the process border.
    """
    workers = resolve_jobs(jobs, len(items))
    if workers == 1:
        return _run_serial(fn, items)
    traced = obs_state.enabled()
    task: Callable[[Item], Any] = (
        _TracedTask(fn, current_trace_id()) if traced else fn
    )
    parent_id = obs_tracer().current_parent() if traced else None
    for _ in range(POOL_RETRIES + 1):
        try:
            with ProcessPoolExecutor(max_workers=workers) as executor:
                wrapped = list(executor.map(task, items))
        except BrokenProcessPool:
            obs_registry().counter("parallel.pool.broken").inc()
            continue
        return _merge_traced(wrapped, parent_id) if traced else wrapped
    return _run_serial(fn, items)
