"""Process-parallel sweep execution with deterministic result order.

The evaluation harnesses are embarrassingly parallel — Table 1 rows, sweep
points, and case-study chains are independent solves — but each worker
must keep three properties the serial code guarantees:

* **Deterministic ordering** — results come back in the order of the
  input items (``executor.map`` semantics), never in completion order, so
  parallel output is byte-identical to serial output.
* **Per-worker cache reuse** — worker processes persist for the lifetime
  of the pool, so the canonical solve cache (:mod:`repro.core.cache`)
  inside each worker warms up across the items it handles.
* **Metrics round-trip** — the process-global registry in a worker is
  invisible to the parent.  Task functions that record metrics should
  reset their registry, do the work, and return a
  :meth:`~repro.obs.metrics.MetricsRegistry.dump` alongside the result;
  the parent merges dumps in result order (see
  :func:`repro.eval.table1.build_table` for the pattern).
* **Config in the payload** — workers inherit no CLI state or parent
  globals, so every knob a task needs (engine selection such as
  ``ltb_engine``, repetition counts, chain bounds) must travel inside the
  task tuple itself, not via module-level configuration.

``jobs=None``/``0``/``1`` (and single-item workloads) run serially in the
calling process — no pool, no pickling, identical code path for tests.

A crashed worker (OOM kill, hard ``exit``, interpreter abort) surfaces as
:class:`~concurrent.futures.process.BrokenProcessPool`.  A one-shot CLI
could let that propagate, but a long-lived server cannot die because one
worker did, so :func:`run_parallel` retries once on a fresh pool and then
falls back to serial execution in the calling process.  Task functions are
pure solves, so re-running the whole batch is safe; each degradation is
counted under ``parallel.pool.broken`` in the metrics registry.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, List, Optional, Sequence, TypeVar

from ..obs.metrics import registry as obs_registry

Item = TypeVar("Item")
Result = TypeVar("Result")

#: Fresh-pool retries before degrading to serial execution.
POOL_RETRIES = 1


def resolve_jobs(jobs: Optional[int], n_items: int) -> int:
    """Effective worker count: clamp to the workload, treat <=1 as serial."""
    if jobs is None or jobs <= 1 or n_items <= 1:
        return 1
    return min(jobs, n_items)


def run_parallel(
    fn: Callable[[Item], Result],
    items: Sequence[Item],
    jobs: Optional[int] = None,
) -> List[Result]:
    """Map ``fn`` over ``items`` on ``jobs`` worker processes.

    ``fn`` must be a top-level (picklable) function, and idempotent: when a
    worker dies mid-batch the whole batch is re-run (once on a fresh pool,
    then serially), so partial side effects must be harmless.  Results
    preserve the order of ``items`` regardless of which worker finishes
    first.
    """
    workers = resolve_jobs(jobs, len(items))
    if workers == 1:
        return [fn(item) for item in items]
    for _ in range(POOL_RETRIES + 1):
        try:
            with ProcessPoolExecutor(max_workers=workers) as executor:
                return list(executor.map(fn, items))
        except BrokenProcessPool:
            obs_registry().counter("parallel.pool.broken").inc()
    return [fn(item) for item in items]
