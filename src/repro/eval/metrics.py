"""Metric computation shared by the evaluation harnesses.

Converts algorithm outputs into the units Table 1 reports: bank counts,
storage overhead in 9 kb memory blocks, instrumented arithmetic-operation
counts, and wall-clock execution time (averaged over repetitions, as the
paper averages over 10000 runs).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from ..baselines.ltb import ltb_overhead_elements, ltb_partition
from ..core.mapping import ours_overhead_elements
from ..core.opcount import OpCounter
from ..core.partition import partition
from ..core.pattern import Pattern
from ..hw.bram import DEFAULT_ELEMENT_BITS, overhead_blocks


@dataclass(frozen=True)
class AlgorithmRun:
    """One algorithm's outcome on one pattern.

    Attributes
    ----------
    algorithm:
        ``"ours"`` or ``"ltb"``.
    n_banks:
        Bank count the algorithm selected.
    operations:
        Instrumented arithmetic operations while finding the solution.
    time_ms:
        Mean wall-clock milliseconds per solve.
    """

    algorithm: str
    n_banks: int
    operations: int
    time_ms: float


def improvement(baseline: float, ours: float) -> float:
    """Relative saving in percent: ``(baseline − ours) / baseline · 100``.

    Matches the paper's convention (negative when ours is worse, as in the
    Gaussian storage row).  A zero baseline with zero ours counts as 0%
    improvement (nothing to save).
    """
    if baseline == 0:
        return 0.0 if ours == 0 else -100.0
    return (baseline - ours) / baseline * 100.0


def run_ours(pattern: Pattern, repetitions: int = 100) -> AlgorithmRun:
    """Run the paper's algorithm with instrumentation and timing."""
    ops = OpCounter()
    solution = partition(pattern, ops=ops)
    start = time.perf_counter()
    for _ in range(repetitions):
        partition(pattern)
    elapsed = (time.perf_counter() - start) / repetitions
    return AlgorithmRun(
        algorithm="ours",
        n_banks=solution.n_banks,
        operations=ops.arithmetic,
        time_ms=elapsed * 1000.0,
    )


def run_ltb(pattern: Pattern, repetitions: int = 3) -> AlgorithmRun:
    """Run the LTB baseline with instrumentation and timing.

    Fewer repetitions by default: LTB is orders of magnitude slower (that
    asymmetry is the experiment's point).
    """
    ops = OpCounter()
    result = ltb_partition(pattern, ops=ops)
    start = time.perf_counter()
    for _ in range(repetitions):
        ltb_partition(pattern)
    elapsed = (time.perf_counter() - start) / repetitions
    return AlgorithmRun(
        algorithm="ltb",
        n_banks=result.solution.n_banks,
        operations=ops.arithmetic,
        time_ms=elapsed * 1000.0,
    )


def storage_blocks(
    shape: Sequence[int],
    n_banks: int,
    algorithm: str,
    element_bits: int = DEFAULT_ELEMENT_BITS,
) -> int:
    """Storage overhead of one solution, in 9 kb memory blocks."""
    if algorithm == "ours":
        elements = ours_overhead_elements(tuple(shape), n_banks)
    elif algorithm == "ltb":
        elements = ltb_overhead_elements(tuple(shape), n_banks)
    else:
        raise ValueError(f"unknown algorithm {algorithm!r}")
    return overhead_blocks(elements, element_bits)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (for aggregating ratios across benchmarks)."""
    filtered = [v for v in values if v > 0]
    if not filtered:
        raise ValueError("geometric mean needs at least one positive value")
    product = 1.0
    for v in filtered:
        product *= v
    return product ** (1.0 / len(filtered))
