"""Metric computation shared by the evaluation harnesses.

Converts algorithm outputs into the units Table 1 reports: bank counts,
storage overhead in 9 kb memory blocks, instrumented arithmetic-operation
counts, and wall-clock execution time (averaged over repetitions, as the
paper averages over 10000 runs).

Every measured number is routed through the :mod:`repro.obs` metrics
registry before it is returned: ``eval.<pattern>.<algorithm>.{n_banks,
operations,time_ms}`` gauges, ``eval.<pattern>.<algorithm>.ops.*`` op-count
counters, and an ``eval.solve_ms.<algorithm>`` timing histogram.  The
:class:`AlgorithmRun` handed back is rebuilt *from* those registry values,
so an ``--emit-metrics`` snapshot always carries exactly the numbers the
rendered table printed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, Sequence

from ..baselines.ltb import ltb_overhead_elements, ltb_partition
from ..core.mapping import ours_overhead_elements
from ..core.opcount import OpCounter
from ..core.partition import partition
from ..core.pattern import Pattern
from ..hw.bram import DEFAULT_ELEMENT_BITS, overhead_blocks
from ..obs.metrics import registry as obs_registry
from ..obs.tracer import span


@dataclass(frozen=True)
class AlgorithmRun:
    """One algorithm's outcome on one pattern.

    Attributes
    ----------
    algorithm:
        ``"ours"`` or ``"ltb"``.
    n_banks:
        Bank count the algorithm selected.
    operations:
        Instrumented arithmetic operations while finding the solution.
    time_ms:
        Mean wall-clock milliseconds per solve.
    """

    algorithm: str
    n_banks: int
    operations: int
    time_ms: float

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly form shared by exporters and benchmarks."""
        return {
            "algorithm": self.algorithm,
            "n_banks": self.n_banks,
            "operations": self.operations,
            "time_ms": self.time_ms,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "AlgorithmRun":
        """Inverse of :meth:`to_dict`."""
        return cls(
            algorithm=str(payload["algorithm"]),
            n_banks=int(payload["n_banks"]),
            operations=int(payload["operations"]),
            time_ms=float(payload["time_ms"]),
        )


def improvement(baseline: float, ours: float) -> float:
    """Relative saving in percent: ``(baseline − ours) / baseline · 100``.

    Matches the paper's convention (negative when ours is worse, as in the
    Gaussian storage row).  A zero baseline with zero ours counts as 0%
    improvement (nothing to save).
    """
    if baseline == 0:
        return 0.0 if ours == 0 else -100.0
    return (baseline - ours) / baseline * 100.0


def _register_run(
    algorithm: str, pattern: Pattern, n_banks: int, ops: OpCounter, elapsed_s: float
) -> AlgorithmRun:
    """Publish one run's numbers to the registry, then read them back."""
    registry = obs_registry()
    base = f"eval.{pattern.name or 'pattern'}.{algorithm}"
    registry.absorb_ops(f"{base}.ops", ops)
    registry.gauge(f"{base}.n_banks").set(n_banks)
    registry.gauge(f"{base}.operations").set(ops.arithmetic)
    registry.gauge(f"{base}.time_ms").set(elapsed_s * 1000.0)
    registry.histogram(f"eval.solve_ms.{algorithm}").observe(elapsed_s * 1000.0)
    return AlgorithmRun(
        algorithm=algorithm,
        n_banks=int(registry.gauge(f"{base}.n_banks").value),
        operations=int(registry.gauge(f"{base}.operations").value),
        time_ms=registry.gauge(f"{base}.time_ms").value,
    )


def run_ours(pattern: Pattern, repetitions: int = 100) -> AlgorithmRun:
    """Run the paper's algorithm with instrumentation and timing."""
    ops = OpCounter()
    with span("eval.run_ours", pattern=pattern.name or "?"):
        solution = partition(pattern, ops=ops)
        start = time.perf_counter()
        for _ in range(repetitions):
            # cache=False: the paper's time comparison measures the solve,
            # not a memoized lookup.
            partition(pattern, cache=False)
        elapsed = (time.perf_counter() - start) / repetitions
    return _register_run("ours", pattern, solution.n_banks, ops, elapsed)


def run_ltb(
    pattern: Pattern, repetitions: int = 3, engine: str = "auto"
) -> AlgorithmRun:
    """Run the LTB baseline with instrumentation and timing.

    Fewer repetitions by default: LTB is orders of magnitude slower (that
    asymmetry is the experiment's point).  ``engine`` selects the search
    engine for the instrumented run (op charges are identical either way);
    the timing loop *always* runs the scalar reference, mirroring the
    solve-cache bypass in :func:`run_ours` — the paper's time column
    measures the published algorithm, not our batched re-implementation.
    """
    ops = OpCounter()
    with span("eval.run_ltb", pattern=pattern.name or "?", engine=engine):
        result = ltb_partition(pattern, ops=ops, engine=engine)
        start = time.perf_counter()
        for _ in range(repetitions):
            ltb_partition(pattern, engine="scalar")
        elapsed = (time.perf_counter() - start) / repetitions
    return _register_run("ltb", pattern, result.solution.n_banks, ops, elapsed)


def storage_blocks(
    shape: Sequence[int],
    n_banks: int,
    algorithm: str,
    element_bits: int = DEFAULT_ELEMENT_BITS,
) -> int:
    """Storage overhead of one solution, in 9 kb memory blocks."""
    if algorithm == "ours":
        elements = ours_overhead_elements(tuple(shape), n_banks)
    elif algorithm == "ltb":
        elements = ltb_overhead_elements(tuple(shape), n_banks)
    else:
        raise ValueError(f"unknown algorithm {algorithm!r}")
    return overhead_blocks(elements, element_bits)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (for aggregating ratios across benchmarks)."""
    filtered = [v for v in values if v > 0]
    if not filtered:
        raise ValueError("geometric mean needs at least one positive value")
    product = 1.0
    for v in filtered:
        product *= v
    return product ** (1.0 / len(filtered))
