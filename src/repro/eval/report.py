"""Plain-text rendering of evaluation results (the Table 1 layout)."""

from __future__ import annotations

from typing import List, Sequence

from .casestudy import CaseStudy
from .paper_data import PAPER_TABLE1, RESOLUTION_ORDER, PaperRow
from .table1 import Table1


def _format_row(cells: Sequence[object], widths: Sequence[int]) -> str:
    return " | ".join(str(c).rjust(w) for c, w in zip(cells, widths))


def render_table1(table: Table1, include_paper: bool = True) -> str:
    """Render the measured table in the paper's layout.

    With ``include_paper=True`` each measured row is followed by the
    published value in brackets, making drift immediately visible.
    """
    header = ["bench", "alg", "N"] + list(RESOLUTION_ORDER) + ["ops", "time(ms)"]
    widths = [9, 6, 4, 7, 7, 7, 7, 7, 9, 9]
    lines: List[str] = [_format_row(header, widths)]
    lines.append("-+-".join("-" * w for w in widths))

    for row in table.rows:
        for algorithm, run in (("ltb", row.ltb), ("ours", row.ours)):
            cells: List[object] = [row.benchmark, algorithm, run.n_banks]
            cells.extend(row.storage[algorithm])
            cells.append(run.operations)
            cells.append(f"{run.time_ms:.3f}")
            lines.append(_format_row(cells, widths))
            if include_paper and row.benchmark in PAPER_TABLE1:
                paper: PaperRow = PAPER_TABLE1[row.benchmark][algorithm]
                cells = ["", "paper", paper.n_banks]
                cells.extend(paper.storage_blocks)
                cells.append(paper.operations)
                cells.append(f"{paper.time_ms:.3f}")
                lines.append(_format_row(cells, widths))
        imp: List[object] = [row.benchmark, "impr%", "-"]
        imp.extend(f"{v:.0f}" for v in row.storage_improvements())
        imp.append(f"{row.operations_improvement:.1f}")
        imp.append(f"{row.time_improvement:.1f}")
        lines.append(_format_row(imp, widths))
        lines.append("")

    lines.append(
        "average improvement: storage "
        f"{table.average_storage_improvement:.1f}% "
        f"(paper 31.1%), operations {table.average_operations_improvement:.1f}% "
        f"(paper 93.7%), time {table.average_time_improvement:.1f}% (paper 96.9%)"
    )
    return "\n".join(lines)


def render_case_study(study: CaseStudy) -> str:
    """Render the Section 2 / 5.1 walk-through next to the paper's numbers."""
    lines = [
        "LoG case study (paper Sections 2 and 5.1)",
        f"  alpha                = {study.alpha}   (paper: (5, 1))",
        f"  z values             = {sorted(study.z_values)}",
        f"  N_f                  = {study.n_f}   (paper: 13)",
        f"  bank indices         = {study.bank_indices}",
        "                         (paper Fig.2b: (1,5,6,7,9,10,11,12,0,2,3,4,8))",
        f"  deltaP|N+1, N=1..10  = {study.sweep_row}   (paper: (13,9,5,6,5,3,2,3,2,3))",
        f"  fast Nc / rounds     = {study.fast_nc} / {study.fast_rounds}   (paper: 7 / 2)",
        f"  same-size Nc         = {study.same_size_nc} of {study.same_size_candidates}"
        "   (paper: 7 of (7, 9))",
        f"  ours ops / LTB ops   = {study.ours_operations} / {study.ltb_operations}"
        "   (paper: 92 / 1053)",
        f"  LTB vectors tried    = {study.ltb_vectors_tried}",
        f"  ours / LTB overhead  = {study.ours_overhead_elements} / "
        f"{study.ltb_overhead_elements} elements   (paper: 640 / 5450)",
    ]
    return "\n".join(lines)
