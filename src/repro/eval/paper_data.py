"""Published Table 1 numbers, transcribed for paper-vs-measured reporting.

Every cell of the paper's Table 1 (DAC 2015), so EXPERIMENTS.md and the
benchmark output can show the published value next to ours.  Storage
overhead is in 9 kb memory blocks; operations are counts; time is
milliseconds on the authors' 4-core 2.9 GHz PC (absolute times are not
expected to transfer — the *ratio* is the claim).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

RESOLUTION_ORDER: Tuple[str, ...] = ("SD", "HD", "FullHD", "WQXGA", "4K")


@dataclass(frozen=True)
class PaperRow:
    """One benchmark's published results for one algorithm."""

    n_banks: int
    storage_blocks: Tuple[int, int, int, int, int]  # SD, HD, FullHD, WQXGA, 4K
    operations: int
    time_ms: float


#: benchmark → algorithm → published row.
PAPER_TABLE1: Dict[str, Dict[str, PaperRow]] = {
    "log": {
        "ltb": PaperRow(13, (10, 28, 49, 58, 106), 1053, 0.575),
        "ours": PaperRow(13, (2, 19, 41, 55, 76), 92, 0.024),
    },
    "canny": {
        "ltb": PaperRow(25, (32, 38, 79, 43, 142), 5575, 1.451),
        "ours": PaperRow(25, (23, 12, 69, 0, 103), 325, 0.024),
    },
    "prewitt": {
        "ltb": PaperRow(9, (14, 9, 12, 24, 12), 2784, 2.472),
        "ours": PaperRow(9, (7, 0, 0, 10, 0), 37, 0.018),
    },
    "se": {
        "ltb": PaperRow(5, (0, 0, 0, 0, 0), 120, 0.188),
        "ours": PaperRow(5, (0, 0, 0, 0, 0), 16, 0.015),
    },
    "sobel3d": {
        "ltb": PaperRow(27, (8193, 24578, 36864, 78508, 105984), 4564742, 1108.0),
        "ours": PaperRow(27, (2731, 8192, 18432, 36409, 73728), 352, 0.025),
    },
    "median": {
        "ltb": PaperRow(7, (7, 4, 27, 20, 33), 217, 0.241),
        "ours": PaperRow(8, (0, 0, 0, 0, 0), 30, 0.015),
    },
    "gaussian": {
        "ltb": PaperRow(10, (0, 0, 0, 0, 0), 3996, 3.038),
        "ours": PaperRow(13, (2, 19, 41, 55, 76), 50, 0.017),
    },
}

#: Paper-reported average improvements (the Table 1 footer).
PAPER_AVERAGE_IMPROVEMENT = {
    "storage": 31.1,
    "operations": 93.7,
    "time": 96.9,
}

#: Section 2 motivational numbers for LoG at SD resolution.
PAPER_MOTIVATION = {
    "ltb_operations": 1053,
    "ours_operations": 92,
    "ltb_overhead_elements": 5450,
    "ours_overhead_elements": 640,
}

#: Section 5.1 case-study row: A_P = δP|N + 1 for N = 1..10 on LoG.
PAPER_CASESTUDY_SWEEP: Tuple[int, ...] = (13, 9, 5, 6, 5, 3, 2, 3, 2, 3)

#: Fig. 2(b): bank index of each LoG element (paper's offset-(2,2) frame,
#: canonical sorted-offset order).
PAPER_LOG_BANKS: Tuple[int, ...] = (1, 5, 6, 7, 9, 10, 11, 12, 0, 2, 3, 4, 8)
