"""Evaluation harnesses regenerating the paper's tables and case study."""

from .casestudy import CaseStudy, run_case_study
from .parallel import resolve_jobs, run_parallel
from .metrics import (
    AlgorithmRun,
    geometric_mean,
    improvement,
    run_ltb,
    run_ours,
    storage_blocks,
)
from .paper_data import (
    PAPER_AVERAGE_IMPROVEMENT,
    PAPER_CASESTUDY_SWEEP,
    PAPER_LOG_BANKS,
    PAPER_MOTIVATION,
    PAPER_TABLE1,
    RESOLUTION_ORDER,
    PaperRow,
)
from .report import render_case_study, render_table1
from .table1 import Table1, Table1Row, build_row, build_table
from .validation import (
    ValidationCase,
    ValidationReport,
    ValidationResult,
    run_validation,
    validate_case,
)

__all__ = [
    "CaseStudy",
    "run_case_study",
    "resolve_jobs",
    "run_parallel",
    "AlgorithmRun",
    "geometric_mean",
    "improvement",
    "run_ltb",
    "run_ours",
    "storage_blocks",
    "PAPER_AVERAGE_IMPROVEMENT",
    "PAPER_CASESTUDY_SWEEP",
    "PAPER_LOG_BANKS",
    "PAPER_MOTIVATION",
    "PAPER_TABLE1",
    "RESOLUTION_ORDER",
    "PaperRow",
    "render_case_study",
    "render_table1",
    "Table1",
    "Table1Row",
    "build_row",
    "build_table",
    "ValidationCase",
    "ValidationReport",
    "ValidationResult",
    "run_validation",
    "validate_case",
]
