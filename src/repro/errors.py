"""Exception hierarchy for the :mod:`repro` library.

All library-specific failures derive from :class:`ReproError`, so callers can
catch one base class.  Input-validation failures additionally derive from
:class:`ValueError` (or :class:`TypeError`) so that idiomatic Python callers
who expect the built-in types keep working.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class PatternError(ReproError, ValueError):
    """An access pattern is malformed (empty, ragged, non-integer, ...)."""


class DimensionMismatchError(ReproError, ValueError):
    """Two objects that must share dimensionality do not."""


class PartitioningError(ReproError):
    """A partitioning algorithm could not produce a valid solution."""


class InfeasibleConstraintError(PartitioningError):
    """The requested constraints (e.g. ``n_max``) admit no valid solution."""


class MappingError(ReproError):
    """A bank mapping is invalid: two elements collide in (bank, offset)."""


class HardwareModelError(ReproError, ValueError):
    """A hardware model was configured inconsistently."""


class SimulationError(ReproError):
    """The memory simulator detected an inconsistency at run time."""


class HLSError(ReproError, ValueError):
    """The HLS front-end was given an unsupported loop nest or access."""


class NativeUnavailableError(ReproError, RuntimeError):
    """``engine="native"`` was requested but the compiled extension cannot run.

    Raised when the optional C extension (:mod:`repro.native`) is not built
    or is disabled via ``REPRO_NATIVE=0``.  ``engine="auto"`` never raises
    this — it falls back to the NumPy engines silently.
    """
