"""Loop-nest intermediate representation for the mini HLS front-end.

The partitioner consumes *access patterns*; real designs start from loop
nests like the paper's Fig. 1(b).  This IR captures exactly the slice of C
those kernels need:

* perfectly nested counted loops (:class:`Loop`),
* array references with affine indices (:class:`ArrayRef` of
  :class:`AffineIndex`), and
* one innermost statement reading some arrays and writing one
  (:class:`Statement`).

Affine indices are linear forms over the loop variables plus a constant —
``X[i-1][j+2]`` is ``(i + (-1), j + 2)``.  References to the same array
whose indices share the linear part and differ only in constants are
*uniformly generated*; their constant vectors form the access pattern
(extraction lives in :mod:`repro.hls.extract`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

from ..errors import HLSError


@dataclass(frozen=True)
class AffineIndex:
    """One array subscript: ``Σ coeff[var]·var + constant``.

    Attributes
    ----------
    coefficients:
        Loop-variable name → integer coefficient (zero coefficients are
        normalized away).
    constant:
        The additive constant.
    """

    coefficients: Tuple[Tuple[str, int], ...]
    constant: int = 0

    @staticmethod
    def make(coefficients: Mapping[str, int], constant: int = 0) -> "AffineIndex":
        """Build with normalization (drop zero coefficients, sort by name)."""
        cleaned = tuple(
            sorted((name, int(c)) for name, c in coefficients.items() if int(c) != 0)
        )
        return AffineIndex(coefficients=cleaned, constant=int(constant))

    @property
    def linear_part(self) -> Tuple[Tuple[str, int], ...]:
        return self.coefficients

    def evaluate(self, bindings: Mapping[str, int]) -> int:
        """Value of the index under concrete loop-variable values."""
        total = self.constant
        for name, coeff in self.coefficients:
            if name not in bindings:
                raise HLSError(f"unbound loop variable {name!r} in affine index")
            total += coeff * bindings[name]
        return total

    def shifted(self, delta: int) -> "AffineIndex":
        """Same linear part, constant shifted by ``delta``."""
        return AffineIndex(coefficients=self.coefficients, constant=self.constant + delta)

    def __str__(self) -> str:
        terms: List[str] = []
        for name, coeff in self.coefficients:
            if coeff == 1:
                terms.append(name)
            elif coeff == -1:
                terms.append(f"-{name}")
            else:
                terms.append(f"{coeff}*{name}")
        if self.constant or not terms:
            terms.append(str(self.constant))
        text = "+".join(terms).replace("+-", "-")
        return text


@dataclass(frozen=True)
class ArrayRef:
    """A subscripted array reference, e.g. ``X[i-1][j+2]``.

    Attributes
    ----------
    array:
        Array name.
    indices:
        One :class:`AffineIndex` per dimension.
    """

    array: str
    indices: Tuple[AffineIndex, ...]

    @property
    def ndim(self) -> int:
        return len(self.indices)

    @property
    def linear_signature(self) -> Tuple[Tuple[Tuple[str, int], ...], ...]:
        """The per-dimension linear parts; equal signatures ⇒ uniform refs."""
        return tuple(ix.linear_part for ix in self.indices)

    @property
    def constant_vector(self) -> Tuple[int, ...]:
        """The per-dimension constants — a pattern offset once grouped."""
        return tuple(ix.constant for ix in self.indices)

    def evaluate(self, bindings: Mapping[str, int]) -> Tuple[int, ...]:
        """Concrete element address under loop-variable values."""
        return tuple(ix.evaluate(bindings) for ix in self.indices)

    def __str__(self) -> str:
        subs = "".join(f"[{ix}]" for ix in self.indices)
        return f"{self.array}{subs}"


@dataclass(frozen=True)
class Loop:
    """A counted loop ``for (var = lower; var <= upper; var += step)``."""

    var: str
    lower: int
    upper: int
    step: int = 1

    def __post_init__(self) -> None:
        if self.step == 0:
            raise HLSError(f"loop {self.var} has zero step")
        if self.step > 0 and self.upper < self.lower:
            raise HLSError(f"loop {self.var} has empty range [{self.lower}, {self.upper}]")

    @property
    def trip_count(self) -> int:
        if self.step > 0:
            return (self.upper - self.lower) // self.step + 1
        return (self.lower - self.upper) // (-self.step) + 1

    def values(self) -> range:
        """The iteration values as a range."""
        if self.step > 0:
            return range(self.lower, self.upper + 1, self.step)
        return range(self.lower, self.upper - 1, self.step)


@dataclass(frozen=True)
class Statement:
    """The innermost statement: reads feed one written reference."""

    reads: Tuple[ArrayRef, ...]
    write: ArrayRef | None = None

    def reads_of(self, array: str) -> Tuple[ArrayRef, ...]:
        return tuple(ref for ref in self.reads if ref.array == array)

    @property
    def read_arrays(self) -> Tuple[str, ...]:
        seen: Dict[str, None] = {}
        for ref in self.reads:
            seen.setdefault(ref.array, None)
        return tuple(seen)


@dataclass(frozen=True)
class LoopNest:
    """A perfect loop nest around one statement.

    Attributes
    ----------
    loops:
        Outer-to-inner loop list.
    statement:
        The innermost body.
    arrays:
        Declared array shapes (name → shape), used for bounds checking and
        for sizing bank mappings.
    """

    loops: Tuple[Loop, ...]
    statement: Statement
    arrays: Tuple[Tuple[str, Tuple[int, ...]], ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.loops:
            raise HLSError("a loop nest needs at least one loop")
        names = [loop.var for loop in self.loops]
        if len(set(names)) != len(names):
            raise HLSError(f"duplicate loop variables in nest: {names}")

    @property
    def loop_vars(self) -> Tuple[str, ...]:
        return tuple(loop.var for loop in self.loops)

    @property
    def trip_count(self) -> int:
        total = 1
        for loop in self.loops:
            total *= loop.trip_count
        return total

    def array_shape(self, name: str) -> Tuple[int, ...]:
        for declared, shape in self.arrays:
            if declared == name:
                return shape
        raise HLSError(f"array {name!r} not declared in loop nest")

    @property
    def declared_arrays(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.arrays)
