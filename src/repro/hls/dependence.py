"""Loop-carried dependence analysis for the mini HLS scheduler.

Banking removes *memory-port* constraints on the initiation interval, but
a kernel can still be limited by *data recurrences*: if the statement
reads a value the same loop wrote a few iterations ago (e.g. an in-place
filter ``X[i] = X[i-1] + X[i]``), the II cannot drop below
``latency / distance`` no matter how many banks exist.  A complete II
story needs both bounds:

    II = max(II_memory, II_recurrence)

This module computes uniform dependence distances between the statement's
write and its reads of the same array, derives the recurrence-constrained
minimum II (the classic modulo-scheduling bound), and exposes a combined
scheduler entry point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import HLSError
from .ir import ArrayRef, LoopNest


@dataclass(frozen=True)
class Dependence:
    """One loop-carried flow dependence (write → later read).

    Attributes
    ----------
    array:
        The array carrying the value.
    distance:
        Iteration-distance vector (in loop order, outer first).  The
        *carrying* level is the first nonzero component; lexicographically
        positive distances are true (flow) dependences.
    read:
        The reading reference.
    """

    array: str
    distance: Tuple[int, ...]
    read: ArrayRef

    @property
    def scalar_distance(self) -> int:
        """Innermost-loop iteration count between write and read.

        For a perfect nest executed in row-major order, a distance vector
        ``(d_0, …, d_{k-1})`` with trip counts ``T_i`` corresponds to
        ``Σ d_i · ∏_{j>i} T_j`` innermost iterations — but for recurrence
        bounds only dependences carried by the innermost loop matter at
        II granularity, so this returns the innermost component when all
        outer components are zero, else 0 (handled at a coarser level).
        """
        if all(c == 0 for c in self.distance[:-1]):
            return self.distance[-1]
        return 0


def find_flow_dependences(nest: LoopNest) -> List[Dependence]:
    """Uniform write→read dependences within the statement.

    Only *uniform* dependences are derived (write and read share the
    linear part, like the access patterns themselves); a non-uniform
    self-access raises rather than silently under-constraining the II.
    """
    statement = nest.statement
    write = statement.write
    if write is None:
        return []
    deps: List[Dependence] = []
    for read in statement.reads_of(write.array):
        if read.linear_signature != write.linear_signature:
            raise HLSError(
                f"non-uniform self-dependence on {write.array!r}: "
                f"{write} vs {read}"
            )
        # The read at iteration i touches write-iteration i + (read - write).
        # A *flow* dependence exists when the write happened earlier:
        # distance = write_iteration_gap = (write consts - read consts) ...
        distance = tuple(
            w_c - r_c
            for w_c, r_c in zip(write.constant_vector, read.constant_vector)
        )
        if any(distance) and _lex_positive(distance):
            deps.append(Dependence(array=write.array, distance=distance, read=read))
    return deps


def _lex_positive(vector: Tuple[int, ...]) -> bool:
    for component in vector:
        if component > 0:
            return True
        if component < 0:
            return False
    return False


def recurrence_ii(nest: LoopNest, operation_latency: int = 1) -> int:
    """The recurrence-constrained minimum II (modulo-scheduling bound).

    ``II ≥ ⌈latency / distance⌉`` for every innermost-carried flow
    dependence; dependences carried by outer loops do not constrain the
    innermost II (their slack is a whole inner-loop trip).
    """
    if operation_latency < 1:
        raise HLSError(f"latency must be positive, got {operation_latency}")
    bound = 1
    for dep in find_flow_dependences(nest):
        distance = dep.scalar_distance
        if distance > 0:
            bound = max(bound, math.ceil(operation_latency / distance))
    return bound


@dataclass(frozen=True)
class CombinedII:
    """Both II bounds and their maximum.

    Attributes
    ----------
    memory:
        Bank-conflict bound (``δP + 1`` of the chosen partitioning).
    recurrence:
        Data-recurrence bound.
    """

    memory: int
    recurrence: int

    @property
    def achieved(self) -> int:
        return max(self.memory, self.recurrence)

    @property
    def memory_bound(self) -> bool:
        """True when banking (not data flow) is the limiter."""
        return self.memory >= self.recurrence


def combined_ii(
    nest: LoopNest,
    n_max: Optional[int] = None,
    operation_latency: int = 1,
) -> CombinedII:
    """Compute both II bounds for a nest.

    >>> from repro.hls import parse_kernel
    >>> nest = parse_kernel(
    ...     "for (i = 1; i <= 9; i++) X[i] = X[i-1] + X[i] + B[i];")
    >>> combined_ii(nest, operation_latency=3).recurrence
    3
    """
    from .schedule import schedule_nest

    memory = schedule_nest(nest, n_max=n_max).ii
    recurrence = recurrence_ii(nest, operation_latency)
    return CombinedII(memory=memory, recurrence=recurrence)
