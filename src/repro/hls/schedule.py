"""Loop scheduling under banked memory: achieved II and total cycles.

Ties the front-end to the partitioner: given a loop nest and a partitioning
decision per read array, compute the pipeline initiation interval the
memory system permits and the end-to-end cycle count.  The memory-imposed
II of one array is ``δP + 1`` (its pattern's worst per-bank load); arrays
are accessed concurrently, so the nest's II is the maximum over arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from ..core.partition import PartitionSolution, partition
from ..errors import HLSError
from ..sim.engine import PipelineModel
from .extract import extract_read_groups
from .ir import LoopNest


@dataclass(frozen=True)
class NestSchedule:
    """Scheduling result for one loop nest.

    Attributes
    ----------
    nest:
        The scheduled nest.
    solutions:
        Array name → partitioning solution used for it.
    ii:
        Achieved initiation interval (cycles between iteration starts).
    depth:
        Assumed pipeline depth (fill latency).
    """

    nest: LoopNest
    solutions: Tuple[Tuple[str, PartitionSolution], ...]
    ii: int
    depth: int = 4
    unroll: int = 1

    @property
    def iterations(self) -> int:
        """Pipelined iterations after unrolling (ceil of trips / factor)."""
        trips = self.nest.trip_count
        return -(-trips // self.unroll)

    @property
    def total_cycles(self) -> int:
        model = PipelineModel(
            iterations=self.iterations,
            base_ii=1,
            delta_ii=self.ii - 1,
            depth=self.depth,
        )
        return model.total_cycles

    @property
    def total_banks(self) -> int:
        return sum(sol.n_banks for _, sol in self.solutions)

    def solution_for(self, array: str) -> PartitionSolution:
        for name, sol in self.solutions:
            if name == array:
                return sol
        raise HLSError(f"no solution recorded for array {array!r}")


def schedule_nest(
    nest: LoopNest,
    n_max: int | None = None,
    solutions: Mapping[str, PartitionSolution] | None = None,
    depth: int = 4,
    unroll: int = 1,
) -> NestSchedule:
    """Partition every read array of the nest and derive the achieved II.

    Either supply pre-computed ``solutions`` (e.g. LTB's, for comparison)
    or let the paper's algorithm run per array with the given ``n_max``.

    ``unroll > 1`` models unrolling the innermost loop by that factor: each
    (unrolled) iteration reads the union of ``unroll`` consecutive windows,
    so the access pattern widens along the innermost axis and the trip
    count shrinks accordingly.  The achieved II is per *unrolled*
    iteration, so throughput in elements/cycle grows when enough banks are
    allowed.

    >>> from repro.hls.frontend import log_kernel_nest
    >>> schedule_nest(log_kernel_nest()).ii
    1
    >>> schedule_nest(log_kernel_nest(), n_max=10).ii
    2
    """
    if unroll < 1:
        raise HLSError(f"unroll factor must be positive, got {unroll}")
    groups = extract_read_groups(nest)
    chosen: Dict[str, PartitionSolution] = {}
    for array, group in groups.items():
        pattern = group.pattern
        if unroll > 1:
            from ..patterns.generators import unrolled as unroll_pattern

            pattern = unroll_pattern(pattern, unroll)
        if solutions is not None and array in solutions:
            chosen[array] = solutions[array]
        else:
            chosen[array] = partition(pattern, n_max=n_max)
    ii = max(sol.delta_ii + 1 for sol in chosen.values())
    return NestSchedule(
        nest=nest,
        solutions=tuple(sorted(chosen.items())),
        ii=ii,
        depth=depth,
        unroll=unroll,
    )


def unpartitioned_ii(nest: LoopNest) -> int:
    """II with a single-ported, unpartitioned memory per array.

    Reads of different arrays proceed in parallel (separate memories), but
    the ``m`` reads of one array serialize: II = max over arrays of m.
    """
    groups = extract_read_groups(nest)
    return max(group.pattern.size for group in groups.values())


def banking_speedup(nest: LoopNest, n_max: int | None = None) -> float:
    """End-to-end cycle ratio: unpartitioned over banked."""
    banked = schedule_nest(nest, n_max=n_max)
    serial_ii = unpartitioned_ii(nest)
    serial = PipelineModel(
        iterations=nest.trip_count, base_ii=1, delta_ii=serial_ii - 1, depth=banked.depth
    )
    return serial.total_cycles / banked.total_cycles
