"""Access-pattern extraction from loop nests.

References to the same array are *uniformly generated* when their
subscripts share the linear part (the loop-variable terms) and differ only
in constants — e.g. all thirteen ``X[i±a][j±b]`` reads of the LoG kernel.
For such a group the constant vectors are exactly the paper's pattern
``P = {Δ^(1), …, Δ^(m)}``; non-uniform groups (different linear parts) are
rejected rather than silently mis-modelled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.pattern import Pattern
from ..errors import HLSError
from .ir import ArrayRef, LoopNest


@dataclass(frozen=True)
class AccessGroup:
    """All uniformly generated reads of one array in a nest.

    Attributes
    ----------
    array:
        Array name.
    pattern:
        The extracted offset pattern.
    linear_signature:
        Shared per-dimension linear parts (for codegen).
    refs:
        The underlying references.
    """

    array: str
    pattern: Pattern
    linear_signature: Tuple[Tuple[Tuple[str, int], ...], ...]
    refs: Tuple[ArrayRef, ...]


def extract_read_groups(nest: LoopNest) -> Dict[str, AccessGroup]:
    """Group and extract a pattern for every array read in the nest.

    Raises
    ------
    HLSError
        If any array's reads are not uniformly generated (mixed linear
        parts), or if a subscript uses no loop variable at all (a broadcast
        read needs no banking and should be handled separately).
    """
    by_array: Dict[str, List[ArrayRef]] = {}
    for ref in nest.statement.reads:
        by_array.setdefault(ref.array, []).append(ref)

    groups: Dict[str, AccessGroup] = {}
    for array, refs in by_array.items():
        signature = refs[0].linear_signature
        for ref in refs[1:]:
            if ref.linear_signature != signature:
                raise HLSError(
                    f"reads of {array!r} are not uniformly generated: "
                    f"{refs[0]} vs {ref}"
                )
        if all(not dim for dim in signature):
            raise HLSError(
                f"reads of {array!r} use no loop variable; banking is moot"
            )
        offsets = {ref.constant_vector for ref in refs}
        pattern = Pattern(offsets, name=array)
        groups[array] = AccessGroup(
            array=array,
            pattern=pattern,
            linear_signature=signature,
            refs=tuple(refs),
        )
    return groups


def extract_pattern(nest: LoopNest, array: str | None = None) -> Pattern:
    """The access pattern of ``array`` (or of the single read array).

    >>> from repro.hls.frontend import log_kernel_nest
    >>> extract_pattern(log_kernel_nest()).size
    13
    """
    groups = extract_read_groups(nest)
    if array is None:
        if len(groups) != 1:
            raise HLSError(
                f"nest reads several arrays {sorted(groups)}; name one explicitly"
            )
        return next(iter(groups.values())).pattern
    if array not in groups:
        raise HLSError(f"array {array!r} is not read by the nest; reads: {sorted(groups)}")
    return groups[array].pattern


def required_banks(nest: LoopNest, array: str | None = None) -> int:
    """Lower bound on banks for single-cycle service: the pattern size."""
    return extract_pattern(nest, array).size
