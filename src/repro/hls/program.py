"""Program-level banking: several kernels sharing the same arrays.

A realistic accelerator runs a *sequence* of loop nests over shared
arrays — e.g. Gaussian smoothing followed by LoG detection over the same
frame.  A physical array gets exactly one banking, so it must serve the
union of every kernel's access pattern.  This module parses multi-kernel
programs, computes per-array **joint** solutions (via the union-pattern
argument of :func:`repro.core.solver.solve_joint`), and schedules the
whole program.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from ..core.partition import PartitionSolution
from ..core.pattern import Pattern
from ..core.solver import solve_joint
from ..errors import HLSError
from ..sim.engine import PipelineModel
from .extract import extract_read_groups
from .frontend import parse_kernel
from .ir import LoopNest


@dataclass(frozen=True)
class Program:
    """An ordered sequence of loop nests (kernels) sharing arrays.

    Attributes
    ----------
    nests:
        The kernels, in execution order.
    """

    nests: Tuple[LoopNest, ...]

    def __post_init__(self) -> None:
        if not self.nests:
            raise HLSError("a program needs at least one kernel")

    @property
    def read_arrays(self) -> Tuple[str, ...]:
        seen: Dict[str, None] = {}
        for nest in self.nests:
            for ref in nest.statement.reads:
                seen.setdefault(ref.array, None)
        return tuple(seen)

    def patterns_of(self, array: str) -> List[Pattern]:
        """Every kernel's pattern on ``array`` (kernels not reading it skip)."""
        patterns: List[Pattern] = []
        for nest in self.nests:
            groups = extract_read_groups(nest)
            if array in groups:
                patterns.append(groups[array].pattern)
        if not patterns:
            raise HLSError(f"array {array!r} is not read by any kernel")
        return patterns


_KERNEL_SPLIT = re.compile(r"\n\s*\n")


def parse_program(source: str) -> Program:
    """Parse a multi-kernel program: kernels separated by blank lines.

    Array declarations may appear before any kernel and apply to the one
    they precede (the mini-C dialect of :mod:`repro.hls.frontend`).

    >>> program = parse_program('''
    ... for (i = 1; i <= 6; i++) Y[i] = X[i-1] + X[i+1];
    ...
    ... for (i = 1; i <= 6; i++) Z[i] = X[i-1] + X[i] + X[i+1];
    ... ''')
    >>> len(program.nests)
    2
    """
    chunks = [c for c in _KERNEL_SPLIT.split(source) if c.strip()]
    if not chunks:
        raise HLSError("empty program source")
    return Program(nests=tuple(parse_kernel(chunk) for chunk in chunks))


@dataclass(frozen=True)
class ProgramSchedule:
    """Banking and timing decisions for a whole program.

    Attributes
    ----------
    program:
        The scheduled program.
    solutions:
        array name → one joint solution serving every kernel that reads it.
    kernel_iis:
        Achieved II per kernel, in program order.
    depth:
        Pipeline fill latency assumed per kernel.
    """

    program: Program
    solutions: Tuple[Tuple[str, PartitionSolution], ...]
    kernel_iis: Tuple[int, ...]
    depth: int = 4

    def solution_for(self, array: str) -> PartitionSolution:
        for name, solution in self.solutions:
            if name == array:
                return solution
        raise HLSError(f"no solution recorded for array {array!r}")

    @property
    def total_cycles(self) -> int:
        """Kernels run back-to-back; each is a pipelined loop."""
        total = 0
        for nest, ii in zip(self.program.nests, self.kernel_iis):
            model = PipelineModel(
                iterations=nest.trip_count, base_ii=1, delta_ii=ii - 1, depth=self.depth
            )
            total += model.total_cycles
        return total

    @property
    def total_banks(self) -> int:
        return sum(solution.n_banks for _, solution in self.solutions)


def _kernel_ii(
    nest: LoopNest, solutions: Mapping[str, PartitionSolution]
) -> int:
    """Worst per-array cycles for one kernel under the shared banking.

    The shared solution was built for the union pattern; a specific kernel
    only issues *its* pattern, so its II is that pattern's mode count
    under the shared bank hash (never worse than the union's δ + 1).
    """
    worst = 1
    groups = extract_read_groups(nest)
    for array, group in groups.items():
        solution = solutions[array]
        banks = [solution.bank_of(delta) for delta in group.pattern.offsets]
        load = max(banks.count(b) for b in set(banks))
        cycles = -(-load // solution.bank_ports)
        worst = max(worst, cycles)
    return worst


def schedule_program(
    program: Program, n_max: int | None = None, depth: int = 4
) -> ProgramSchedule:
    """Compute one joint banking per array and the per-kernel IIs.

    >>> program = parse_program('''
    ... for (i = 1; i <= 6; i++) Y[i] = X[i-1] + X[i+1];
    ...
    ... for (i = 1; i <= 6; i++) Z[i] = X[i-1] + X[i] + X[i+1];
    ... ''')
    >>> schedule_program(program).solution_for("X").n_banks
    3
    """
    solutions: Dict[str, PartitionSolution] = {}
    for array in program.read_arrays:
        patterns = program.patterns_of(array)
        solutions[array] = solve_joint(patterns, n_max=n_max).solution
    iis = tuple(_kernel_ii(nest, solutions) for nest in program.nests)
    return ProgramSchedule(
        program=program,
        solutions=tuple(sorted(solutions.items())),
        kernel_iis=iis,
        depth=depth,
    )
