"""Mini HLS front-end: loop-nest IR, parsing, pattern extraction, codegen."""

from .codegen import (
    generate_bank_decls,
    generate_bank_helpers,
    generate_kernel,
    generate_read_dispatch,
    partition_pragma,
)
from .dependence import (
    CombinedII,
    Dependence,
    combined_ii,
    find_flow_dependences,
    recurrence_ii,
)
from .extract import AccessGroup, extract_pattern, extract_read_groups, required_banks
from .frontend import (
    LOG_KERNEL_SOURCE,
    build_nest,
    log_kernel_nest,
    parse_kernel,
)
from .ir import AffineIndex, ArrayRef, Loop, LoopNest, Statement
from .program import (
    Program,
    ProgramSchedule,
    parse_program,
    schedule_program,
)
from .schedule import (
    NestSchedule,
    banking_speedup,
    schedule_nest,
    unpartitioned_ii,
)

__all__ = [
    "CombinedII",
    "Dependence",
    "combined_ii",
    "find_flow_dependences",
    "recurrence_ii",
    "Program",
    "ProgramSchedule",
    "parse_program",
    "schedule_program",
    "generate_bank_decls",
    "generate_bank_helpers",
    "generate_kernel",
    "generate_read_dispatch",
    "partition_pragma",
    "AccessGroup",
    "extract_pattern",
    "extract_read_groups",
    "required_banks",
    "LOG_KERNEL_SOURCE",
    "build_nest",
    "log_kernel_nest",
    "parse_kernel",
    "AffineIndex",
    "ArrayRef",
    "Loop",
    "LoopNest",
    "Statement",
    "NestSchedule",
    "banking_speedup",
    "schedule_nest",
    "unpartitioned_ii",
]
