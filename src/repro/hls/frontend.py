"""Mini-C front-end: parse stencil loop nests into the IR.

Accepts the dialect the paper's Fig. 1(b) is written in:

.. code-block:: c

    array X[640][480];
    array Y[640][480];
    for (i = 2; i <= 637; i++)
      for (j = 2; j <= 477; j++)
        Y[i][j] = -X[i-2][j] - 2*X[i-1][j] + 16*X[i][j] - X[i+2][j];

Grammar (informal)::

    program   := decl* loop
    decl      := "array" NAME ("[" INT "]")+ ";"
    loop      := "for" "(" NAME "=" INT ";" NAME "<=" INT ";" incr ")" body
    incr      := NAME "++" | NAME "+=" INT
    body      := loop | stmt | "{" (loop | stmt) "}"
    stmt      := ref "=" expr ";"
    expr      := ["+"|"-"] term (("+"|"-") term)*
    term      := [INT "*"] ref | INT
    ref       := NAME ("[" affine "]")+
    affine    := ["+"|"-"] aterm (("+"|"-") aterm)*
    aterm     := INT ["*" NAME] | NAME

The parser is deliberately strict: anything outside the dialect raises
:class:`~repro.errors.HLSError` with the offending token and position, so
malformed kernels fail loudly instead of extracting a wrong pattern.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import HLSError
from .ir import AffineIndex, ArrayRef, Loop, LoopNest, Statement

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<int>\d+)|(?P<name>[A-Za-z_]\w*)|(?P<op>\+\+|\+=|<=|[-+*=;(){}\[\]]))"
)


@dataclass(frozen=True)
class _Token:
    kind: str  # "int" | "name" | "op" | "eof"
    text: str
    pos: int


def _tokenize(source: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(source):
        if source[pos].isspace():
            pos += 1
            continue
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            snippet = source[pos : pos + 12]
            raise HLSError(f"unexpected character at position {pos}: {snippet!r}")
        pos = match.end()
        for kind in ("int", "name", "op"):
            text = match.group(kind)
            if text is not None:
                tokens.append(_Token(kind=kind, text=text, pos=match.start(kind)))
                break
    tokens.append(_Token(kind="eof", text="", pos=len(source)))
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, source: str) -> None:
        self.tokens = _tokenize(source)
        self.index = 0
        self.loop_vars: List[str] = []

    # -- token helpers ------------------------------------------------------

    @property
    def current(self) -> _Token:
        return self.tokens[self.index]

    def _advance(self) -> _Token:
        token = self.current
        self.index += 1
        return token

    def _expect(self, text: str) -> _Token:
        token = self.current
        if token.text != text:
            raise HLSError(
                f"expected {text!r} at position {token.pos}, found {token.text!r}"
            )
        return self._advance()

    def _expect_kind(self, kind: str) -> _Token:
        token = self.current
        if token.kind != kind:
            raise HLSError(
                f"expected {kind} at position {token.pos}, found {token.text!r}"
            )
        return self._advance()

    def _accept(self, text: str) -> bool:
        if self.current.text == text:
            self._advance()
            return True
        return False

    # -- grammar ------------------------------------------------------------

    def parse_program(self) -> LoopNest:
        arrays: List[Tuple[str, Tuple[int, ...]]] = []
        while self.current.text in ("array", "int", "Define", "define"):
            arrays.append(self._parse_decl())
        loops, statement = self._parse_loop()
        nest = LoopNest(loops=tuple(loops), statement=statement, arrays=tuple(arrays))
        if self.current.kind != "eof":
            raise HLSError(
                f"trailing tokens after loop nest at position {self.current.pos}: "
                f"{self.current.text!r}"
            )
        return nest

    def _parse_decl(self) -> Tuple[str, Tuple[int, ...]]:
        self._advance()  # 'array' / 'int'
        name = self._expect_kind("name").text
        dims: List[int] = []
        while self._accept("["):
            dims.append(int(self._expect_kind("int").text))
            self._expect("]")
        self._expect(";")
        if not dims:
            raise HLSError(f"array {name!r} declared without dimensions")
        return name, tuple(dims)

    def _parse_loop(self) -> Tuple[List[Loop], Statement]:
        self._expect("for")
        self._expect("(")
        var = self._expect_kind("name").text
        self._expect("=")
        lower = self._parse_signed_int()
        self._expect(";")
        cond_var = self._expect_kind("name").text
        if cond_var != var:
            raise HLSError(f"loop condition tests {cond_var!r}, expected {var!r}")
        self._expect("<=")
        upper = self._parse_signed_int()
        self._expect(";")
        incr_var = self._expect_kind("name").text
        if incr_var != var:
            raise HLSError(f"loop increment updates {incr_var!r}, expected {var!r}")
        if self._accept("++"):
            step = 1
        else:
            self._expect("+=")
            step = int(self._expect_kind("int").text)
        self._expect(")")

        self.loop_vars.append(var)
        loop = Loop(var=var, lower=lower, upper=upper, step=step)

        braced = self._accept("{")
        if self.current.text == "for":
            inner_loops, statement = self._parse_loop()
            loops = [loop] + inner_loops
        else:
            statement = self._parse_statement()
            loops = [loop]
        if braced:
            self._expect("}")
        return loops, statement

    def _parse_signed_int(self) -> int:
        sign = -1 if self._accept("-") else 1
        return sign * int(self._expect_kind("int").text)

    def _parse_statement(self) -> Statement:
        write = self._parse_ref()
        self._expect("=")
        reads: List[ArrayRef] = []
        self._parse_expr(reads)
        self._expect(";")
        return Statement(reads=tuple(reads), write=write)

    def _parse_expr(self, reads: List[ArrayRef]) -> None:
        self._accept("+") or self._accept("-")
        self._parse_term(reads)
        while self.current.text in ("+", "-"):
            self._advance()
            self._parse_term(reads)

    def _parse_term(self, reads: List[ArrayRef]) -> None:
        if self.current.kind == "int":
            self._advance()
            if self._accept("*"):
                reads.append(self._parse_ref())
            return
        reads.append(self._parse_ref())

    def _parse_ref(self) -> ArrayRef:
        name = self._expect_kind("name").text
        indices: List[AffineIndex] = []
        while self._accept("["):
            indices.append(self._parse_affine())
            self._expect("]")
        if not indices:
            raise HLSError(f"reference to {name!r} has no subscripts")
        return ArrayRef(array=name, indices=tuple(indices))

    def _parse_affine(self) -> AffineIndex:
        coefficients: Dict[str, int] = {}
        constant = 0
        sign = 1
        if self._accept("-"):
            sign = -1
        else:
            self._accept("+")
        while True:
            coeff, var = self._parse_affine_term()
            if var is None:
                constant += sign * coeff
            else:
                if var not in self.loop_vars:
                    raise HLSError(
                        f"subscript uses {var!r}, which is not an enclosing loop "
                        f"variable {self.loop_vars}"
                    )
                coefficients[var] = coefficients.get(var, 0) + sign * coeff
            if self.current.text == "+":
                sign = 1
                self._advance()
            elif self.current.text == "-":
                sign = -1
                self._advance()
            else:
                break
        return AffineIndex.make(coefficients, constant)

    def _parse_affine_term(self) -> Tuple[int, Optional[str]]:
        if self.current.kind == "int":
            value = int(self._advance().text)
            if self._accept("*"):
                var = self._expect_kind("name").text
                return value, var
            return value, None
        var = self._expect_kind("name").text
        return 1, var


def parse_kernel(source: str) -> LoopNest:
    """Parse a mini-C stencil kernel into a :class:`LoopNest`.

    >>> nest = parse_kernel('''
    ...     array X[8][8];
    ...     for (i = 1; i <= 6; i++)
    ...       for (j = 1; j <= 6; j++)
    ...         Y[i][j] = X[i-1][j] + X[i+1][j];
    ... ''')
    >>> nest.trip_count
    36
    """
    return _Parser(source).parse_program()


def build_nest(
    loops: List[Tuple[str, int, int]],
    reads: List[Tuple[str, Tuple[int, ...]]],
    write: Tuple[str, Tuple[int, ...]] | None = None,
    arrays: Dict[str, Tuple[int, ...]] | None = None,
) -> LoopNest:
    """Programmatic nest builder for stride-1 stencils.

    ``loops`` is ``[(var, lower, upper)]`` outer-to-inner; ``reads`` are
    ``(array, constant_offsets)`` with the convention that dimension ``d``
    is indexed by loop variable ``d`` plus the constant (the common stencil
    shape).

    >>> nest = build_nest([("i", 1, 6), ("j", 1, 6)],
    ...                   [("X", (-1, 0)), ("X", (1, 0))])
    >>> len(nest.statement.reads)
    2
    """
    if not loops:
        raise HLSError("at least one loop is required")
    loop_objs = tuple(Loop(var=v, lower=lo, upper=hi) for v, lo, hi in loops)
    var_names = [v for v, _, _ in loops]

    def make_ref(array: str, constants: Tuple[int, ...]) -> ArrayRef:
        if len(constants) != len(var_names):
            raise HLSError(
                f"offset {constants} has {len(constants)} dims, nest has {len(var_names)}"
            )
        indices = tuple(
            AffineIndex.make({var: 1}, constant)
            for var, constant in zip(var_names, constants)
        )
        return ArrayRef(array=array, indices=indices)

    read_refs = tuple(make_ref(a, c) for a, c in reads)
    write_ref = make_ref(*write) if write else None
    declared = tuple((arrays or {}).items())
    return LoopNest(
        loops=loop_objs,
        statement=Statement(reads=read_refs, write=write_ref),
        arrays=declared,
    )


#: The paper's Fig. 1(b) LoG edge-detection kernel, verbatim (0-indexed
#: bounds; the paper's 1-indexed ``i = 3 … 638`` becomes ``2 … 637``).
LOG_KERNEL_SOURCE = """
array X[640][480];
array Y[640][480];
for (i = 2; i <= 637; i++)
  for (j = 2; j <= 477; j++)
    Y[i][j] = - X[i-2][j] - X[i-1][j-1] - 2*X[i-1][j] - X[i-1][j+1]
              - X[i][j-2] - 2*X[i][j-1] + 16*X[i][j] - 2*X[i][j+1]
              - X[i][j+2] - X[i+1][j-1] - 2*X[i+1][j] - X[i+1][j+1]
              - X[i+2][j];
"""


def log_kernel_nest() -> LoopNest:
    """The Fig. 1(b) loop nest, parsed."""
    return parse_kernel(LOG_KERNEL_SOURCE)
