"""Functional verification: real convolutions through banked memory.

The strongest end-to-end check of a partitioning solution: load an image
into the banked memory, run the stencil kernel by *reading every tap
through the banks*, and compare the result against a direct NumPy golden
model.  Any bug in ``B(x)``/``F(x)`` — collision, wrong offset, padding
mix-up — corrupts the output image and fails the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..core.mapping import BankMapping
from ..errors import SimulationError
from ..hw.banked_memory import BankedMemory


def golden_stencil(array: "np.ndarray", kernel: "np.ndarray") -> "np.ndarray":
    """Direct (valid-mode) stencil: the reference result.

    Output has the 'valid' shape (input minus kernel extent plus one) and
    ``out[s] = Σ_Δ kernel[Δ] · in[s + Δ]``.
    """
    array = np.asarray(array, dtype=np.int64)
    kernel = np.asarray(kernel, dtype=np.int64)
    if array.ndim != kernel.ndim:
        raise SimulationError(
            f"array is {array.ndim}-D but kernel is {kernel.ndim}-D"
        )
    out_shape = tuple(
        w - k + 1 for w, k in zip(array.shape, kernel.shape)
    )
    if any(s <= 0 for s in out_shape):
        raise SimulationError(
            f"array {array.shape} smaller than kernel {kernel.shape}"
        )
    out = np.zeros(out_shape, dtype=np.int64)
    for tap in np.ndindex(*kernel.shape):
        weight = int(kernel[tap])
        if weight == 0:
            continue
        slices = tuple(
            slice(t, t + s) for t, s in zip(tap, out_shape)
        )
        out += weight * array[slices]
    return out


@dataclass(frozen=True)
class BankedStencilResult:
    """Outcome of a banked stencil execution.

    Attributes
    ----------
    output:
        The computed (valid-mode) result.
    total_cycles:
        Memory cycles spent on all parallel reads.
    worst_cycles:
        Slowest iteration.
    iterations:
        Loop iterations executed.
    """

    output: "np.ndarray"
    total_cycles: int
    worst_cycles: int
    iterations: int

    @property
    def measured_ii(self) -> float:
        return self.total_cycles / self.iterations


def banked_stencil(
    mapping: BankMapping,
    array: "np.ndarray",
    kernel: "np.ndarray",
    ports_per_bank: int = 1,
) -> BankedStencilResult:
    """Run a stencil with every tap read through the banked memory.

    The mapping's pattern must cover the kernel's nonzero taps (it usually
    *is* the nonzero-tap pattern).
    """
    array = np.asarray(array, dtype=np.int64)
    kernel = np.asarray(kernel, dtype=np.int64)
    if array.shape != mapping.shape:
        raise SimulationError(
            f"array shape {array.shape} does not match mapping shape {mapping.shape}"
        )
    taps = [tuple(t) for t in np.argwhere(kernel != 0)]
    pattern_offsets = set(mapping.solution.pattern.normalized().offsets)
    if not set(taps) <= pattern_offsets:
        raise SimulationError(
            "kernel has nonzero taps outside the mapping's pattern; "
            "partition for the kernel's own pattern first"
        )
    weights = {t: int(kernel[t]) for t in taps}

    memory = BankedMemory(mapping=mapping, ports_per_bank=ports_per_bank)
    memory.load_array(array)

    out_shape = tuple(w - k + 1 for w, k in zip(array.shape, kernel.shape))
    out = np.zeros(out_shape, dtype=np.int64)

    total_cycles = 0
    worst = 0
    iterations = 0
    for offset in np.ndindex(*out_shape):
        reads = [tuple(o + t for o, t in zip(offset, tap)) for tap in taps]
        result = memory.parallel_read(reads)
        accum = 0
        for tap, value in zip(taps, result.values):
            accum += weights[tap] * value
        out[offset] = accum
        total_cycles += result.cycles
        worst = max(worst, result.cycles)
        iterations += 1

    return BankedStencilResult(
        output=out,
        total_cycles=total_cycles,
        worst_cycles=worst,
        iterations=iterations,
    )


def verify_banked_stencil(
    mapping: BankMapping, array: "np.ndarray", kernel: "np.ndarray"
) -> Tuple[bool, BankedStencilResult]:
    """Run the banked stencil and compare to the golden model.

    Returns ``(matches, result)``; raises nothing on mismatch so callers
    can report diffs.
    """
    result = banked_stencil(mapping, array, kernel)
    golden = golden_stencil(array, kernel)
    return bool(np.array_equal(result.output, golden)), result
