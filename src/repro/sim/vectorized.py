"""Vectorized sweep simulation: the whole trace in a few NumPy kernels.

The scalar simulator in :mod:`repro.sim.memsim` replays a trace one
iteration at a time through :class:`~repro.hw.banked_memory.BankedMemory`
— a faithful hardware model, but Python-loop bound: a megapixel sweep
costs hundreds of thousands of `parallel_read` calls, each doing ``m``
scalar address translations.  This module computes the *identical*
:class:`~repro.sim.memsim.SimulationReport` without instantiating banks
at all:

1. **Load** — scatter the source array into flat per-bank storage with one
   :func:`~repro.core.vectorized.bulk_addresses` call per bounded chunk of
   the element grid (duplicate addresses resolve last-write-wins, exactly
   like the scalar ``poke`` order).
2. **Trace** — the iteration domain is an integer grid, so loop offsets are
   generated arithmetically; the full read set of a chunk of iterations is
   one broadcasted add of the pattern offsets.
3. **Cycles** — the scalar port arbiter serves ``ports`` claims per bank
   per cycle, so an iteration touching bank ``b`` with ``k_b`` reads takes
   ``max_b ⌈k_b / ports⌉`` cycles.  A ``bincount`` over (iteration, bank)
   pairs yields every ``k_b`` at once; the per-bank failed-claim tallies the
   hardware counters would have recorded follow in closed form
   (``Σ_{j≥1} max(0, k − j·ports)``).

Equivalence with the scalar engine — including the corruption check, the
uninitialized-read guard, conflict attribution, and the report fields bit
for bit — is enforced by unit and Hypothesis property tests.

Memory stays bounded on huge shapes: both the load pass and the trace pass
work in chunks of at most :func:`~repro.core.vectorized.chunk_budget`
coordinate rows (``REPRO_BULK_CHUNK`` overrides the default).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.mapping import BankMapping
from ..core.vectorized import bulk_addresses, chunk_budget, iter_element_chunks
from ..errors import SimulationError
from ..obs.conflicts import ConflictTable
from ..obs.tracer import span
from .trace import domain_ranges


@dataclass
class SweepStats:
    """Raw sweep measurements shared by both engines.

    The dispatcher in :mod:`repro.sim.memsim` turns this into the public
    :class:`~repro.sim.memsim.SimulationReport` and mirrors it into the
    metrics registry, so the two engines cannot drift in how they publish.
    """

    iterations: int
    total_cycles: int
    worst_cycles: int
    cycle_histogram: Dict[int, int]
    bank_utilization: Dict[int, float]
    ports_per_bank: int
    bank_conflicts: Dict[int, int]
    bank_accesses: Dict[int, int]


def _loaded_storage(
    mapping: BankMapping,
    array: "np.ndarray",
    bases: "np.ndarray",
    sizes: "np.ndarray",
    chunk: int | None,
) -> Tuple["np.ndarray", "np.ndarray"]:
    """Scatter the array into flat bank storage; return (values, written)."""
    data = np.asarray(array)
    if data.shape != mapping.shape:
        raise SimulationError(
            f"array shape {data.shape} does not match mapping shape "
            f"{mapping.shape}"
        )
    flat = data.reshape(-1)
    total_slots = int(bases[-1] + sizes[-1]) if len(sizes) else 0
    storage = np.zeros(total_slots, dtype=np.int64)
    written = np.zeros(total_slots, dtype=bool)
    for start, elements in iter_element_chunks(mapping.shape, chunk):
        banks, offsets = bulk_addresses(mapping, elements)
        if (offsets < 0).any() or (offsets >= sizes[banks]).any():
            bad = int(np.nonzero((offsets < 0) | (offsets >= sizes[banks]))[0][0])
            raise SimulationError(
                f"offset {int(offsets[bad])} out of range for bank "
                f"{int(banks[bad])} of size {int(sizes[banks[bad]])}"
            )
        addresses = bases[banks] + offsets
        # Row-major element order + NumPy's last-write-wins fancy assignment
        # reproduce the scalar load exactly, collisions included.
        storage[addresses] = flat[start : start + len(elements)].astype(np.int64)
        written[addresses] = True
    return storage, written


def _iteration_block(
    ranges, lens: Tuple[int, ...], lo: int, hi: int
) -> "np.ndarray":
    """Loop offsets for row-major strided-domain indices ``lo … hi - 1``."""
    linear = np.arange(lo, hi, dtype=np.int64)
    coords = np.unravel_index(linear, lens)
    block = np.empty((hi - lo, len(lens)), dtype=np.int64)
    for dim, rng in enumerate(ranges):
        block[:, dim] = rng.start + coords[dim] * rng.step
    return block


def _raise_corruption(
    offsets_block: "np.ndarray",
    values: "np.ndarray",
    expected: "np.ndarray",
    iteration: int,
) -> None:
    got = [int(v) for v in values[iteration]]
    want = [int(v) for v in expected[iteration]]
    offset = tuple(int(c) for c in offsets_block[iteration])
    raise SimulationError(
        f"data corruption at offset {offset}: got {got}, expected {want}"
    )


def simulate_sweep_vectorized(
    mapping: BankMapping,
    array: "np.ndarray" | None = None,
    step: int = 1,
    limit: int | None = None,
    ports_per_bank: int = 1,
    verify: bool = True,
    attribution: Optional[ConflictTable] = None,
    chunk: int | None = None,
) -> SweepStats:
    """Run the full sweep measurement in NumPy; see the module docstring.

    The caller (``simulate_sweep``) owns parameter validation shared with
    the scalar engine (port widths, conflict-table compatibility) and the
    conversion of the returned :class:`SweepStats` into a report.
    """
    solution = mapping.solution
    pattern = solution.pattern
    ports = max(ports_per_bank, solution.bank_ports)
    n_banks = mapping.n_banks

    sizes = np.array(
        [mapping.bank_size(b) for b in range(n_banks)], dtype=np.int64
    )
    bases = np.concatenate(([0], np.cumsum(sizes)[:-1])).astype(np.int64)

    with span("sim.load_array"):
        if array is None:
            array = np.arange(
                int(np.prod(mapping.shape)), dtype=np.int64
            ).reshape(mapping.shape)
        storage, written = _loaded_storage(mapping, array, bases, sizes, chunk)
        occupancy = np.add.reduceat(written, bases) if n_banks else np.array([])
        flat_array = np.asarray(array).reshape(-1)

    with span("sim.trace_build"):
        ranges = domain_ranges(pattern, mapping.shape, step)
        lens = tuple(len(r) for r in ranges)
        total_iterations = 1
        for n in lens:
            total_iterations *= n
        if limit is not None:
            total_iterations = min(total_iterations, limit)
        if total_iterations < 1:
            raise SimulationError("empty trace: domain produced no iterations")
        deltas = np.asarray(pattern.offsets, dtype=np.int64)
        m = pattern.size
        shape_arr = np.asarray(mapping.shape, dtype=np.int64)

    budget = chunk_budget(chunk)
    iter_chunk = max(1, budget // max(m, n_banks))

    histogram: Dict[int, int] = {}
    total = 0
    worst = 0
    conflict_totals = np.zeros(n_banks, dtype=np.int64)
    access_totals = np.zeros(n_banks, dtype=np.int64)
    pattern_offsets = pattern.offsets

    with span("sim.sweep_loop", iterations=total_iterations, verify=verify):
        for lo in range(0, total_iterations, iter_chunk):
            hi = min(lo + iter_chunk, total_iterations)
            block = _iteration_block(ranges, lens, lo, hi)
            count = hi - lo
            elements = (block[:, None, :] + deltas[None, :, :]).reshape(-1, len(lens))
            banks, offsets = bulk_addresses(mapping, elements)
            addresses = bases[banks] + offsets

            missing = ~written[addresses]
            if missing.any():
                bad = elements[int(np.nonzero(missing)[0][0])]
                raise SimulationError(
                    f"read of uninitialized element {tuple(int(c) for c in bad)}"
                )
            if verify:
                values = storage[addresses].reshape(count, m)
                linear = np.ravel_multi_index(tuple(elements.T), tuple(int(w) for w in shape_arr))
                expected = flat_array[linear].astype(np.int64).reshape(count, m)
                mismatch = values != expected
                if mismatch.any():
                    _raise_corruption(
                        block, values, expected, int(np.nonzero(mismatch.any(axis=1))[0][0])
                    )

            keys = (
                np.repeat(np.arange(count, dtype=np.int64), m) * n_banks + banks
            )
            per_bank = np.bincount(keys, minlength=count * n_banks).reshape(
                count, n_banks
            )
            cycles = -(-per_bank.max(axis=1) // ports)

            counts = np.bincount(cycles)
            for value in np.nonzero(counts)[0]:
                histogram[int(value)] = histogram.get(int(value), 0) + int(
                    counts[value]
                )
            total += int(cycles.sum())
            worst = max(worst, int(cycles.max()))

            # Failed port claims per (iteration, bank), in closed form:
            # q = floor((k - 1) / ports) retry rounds, each losing k - j*ports.
            q = np.maximum(per_bank - 1, 0) // ports
            failed = q * per_bank - ports * (q * (q + 1) // 2)
            conflict_totals += failed.sum(axis=0)
            access_totals += per_bank.sum(axis=0)

            if attribution is not None:
                banks_matrix = banks.reshape(count, m)
                for i in range(count):
                    attribution.record_iteration(
                        pattern_offsets,
                        [int(b) for b in banks_matrix[i]],
                        int(cycles[i]),
                    )

    utilization = {
        b: (int(occupancy[b]) / int(sizes[b]) if int(sizes[b]) else 0.0)
        for b in range(n_banks)
    }
    return SweepStats(
        iterations=total_iterations,
        total_cycles=total,
        worst_cycles=worst,
        cycle_histogram=histogram,
        bank_utilization=utilization,
        ports_per_bank=ports,
        bank_conflicts={b: int(conflict_totals[b]) for b in range(n_banks)},
        bank_accesses={b: int(access_totals[b]) for b in range(n_banks)},
    )
