"""Cycle-level banked-memory simulation.

Replays an access trace against a :class:`~repro.hw.banked_memory.BankedMemory`
and reports the *measured* initiation interval: the cycles each iteration's
parallel read actually took given port arbitration.  This closes the loop
between the analytic ``δP`` (Definition 4) and observable hardware behaviour
— every benchmark's headline claim ("one cycle per iteration") is validated
here rather than assumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..core.mapping import BankMapping
from ..core.partition import PartitionSolution
from ..errors import SimulationError
from ..hw.banked_memory import BankedMemory
from .trace import pattern_trace


@dataclass(frozen=True)
class SimulationReport:
    """Measured behaviour of a partitioning solution under a real sweep.

    Attributes
    ----------
    iterations:
        Loop iterations simulated.
    total_cycles:
        Memory cycles consumed by all parallel reads.
    worst_cycles:
        Slowest single iteration (measured ``δP + 1``).
    cycle_histogram:
        cycles-per-iteration → iteration count.
    bank_utilization:
        Fraction of each bank's slots holding real data after load.
    """

    iterations: int
    total_cycles: int
    worst_cycles: int
    cycle_histogram: Dict[int, int]
    bank_utilization: Dict[int, float]

    @property
    def measured_ii(self) -> float:
        """Average cycles per iteration (1.0 = fully parallel)."""
        return self.total_cycles / self.iterations

    @property
    def measured_delta_ii(self) -> int:
        """Worst-case extra cycles: the empirical ``δP``."""
        return self.worst_cycles - 1


def simulate_sweep(
    mapping: BankMapping,
    array: "np.ndarray" | None = None,
    step: int = 1,
    limit: int | None = None,
    ports_per_bank: int = 1,
) -> SimulationReport:
    """Sweep the solution's pattern across the array and measure cycles.

    Parameters
    ----------
    mapping:
        The full address mapping under test.
    array:
        Data to load; synthesized (arange) when omitted.
    step, limit:
        Domain striding / truncation for large arrays.
    ports_per_bank:
        Bank bandwidth ``B`` (paper default 1).
    """
    memory = BankedMemory(mapping=mapping, ports_per_bank=ports_per_bank)
    if array is None:
        array = np.arange(int(np.prod(mapping.shape)), dtype=np.int64).reshape(
            mapping.shape
        )
    memory.load_array(array)

    solution: PartitionSolution = mapping.solution
    trace = pattern_trace(solution.pattern, mapping.shape, step=step, limit=limit)

    histogram: Dict[int, int] = {}
    total = 0
    worst = 0
    for iteration in trace:
        result = memory.parallel_read(list(iteration.reads))
        expected = [int(array[e]) for e in iteration.reads]
        if result.values != expected:
            raise SimulationError(
                f"data corruption at offset {iteration.offset}: "
                f"got {result.values}, expected {expected}"
            )
        histogram[result.cycles] = histogram.get(result.cycles, 0) + 1
        total += result.cycles
        worst = max(worst, result.cycles)

    return SimulationReport(
        iterations=len(trace),
        total_cycles=total,
        worst_cycles=worst,
        cycle_histogram=histogram,
        bank_utilization=memory.utilization(),
    )


def simulate_unpartitioned(
    pattern_size: int, iterations: int, ports: int = 1
) -> int:
    """Cycles a single-bank memory needs for the same sweep (the baseline).

    With one ``ports``-wide memory, each iteration's ``m`` reads serialize
    into ``⌈m / ports⌉`` cycles.
    """
    if min(pattern_size, iterations, ports) < 1:
        raise SimulationError("pattern_size, iterations and ports must be positive")
    per_iteration = -(-pattern_size // ports)
    return per_iteration * iterations


def speedup_vs_unpartitioned(report: SimulationReport, pattern_size: int) -> float:
    """Measured speedup of the banked memory over a single bank."""
    baseline = simulate_unpartitioned(pattern_size, report.iterations)
    return baseline / report.total_cycles
