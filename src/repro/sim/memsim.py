"""Cycle-level banked-memory simulation.

Replays an access trace against a :class:`~repro.hw.banked_memory.BankedMemory`
and reports the *measured* initiation interval: the cycles each iteration's
parallel read actually took given port arbitration.  This closes the loop
between the analytic ``δP`` (Definition 4) and observable hardware behaviour
— every benchmark's headline claim ("one cycle per iteration") is validated
here rather than assumed.

Telemetry: with observability on (``REPRO_OBS=1`` or ``repro.obs.enable()``)
the sweep records spans (``sim.simulate_sweep`` → load / trace / loop), a
``sim.cycles_per_iteration`` histogram and per-bank conflict counters in the
global registry, and — always, when the caller passes a
:class:`~repro.obs.conflicts.ConflictTable` — full conflict attribution
down to the pattern-offset pairs responsible.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict

import numpy as np

from ..core.mapping import BankMapping
from ..core.partition import PartitionSolution
from ..errors import SimulationError
from ..hw.banked_memory import BankedMemory
from ..obs import state as obs_state
from ..obs.conflicts import ConflictTable
from ..obs.metrics import registry as obs_registry
from ..obs.tracer import span
from .trace import pattern_trace
from .vectorized import SweepStats, simulate_sweep_vectorized

#: Engine names accepted by :func:`simulate_sweep`.  ``"native"`` is the
#: optional compiled tier (:mod:`repro.native`): present only when the
#: extension is built, preferred by ``"auto"`` when it is, and a clear
#: :class:`~repro.errors.NativeUnavailableError` when forced without it.
ENGINES = ("auto", "scalar", "vectorized", "native")


@dataclass(frozen=True)
class SimulationReport:
    """Measured behaviour of a partitioning solution under a real sweep.

    Attributes
    ----------
    iterations:
        Loop iterations simulated.
    total_cycles:
        Memory cycles consumed by all parallel reads.
    worst_cycles:
        Slowest single iteration (measured ``δP + 1``).
    cycle_histogram:
        cycles-per-iteration → iteration count.
    bank_utilization:
        Fraction of each bank's slots holding real data after load.
    ports_per_bank:
        Port width the memory was actually simulated with (after any
        widening demanded by the solution's ``bank_ports``).
    """

    iterations: int
    total_cycles: int
    worst_cycles: int
    cycle_histogram: Dict[int, int]
    bank_utilization: Dict[int, float]
    ports_per_bank: int = 1

    @property
    def measured_ii(self) -> float:
        """Average cycles per iteration (1.0 = fully parallel)."""
        return self.total_cycles / self.iterations

    @property
    def measured_delta_ii(self) -> int:
        """Worst-case extra cycles: the empirical ``δP``."""
        return self.worst_cycles - 1

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly form (dict keys become strings; see ``from_dict``)."""
        return {
            "iterations": self.iterations,
            "total_cycles": self.total_cycles,
            "worst_cycles": self.worst_cycles,
            "cycle_histogram": {
                str(k): v for k, v in sorted(self.cycle_histogram.items())
            },
            "bank_utilization": {
                str(k): v for k, v in sorted(self.bank_utilization.items())
            },
            "ports_per_bank": self.ports_per_bank,
            "measured_ii": self.measured_ii,
            "measured_delta_ii": self.measured_delta_ii,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SimulationReport":
        """Inverse of :meth:`to_dict` (derived fields are recomputed)."""
        return cls(
            iterations=int(payload["iterations"]),
            total_cycles=int(payload["total_cycles"]),
            worst_cycles=int(payload["worst_cycles"]),
            cycle_histogram={
                int(k): int(v) for k, v in payload["cycle_histogram"].items()
            },
            bank_utilization={
                int(k): float(v) for k, v in payload["bank_utilization"].items()
            },
            ports_per_bank=int(payload.get("ports_per_bank", 1)),
        )


def _vectorized_capable(mapping: BankMapping) -> bool:
    """Whether the bulk engine's batch math is valid for this mapping.

    The vectorized path recomputes ``B(x)``/``F(x)`` from the mapping's
    *formulas*, so a subclass that overrides the scalar address methods
    (tests use exactly this to inject corruption) would silently diverge.
    Eligible are the stock mapping types plus any type with a registered
    bulk kernel (:func:`repro.core.vectorized.register_bulk_kernel` — the
    baseline cyclic/block mappings register theirs at import).  Kernel
    lookup is by exact type, so subclasses of registered types also fall
    back to the scalar reference.
    """
    from ..core.packed import PackedBankMapping
    from ..core.vectorized import has_bulk_kernel

    return type(mapping) in (BankMapping, PackedBankMapping) or has_bulk_kernel(
        type(mapping)
    )


def resolve_engine(mapping: BankMapping, engine: str = "auto") -> str:
    """Concrete engine ``simulate_sweep`` will run for this mapping.

    Selection order for ``"auto"``: ``native`` (when the compiled extension
    is built, importable, and not disabled via ``REPRO_NATIVE=0``) →
    ``vectorized`` → ``scalar``.  The native engine shares the vectorized
    engine's eligibility rule — its fused kernels and hybrid bulk path
    recompute addresses from the mapping's *formulas*, so a subclass that
    overrides the scalar address methods must fall back to scalar.

    Forcing an ineligible engine raises: :class:`SimulationError` for a
    formula-overriding subclass, :class:`~repro.errors.NativeUnavailableError`
    for ``engine="native"`` without a usable extension.  ``"auto"`` never
    raises — missing native degrades silently to the NumPy engines.
    """
    from .. import native

    if engine not in ENGINES:
        raise SimulationError(
            f"unknown simulation engine {engine!r}; choose one of {ENGINES}"
        )
    bulk_capable = _vectorized_capable(mapping)
    if engine == "auto":
        if not bulk_capable:
            return "scalar"
        return "native" if native.available() else "vectorized"
    if engine in ("vectorized", "native") and not bulk_capable:
        raise SimulationError(
            f"engine={engine!r} supports stock BankMapping types and types "
            f"with a registered bulk kernel only; {type(mapping).__name__} "
            "overrides scalar address methods the bulk path cannot honor — "
            "use engine='scalar' (or register_bulk_kernel for the type)"
        )
    if engine == "native":
        native.require()  # NativeUnavailableError when absent or disabled
    return engine


def _simulate_sweep_scalar(
    mapping: BankMapping,
    array: "np.ndarray" | None,
    step: int,
    limit: int | None,
    ports_per_bank: int,
    verify: bool,
    attribution: ConflictTable | None,
) -> SweepStats:
    """Reference engine: replay the trace through :class:`BankedMemory`."""
    memory = BankedMemory(mapping=mapping, ports_per_bank=ports_per_bank)
    with span("sim.load_array"):
        if array is None:
            array = np.arange(
                int(np.prod(mapping.shape)), dtype=np.int64
            ).reshape(mapping.shape)
        memory.load_array(array)

    solution: PartitionSolution = mapping.solution
    with span("sim.trace_build"):
        trace = pattern_trace(
            solution.pattern, mapping.shape, step=step, limit=limit
        )
    pattern_offsets = solution.pattern.offsets

    histogram: Dict[int, int] = {}
    total = 0
    worst = 0
    with span("sim.sweep_loop", iterations=len(trace), verify=verify):
        for iteration in trace:
            result = memory.parallel_read(list(iteration.reads))
            if verify:
                expected = [int(array[e]) for e in iteration.reads]
                if result.values != expected:
                    raise SimulationError(
                        f"data corruption at offset {iteration.offset}: "
                        f"got {result.values}, expected {expected}"
                    )
            histogram[result.cycles] = histogram.get(result.cycles, 0) + 1
            total += result.cycles
            worst = max(worst, result.cycles)
            if attribution is not None:
                attribution.record_iteration(
                    pattern_offsets, result.banks_touched, result.cycles
                )

    return SweepStats(
        iterations=len(trace),
        total_cycles=total,
        worst_cycles=worst,
        cycle_histogram=histogram,
        bank_utilization=memory.utilization(),
        ports_per_bank=memory.ports_per_bank,
        bank_conflicts=memory.conflict_counts(),
        bank_accesses=memory.access_counts(),
    )


def _publish_report(
    stats: SweepStats, attribution: ConflictTable | None, obs_on: bool
) -> SimulationReport:
    """Shared tail: attribution totals, registry mirroring, report build.

    Both engines funnel through here, so what the outside world sees (the
    report fields and every metric name) is engine-independent by
    construction.
    """
    if attribution is not None:
        attribution.observed_bank_conflicts = dict(stats.bank_conflicts)
    if obs_on:
        reg = obs_registry()
        cycles_hist = reg.histogram("sim.cycles_per_iteration")
        for cycles, count in stats.cycle_histogram.items():
            cycles_hist.observe(cycles, count)
        for bank, count in stats.bank_conflicts.items():
            if count:
                reg.counter(f"sim.bank.{bank}.conflicts").inc(count)
        for bank, count in stats.bank_accesses.items():
            if count:
                reg.counter(f"sim.bank.{bank}.accesses").inc(count)
        reg.counter("sim.iterations").inc(stats.iterations)
        reg.counter("sim.total_cycles").inc(stats.total_cycles)

    return SimulationReport(
        iterations=stats.iterations,
        total_cycles=stats.total_cycles,
        worst_cycles=stats.worst_cycles,
        cycle_histogram=stats.cycle_histogram,
        bank_utilization=stats.bank_utilization,
        ports_per_bank=stats.ports_per_bank,
    )


def simulate_sweep(
    mapping: BankMapping,
    array: "np.ndarray" | None = None,
    step: int = 1,
    limit: int | None = None,
    ports_per_bank: int = 1,
    verify: bool = True,
    conflicts: ConflictTable | None = None,
    engine: str = "auto",
) -> SimulationReport:
    """Sweep the solution's pattern across the array and measure cycles.

    Parameters
    ----------
    mapping:
        The full address mapping under test.
    array:
        Data to load; synthesized (arange) when omitted.
    step, limit:
        Domain striding / truncation for large arrays.
    ports_per_bank:
        Bank bandwidth ``B`` (paper default 1).
    verify:
        Cross-check every read against the source array.  On by default;
        benchmarks that time the sweep should pass ``verify=False`` so the
        check does not dominate and distort the telemetry.
    conflicts:
        Optional :class:`~repro.obs.conflicts.ConflictTable` to fill with
        per-bank / per-offset-pair attribution.  Its port width must match
        the memory's effective width.  When omitted, attribution is still
        collected (and mirrored into the metrics registry) whenever
        observability is enabled.
    engine:
        ``"auto"`` (default) uses the fastest eligible engine for the
        mapping — the compiled ``native`` tier when the optional extension
        is built (:mod:`repro.native`), else the ``vectorized`` NumPy path
        for stock mapping types, else the scalar reference;
        ``"scalar"``/``"vectorized"``/``"native"`` force an engine.  All
        produce bit-identical reports.  Forcing a bulk engine on a mapping
        subclass with overridden address methods is an error, and forcing
        ``"native"`` without the extension raises
        :class:`~repro.errors.NativeUnavailableError` (see
        :func:`resolve_engine`).
    """
    engine = resolve_engine(mapping, engine)

    if ports_per_bank < 1:
        raise SimulationError(
            f"ports_per_bank must be positive, got {ports_per_bank}"
        )
    effective_ports = max(ports_per_bank, mapping.solution.bank_ports)
    attribution = conflicts
    if attribution is not None and attribution.ports_per_bank != effective_ports:
        raise SimulationError(
            f"conflict table expects {attribution.ports_per_bank} port(s) "
            f"but the memory serves {effective_ports}"
        )
    obs_on = obs_state.enabled()
    if attribution is None and obs_on:
        attribution = ConflictTable(effective_ports)

    started = time.perf_counter()
    with span("sim.simulate_sweep", shape=mapping.shape, engine=engine):
        if engine == "native":
            from .native import simulate_sweep_native

            stats = simulate_sweep_native(
                mapping,
                array=array,
                step=step,
                limit=limit,
                ports_per_bank=ports_per_bank,
                verify=verify,
                attribution=attribution,
            )
        elif engine == "vectorized":
            stats = simulate_sweep_vectorized(
                mapping,
                array=array,
                step=step,
                limit=limit,
                ports_per_bank=ports_per_bank,
                verify=verify,
                attribution=attribution,
            )
        else:
            stats = _simulate_sweep_scalar(
                mapping, array, step, limit, ports_per_bank, verify, attribution
            )
        report = _publish_report(stats, attribution, obs_on)
    obs_registry().log_histogram("sim.simulate_ms").observe(
        (time.perf_counter() - started) * 1000.0
    )
    return report


def simulate_unpartitioned(
    pattern_size: int, iterations: int, ports: int = 1
) -> int:
    """Cycles a single-bank memory needs for the same sweep (the baseline).

    With one ``ports``-wide memory, each iteration's ``m`` reads serialize
    into ``⌈m / ports⌉`` cycles.
    """
    if min(pattern_size, iterations, ports) < 1:
        raise SimulationError("pattern_size, iterations and ports must be positive")
    per_iteration = -(-pattern_size // ports)
    return per_iteration * iterations


def speedup_vs_unpartitioned(report: SimulationReport, pattern_size: int) -> float:
    """Measured speedup of the banked memory over a single bank.

    The baseline single-bank memory gets the same port width the banked
    simulation ran with (``report.ports_per_bank``), so dual-port runs are
    compared against a dual-port monolith — apples to apples.
    """
    baseline = simulate_unpartitioned(
        pattern_size, report.iterations, ports=report.ports_per_bank
    )
    return baseline / report.total_cycles
