"""Cycle-level banked-memory simulation.

Replays an access trace against a :class:`~repro.hw.banked_memory.BankedMemory`
and reports the *measured* initiation interval: the cycles each iteration's
parallel read actually took given port arbitration.  This closes the loop
between the analytic ``δP`` (Definition 4) and observable hardware behaviour
— every benchmark's headline claim ("one cycle per iteration") is validated
here rather than assumed.

Telemetry: with observability on (``REPRO_OBS=1`` or ``repro.obs.enable()``)
the sweep records spans (``sim.simulate_sweep`` → load / trace / loop), a
``sim.cycles_per_iteration`` histogram and per-bank conflict counters in the
global registry, and — always, when the caller passes a
:class:`~repro.obs.conflicts.ConflictTable` — full conflict attribution
down to the pattern-offset pairs responsible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

import numpy as np

from ..core.mapping import BankMapping
from ..core.partition import PartitionSolution
from ..errors import SimulationError
from ..hw.banked_memory import BankedMemory
from ..obs import state as obs_state
from ..obs.conflicts import ConflictTable
from ..obs.metrics import registry as obs_registry
from ..obs.tracer import span
from .trace import pattern_trace


@dataclass(frozen=True)
class SimulationReport:
    """Measured behaviour of a partitioning solution under a real sweep.

    Attributes
    ----------
    iterations:
        Loop iterations simulated.
    total_cycles:
        Memory cycles consumed by all parallel reads.
    worst_cycles:
        Slowest single iteration (measured ``δP + 1``).
    cycle_histogram:
        cycles-per-iteration → iteration count.
    bank_utilization:
        Fraction of each bank's slots holding real data after load.
    ports_per_bank:
        Port width the memory was actually simulated with (after any
        widening demanded by the solution's ``bank_ports``).
    """

    iterations: int
    total_cycles: int
    worst_cycles: int
    cycle_histogram: Dict[int, int]
    bank_utilization: Dict[int, float]
    ports_per_bank: int = 1

    @property
    def measured_ii(self) -> float:
        """Average cycles per iteration (1.0 = fully parallel)."""
        return self.total_cycles / self.iterations

    @property
    def measured_delta_ii(self) -> int:
        """Worst-case extra cycles: the empirical ``δP``."""
        return self.worst_cycles - 1

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly form (dict keys become strings; see ``from_dict``)."""
        return {
            "iterations": self.iterations,
            "total_cycles": self.total_cycles,
            "worst_cycles": self.worst_cycles,
            "cycle_histogram": {
                str(k): v for k, v in sorted(self.cycle_histogram.items())
            },
            "bank_utilization": {
                str(k): v for k, v in sorted(self.bank_utilization.items())
            },
            "ports_per_bank": self.ports_per_bank,
            "measured_ii": self.measured_ii,
            "measured_delta_ii": self.measured_delta_ii,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SimulationReport":
        """Inverse of :meth:`to_dict` (derived fields are recomputed)."""
        return cls(
            iterations=int(payload["iterations"]),
            total_cycles=int(payload["total_cycles"]),
            worst_cycles=int(payload["worst_cycles"]),
            cycle_histogram={
                int(k): int(v) for k, v in payload["cycle_histogram"].items()
            },
            bank_utilization={
                int(k): float(v) for k, v in payload["bank_utilization"].items()
            },
            ports_per_bank=int(payload.get("ports_per_bank", 1)),
        )


def simulate_sweep(
    mapping: BankMapping,
    array: "np.ndarray" | None = None,
    step: int = 1,
    limit: int | None = None,
    ports_per_bank: int = 1,
    verify: bool = True,
    conflicts: ConflictTable | None = None,
) -> SimulationReport:
    """Sweep the solution's pattern across the array and measure cycles.

    Parameters
    ----------
    mapping:
        The full address mapping under test.
    array:
        Data to load; synthesized (arange) when omitted.
    step, limit:
        Domain striding / truncation for large arrays.
    ports_per_bank:
        Bank bandwidth ``B`` (paper default 1).
    verify:
        Cross-check every read against the source array (a per-element
        Python recomputation).  On by default; benchmarks that time the
        sweep should pass ``verify=False`` so the check does not dominate
        and distort the telemetry.
    conflicts:
        Optional :class:`~repro.obs.conflicts.ConflictTable` to fill with
        per-bank / per-offset-pair attribution.  Its port width must match
        the memory's effective width.  When omitted, attribution is still
        collected (and mirrored into the metrics registry) whenever
        observability is enabled.
    """
    with span("sim.simulate_sweep", shape=mapping.shape):
        memory = BankedMemory(mapping=mapping, ports_per_bank=ports_per_bank)
        with span("sim.load_array"):
            if array is None:
                array = np.arange(
                    int(np.prod(mapping.shape)), dtype=np.int64
                ).reshape(mapping.shape)
            memory.load_array(array)

        solution: PartitionSolution = mapping.solution
        with span("sim.trace_build"):
            trace = pattern_trace(
                solution.pattern, mapping.shape, step=step, limit=limit
            )

        attribution = conflicts
        if attribution is not None and attribution.ports_per_bank != memory.ports_per_bank:
            raise SimulationError(
                f"conflict table expects {attribution.ports_per_bank} port(s) "
                f"but the memory serves {memory.ports_per_bank}"
            )
        obs_on = obs_state.enabled()
        if attribution is None and obs_on:
            attribution = ConflictTable(memory.ports_per_bank)
        pattern_offsets = solution.pattern.offsets

        histogram: Dict[int, int] = {}
        total = 0
        worst = 0
        with span("sim.sweep_loop", iterations=len(trace), verify=verify):
            for iteration in trace:
                result = memory.parallel_read(list(iteration.reads))
                if verify:
                    expected = [int(array[e]) for e in iteration.reads]
                    if result.values != expected:
                        raise SimulationError(
                            f"data corruption at offset {iteration.offset}: "
                            f"got {result.values}, expected {expected}"
                        )
                histogram[result.cycles] = histogram.get(result.cycles, 0) + 1
                total += result.cycles
                worst = max(worst, result.cycles)
                if attribution is not None:
                    attribution.record_iteration(
                        pattern_offsets, result.banks_touched, result.cycles
                    )

        if attribution is not None:
            attribution.observed_bank_conflicts = memory.conflict_counts()
        if obs_on:
            reg = obs_registry()
            cycles_hist = reg.histogram("sim.cycles_per_iteration")
            for cycles, count in histogram.items():
                cycles_hist.observe(cycles, count)
            for bank, count in memory.conflict_counts().items():
                if count:
                    reg.counter(f"sim.bank.{bank}.conflicts").inc(count)
            for bank, count in memory.access_counts().items():
                if count:
                    reg.counter(f"sim.bank.{bank}.accesses").inc(count)
            reg.counter("sim.iterations").inc(len(trace))
            reg.counter("sim.total_cycles").inc(total)

        return SimulationReport(
            iterations=len(trace),
            total_cycles=total,
            worst_cycles=worst,
            cycle_histogram=histogram,
            bank_utilization=memory.utilization(),
            ports_per_bank=memory.ports_per_bank,
        )


def simulate_unpartitioned(
    pattern_size: int, iterations: int, ports: int = 1
) -> int:
    """Cycles a single-bank memory needs for the same sweep (the baseline).

    With one ``ports``-wide memory, each iteration's ``m`` reads serialize
    into ``⌈m / ports⌉`` cycles.
    """
    if min(pattern_size, iterations, ports) < 1:
        raise SimulationError("pattern_size, iterations and ports must be positive")
    per_iteration = -(-pattern_size // ports)
    return per_iteration * iterations


def speedup_vs_unpartitioned(report: SimulationReport, pattern_size: int) -> float:
    """Measured speedup of the banked memory over a single bank.

    The baseline single-bank memory gets the same port width the banked
    simulation ran with (``report.ports_per_bank``), so dual-port runs are
    compared against a dual-port monolith — apples to apples.
    """
    baseline = simulate_unpartitioned(
        pattern_size, report.iterations, ports=report.ports_per_bank
    )
    return baseline / report.total_cycles
