"""Banked-memory simulation: traces, cycle measurement, functional checks."""

from .engine import PipelineModel, banked_model, serialized_model
from .functional import (
    BankedStencilResult,
    banked_stencil,
    golden_stencil,
    verify_banked_stencil,
)
from .memsim import (
    SimulationReport,
    simulate_sweep,
    simulate_unpartitioned,
    speedup_vs_unpartitioned,
)
from .trace import TraceIteration, iteration_domain, pattern_trace, trace_addresses

__all__ = [
    "PipelineModel",
    "banked_model",
    "serialized_model",
    "BankedStencilResult",
    "banked_stencil",
    "golden_stencil",
    "verify_banked_stencil",
    "SimulationReport",
    "simulate_sweep",
    "simulate_unpartitioned",
    "speedup_vs_unpartitioned",
    "TraceIteration",
    "iteration_domain",
    "pattern_trace",
    "trace_addresses",
]
