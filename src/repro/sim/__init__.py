"""Banked-memory simulation: traces, cycle measurement, functional checks."""

from .engine import PipelineModel, banked_model, serialized_model
from .functional import (
    BankedStencilResult,
    banked_stencil,
    golden_stencil,
    verify_banked_stencil,
)
from .memsim import (
    ENGINES,
    SimulationReport,
    resolve_engine,
    simulate_sweep,
    simulate_unpartitioned,
    speedup_vs_unpartitioned,
)
from .trace import (
    TraceIteration,
    domain_ranges,
    iteration_domain,
    pattern_trace,
    trace_addresses,
)
from .vectorized import SweepStats, simulate_sweep_vectorized

__all__ = [
    "ENGINES",
    "SweepStats",
    "simulate_sweep_vectorized",
    "domain_ranges",
    "PipelineModel",
    "banked_model",
    "serialized_model",
    "BankedStencilResult",
    "banked_stencil",
    "golden_stencil",
    "verify_banked_stencil",
    "SimulationReport",
    "resolve_engine",
    "simulate_sweep",
    "simulate_unpartitioned",
    "speedup_vs_unpartitioned",
    "TraceIteration",
    "iteration_domain",
    "pattern_trace",
    "trace_addresses",
]
