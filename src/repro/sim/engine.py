"""Pipelined loop-execution timing model.

The paper's metric ``δ(II)`` is an *increment* to the loop initiation
interval.  This module turns the memory-level measurement into end-to-end
loop timing using the standard software-pipelining model:

    total_cycles = pipeline_depth + II · (iterations − 1)

so benchmark output can report whole-kernel speedups (e.g. "LoG over a
640×480 frame: 13× fewer memory-bound cycles than a single bank").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError


@dataclass(frozen=True)
class PipelineModel:
    """Timing model of one pipelined loop nest.

    Attributes
    ----------
    iterations:
        Trip count of the (flattened) loop nest.
    base_ii:
        Initiation interval of the compute pipeline with an ideal memory
        (usually 1 for fully-pipelined HLS kernels).
    delta_ii:
        Extra interval imposed by memory-bank conflicts (paper's ``δP``).
    depth:
        Pipeline depth (fill latency) in cycles.
    """

    iterations: int
    base_ii: int = 1
    delta_ii: int = 0
    depth: int = 1

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise SimulationError(f"iterations must be positive, got {self.iterations}")
        if self.base_ii < 1:
            raise SimulationError(f"base_ii must be positive, got {self.base_ii}")
        if self.delta_ii < 0:
            raise SimulationError(f"delta_ii must be non-negative, got {self.delta_ii}")
        if self.depth < 1:
            raise SimulationError(f"depth must be positive, got {self.depth}")

    @property
    def effective_ii(self) -> int:
        """``II = base_ii + δ(II)``."""
        return self.base_ii + self.delta_ii

    @property
    def total_cycles(self) -> int:
        """Fill the pipeline once, then one ``II`` per remaining iteration."""
        return self.depth + self.effective_ii * (self.iterations - 1)

    def speedup_over(self, other: "PipelineModel") -> float:
        """How much faster this model finishes than ``other``."""
        if other.iterations != self.iterations:
            raise SimulationError(
                "speedup comparison requires equal trip counts: "
                f"{self.iterations} vs {other.iterations}"
            )
        return other.total_cycles / self.total_cycles


def serialized_model(iterations: int, pattern_size: int, depth: int = 1) -> PipelineModel:
    """Timing with a single-bank memory: every tap read serializes.

    The memory imposes ``II = m`` (one cycle per pattern element), i.e.
    ``δ(II) = m − 1`` over an ideal base of 1.
    """
    if pattern_size < 1:
        raise SimulationError(f"pattern_size must be positive, got {pattern_size}")
    return PipelineModel(
        iterations=iterations, base_ii=1, delta_ii=pattern_size - 1, depth=depth
    )


def banked_model(iterations: int, delta_ii: int, depth: int = 1) -> PipelineModel:
    """Timing with a banked memory achieving the given ``δ(II)``."""
    return PipelineModel(iterations=iterations, base_ii=1, delta_ii=delta_ii, depth=depth)
