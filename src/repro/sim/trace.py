"""Access-trace generation for loop nests sweeping a pattern.

A stencil loop nest visits every interior offset ``s`` of the array and
reads the pattern instance ``P_s``.  A *trace* is the per-iteration list of
element addresses; the simulator replays it against a banked memory to
measure achieved initiation intervals instead of trusting analytic claims.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from ..core.pattern import Pattern
from ..errors import SimulationError

Element = Tuple[int, ...]


@dataclass(frozen=True)
class TraceIteration:
    """One loop iteration: the loop offset and the addresses it reads."""

    offset: Element
    reads: Tuple[Element, ...]


def domain_ranges(
    pattern: Pattern, shape: Sequence[int], step: int = 1
) -> List[range]:
    """Per-dimension loop ranges keeping the whole pattern inside the array.

    The validated building block shared by the scalar trace generator and
    the vectorized simulator: both must agree exactly on the iteration
    domain, so both derive it from this one function.
    """
    if step < 1:
        raise SimulationError(f"step must be positive, got {step}")
    dims = tuple(int(w) for w in shape)
    if len(dims) != pattern.ndim:
        raise SimulationError(
            f"shape {dims} does not match pattern dimensionality {pattern.ndim}"
        )
    lo, hi = pattern.mins, pattern.maxs
    ranges = []
    for j, w in enumerate(dims):
        start = -lo[j]
        stop = w - hi[j]
        if stop <= start:
            raise SimulationError(
                f"array of shape {dims} too small for pattern extent along dim {j}"
            )
        ranges.append(range(start, stop, step))
    return ranges


def iteration_domain(
    pattern: Pattern, shape: Sequence[int], step: int = 1
) -> Iterator[Element]:
    """Loop offsets ``s`` keeping the whole pattern inside the array.

    Mirrors the paper's Fig. 1(b) loop bounds (``i = 3 … 638`` etc. come
    from keeping the 5×5 window in a 640×480 frame).  ``step`` strides the
    domain for cheap sampling of huge arrays.
    """
    return itertools.product(*domain_ranges(pattern, shape, step))


def pattern_trace(
    pattern: Pattern, shape: Sequence[int], step: int = 1, limit: int | None = None
) -> List[TraceIteration]:
    """Materialize the trace of a full pattern sweep (optionally truncated)."""
    trace: List[TraceIteration] = []
    for count, offset in enumerate(iteration_domain(pattern, shape, step)):
        if limit is not None and count >= limit:
            break
        instance = pattern.translated(offset)
        trace.append(TraceIteration(offset=offset, reads=instance.offsets))
    if not trace:
        raise SimulationError("empty trace: domain produced no iterations")
    return trace


def trace_addresses(trace: Sequence[TraceIteration]) -> Iterator[Element]:
    """Flatten a trace to its raw address stream."""
    for iteration in trace:
        yield from iteration.reads
