"""Native (compiled) sweep simulation: the chunk loop with C inner kernels.

Structure mirrors :mod:`repro.sim.vectorized` — same load pass, same
row-major iteration chunking, same error semantics — but the per-chunk hot
work runs inside :mod:`repro.native._native`:

* Mappings with a registered **native spec**
  (:func:`repro.native.register_native_spec`: the stock Section 4.4 mapping
  and the cyclic/block baselines) take the *fused* path — ``sweep_chunk``
  does address translation, the uninitialized-read guard, the verify
  comparison, and bank-conflict accounting in a single C pass per read,
  never materializing the ``(count·m)`` element/bank/offset intermediates.
* Bulk-capable mappings *without* a spec (``PackedBankMapping``, any type
  registered only via :func:`repro.core.vectorized.register_bulk_kernel`)
  take the **hybrid** path — addresses come from the NumPy bulk kernel
  exactly as in the vectorized engine, and only the conflict-accounting
  segment (``conflict_stats``) moves to C.

Both paths produce the identical :class:`~repro.sim.vectorized.SweepStats`
— bit for bit, including error messages — which the dual-engine test matrix
and the ``repro.verify`` differential oracles enforce.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..core.mapping import BankMapping
from ..core.vectorized import bulk_addresses, chunk_budget
from ..errors import SimulationError
from ..native import native_spec_for, require
from ..obs.conflicts import ConflictTable
from ..obs.tracer import span
from .trace import domain_ranges
from .vectorized import (
    SweepStats,
    _iteration_block,
    _loaded_storage,
    _raise_corruption,
)

_STATUS_OK = 0
_STATUS_MISSING = 1
_STATUS_CORRUPT = 2
_STATUS_BAD_ADDRESS = 3


def _raise_missing(elements_row: "np.ndarray") -> None:
    raise SimulationError(
        "read of uninitialized element "
        f"{tuple(int(c) for c in elements_row)}"
    )


def simulate_sweep_native(
    mapping: BankMapping,
    array: "np.ndarray" | None = None,
    step: int = 1,
    limit: int | None = None,
    ports_per_bank: int = 1,
    verify: bool = True,
    attribution: Optional[ConflictTable] = None,
    chunk: int | None = None,
) -> SweepStats:
    """Run the full sweep measurement through the compiled kernels.

    The caller (``simulate_sweep``) owns engine resolution — including the
    :class:`~repro.errors.NativeUnavailableError` raised when the extension
    is absent — and shared parameter validation, exactly as for the other
    engines.
    """
    compiled = require()
    solution = mapping.solution
    pattern = solution.pattern
    ports = max(ports_per_bank, solution.bank_ports)
    n_banks = mapping.n_banks

    sizes = np.array(
        [mapping.bank_size(b) for b in range(n_banks)], dtype=np.int64
    )
    bases = np.concatenate(([0], np.cumsum(sizes)[:-1])).astype(np.int64)

    with span("sim.load_array"):
        if array is None:
            array = np.arange(
                int(np.prod(mapping.shape)), dtype=np.int64
            ).reshape(mapping.shape)
        storage, written = _loaded_storage(mapping, array, bases, sizes, chunk)
        occupancy = np.add.reduceat(written, bases) if n_banks else np.array([])
        flat_array = np.asarray(array).reshape(-1)

    with span("sim.trace_build"):
        ranges = domain_ranges(pattern, mapping.shape, step)
        lens = tuple(len(r) for r in ranges)
        total_iterations = 1
        for n in lens:
            total_iterations *= n
        if limit is not None:
            total_iterations = min(total_iterations, limit)
        if total_iterations < 1:
            raise SimulationError("empty trace: domain produced no iterations")
        deltas = np.ascontiguousarray(pattern.offsets, dtype=np.int64)
        m = pattern.size
        ndim = len(lens)
        shape_arr = np.ascontiguousarray(mapping.shape, dtype=np.int64)

    spec = native_spec_for(mapping)
    written_u8 = np.ascontiguousarray(written.view(np.uint8))
    flat_i64 = (
        np.ascontiguousarray(flat_array, dtype=np.int64) if verify else None
    )

    budget = chunk_budget(chunk)
    iter_chunk = max(1, budget // max(m, n_banks))

    max_cycles = -(-m // ports)
    hist_acc = np.zeros(max_cycles + 1, dtype=np.int64)
    conflict_totals = np.zeros(n_banks, dtype=np.int64)
    access_totals = np.zeros(n_banks, dtype=np.int64)
    total = 0
    worst = 0
    pattern_offsets = pattern.offsets

    need_attr = attribution is not None

    with span("sim.sweep_loop", iterations=total_iterations, verify=verify):
        for lo in range(0, total_iterations, iter_chunk):
            hi = min(lo + iter_chunk, total_iterations)
            block = _iteration_block(ranges, lens, lo, hi)
            count = hi - lo
            cycles_out = np.empty(count, dtype=np.int64) if need_attr else None

            if spec is not None:
                banks_out = (
                    np.empty(count * m, dtype=np.int64) if need_attr else None
                )
                alpha = spec.get("alpha")
                status, err_index, chunk_total, chunk_worst = (
                    compiled.sweep_chunk(
                        block,
                        deltas,
                        count,
                        m,
                        ndim,
                        spec["kind"],
                        spec.get("scheme", 0),
                        spec["n_banks"],
                        spec.get("inner", 1),
                        spec.get("window", 1),
                        spec.get("bank_ports", 1),
                        spec.get("inner_bank_size", 1),
                        spec.get("dim", 0),
                        spec.get("divisor", 1),
                        None
                        if alpha is None
                        else np.ascontiguousarray(alpha, dtype=np.int64),
                        np.ascontiguousarray(spec["bank_shape"], dtype=np.int64),
                        shape_arr,
                        bases,
                        storage,
                        written_u8,
                        flat_i64,
                        ports,
                        1 if verify else 0,
                        hist_acc,
                        conflict_totals,
                        access_totals,
                        cycles_out,
                        banks_out,
                    )
                )
                if status != _STATUS_OK:
                    # Reconstruct the exact NumPy-engine error for the
                    # offending read/iteration (cheap: one iteration).
                    if status == _STATUS_MISSING:
                        i, j = divmod(err_index, m)
                        _raise_missing(block[i] + deltas[j])
                    if status == _STATUS_CORRUPT:
                        i = err_index
                        elements = block[i][None, :] + deltas
                        banks_i, offsets_i = bulk_addresses(mapping, elements)
                        values = storage[bases[banks_i] + offsets_i].reshape(
                            1, m
                        )
                        linear = np.ravel_multi_index(
                            tuple(elements.T),
                            tuple(int(w) for w in shape_arr),
                        )
                        expected = (
                            flat_array[linear].astype(np.int64).reshape(1, m)
                        )
                        _raise_corruption(block[i : i + 1], values, expected, 0)
                    raise SimulationError(
                        "native sweep kernel computed an out-of-range "
                        f"address (chunk read index {err_index}); the "
                        "mapping's native spec disagrees with its allocation"
                    )
                if need_attr:
                    banks_matrix = banks_out.reshape(count, m)
            else:
                # Hybrid: NumPy bulk addresses (identical to the vectorized
                # engine), C conflict accounting.
                elements = (block[:, None, :] + deltas[None, :, :]).reshape(
                    -1, ndim
                )
                banks, offsets = bulk_addresses(mapping, elements)
                addresses = bases[banks] + offsets

                missing = ~written[addresses]
                if missing.any():
                    _raise_missing(elements[int(np.nonzero(missing)[0][0])])
                if verify:
                    values = storage[addresses].reshape(count, m)
                    linear = np.ravel_multi_index(
                        tuple(elements.T), tuple(int(w) for w in shape_arr)
                    )
                    expected = (
                        flat_array[linear].astype(np.int64).reshape(count, m)
                    )
                    mismatch = values != expected
                    if mismatch.any():
                        _raise_corruption(
                            block,
                            values,
                            expected,
                            int(np.nonzero(mismatch.any(axis=1))[0][0]),
                        )

                banks_c = np.ascontiguousarray(banks, dtype=np.int64)
                status, err_index, chunk_total, chunk_worst = (
                    compiled.conflict_stats(
                        banks_c,
                        count,
                        m,
                        n_banks,
                        ports,
                        hist_acc,
                        conflict_totals,
                        access_totals,
                        cycles_out,
                    )
                )
                if status != _STATUS_OK:  # pragma: no cover - defensive
                    raise SimulationError(
                        f"bulk kernel produced bank index out of range at "
                        f"chunk read index {err_index}"
                    )
                if need_attr:
                    banks_matrix = banks_c.reshape(count, m)

            total += int(chunk_total)
            worst = max(worst, int(chunk_worst))

            if need_attr:
                for i in range(count):
                    attribution.record_iteration(
                        pattern_offsets,
                        [int(b) for b in banks_matrix[i]],
                        int(cycles_out[i]),
                    )

    histogram: Dict[int, int] = {
        int(c): int(hist_acc[c])
        for c in np.nonzero(hist_acc)[0]
    }
    utilization = {
        b: (int(occupancy[b]) / int(sizes[b]) if int(sizes[b]) else 0.0)
        for b in range(n_banks)
    }
    return SweepStats(
        iterations=total_iterations,
        total_cycles=total,
        worst_cycles=worst,
        cycle_histogram=histogram,
        bank_utilization=utilization,
        ports_per_bank=ports,
        bank_conflicts={b: int(conflict_totals[b]) for b in range(n_banks)},
        bank_accesses={b: int(access_totals[b]) for b in range(n_banks)},
    )
