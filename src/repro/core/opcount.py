"""Instrumented arithmetic-operation counting.

Table 1 of the paper compares the two partitioning algorithms by the number
of arithmetic operations (addition, subtraction, multiplication, division,
modulo, ...) each performs while *finding* a solution.  To reproduce that
column we thread an explicit :class:`OpCounter` through both our algorithm
and the LTB baseline, and charge every scalar operation to it with the same
accounting rules:

* one count per scalar ``+``, ``-``, ``*``, ``//``, ``%``, ``abs``
* one count per scalar comparison (``<``, ``==``, ...) used by the
  algorithm's decision logic (``compare``)

The counter is optional everywhere: algorithm entry points accept
``ops=None`` and fall back to a shared no-op counter, so production use pays
no bookkeeping cost beyond a cheap attribute call.

Example
-------
>>> ops = OpCounter()
>>> ops.add(); ops.mul(3)
>>> ops.total
4
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator


@dataclass
class OpCounter:
    """Tallies arithmetic operations by category.

    Attributes
    ----------
    counts:
        Mapping from category name (``"add"``, ``"mul"``, ...) to the number
        of operations charged to that category.
    """

    counts: Dict[str, int] = field(default_factory=dict)

    def charge(self, category: str, n: int = 1) -> None:
        """Charge ``n`` operations to ``category``."""
        if n < 0:
            raise ValueError(f"cannot charge a negative op count: {n}")
        self.counts[category] = self.counts.get(category, 0) + n

    # Convenience wrappers for the categories used by the algorithms.
    def add(self, n: int = 1) -> None:
        self.charge("add", n)

    def sub(self, n: int = 1) -> None:
        self.charge("sub", n)

    def mul(self, n: int = 1) -> None:
        self.charge("mul", n)

    def div(self, n: int = 1) -> None:
        self.charge("div", n)

    def mod(self, n: int = 1) -> None:
        self.charge("mod", n)

    def abs_(self, n: int = 1) -> None:
        self.charge("abs", n)

    def compare(self, n: int = 1) -> None:
        self.charge("compare", n)

    @property
    def total(self) -> int:
        """Total operations across all categories."""
        return sum(self.counts.values())

    @property
    def arithmetic(self) -> int:
        """Operations excluding comparisons (the paper's headline metric)."""
        return self.total - self.counts.get("compare", 0)

    def reset(self) -> None:
        """Zero all counters."""
        self.counts.clear()

    def snapshot(self) -> Dict[str, int]:
        """Return a copy of the per-category counts."""
        return dict(self.counts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.counts.items()))
        return f"OpCounter(total={self.total}, {inner})"


class _NullOpCounter(OpCounter):
    """An :class:`OpCounter` that discards every charge.

    Used as the default so algorithm code can call ``ops.add()``
    unconditionally without ``if ops is not None`` noise.
    """

    def charge(self, category: str, n: int = 1) -> None:  # noqa: D102
        if n < 0:
            raise ValueError(f"cannot charge a negative op count: {n}")


#: Shared no-op counter used when callers do not request instrumentation.
NULL_COUNTER = _NullOpCounter()


def resolve(ops: OpCounter | None) -> OpCounter:
    """Return ``ops`` itself, or the shared null counter when ``ops is None``."""
    return NULL_COUNTER if ops is None else ops


@contextmanager
def counting() -> Iterator[OpCounter]:
    """Context manager yielding a fresh :class:`OpCounter`.

    >>> with counting() as ops:
    ...     ops.add(2)
    >>> ops.total
    2
    """
    yield OpCounter()
