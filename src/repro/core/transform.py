"""Linear bank-mapping transforms (paper Sections 4.1–4.2).

A bank mapping assigns element ``x`` to bank ``B(x) = (α · x) % N``.  The
paper's central observation is that a *good* ``α`` can be written down
directly from the pattern's bounding box, with no search:

.. math::

    D_j = \\max_i Δ^{(i)}_j − \\min_i Δ^{(i)}_j + 1, \\qquad
    α_j = \\prod_{k=j+1}^{n-1} D_k  \\quad (α_{n-1} = 1)

This is exactly the mixed-radix (positional number system) weighting: each
offset is read as a number whose digit in position ``j`` ranges over an
interval of width ``D_j``.  Theorem 1 then states that the transformed
values ``z^(i) = α · Δ^(i)`` are pairwise distinct — two different digit
strings encode different numbers.  This module implements the construction,
the transformed values, and an independent checker for the theorem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..errors import DimensionMismatchError
from .opcount import OpCounter, resolve
from .pattern import Pattern


@dataclass(frozen=True)
class LinearTransform:
    """A transform vector ``α`` together with the pattern extents it came from.

    Attributes
    ----------
    alpha:
        The weight vector ``(α_0, …, α_{n-1})``.
    extents:
        The per-dimension widths ``D_j`` used to derive it (empty for
        transforms built directly from a vector, e.g. LTB candidates).
    """

    alpha: Tuple[int, ...]
    extents: Tuple[int, ...] = ()

    @property
    def ndim(self) -> int:
        return len(self.alpha)

    def apply(self, vector: Sequence[int], ops: OpCounter | None = None) -> int:
        """Compute the dot product ``α · vector``.

        Charges ``n`` multiplications and ``n−1`` additions to ``ops``.
        """
        if len(vector) != self.ndim:
            raise DimensionMismatchError(
                f"vector has {len(vector)} components, transform expects {self.ndim}"
            )
        counter = resolve(ops)
        counter.mul(self.ndim)
        if self.ndim > 1:
            counter.add(self.ndim - 1)
        return sum(a * int(c) for a, c in zip(self.alpha, vector))

    def transform_pattern(
        self, pattern: Pattern, ops: OpCounter | None = None
    ) -> List[int]:
        """The transformed values ``z^(i) = α · Δ^(i)`` in canonical order."""
        return [self.apply(delta, ops) for delta in pattern.offsets]

    def bank_of(self, vector: Sequence[int], n_banks: int, ops: OpCounter | None = None) -> int:
        """Bank index ``B(x) = (α · x) % N``."""
        if n_banks <= 0:
            raise ValueError(f"bank count must be positive, got {n_banks}")
        counter = resolve(ops)
        value = self.apply(vector, ops)
        counter.mod()
        return value % n_banks

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LinearTransform(alpha={self.alpha})"


def derive_alpha(pattern: Pattern, ops: OpCounter | None = None) -> LinearTransform:
    """Construct the paper's ``α`` from a pattern (Section 4.1).

    The construction costs a handful of scalar operations (finding the
    per-dimension min/max and a suffix product), independent of the array
    size and of any bank count — this constant-time step is what replaces
    LTB's exhaustive search over ``N^n`` candidate vectors.

    Parameters
    ----------
    pattern:
        The access pattern ``P``.
    ops:
        Optional instrumentation counter.  Charged with the comparisons of
        the min/max scan, the subtractions/additions of ``D_j``, and the
        multiplications of the suffix product.

    Returns
    -------
    LinearTransform
        With ``alpha[j] = D_{j+1} · D_{j+2} ⋯ D_{n-1}`` and ``alpha[-1] = 1``.

    Examples
    --------
    >>> from repro.patterns import log_pattern
    >>> derive_alpha(log_pattern()).alpha
    (5, 1)
    """
    counter = resolve(ops)
    n = pattern.ndim
    m = pattern.size
    # Min/max scan: each of the m offsets contributes two comparisons per
    # dimension (against the running min and max).
    counter.compare(2 * m * n)
    mins = pattern.mins
    maxs = pattern.maxs
    # D_j = max - min + 1  →  one subtraction and one addition per dimension.
    counter.sub(n)
    counter.add(n)
    extents = tuple(maxs[j] - mins[j] + 1 for j in range(n))
    # Suffix product: n-1 multiplications.
    alpha = [1] * n
    for j in range(n - 2, -1, -1):
        counter.mul()
        alpha[j] = alpha[j + 1] * extents[j + 1]
    return LinearTransform(alpha=tuple(alpha), extents=extents)


def transformed_values(
    pattern: Pattern, ops: OpCounter | None = None
) -> Tuple[LinearTransform, List[int]]:
    """Convenience: derive ``α`` and return it with ``z^(i) = α · Δ^(i)``."""
    transform = derive_alpha(pattern, ops)
    return transform, transform.transform_pattern(pattern, ops)


def check_theorem1(pattern: Pattern, transform: LinearTransform | None = None) -> bool:
    """Independently verify Theorem 1: the ``z^(i)`` are pairwise distinct.

    With ``transform=None`` the paper's ``α`` is derived first; passing an
    explicit transform lets tests probe vectors that *violate* the theorem
    (e.g. ``α = (1, 1)`` on a square pattern).
    """
    if transform is None:
        transform = derive_alpha(pattern)
    values = transform.transform_pattern(pattern)
    return len(set(values)) == len(values)


def spread(values: Sequence[int]) -> int:
    """``max(values) − min(values)``: the paper's ``M`` upper bound on bank count.

    Any ``N > spread(z)`` trivially separates the pattern because all
    residues ``z % N`` stay distinct.
    """
    if not values:
        raise ValueError("spread of an empty sequence is undefined")
    return max(values) - min(values)
