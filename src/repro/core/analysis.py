"""Analytical tooling: bounds, complexity prediction, optimality gaps.

The paper trades a provably conflict-free, constant-time construction
against *optimality*: its ``N_f`` can exceed the minimum bank count any
linear transform could achieve (Table 1 pays +1 bank on Median and +3 on
Gaussian).  This module quantifies that trade:

* :func:`nf_upper_bound` — the paper's Section 4.2 bound: any
  ``N > max z − min z`` works, so ``N_f ≤ max(m, M + 1)``.
* :func:`exhaustive_min_banks` — ground truth by full enumeration (the
  LTB search), for gap measurement on small patterns.
* :func:`optimality_gap` — ``N_f − N_min`` for one pattern.
* :func:`gap_survey` — gap distribution over seeded random patterns: how
  often, and by how much, does the constant-time construction pay?
* :func:`predict_ops_ours` / :func:`predict_ops_ltb` — closed-form op
  predictions from the complexity analysis (Section 4.3.1), checked
  against the instrumented counts in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..baselines.ltb import ltb_partition
from ..patterns.generators import random_pattern
from .opcount import OpCounter
from .partition import minimize_nf, partition
from .pattern import Pattern
from .transform import derive_alpha, spread


def nf_upper_bound(pattern: Pattern) -> int:
    """Section 4.2's feasibility bound: ``N_f ≤ max(m, M + 1)``.

    ``M = max z − min z``: any modulus above the spread keeps all residues
    distinct, so Algorithm 1 terminates at or before it.
    """
    transform = derive_alpha(pattern)
    z = transform.transform_pattern(pattern)
    return max(pattern.size, spread(z) + 1)


def bounding_box_bound(pattern: Pattern) -> int:
    """Looser closed-form bound: the bounding-box volume ``∏ D_j``.

    The mixed-radix values ``z`` fit in ``[0, ∏D_j)`` after normalization,
    so ``M + 1 ≤ ∏ D_j`` and ``N_f ≤ max(m, ∏ D_j)``.
    """
    return max(pattern.size, pattern.bounding_box_volume)


def exhaustive_min_banks(pattern: Pattern, limit: int | None = None) -> int:
    """Minimum banks achievable by *any* linear transform (ground truth).

    Runs the full LTB enumeration; exponential in the dimension — intended
    for small patterns in analysis and tests.
    """
    ceiling = limit if limit is not None else nf_upper_bound(pattern)
    return ltb_partition(pattern, n_max=ceiling).solution.n_banks


def optimality_gap(pattern: Pattern) -> int:
    """``N_f(ours) − N_min(any linear transform)`` for one pattern."""
    n_f, _, _ = minimize_nf(pattern)
    return n_f - exhaustive_min_banks(pattern, limit=n_f)


@dataclass(frozen=True)
class GapSurvey:
    """Gap distribution over a pattern population.

    Attributes
    ----------
    gaps:
        Per-pattern ``N_f − N_min``.
    histogram:
        gap value → count.
    """

    gaps: Tuple[int, ...]
    histogram: Dict[int, int]

    @property
    def optimal_fraction(self) -> float:
        """Share of patterns where the constant-time α is already optimal."""
        return self.histogram.get(0, 0) / len(self.gaps)

    @property
    def mean_gap(self) -> float:
        return sum(self.gaps) / len(self.gaps)

    @property
    def max_gap(self) -> int:
        return max(self.gaps)


def gap_survey(
    count: int = 50,
    size: int = 7,
    box: Sequence[int] = (5, 5),
    seed: int = 0,
) -> GapSurvey:
    """Measure the optimality gap over ``count`` seeded random patterns."""
    if count < 1:
        raise ValueError(f"count must be positive, got {count}")
    gaps: List[int] = []
    for index in range(count):
        pattern = random_pattern(size, box, seed=seed + index)
        gaps.append(optimality_gap(pattern))
    histogram: Dict[int, int] = {}
    for gap in gaps:
        histogram[gap] = histogram.get(gap, 0) + 1
    return GapSurvey(gaps=tuple(gaps), histogram=histogram)


def predict_ops_ours(pattern: Pattern) -> int:
    """Closed-form estimate of our instrumented arithmetic op count.

    From the implementation's accounting: α derivation
    (``2n`` add/sub + ``n−1`` mul), transforms (``m·(2n−1)``), pairwise
    differences (``m(m−1)/2``), plus the Algorithm 1 search loop (a few
    ops per candidate step; estimated from the measured C).  Exactness is
    not the point — tests assert it lands within a small factor of the
    instrumented truth, which is what makes the complexity claim ``O(m²)``
    auditable.
    """
    m, n = pattern.size, pattern.ndim
    alpha_cost = 2 * n + (n - 1)
    transform_cost = m * (2 * n - 1)
    pair_cost = m * (m - 1) // 2
    return alpha_cost + transform_cost + pair_cost


def predict_ops_ltb(pattern: Pattern, vectors_tried: int) -> int:
    """Closed-form estimate of LTB's arithmetic ops given its search length.

    Each candidate vector transforms all ``m`` elements at ``2n−1``
    arithmetic ops plus a modulo each: ``vectors · m · 2n``.
    """
    m, n = pattern.size, pattern.ndim
    return vectors_tried * m * 2 * n


def measured_vs_predicted(pattern: Pattern) -> Tuple[int, int]:
    """(measured, predicted) arithmetic ops for our algorithm."""
    ops = OpCounter()
    partition(pattern, ops=ops)
    return ops.arithmetic, predict_ops_ours(pattern)
