"""Canonical solve cache: never re-solve a translated copy of a pattern.

Sweeps over resolutions, unroll factors, or bank budgets call the solver
over and over with patterns that differ only by translation — and Theorem
1's proof removes the common ``α·s`` term, so the *solution* (transform,
bank count, ``δP``, scheme) is identical for every translate.  This module
memoizes :func:`repro.core.solver.solve` and
:func:`repro.core.partition.partition` on the translation-normalized
pattern plus every argument that can change the answer:

* ``solve`` key — normalized offsets, the array's innermost extent (the
  only shape component the solution can depend on, via
  ``Objective.STORAGE``'s divisor set), ``n_max``, the objective, and
  ``delta_max``.
* ``partition`` key — normalized offsets, ``n_max``, ``same_size``.

Only the :class:`~repro.core.partition.PartitionSolution` is stored; a hit
re-attaches the caller's own pattern (``dataclasses.replace``) and the
caller rebuilds any shape-specific mapping/overhead, which is cheap
arithmetic.  Calls carrying an :class:`~repro.core.opcount.OpCounter`
bypass the cache entirely — an op count answered from memory would falsify
the paper's hardware-cost comparison.

Hits and misses are mirrored into the :mod:`repro.obs` metrics registry as
``solve.cache.hits`` / ``solve.cache.misses`` (visible via
``--emit-metrics``).  Escape hatches: per call ``solve(..., cache=False)``
or globally ``REPRO_SOLVE_CACHE=0``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import threading
from collections import OrderedDict
from typing import Any, Hashable, Optional, Tuple

from ..obs.metrics import registry as obs_registry
from .partition import PartitionSolution
from .pattern import Pattern

_FALSY = ("", "0", "false", "no", "off")

#: Default number of cached solutions; old entries evict LRU-first.
DEFAULT_MAXSIZE = 1024


def enabled() -> bool:
    """Whether the process-wide cache is on (``REPRO_SOLVE_CACHE``, default on).

    Read from the environment on every call so tests and CLI wrappers can
    flip it without touching module state.
    """
    return os.environ.get("REPRO_SOLVE_CACHE", "1").strip().lower() not in _FALSY


class SolveCache:
    """A small thread-safe LRU of canonical partitioning solutions."""

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self._entries: "OrderedDict[Hashable, PartitionSolution]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable, pattern: Pattern) -> Optional[PartitionSolution]:
        """Look up a solution and re-attach the caller's pattern on a hit."""
        with self._lock:
            solution = self._entries.get(key)
            if solution is None:
                self.misses += 1
                obs_registry().counter("solve.cache.misses").inc()
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            obs_registry().counter("solve.cache.hits").inc()
        if solution.pattern == pattern:
            return solution
        return dataclasses.replace(solution, pattern=pattern)

    def put(self, key: Hashable, solution: PartitionSolution) -> None:
        with self._lock:
            self._entries[key] = solution
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0


_cache = SolveCache()


def cache() -> SolveCache:
    """The process-wide cache instance."""
    return _cache


def clear() -> None:
    """Drop all cached solutions and reset the local hit/miss tallies."""
    _cache.clear()


def _normalized_offsets(pattern: Pattern) -> Tuple[Tuple[int, ...], ...]:
    return pattern.normalized().offsets


def solve_key(
    pattern: Pattern,
    shape: Optional[Tuple[int, ...]],
    n_max: Optional[int],
    objective_value: str,
    delta_max: int,
) -> Hashable:
    """Cache key for :func:`repro.core.solver.solve`.

    Only the innermost extent enters the key: it is the single shape
    component that can steer the solution (``Objective.STORAGE`` candidates
    are divisors of ``w[-1]``); everything else about the shape only
    affects the mapping, which is rebuilt per call.
    """
    tail = int(shape[-1]) if shape else None
    return (
        "solve",
        _normalized_offsets(pattern),
        tail,
        n_max,
        objective_value,
        delta_max,
    )


def partition_key(
    pattern: Pattern, n_max: Optional[int], same_size: bool
) -> Hashable:
    """Cache key for :func:`repro.core.partition.partition`."""
    return ("partition", _normalized_offsets(pattern), n_max, bool(same_size))


def _canonical(value: Any) -> Any:
    """Reduce a cache key to JSON-expressible primitives, recursively.

    Tuples and lists collapse to lists (the distinction is an in-memory
    artifact, not part of the key's identity); dicts keep string keys and
    canonicalize their values (``sort_keys`` in the digest encoding makes
    insertion order irrelevant); everything else must already be a JSON
    scalar.  Rejecting unknown types loudly keeps the digest honest — a
    silent ``repr`` fallback would make unequal keys collide or equal keys
    diverge across processes.
    """
    if isinstance(value, (tuple, list)):
        return [_canonical(item) for item in value]
    if isinstance(value, dict):
        for name in value:
            if not isinstance(name, str):
                raise TypeError(
                    f"cache key dicts must use string keys, got {name!r}"
                )
        return {name: _canonical(item) for name, item in value.items()}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cache keys may only contain JSON scalars, got {value!r}")


def stable_digest(key: Hashable) -> str:
    """Content address of a cache key: a hex SHA-256, stable across processes.

    :func:`solve_key` / :func:`partition_key` tuples hash differently in
    every interpreter run (``PYTHONHASHSEED``), so anything that must agree
    on an identity *across* process borders — the on-disk
    :class:`~repro.serve.store.SolutionStore`, the server-side request
    coalescer, worker pools — goes through this canonical JSON encoding
    instead.  Equal keys always produce equal digests; translated copies of
    a pattern share a digest because the key already normalizes translation.
    """
    payload = json.dumps(
        _canonical(key), sort_keys=True, separators=(",", ":"), allow_nan=False
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
