"""Canonical solve cache: never re-solve a symmetric copy of a pattern.

Sweeps over resolutions, unroll factors, or bank budgets call the solver
over and over with patterns that differ only by translation — and Theorem
1's proof removes the common ``α·s`` term, so the *solution* (transform,
bank count, ``δP``, scheme) is identical for every translate.  This module
memoizes :func:`repro.core.solver.solve` and
:func:`repro.core.partition.partition` on the translation-normalized
pattern plus every argument that can change the answer:

* ``solve`` key — normalized offsets, the array's innermost extent (the
  only shape component the solution can depend on, via
  ``Objective.STORAGE``'s divisor set), ``n_max``, the objective, and
  ``delta_max``.
* ``partition`` key — normalized offsets, ``n_max``, ``same_size``.

Beyond translation, :func:`canonicalize` quotients the richer symmetry
group *translation × per-axis reflection × leading-axis permutation*: each
pattern maps to the lexicographically smallest member of its orbit, the
solver runs on that canonical representative, and the resulting solution
is carried back into the caller's frame through the recorded
:class:`SymmetryOp` (``α_caller[perm[k]] = ±α_canon[k]``).  Reflections
negate an ``α`` component, which only re-signs pairwise ``z`` differences;
permutations relabel axes wholesale — both leave every conflict count,
``N_f`` verdict, and ``δ`` exactly invariant.  Permutations are restricted
to those fixing the innermost axis (``perm[-1] == ndim - 1``): the §4.4
intra-bank layout ``F`` keeps only the *last* coordinate compressed and is
bijective precisely because ``|α[-1]| = 1``, so moving another axis
innermost would hand ``F`` an ``α`` tail > 1 and collide addresses.  (This
also keeps the ``w[-1]`` component of :func:`solve_key` consistent without
re-keying: ``canonical_key`` still carries ``shape[perm[-1]]``, which the
restriction pins to ``shape[-1]``.)

Only the :class:`~repro.core.partition.PartitionSolution` is stored; a hit
re-attaches the caller's own pattern (``dataclasses.replace``) and the
caller rebuilds any shape-specific mapping/overhead, which is cheap
arithmetic.  Calls carrying an :class:`~repro.core.opcount.OpCounter`
bypass the cache entirely — an op count answered from memory would falsify
the paper's hardware-cost comparison.

Hits and misses are mirrored into the :mod:`repro.obs` metrics registry as
``solve.cache.hits`` / ``solve.cache.misses``; LRU drops count into
``solve.cache.evictions`` (all visible via ``--emit-metrics``).  Knobs:
per call ``solve(..., cache=False)``, globally ``REPRO_SOLVE_CACHE=0``,
capacity via ``REPRO_SOLVE_CACHE_SIZE`` (must be >= 1), and symmetry
canonicalization via ``REPRO_SOLVE_CANON=translation`` to fall back to the
translation-only quotient.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import os
import threading
from collections import OrderedDict
from typing import Any, Hashable, Optional, Sequence, Tuple

from ..obs.metrics import registry as obs_registry
from .partition import PartitionSolution
from .pattern import Pattern
from .transform import LinearTransform

_FALSY = ("", "0", "false", "no", "off")

#: Default number of cached solutions; old entries evict LRU-first.
DEFAULT_MAXSIZE = 1024

#: Symmetry canonicalization beyond this many dimensions would enumerate
#: ``(n-1)! · 2^n`` candidates per pattern; past 4-D the quotient falls
#: back to translation-only rather than pay a factorial blowup.
MAX_SYMMETRY_NDIM = 4

#: ``REPRO_SOLVE_CANON`` values selecting the translation-only quotient.
_TRANSLATION_MODES = ("translation", "none", "off", "0")


def enabled() -> bool:
    """Whether the process-wide cache is on (``REPRO_SOLVE_CACHE``, default on).

    Read from the environment on every call so tests and CLI wrappers can
    flip it without touching module state.
    """
    return os.environ.get("REPRO_SOLVE_CACHE", "1").strip().lower() not in _FALSY


def canon_mode() -> str:
    """The active canonicalization mode: ``"symmetry"`` or ``"translation"``.

    ``REPRO_SOLVE_CANON`` selects it (default ``symmetry``); read from the
    environment per call, like :func:`enabled`, so benches and tests can
    flip modes without touching module state.
    """
    raw = os.environ.get("REPRO_SOLVE_CANON", "symmetry").strip().lower()
    if raw in _TRANSLATION_MODES:
        return "translation"
    if raw in ("symmetry", "full", "1", "on"):
        return "symmetry"
    raise ValueError(
        f"REPRO_SOLVE_CANON must be 'symmetry' or 'translation', got {raw!r}"
    )


def configured_maxsize() -> int:
    """Cache capacity from ``REPRO_SOLVE_CACHE_SIZE`` (default 1024).

    Raises :class:`ValueError` for non-integer or < 1 values — a silently
    clamped capacity would make eviction behaviour impossible to reason
    about in tests.
    """
    raw = os.environ.get("REPRO_SOLVE_CACHE_SIZE", "").strip()
    if not raw:
        return DEFAULT_MAXSIZE
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_SOLVE_CACHE_SIZE must be an integer >= 1, got {raw!r}"
        ) from None
    if value < 1:
        raise ValueError(
            f"REPRO_SOLVE_CACHE_SIZE must be an integer >= 1, got {value}"
        )
    return value


class SolveCache:
    """A small thread-safe LRU of canonical partitioning solutions."""

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self._entries: "OrderedDict[Hashable, PartitionSolution]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable, pattern: Pattern) -> Optional[PartitionSolution]:
        """Look up a solution and re-attach the caller's pattern on a hit."""
        with self._lock:
            solution = self._entries.get(key)
            if solution is None:
                self.misses += 1
                obs_registry().counter("solve.cache.misses").inc()
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            obs_registry().counter("solve.cache.hits").inc()
        if (
            solution.pattern.offsets == pattern.offsets
            and solution.pattern.name == pattern.name
        ):
            return solution
        # Re-attach the caller's own pattern (offsets AND name): a warm hit
        # must be indistinguishable from a cold solve of the caller's input.
        return dataclasses.replace(solution, pattern=pattern)

    def put(self, key: Hashable, solution: PartitionSolution) -> None:
        evicted = 0
        with self._lock:
            self._entries[key] = solution
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                evicted += 1
            self.evictions += evicted
        if evicted:
            obs_registry().counter("solve.cache.evictions").inc(evicted)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0


_cache: Optional[SolveCache] = None
_cache_lock = threading.Lock()


def cache() -> SolveCache:
    """The process-wide cache instance (sized by ``REPRO_SOLVE_CACHE_SIZE``)."""
    global _cache
    if _cache is None:
        with _cache_lock:
            if _cache is None:
                _cache = SolveCache(maxsize=configured_maxsize())
    return _cache


def clear() -> None:
    """Drop all cached solutions and reset the local hit/miss tallies."""
    if _cache is not None:
        _cache.clear()


def reset() -> None:
    """Discard the process-wide instance so the next use re-reads the env.

    Tests that change ``REPRO_SOLVE_CACHE_SIZE`` call this to apply the new
    capacity; the normal runtime never needs it.
    """
    global _cache
    with _cache_lock:
        _cache = None


def _normalized_offsets(pattern: Pattern) -> Tuple[Tuple[int, ...], ...]:
    return pattern.normalized().offsets


def solve_key(
    pattern: Pattern,
    shape: Optional[Tuple[int, ...]],
    n_max: Optional[int],
    objective_value: str,
    delta_max: int,
) -> Hashable:
    """Cache key for :func:`repro.core.solver.solve`.

    Only the innermost extent enters the key: it is the single shape
    component that can steer the solution (``Objective.STORAGE`` candidates
    are divisors of ``w[-1]``); everything else about the shape only
    affects the mapping, which is rebuilt per call.
    """
    tail = int(shape[-1]) if shape else None
    return (
        "solve",
        _normalized_offsets(pattern),
        tail,
        n_max,
        objective_value,
        delta_max,
    )


def partition_key(
    pattern: Pattern, n_max: Optional[int], same_size: bool
) -> Hashable:
    """Cache key for :func:`repro.core.partition.partition`."""
    return ("partition", _normalized_offsets(pattern), n_max, bool(same_size))


# -- symmetry quotient ------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class SymmetryOp:
    """The symmetry relating a caller's pattern to its canonical form.

    Canonical coordinate ``k`` is built from caller coordinate ``perm[k]``,
    negated when ``flips[k]`` (translation is implicit: canonical patterns
    are origin-normalized).  The inverse direction — the one a cache hit
    needs — maps a canonical-frame solution into the caller's frame by
    re-signing and scattering ``α``: ``α_caller[perm[k]] = ε_k · α_canon[k]``
    with ``ε_k = -1`` when ``flips[k]``.  Then for every caller offset
    ``x``, ``α_caller · x = α_canon · y + const`` where ``y`` is the
    canonical image of ``x`` — so bank residues shift by a constant,
    conflict counts and ``δ`` are untouched, and ``|α_caller[-1]| = 1``
    stays true (permutations never move the innermost axis).
    """

    perm: Tuple[int, ...]
    flips: Tuple[bool, ...]

    @property
    def is_identity(self) -> bool:
        """True when the op is translation-only (no reflection/permutation)."""
        return self.perm == tuple(range(len(self.perm))) and not any(self.flips)

    def shape_to_canonical(
        self, shape: Optional[Tuple[int, ...]]
    ) -> Optional[Tuple[int, ...]]:
        """Permute an array shape into the canonical frame.

        Reflections don't change extents; only the axis order moves.  The
        innermost extent — the single component :func:`solve_key` depends
        on — is pinned in place by the ``perm[-1] == ndim - 1`` restriction.
        """
        if shape is None:
            return None
        if len(shape) != len(self.perm):
            return tuple(shape)
        return tuple(shape[axis] for axis in self.perm)

    def solution_to_caller(
        self, solution: PartitionSolution, pattern: Pattern
    ) -> PartitionSolution:
        """Express a canonical-frame solution in the caller's frame.

        ``pattern`` is the caller's own pattern; the transform's ``α`` (and
        extents) are scattered through ``perm`` and re-signed by ``flips``.
        Identity ops re-attach the pattern and keep the transform object —
        byte-identical to the translation-only cache's hit path.
        """
        if self.is_identity:
            if (
                solution.pattern.offsets == pattern.offsets
                and solution.pattern.name == pattern.name
            ):
                return solution
            return dataclasses.replace(solution, pattern=pattern)
        alpha_c = solution.transform.alpha
        extents_c = solution.transform.extents
        n = len(self.perm)
        alpha_p = [0] * n
        extents_p = [0] * n
        for k in range(n):
            sign = -1 if self.flips[k] else 1
            alpha_p[self.perm[k]] = sign * alpha_c[k]
            extents_p[self.perm[k]] = (
                extents_c[k] if len(extents_c) == n else 0
            )
        transform = LinearTransform(
            alpha=tuple(alpha_p),
            extents=tuple(extents_p) if len(extents_c) == n else extents_c,
        )
        return dataclasses.replace(solution, pattern=pattern, transform=transform)


def _identity_op(ndim: int) -> SymmetryOp:
    return SymmetryOp(perm=tuple(range(ndim)), flips=(False,) * ndim)


def _leading_axis_permutations(ndim: int) -> Tuple[Tuple[int, ...], ...]:
    """All axis orders keeping the innermost axis innermost."""
    return tuple(
        head + (ndim - 1,)
        for head in itertools.permutations(range(ndim - 1))
    )


def _normalize_raw(
    offsets: Sequence[Tuple[int, ...]]
) -> Tuple[Tuple[int, ...], ...]:
    ndim = len(offsets[0])
    lo = [min(v[j] for v in offsets) for j in range(ndim)]
    return tuple(
        sorted(tuple(c - lo[j] for j, c in enumerate(v)) for v in offsets)
    )


#: Memo of ``(offsets, mode) -> (canonical offsets, perm, flips)``; bounded
#: so pathological traffic can't grow it without bound.
_CANON_MEMO_MAX = 4096
_canon_memo: "OrderedDict[Hashable, Tuple[Tuple[Tuple[int, ...], ...], Tuple[int, ...], Tuple[bool, ...]]]" = (
    OrderedDict()
)
_canon_lock = threading.Lock()


def canonicalize(
    pattern: Pattern, mode: Optional[str] = None
) -> Tuple[Pattern, SymmetryOp]:
    """Map a pattern to its canonical orbit representative.

    Returns ``(canonical_pattern, op)`` where ``op`` reconstructs the
    caller's frame from the canonical one
    (:meth:`SymmetryOp.solution_to_caller`).  The representative is the
    lexicographically smallest normalized offset tuple over the group
    *translation × per-axis reflection × leading-axis permutation*; ties
    between group elements that produce the same representative (pattern
    self-symmetries) break deterministically on enumeration order, so every
    process picks the same op for the same pattern.

    ``mode`` overrides ``REPRO_SOLVE_CANON`` (``"symmetry"`` /
    ``"translation"``); patterns beyond :data:`MAX_SYMMETRY_NDIM`
    dimensions always use the translation-only quotient.
    """
    if mode is None:
        mode = canon_mode()
    ndim = pattern.ndim
    if mode == "translation" or ndim > MAX_SYMMETRY_NDIM:
        return pattern.normalized(), _identity_op(ndim)

    offsets = pattern.offsets
    memo_key = (offsets, mode)
    with _canon_lock:
        cached = _canon_memo.get(memo_key)
        if cached is not None:
            _canon_memo.move_to_end(memo_key)
    if cached is None:
        best: Optional[Tuple[Tuple[int, ...], ...]] = None
        best_perm: Tuple[int, ...] = tuple(range(ndim))
        best_flips: Tuple[bool, ...] = (False,) * ndim
        for perm in _leading_axis_permutations(ndim):
            projected = [tuple(v[axis] for axis in perm) for v in offsets]
            for bits in range(1 << ndim):
                flips = tuple(bool(bits >> k & 1) for k in range(ndim))
                candidate = _normalize_raw(
                    [
                        tuple(-c if flips[k] else c for k, c in enumerate(v))
                        for v in projected
                    ]
                )
                if best is None or candidate < best:
                    best, best_perm, best_flips = candidate, perm, flips
        assert best is not None
        cached = (best, best_perm, best_flips)
        with _canon_lock:
            _canon_memo[memo_key] = cached
            while len(_canon_memo) > _CANON_MEMO_MAX:
                _canon_memo.popitem(last=False)

    canon_offsets, perm, flips = cached
    canon_pattern = Pattern(canon_offsets, name=pattern.name)
    return canon_pattern, SymmetryOp(perm=perm, flips=flips)


def canonical_solve_key(
    canonical_offsets: Tuple[Tuple[int, ...], ...],
    tail: Optional[int],
    n_max: Optional[int],
    objective_value: str,
    delta_max: int,
) -> Hashable:
    """Assemble the symmetry-quotient solve key from precomputed parts."""
    return (
        "solve/canon",
        canonical_offsets,
        tail,
        n_max,
        objective_value,
        delta_max,
    )


def canonical_key(
    pattern: Pattern,
    shape: Optional[Tuple[int, ...]],
    n_max: Optional[int],
    objective_value: str,
    delta_max: int,
    mode: Optional[str] = None,
) -> Hashable:
    """Symmetry-quotient cache key: equal across a pattern's whole orbit.

    The structural twin of :func:`solve_key` with the pattern replaced by
    its canonical representative and the shape tail carried through the
    op's axis permutation (``shape[perm[-1]]`` — the permuted ``w[-1]``,
    which the leading-axis restriction keeps equal to ``shape[-1]``).
    :func:`solve_key` itself is untouched: its digests are pinned by the
    serve store's on-disk artifacts and the golden-digest tests.
    """
    canon, op = canonicalize(pattern, mode=mode)
    tail = int(shape[op.perm[-1]]) if shape else None
    return canonical_solve_key(
        canon.offsets, tail, n_max, objective_value, delta_max
    )


def _canonical(value: Any) -> Any:
    """Reduce a cache key to JSON-expressible primitives, recursively.

    Tuples and lists collapse to lists (the distinction is an in-memory
    artifact, not part of the key's identity); dicts keep string keys and
    canonicalize their values (``sort_keys`` in the digest encoding makes
    insertion order irrelevant); everything else must already be a JSON
    scalar.  Rejecting unknown types loudly keeps the digest honest — a
    silent ``repr`` fallback would make unequal keys collide or equal keys
    diverge across processes.
    """
    if isinstance(value, (tuple, list)):
        return [_canonical(item) for item in value]
    if isinstance(value, dict):
        for name in value:
            if not isinstance(name, str):
                raise TypeError(
                    f"cache key dicts must use string keys, got {name!r}"
                )
        return {name: _canonical(item) for name, item in value.items()}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cache keys may only contain JSON scalars, got {value!r}")


def stable_digest(key: Hashable) -> str:
    """Content address of a cache key: a hex SHA-256, stable across processes.

    :func:`solve_key` / :func:`partition_key` tuples hash differently in
    every interpreter run (``PYTHONHASHSEED``), so anything that must agree
    on an identity *across* process borders — the on-disk
    :class:`~repro.serve.store.SolutionStore`, the server-side request
    coalescer, worker pools — goes through this canonical JSON encoding
    instead.  Equal keys always produce equal digests; translated copies of
    a pattern share a digest because the key already normalizes translation.
    """
    payload = json.dumps(
        _canonical(key), sort_keys=True, separators=(",", ":"), allow_nan=False
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
