"""Bank-count selection (paper Sections 4.2–4.3).

Given the transformed pattern values ``z^(i) = α · Δ^(i)``, a bank count
``N`` is conflict-free iff all residues ``z^(i) % N`` are distinct — which
holds iff no pairwise difference ``|z^(i) − z^(j)|`` is a (nonzero)
multiple of ``N``.  This module implements:

* :func:`minimize_nf` — the paper's Algorithm 1: smallest conflict-free
  ``N_f ≥ m`` with no bank limit.
* :func:`fast_nc` — the two-level-modulo scheme for a bank limit
  ``N_max < N_f`` (Section 4.3.2, "fast approach"): access the pattern in
  ``F = ⌈N_f / N_max⌉`` rounds through ``N_c = ⌈N_f / F⌉`` banks.
* :func:`same_size_sweep` / :func:`same_size_nc` — the alternative scheme
  that keeps all banks the same size: evaluate ``δP|N`` for every
  ``N ≤ N_max`` and pick the minimum (the Section 5.1 case-study table).
* :class:`PartitionSolution` — the result record shared by our algorithm
  and the baselines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import PartitioningError
from ..obs.tracer import span
from .opcount import OpCounter, resolve
from .pattern import Pattern
from .transform import LinearTransform, derive_alpha

#: Engine names accepted by :func:`same_size_sweep`.
SWEEP_ENGINES = ("auto", "scalar", "vectorized")


@dataclass(frozen=True)
class PartitionSolution:
    """A complete memory-partitioning solution.

    Attributes
    ----------
    pattern:
        The access pattern the solution was built for.
    transform:
        The linear transform whose dot product feeds the bank hash.
    n_banks:
        Number of physical banks ``N`` (the outermost modulo).
    n_unconstrained:
        The conflict-free bank count ``N_f`` found before applying any
        ``n_max`` limit.  Equal to ``n_banks`` when no limit was hit.
    delta_ii:
        Additional initiation interval ``δP``: 0 means the whole pattern is
        served in one cycle; ``k`` means ``k+1`` accesses to the busiest bank.
    scheme:
        ``"direct"`` (``B = (α·x) % N``), ``"two-level"``
        (``B = ((α·x) % N_f) % N_c``), ``"wide"`` (``B = ((α·x) % N_f) // W``
        for bandwidth-``W`` banks), or a baseline-specific label.
    algorithm:
        Producer label, e.g. ``"ours"`` or ``"ltb"``.
    bank_ports:
        Accesses each physical bank serves per cycle (the paper's bank
        bandwidth ``B``; 1 except for ``"wide"`` solutions).
    """

    pattern: Pattern
    transform: LinearTransform
    n_banks: int
    n_unconstrained: int
    delta_ii: int = 0
    scheme: str = "direct"
    algorithm: str = "ours"
    bank_ports: int = 1

    def bank_of(self, vector: Sequence[int], ops: OpCounter | None = None) -> int:
        """Bank index of element ``vector`` under this solution."""
        counter = resolve(ops)
        value = self.transform.apply(vector, ops)
        counter.mod()
        if self.scheme == "two-level":
            counter.mod()
            return (value % self.n_unconstrained) % self.n_banks
        if self.scheme == "wide":
            counter.div()
            return (value % self.n_unconstrained) // self.bank_ports
        return value % self.n_banks

    def bank_indices(self, offset: Sequence[int] | None = None) -> List[int]:
        """Bank index of every pattern element at loop offset ``offset``.

        ``offset=None`` evaluates the pattern at the origin; by Theorem 1's
        translation argument the conflict structure is offset-invariant for
        the ``"direct"`` scheme, and we verify that claim in tests rather
        than assuming it for other schemes.
        """
        base = self.pattern if offset is None else self.pattern.translated(offset)
        return [self.bank_of(delta) for delta in base.offsets]

    @property
    def cycles_per_access(self) -> int:
        """Cycles needed to fetch the whole pattern (``δP + 1``)."""
        return self.delta_ii + 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PartitionSolution({self.algorithm}, N={self.n_banks}, "
            f"Nf={self.n_unconstrained}, dII={self.delta_ii}, {self.scheme})"
        )


def pairwise_differences(values: Sequence[int], ops: OpCounter | None = None) -> List[int]:
    """All nonzero pairwise absolute differences ``|z_i − z_j|`` (with repeats).

    This is the multiset the paper's Algorithm 1 histograms into ``E``.
    Charges one subtraction per pair (the sign drop is free hardware-wise,
    and the paper's op counts — e.g. Canny's 325 = 300 pairs + 25
    transforms — confirm one-op-per-pair accounting).
    """
    counter = resolve(ops)
    diffs: List[int] = []
    m = len(values)
    for i in range(m - 1):
        for j in range(i + 1, m):
            counter.sub()
            diffs.append(abs(values[i] - values[j]))
    return diffs


def minimize_nf(
    pattern: Pattern,
    transform: LinearTransform | None = None,
    ops: OpCounter | None = None,
) -> Tuple[int, LinearTransform, List[int]]:
    """Paper Algorithm 1: the smallest conflict-free bank count ``N_f``.

    Starting from ``N = m``, a candidate is rejected as soon as one of its
    multiples ``k·N ≤ M`` appears in the difference multiset (tested via
    the occurrence histogram ``E``), exactly as in the pseudo code.

    Returns ``(n_f, transform, z_values)`` so callers can reuse the
    transformed values without recomputing them.

    Raises
    ------
    PartitioningError
        Only on internal inconsistency; Algorithm 1 always terminates with
        ``N_f ≤ M + 1`` because any ``N > M`` has no multiple inside ``E``.
    """
    counter = resolve(ops)
    with span("solve.minimize_nf", ops=counter, pattern=pattern.name or "?"):
        with span("solve.transform", ops=counter):
            if transform is None:
                transform = derive_alpha(pattern, ops)
            z_values = transform.transform_pattern(pattern, ops)
        m = pattern.size
        if m == 1:
            return 1, transform, z_values

        with span("solve.qset_build", ops=counter):
            diffs = pairwise_differences(z_values, ops)
            if 0 in diffs:
                raise PartitioningError(
                    "transform does not separate the pattern (duplicate z values); "
                    "Theorem 1 guarantees this never happens for the derived alpha"
                )
            max_diff = max(diffs)
            counter.compare(len(diffs))  # the max scan of line 10

            # E[d] = number of pairs at distance d (lines 11-16).  Building
            # the histogram is memory traffic, not arithmetic; not charged.
            occurrences = [0] * (max_diff + 1)
            for d in diffs:
                occurrences[d] += 1

        # Lines 17-25: grow N until no multiple of it is an observed difference.
        with span("solve.select_n", ops=counter) as selection:
            n_f = m
            k = 1
            while True:
                counter.mul()  # k * n_f
                multiple = k * n_f
                counter.compare()  # loop guard k*Nf <= M
                if multiple > max_diff:
                    selection.annotate(n_f=n_f)
                    return n_f, transform, z_values
                counter.compare()  # E[kNf] != 0
                if occurrences[multiple] != 0:
                    counter.add()
                    n_f += 1
                    k = 1
                else:
                    counter.add()
                    k += 1


def fast_nc(
    n_f: int, n_max: int, ops: OpCounter | None = None
) -> Tuple[int, int]:
    """Section 4.3.2 fast approach: fold ``N_f`` banks into ``N_c ≤ N_max``.

    Returns ``(n_c, rounds)`` where ``rounds = F = ⌈N_f / N_max⌉`` is the
    number of access cycles needed (so ``δP = rounds − 1``).  When
    ``N_f ≤ N_max`` this degenerates to ``(N_f, 1)``.
    """
    if n_max <= 0:
        raise ValueError(f"n_max must be positive, got {n_max}")
    counter = resolve(ops)
    counter.compare()
    if n_f <= n_max:
        return n_f, 1
    counter.div(2)
    rounds = math.ceil(n_f / n_max)
    n_c = math.ceil(n_f / rounds)
    return n_c, rounds


@dataclass(frozen=True)
class SweepResult:
    """Result of the same-size ``δP|N`` sweep (Section 4.3.2 alternative).

    Attributes
    ----------
    conflicts_by_n:
        ``conflicts_by_n[N] = δP|N + 1``: the worst-case number of pattern
        elements sharing one bank when the array is split into ``N`` banks
        (the Section 5.1 case-study row).  Index 0 is unused (``None``).
    best_n:
        Smallest ``N ≤ N_max`` achieving the minimal conflict count.
    best_candidates:
        All ``N`` achieving the minimum, ascending (the paper notes
        ``N_c = 7 or 9`` for the LoG example).
    """

    conflicts_by_n: Tuple[Optional[int], ...]
    best_n: int
    best_candidates: Tuple[int, ...] = field(default=())

    @property
    def delta_ii(self) -> int:
        """The achieved additional initiation interval."""
        return self.conflicts_by_n[self.best_n] - 1  # type: ignore[operator]


def mode_count(values: Sequence[int], ops: OpCounter | None = None) -> int:
    """Number of occurrences of the most frequent value (``A_P`` in Def. 4)."""
    if not values:
        raise ValueError("mode of an empty sequence is undefined")
    counter = resolve(ops)
    histogram: Dict[int, int] = {}
    for v in values:
        histogram[v] = histogram.get(v, 0) + 1
    counter.compare(len(histogram))
    return max(histogram.values())


def _sweep_conflicts_scalar(
    z_values: Sequence[int],
    n_max: int,
    counter: OpCounter,
    ops: OpCounter | None,
) -> List[Optional[int]]:
    """Reference per-N loop: one pass over the ``z`` values per candidate."""
    conflicts: List[Optional[int]] = [None]
    for n in range(1, n_max + 1):
        counter.mod(len(z_values))
        residues = [z % n for z in z_values]
        conflicts.append(mode_count(residues, ops))
    return conflicts


def _sweep_conflicts_vectorized(
    z_values: Sequence[int], n_max: int, counter: OpCounter
) -> List[Optional[int]]:
    """All candidate N in one broadcasted pass.

    ``residues[i, j] = z_j % n_i`` lives in ``[0, n_max)``, so one
    ``bincount`` over ``row · n_max + residue`` keys yields every per-N
    residue histogram at once; the mode (conflict count) is a row max and
    the distinct-residue count (what :func:`mode_count` charges as a
    compare) is a row nonzero count.  The hardware-cost model must not
    notice the execution strategy, so the charges mirror the scalar loop
    exactly: ``mod(m)`` + ``compare(distinct)`` per candidate.

    Candidate blocks are bounded by the bulk chunk budget so the
    ``(block, m)`` residue matrix never blows up for extreme ``n_max``.
    """
    from .vectorized import chunk_budget  # local: avoids an import cycle

    z = np.asarray(z_values, dtype=np.int64)
    m = len(z_values)
    conflicts: List[Optional[int]] = [None]
    block = max(1, chunk_budget() // max(m, 1))
    for lo in range(1, n_max + 1, block):
        hi = min(lo + block - 1, n_max)
        ns = np.arange(lo, hi + 1, dtype=np.int64)
        rows = len(ns)
        residues = z[None, :] % ns[:, None]
        keys = np.repeat(np.arange(rows, dtype=np.int64), m) * n_max
        keys += residues.reshape(-1)
        counts = np.bincount(keys, minlength=rows * n_max).reshape(rows, n_max)
        modes = counts.max(axis=1)
        distinct = (counts > 0).sum(axis=1)
        for i in range(rows):
            counter.mod(m)
            counter.compare(int(distinct[i]))
            conflicts.append(int(modes[i]))
    return conflicts


def same_size_sweep(
    pattern: Pattern,
    n_max: int,
    transform: LinearTransform | None = None,
    ops: OpCounter | None = None,
    engine: str = "auto",
) -> SweepResult:
    """Evaluate ``δP|N + 1`` for every ``N = 1 … N_max`` and pick the best.

    Because every ``y^(i) = α·(s + Δ^(i))`` shares the ``α·s`` term *and*
    ``(a + c) % N`` shifts all residues by the same constant only when the
    conflict count is computed — the mode count of ``{(α·Δ^(i)) % N}``
    equals the mode count at any loop offset, so a single evaluation per
    ``N`` suffices (this offset-invariance is property-tested).

    ``engine`` selects the execution strategy: ``"vectorized"`` (the
    ``"auto"`` default) evaluates all candidates in one broadcasted NumPy
    pass, ``"scalar"`` keeps the reference per-N loop.  Results and op
    charges are identical (property-tested).
    """
    if n_max <= 0:
        raise ValueError(f"n_max must be positive, got {n_max}")
    if engine not in SWEEP_ENGINES:
        raise ValueError(
            f"unknown sweep engine {engine!r}; choose one of {SWEEP_ENGINES}"
        )
    counter = resolve(ops)
    with span("solve.bank_limit_sweep", ops=counter, n_max=n_max):
        if transform is None:
            transform = derive_alpha(pattern, ops)
        z_values = transform.transform_pattern(pattern, ops)

        if engine == "scalar" or not z_values:
            conflicts = _sweep_conflicts_scalar(z_values, n_max, counter, ops)
        else:
            conflicts = _sweep_conflicts_vectorized(z_values, n_max, counter)

        best = min(c for c in conflicts if c is not None)
        candidates = tuple(n for n in range(1, n_max + 1) if conflicts[n] == best)
        return SweepResult(
            conflicts_by_n=tuple(conflicts),
            best_n=candidates[0],
            best_candidates=candidates,
        )


def same_size_nc(
    pattern: Pattern,
    n_max: int,
    transform: LinearTransform | None = None,
    ops: OpCounter | None = None,
) -> Tuple[int, int]:
    """Same-size bank count under ``N_max``: returns ``(n_c, delta_ii)``."""
    result = same_size_sweep(pattern, n_max, transform, ops)
    return result.best_n, result.delta_ii


def partition(
    pattern: Pattern,
    n_max: int | None = None,
    same_size: bool = True,
    ops: OpCounter | None = None,
    cache: bool = True,
) -> PartitionSolution:
    """End-to-end partitioner: the paper's full flow for one pattern.

    1. Derive ``α`` from the bounding box (Section 4.1).
    2. Run Algorithm 1 to get the unconstrained ``N_f``.
    3. If ``n_max`` is given and ``N_f > n_max``, fall back to either the
       same-size sweep (default; uniform bank sizes, minimal ``δP``) or the
       fast two-level modulo scheme.

    Solutions are memoized on the translation-normalized pattern (see
    :mod:`repro.core.cache`); pass ``cache=False`` — or set
    ``REPRO_SOLVE_CACHE=0`` — to force a fresh solve.  Instrumented calls
    (``ops`` given) always solve fresh so op counts stay honest.

    Examples
    --------
    >>> from repro.patterns import log_pattern
    >>> partition(log_pattern()).n_banks
    13
    >>> sol = partition(log_pattern(), n_max=10)
    >>> (sol.n_banks, sol.delta_ii)
    (7, 1)
    """
    from . import cache as solve_cache  # local: cache imports this module

    use_cache = cache and ops is None and solve_cache.enabled()
    if use_cache:
        key = solve_cache.partition_key(pattern, n_max, same_size)
        hit = solve_cache.cache().get(key, pattern)
        if hit is not None:
            return hit
    with span(
        "solve.partition",
        ops=resolve(ops),
        pattern=pattern.name or "?",
        n_max=n_max,
    ):
        solution = _partition_phases(pattern, n_max, same_size, ops)
    if use_cache:
        solve_cache.cache().put(key, solution)
    return solution


def _partition_phases(
    pattern: Pattern,
    n_max: int | None,
    same_size: bool,
    ops: OpCounter | None,
) -> PartitionSolution:
    n_f, transform, _ = minimize_nf(pattern, ops=ops)
    if n_max is None or n_f <= n_max:
        return PartitionSolution(
            pattern=pattern,
            transform=transform,
            n_banks=n_f,
            n_unconstrained=n_f,
            delta_ii=0,
            scheme="direct",
            algorithm="ours",
        )
    if same_size:
        n_c, delta = same_size_nc(pattern, n_max, transform, ops)
        return PartitionSolution(
            pattern=pattern,
            transform=transform,
            n_banks=n_c,
            n_unconstrained=n_f,
            delta_ii=delta,
            scheme="direct",
            algorithm="ours",
        )
    n_c, rounds = fast_nc(n_f, n_max, ops)
    return PartitionSolution(
        pattern=pattern,
        transform=transform,
        n_banks=n_c,
        n_unconstrained=n_f,
        delta_ii=rounds - 1,
        scheme="two-level",
        algorithm="ours",
    )


def widen_solution(solution: PartitionSolution, bandwidth: int) -> PartitionSolution:
    """Fold a conflict-free solution onto bandwidth-``B`` banks (Section 3).

    The paper notes the whole framework "is easy to extend to the situation
    where bank bandwidth is B by combining B banks together": group the
    ``N_f`` logical banks into ``⌈N_f / B⌉`` physical banks of ``B`` ports
    each.  Every physical bank receives at most ``B`` of the pattern's
    elements (one per folded logical bank), so ``δP`` stays 0 *provided the
    hardware banks really serve ``B`` accesses per cycle* — the returned
    solution records that requirement in ``bank_ports``.

    The case study's closing remark is the instance ``N_f = 13, B = 2``:
    13 single-ported banks become 7 dual-ported ones.

    Raises
    ------
    ValueError
        For ``bandwidth < 1`` or when applied to a non-``direct`` scheme
        (fold the unconstrained solution, not an already-folded one).
    """
    if bandwidth < 1:
        raise ValueError(f"bandwidth must be positive, got {bandwidth}")
    if solution.scheme != "direct":
        raise ValueError(
            f"widen_solution expects a direct-scheme solution, got {solution.scheme!r}"
        )
    if bandwidth == 1:
        return solution
    n_wide = math.ceil(solution.n_banks / bandwidth)
    return PartitionSolution(
        pattern=solution.pattern,
        transform=solution.transform,
        n_banks=n_wide,
        n_unconstrained=solution.n_banks,
        delta_ii=solution.delta_ii,
        scheme="wide",
        algorithm=solution.algorithm,
        bank_ports=bandwidth,
    )
