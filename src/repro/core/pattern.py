"""Access patterns over multidimensional arrays (paper Definition 2).

A *pattern* is a finite set of ``m`` distinct integer offset vectors
``Δ^(1) … Δ^(m)`` in an ``n``-dimensional array.  At loop offset ``s`` the
kernel touches the addresses ``{s + Δ^(i)}``; the partitioner must place all
of them in distinct banks for every ``s``.

The class is deliberately immutable and hashable so patterns can be used as
dictionary keys (e.g. memoizing partition solutions per pattern).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

from ..errors import DimensionMismatchError, PatternError

Offset = Tuple[int, ...]


class Pattern:
    """An immutable set of integer offsets defining a parallel access shape.

    Parameters
    ----------
    offsets:
        Iterable of equal-length integer sequences.  Duplicates are
        rejected: a pattern is a *set* of addresses and a duplicate would
        silently halve the required bandwidth.
    name:
        Optional human-readable label (used in reports and benchmarks).

    Examples
    --------
    >>> p = Pattern([(0, 0), (0, 1), (1, 0)], name="corner")
    >>> p.size, p.ndim
    (3, 2)
    >>> p.extents
    (2, 2)
    """

    __slots__ = ("_offsets", "_name")

    def __init__(self, offsets: Iterable[Sequence[int]], name: str = "") -> None:
        normalized: List[Offset] = []
        for raw in offsets:
            try:
                vec = tuple(int(c) for c in raw)
            except (TypeError, ValueError) as exc:
                raise PatternError(f"offset {raw!r} is not an integer vector") from exc
            if any(not isinstance(c, int) for c in vec):  # pragma: no cover - defensive
                raise PatternError(f"offset {raw!r} is not an integer vector")
            normalized.append(vec)
        if not normalized:
            raise PatternError("a pattern must contain at least one offset")
        ndim = len(normalized[0])
        if ndim == 0:
            raise PatternError("offsets must have at least one dimension")
        for vec in normalized:
            if len(vec) != ndim:
                raise PatternError(
                    f"ragged pattern: expected {ndim}-dimensional offsets, got {vec!r}"
                )
        if len(set(normalized)) != len(normalized):
            raise PatternError("pattern contains duplicate offsets")
        # Canonical order makes equality/hash independent of input order.
        self._offsets: Tuple[Offset, ...] = tuple(sorted(normalized))
        self._name = name

    # -- basic properties -------------------------------------------------

    @property
    def offsets(self) -> Tuple[Offset, ...]:
        """The offsets in canonical (sorted) order."""
        return self._offsets

    @property
    def name(self) -> str:
        """Human-readable label, possibly empty."""
        return self._name

    @property
    def size(self) -> int:
        """Number of elements ``m`` accessed in parallel."""
        return len(self._offsets)

    @property
    def ndim(self) -> int:
        """Array dimensionality ``n``."""
        return len(self._offsets[0])

    # -- geometry ----------------------------------------------------------

    @property
    def mins(self) -> Offset:
        """Per-dimension minimum offset component."""
        return tuple(min(v[j] for v in self._offsets) for j in range(self.ndim))

    @property
    def maxs(self) -> Offset:
        """Per-dimension maximum offset component."""
        return tuple(max(v[j] for v in self._offsets) for j in range(self.ndim))

    @property
    def extents(self) -> Offset:
        """The paper's ``D_j = max Δ_j − min Δ_j + 1`` per dimension."""
        lo, hi = self.mins, self.maxs
        return tuple(hi[j] - lo[j] + 1 for j in range(self.ndim))

    @property
    def bounding_box_volume(self) -> int:
        """Product of extents: size of the tightest enclosing box."""
        vol = 1
        for d in self.extents:
            vol *= d
        return vol

    # -- derived patterns ---------------------------------------------------

    def normalized(self) -> "Pattern":
        """Translate so the minimum corner sits at the origin.

        Bank-mapping results are translation-invariant (Theorem 1's proof
        removes the common ``α·s`` term), so normalizing never changes a
        solution; it only standardizes display.
        """
        lo = self.mins
        moved = [tuple(c - lo[j] for j, c in enumerate(v)) for v in self._offsets]
        return Pattern(moved, name=self._name)

    def translated(self, shift: Sequence[int]) -> "Pattern":
        """Return a copy translated by ``shift``."""
        shift_t = tuple(int(c) for c in shift)
        if len(shift_t) != self.ndim:
            raise DimensionMismatchError(
                f"shift has {len(shift_t)} components, pattern is {self.ndim}-dimensional"
            )
        moved = [tuple(c + shift_t[j] for j, c in enumerate(v)) for v in self._offsets]
        return Pattern(moved, name=self._name)

    def reflected(self, axes: Sequence[int]) -> "Pattern":
        """Return a copy mirrored (coordinate-negated) along ``axes``.

        Reflection composes with translation: the result is generally not
        normalized.  Bank mappings are invariant under reflection — negating
        an axis negates the matching ``α`` component, which permutes the
        pairwise ``z`` differences by sign and leaves every conflict count
        unchanged — which is what lets the solve cache quotient reflections
        away (see :func:`repro.core.cache.canonicalize`).

        >>> Pattern([(0, 0), (0, 2)]).reflected([1]).normalized().offsets
        ((0, 0), (0, 2))
        """
        chosen = set()
        for axis in axes:
            axis_i = int(axis)
            if not -self.ndim <= axis_i < self.ndim:
                raise DimensionMismatchError(
                    f"axis {axis_i} out of range for {self.ndim} dimensions"
                )
            chosen.add(axis_i % self.ndim)
        mirrored = [
            tuple(-c if j in chosen else c for j, c in enumerate(v))
            for v in self._offsets
        ]
        return Pattern(mirrored, name=self._name)

    def permuted(self, perm: Sequence[int]) -> "Pattern":
        """Return a copy with axes reordered: result axis ``k`` = axis ``perm[k]``.

        ``perm`` must be a permutation of ``range(ndim)``.  Note the §4.4
        intra-bank layout is only shared between permuted variants when the
        innermost axis stays innermost (``perm[-1] == ndim - 1``); the
        canonicalizer enforces that restriction, this helper does not.

        >>> Pattern([(0, 1), (2, 0)]).permuted([1, 0]).offsets
        ((0, 2), (1, 0))
        """
        perm_t = tuple(int(a) for a in perm)
        if sorted(perm_t) != list(range(self.ndim)):
            raise DimensionMismatchError(
                f"perm {perm_t!r} is not a permutation of range({self.ndim})"
            )
        reordered = [tuple(v[a] for a in perm_t) for v in self._offsets]
        return Pattern(reordered, name=self._name)

    def union(self, other: "Pattern", name: str = "") -> "Pattern":
        """Set union of two patterns (e.g. vertical + horizontal Prewitt)."""
        if other.ndim != self.ndim:
            raise DimensionMismatchError(
                f"cannot union {self.ndim}-d and {other.ndim}-d patterns"
            )
        merged = set(self._offsets) | set(other._offsets)
        return Pattern(merged, name=name or f"{self.name}|{other.name}")

    def with_name(self, name: str) -> "Pattern":
        """Return the same pattern relabelled."""
        return Pattern(self._offsets, name=name)

    def embed(self, extra_axis_value: int = 0, axis: int = -1, name: str = "") -> "Pattern":
        """Embed into one more dimension by inserting a constant coordinate.

        Useful for lifting a 2-D stencil into a 3-D volume (e.g. building
        the 3-D Sobel pattern out of 2-D slices).
        """
        n = self.ndim + 1
        if axis < 0:
            axis += n
        if not 0 <= axis < n:
            raise DimensionMismatchError(f"axis {axis} out of range for {n} dimensions")
        lifted = [
            v[:axis] + (int(extra_axis_value),) + v[axis:] for v in self._offsets
        ]
        return Pattern(lifted, name=name or self._name)

    # -- containment / mask -------------------------------------------------

    def contains(self, offset: Sequence[int]) -> bool:
        """True if ``offset`` is one of the pattern's offsets."""
        return tuple(int(c) for c in offset) in set(self._offsets)

    def to_mask(self) -> List[List[int]]:
        """Render a 2-D pattern as a 0/1 nested-list mask over its bounding box.

        Raises :class:`PatternError` for non-2-D patterns; use
        :mod:`repro.viz` for general rendering.
        """
        if self.ndim != 2:
            raise PatternError(f"to_mask requires a 2-D pattern, got {self.ndim}-D")
        norm = self.normalized()
        h, w = norm.extents
        grid = [[0] * w for _ in range(h)]
        for (r, c) in norm.offsets:
            grid[r][c] = 1
        return grid

    @classmethod
    def from_mask(cls, mask: Sequence[Sequence[object]], name: str = "") -> "Pattern":
        """Build a 2-D pattern from a truthy mask (e.g. nonzero kernel taps).

        >>> Pattern.from_mask([[0, 1], [1, 1]]).size
        3
        """
        offsets = [
            (r, c)
            for r, row in enumerate(mask)
            for c, val in enumerate(row)
            if val
        ]
        if not offsets:
            raise PatternError("mask has no truthy entries")
        return cls(offsets, name=name)

    @classmethod
    def from_kernel(cls, kernel: Sequence[Sequence[float]], name: str = "") -> "Pattern":
        """Pattern of the nonzero taps of a 2-D convolution kernel."""
        return cls.from_mask([[v != 0 for v in row] for row in kernel], name=name)

    # -- dunder plumbing ------------------------------------------------------

    def __iter__(self) -> Iterator[Offset]:
        return iter(self._offsets)

    def __len__(self) -> int:
        return len(self._offsets)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Pattern):
            return NotImplemented
        return self._offsets == other._offsets

    def __hash__(self) -> int:
        return hash(self._offsets)

    def __repr__(self) -> str:
        label = f" {self._name!r}" if self._name else ""
        return f"Pattern({self.size} offsets, ndim={self.ndim}{label})"
