"""Bank-conflict analysis: additional initiation interval ``δ(II)``.

Definition 4 of the paper: for a loop offset ``s``, the pattern's elements
land in banks ``B_P^(s)``; ``A_P^(s)`` is the occurrence count of the mode
(most frequent bank), and

.. math::

    δ_P = \\max_{s ∈ X} A_P^{(s)} − 1 .

``δP = 0`` means the whole pattern is served in one cycle.  For linear bank
hashes the conflict profile is offset-invariant (all residues shift by the
common constant ``(α·s) % N``), so a single evaluation suffices — but this
module also provides an *exhaustive/sampled* evaluator so tests never have
to take that invariance on faith, and so non-linear baseline mappings can
be analyzed with the same tooling.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from .partition import PartitionSolution, mode_count
from .pattern import Pattern

BankFunction = Callable[[Sequence[int]], int]


@dataclass(frozen=True)
class ConflictProfile:
    """Conflict statistics of one pattern evaluation at one loop offset.

    Attributes
    ----------
    banks:
        Bank index per pattern element (canonical offset order).
    worst:
        Occurrence count of the busiest bank (``A_P``).
    histogram:
        Bank index → number of pattern elements landing there.
    """

    banks: Tuple[int, ...]
    worst: int
    histogram: Dict[int, int]

    @property
    def delta_ii(self) -> int:
        """``δP`` contribution of this offset (``worst − 1``)."""
        return self.worst - 1

    @property
    def conflict_free(self) -> bool:
        return self.worst == 1


def profile_at(
    pattern: Pattern, bank_of: BankFunction, offset: Sequence[int] | None = None
) -> ConflictProfile:
    """Evaluate the conflict profile of ``pattern`` at one loop ``offset``."""
    base = pattern if offset is None else pattern.translated(offset)
    banks = tuple(bank_of(delta) for delta in base.offsets)
    histogram: Dict[int, int] = {}
    for b in banks:
        histogram[b] = histogram.get(b, 0) + 1
    return ConflictProfile(banks=banks, worst=max(histogram.values()), histogram=histogram)


def delta_ii(
    pattern: Pattern,
    bank_of: BankFunction,
    offsets: Sequence[Sequence[int]] | None = None,
) -> int:
    """``δP`` maximized over the given loop ``offsets`` (default: origin only).

    For linear hashes the origin alone is exact; pass a window of offsets
    (e.g. from :func:`offset_window`) to validate that claim empirically or
    to analyze arbitrary (non-linear) mappings.
    """
    candidates = offsets if offsets is not None else [tuple(0 for _ in range(pattern.ndim))]
    worst = 0
    for s in candidates:
        worst = max(worst, profile_at(pattern, bank_of, s).worst)
    return worst - 1


def offset_window(ndim: int, radius: int) -> List[Tuple[int, ...]]:
    """All integer offsets with every coordinate in ``[0, radius]``.

    A window of side ``radius+1`` covers every residue class of any modulus
    up to ``radius+1``, which is what offset-invariance checks need.
    """
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    return list(itertools.product(range(radius + 1), repeat=ndim))


def verify_conflict_free(
    solution: PartitionSolution, window_radius: int | None = None
) -> bool:
    """Check that a solution achieves its advertised ``δ(II)``.

    Evaluates the conflict profile at the origin and — when
    ``window_radius`` is given — over the whole offset window, asserting
    the measured worst case never exceeds ``solution.delta_ii``.
    """
    bank_of = solution.bank_of
    offsets: Sequence[Sequence[int]] | None = None
    if window_radius is not None:
        offsets = offset_window(solution.pattern.ndim, window_radius)
    measured = delta_ii(solution.pattern, bank_of, offsets)
    return measured <= solution.delta_ii


def measured_cycles(solution: PartitionSolution) -> int:
    """Cycles to fetch one pattern instance as *measured* (not advertised)."""
    return profile_at(solution.pattern, solution.bank_of).worst


def conflict_table(
    pattern: Pattern, bank_of_for_n: Callable[[int], BankFunction], n_max: int
) -> List[int]:
    """The Section 5.1 case-study row: ``A_P = δP|N + 1`` for ``N = 1…n_max``.

    ``bank_of_for_n(N)`` must return the bank function for ``N`` banks.
    """
    table: List[int] = []
    for n in range(1, n_max + 1):
        bank_of = bank_of_for_n(n)
        banks = [bank_of(delta) for delta in pattern.offsets]
        table.append(mode_count(banks))
    return table
