"""Vectorized (NumPy) bulk address translation.

The scalar :class:`~repro.core.mapping.BankMapping` methods are the
reference implementation — direct transcriptions of the paper's formulas,
exercised by the property tests.  For whole-array work (loading a frame
into banks, checking bijectivity on megapixel images, tracing long sweeps)
translating one element at a time is orders of magnitude too slow in
Python, so this module provides batch equivalents that compute ``B(x)``
and ``F(x)`` for every element of an array in a handful of NumPy kernels.

Equivalence with the scalar path is asserted by tests (and cheaply
checkable at runtime via :func:`verify_bulk_matches_scalar`).
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Iterator, Tuple

import numpy as np

from ..errors import MappingError
from .mapping import BankMapping

#: A bulk address kernel: ``(mapping, (k, n) elements) -> (banks, offsets)``.
BulkKernel = Callable[
    [BankMapping, "np.ndarray"], Tuple["np.ndarray", "np.ndarray"]
]

#: Registered bulk kernels for mapping types whose address math is *not*
#: the stock closed forms (e.g. the baseline cyclic/block mappings).  Keyed
#: by exact type — a subclass of a registered type does NOT inherit the
#: kernel, mirroring the simulator's conservative dispatch: overriding a
#: scalar address method silently invalidates the batch math.
_BULK_KERNELS: Dict[type, BulkKernel] = {}


def register_bulk_kernel(mapping_type: type, kernel: BulkKernel) -> None:
    """Register a vectorized ``(B(x), F(x))`` kernel for a mapping type.

    Registration makes the type eligible for every bulk consumer at once:
    :func:`bulk_addresses` (hence the vectorized simulator's ``auto``
    dispatch), :func:`scatter_to_banks`, and both bulk verifiers.  The
    kernel must agree with the type's scalar ``address_of`` for all
    in-range elements — :func:`verify_bulk_matches_scalar` spot-checks
    exactly that.
    """
    if not (isinstance(mapping_type, type) and issubclass(mapping_type, BankMapping)):
        raise MappingError(
            f"bulk kernels require a BankMapping subclass, got {mapping_type!r}"
        )
    if not callable(kernel):
        raise MappingError(f"bulk kernel for {mapping_type.__name__} is not callable")
    _BULK_KERNELS[mapping_type] = kernel


def has_bulk_kernel(mapping_type: type) -> bool:
    """Whether ``mapping_type`` (exactly, not via inheritance) has a kernel."""
    return mapping_type in _BULK_KERNELS

#: Default number of coordinate rows materialized per bulk chunk.  A chunk
#: is a ``(chunk, n)`` int64 block, so the default caps transient memory at
#: a few megabytes regardless of the array size.  Override per call or via
#: the ``REPRO_BULK_CHUNK`` environment variable.
DEFAULT_CHUNK_ELEMENTS = 1 << 18

#: Hard ceiling on a *fully materialized* element grid.  Above this,
#: :func:`element_grid` refuses and callers must stream chunks via
#: :func:`iter_element_chunks`.  Override via ``REPRO_BULK_MAX``.
DEFAULT_MAX_GRID_ELEMENTS = 1 << 26


def chunk_budget(chunk: int | None = None) -> int:
    """Resolve the bulk chunk size: explicit arg > env var > default."""
    if chunk is not None:
        if chunk < 1:
            raise MappingError(f"chunk size must be positive, got {chunk}")
        return chunk
    env = os.environ.get("REPRO_BULK_CHUNK", "").strip()
    if env:
        value = int(env)
        if value < 1:
            raise MappingError(f"REPRO_BULK_CHUNK must be positive, got {value}")
        return value
    return DEFAULT_CHUNK_ELEMENTS


def _max_grid_elements() -> int:
    env = os.environ.get("REPRO_BULK_MAX", "").strip()
    return int(env) if env else DEFAULT_MAX_GRID_ELEMENTS


def grid_size(shape: Tuple[int, ...]) -> int:
    """Number of elements in an array of ``shape``."""
    total = 1
    for w in shape:
        total *= int(w)
    return total


def element_grid(shape: Tuple[int, ...]) -> "np.ndarray":
    """All element coordinates of an array, shape ``(W, n)`` row-major.

    Assembled chunk-wise into one preallocated output so the transient
    footprint stays bounded, and guarded against shapes whose full grid
    would not fit in memory at all — stream those with
    :func:`iter_element_chunks` instead.
    """
    total = grid_size(shape)
    cap = _max_grid_elements()
    if total > cap:
        raise MappingError(
            f"element grid of shape {tuple(shape)} has {total} elements, above "
            f"the materialization cap of {cap}; process it in bounded chunks "
            "with iter_element_chunks() (or raise REPRO_BULK_MAX)"
        )
    out = np.empty((total, len(shape)), dtype=np.int64)
    for start, block in iter_element_chunks(shape):
        out[start : start + len(block)] = block
    return out


def iter_element_chunks(
    shape: Tuple[int, ...], chunk: int | None = None
) -> Iterator[Tuple[int, "np.ndarray"]]:
    """Stream the element grid in row-major order, bounded chunks at a time.

    Yields ``(start, block)`` pairs where ``block`` is a ``(k, n)`` int64
    coordinate array covering linear (row-major) indices
    ``start … start + k - 1``.  Peak memory is ``O(chunk · n)`` regardless
    of the array size, which is what makes whole-frame bulk operations safe
    on shapes whose full grid would exceed memory.
    """
    total = grid_size(shape)
    size = chunk_budget(chunk)
    dims = tuple(int(w) for w in shape)
    for start in range(0, total, size):
        stop = min(start + size, total)
        linear = np.arange(start, stop, dtype=np.int64)
        yield start, np.stack(np.unravel_index(linear, dims), axis=1)


def bulk_transform(mapping: BankMapping, elements: "np.ndarray") -> "np.ndarray":
    """``α · x`` for a batch of elements, shape ``(k, n)`` → ``(k,)``."""
    alpha = np.asarray(mapping.solution.transform.alpha, dtype=np.int64)
    elements = np.asarray(elements, dtype=np.int64)
    if elements.ndim != 2 or elements.shape[1] != mapping.ndim:
        raise MappingError(
            f"expected elements of shape (k, {mapping.ndim}), got {elements.shape}"
        )
    return elements @ alpha


def bulk_bank_of(mapping: BankMapping, elements: "np.ndarray") -> "np.ndarray":
    """Vectorized ``B(x)`` for a batch of elements."""
    value = bulk_transform(mapping, elements)
    solution = mapping.solution
    if solution.scheme == "two-level":
        return (value % solution.n_unconstrained) % solution.n_banks
    if solution.scheme == "wide":
        return (value % solution.n_unconstrained) // solution.bank_ports
    return value % solution.n_banks


def bulk_offset_of(mapping: BankMapping, elements: "np.ndarray") -> "np.ndarray":
    """Vectorized ``F(x)`` (linear in-bank offsets) for a batch of elements."""
    from .packed import PackedBankMapping

    elements = np.asarray(elements, dtype=np.int64)
    if isinstance(mapping, PackedBankMapping):
        return _bulk_offset_packed(mapping, elements)
    value = bulk_transform(mapping, elements)
    inner = mapping._inner_banks
    window = mapping.rows_per_bank * inner
    x_new = (value % window) // inner

    # Row-major ravel over the bank shape (w_0, ..., w_{n-2}, K).
    bank_shape = mapping.bank_shape
    offset = np.zeros(len(elements), dtype=np.int64)
    for dim, width in enumerate(bank_shape[:-1]):
        offset = offset * width + elements[:, dim]
    offset = offset * bank_shape[-1] + x_new

    solution = mapping.solution
    if solution.scheme in ("two-level", "wide"):
        inner_index = value % solution.n_unconstrained
        if solution.scheme == "two-level":
            sub = inner_index // solution.n_banks
        else:
            sub = inner_index % solution.bank_ports
        offset = offset + sub * mapping.inner_bank_size
    return offset


def _bulk_offset_packed(mapping, elements: "np.ndarray") -> "np.ndarray":
    """Packed-tail variant of :func:`bulk_offset_of`.

    The prefix uses the closed form with ``K = ⌊w/N⌋``; tail elements fall
    back to the mapping's precomputed rank table (inherently a lookup —
    that irregularity is the scheme's documented trade-off).
    """
    value = bulk_transform(mapping, elements)
    n = mapping.n_banks
    k = mapping.prefix_rows
    tail_start = k * n

    offsets = np.zeros(len(elements), dtype=np.int64)
    last = elements[:, -1]
    prefix = last < tail_start

    if prefix.any() and k > 0:
        window = k * n
        x_new = (value[prefix] % window) // n
        bank_shape = mapping.shape[:-1] + (k,)
        linear = np.zeros(int(prefix.sum()), dtype=np.int64)
        head = elements[prefix]
        for dim, width in enumerate(bank_shape[:-1]):
            linear = linear * width + head[:, dim]
        offsets[prefix] = linear * bank_shape[-1] + x_new

    tail = ~prefix
    if tail.any():
        base = mapping.prefix_bank_size
        ranks = np.array(
            [
                mapping._tail_ranks[tuple(int(c) for c in row)]
                for row in elements[tail]
            ],
            dtype=np.int64,
        )
        offsets[tail] = base + ranks
    return offsets


def bulk_addresses(
    mapping: BankMapping, elements: "np.ndarray"
) -> Tuple["np.ndarray", "np.ndarray"]:
    """Vectorized ``(B(x), F(x))`` pair for a batch of elements.

    Dispatches to a registered bulk kernel when the mapping's exact type
    has one (see :func:`register_bulk_kernel`); otherwise uses the stock
    closed forms.
    """
    kernel = _BULK_KERNELS.get(type(mapping))
    if kernel is not None:
        banks, offsets = kernel(mapping, np.asarray(elements, dtype=np.int64))
        return (
            np.asarray(banks, dtype=np.int64),
            np.asarray(offsets, dtype=np.int64),
        )
    return bulk_bank_of(mapping, elements), bulk_offset_of(mapping, elements)


def scatter_to_banks(mapping: BankMapping, array: "np.ndarray") -> list:
    """Distribute a whole array into per-bank value vectors in one pass.

    Returns a list of 1-D arrays, one per physical bank, sized to the bank
    and filled with the array's values at their mapped offsets (padding
    slots hold 0 and are flagged in the companion mask).  This is the bulk
    equivalent of :meth:`repro.hw.BankedMemory.load_array`.
    """
    data = np.asarray(array)
    if data.shape != mapping.shape:
        raise MappingError(
            f"array shape {data.shape} does not match mapping shape {mapping.shape}"
        )
    values = data.reshape(-1)
    result = [
        np.zeros(mapping.bank_size(bank), dtype=values.dtype)
        for bank in range(mapping.n_banks)
    ]
    for start, elements in iter_element_chunks(mapping.shape):
        banks, offsets = bulk_addresses(mapping, elements)
        chunk_values = values[start : start + len(elements)]
        for bank in range(mapping.n_banks):
            mask = banks == bank
            if mask.any():
                result[bank][offsets[mask]] = chunk_values[mask]
    return result


def verify_bijective_bulk(mapping: BankMapping) -> bool:
    """Whole-array bijectivity check in vectorized form.

    Computes the global address ``bank · max_size + offset`` for every
    element and asserts all are distinct.  Practical for multi-megapixel
    frames where the scalar check would take minutes.

    Raises
    ------
    MappingError
        If any two elements collide (reported as a count).
    """
    sizes = np.array([mapping.bank_size(b) for b in range(mapping.n_banks)])
    stride = int(sizes.max())
    pieces = []
    for _, elements in iter_element_chunks(mapping.shape):
        banks, offsets = bulk_addresses(mapping, elements)
        if (offsets < 0).any() or (offsets >= sizes[banks]).any():
            raise MappingError("offset outside its bank's allocation")
        pieces.append(banks.astype(np.int64) * stride + offsets)
    global_address = pieces[0] if len(pieces) == 1 else np.concatenate(pieces)
    unique = np.unique(global_address)
    if len(unique) != len(global_address):
        raise MappingError(
            f"{len(global_address) - len(unique)} address collisions detected"
        )
    return True


def verify_bulk_matches_scalar(mapping: BankMapping, sample: int = 256) -> bool:
    """Spot-check that the vectorized path agrees with the scalar one.

    Deliberately sampling-based: it never materializes the full grid, so it
    stays cheap (and safe) even on shapes far beyond the chunk budget.
    """
    total = grid_size(mapping.shape)
    stride = max(1, total // sample) if total > sample else 1
    linear = np.arange(0, total, stride, dtype=np.int64)
    elements = np.stack(np.unravel_index(linear, mapping.shape), axis=1)
    banks, offsets = bulk_addresses(mapping, elements)
    for row, bank, offset in zip(elements, banks, offsets):
        expected = mapping.address_of(tuple(int(c) for c in row))
        if expected != (int(bank), int(offset)):
            raise MappingError(
                f"bulk/scalar disagreement at {tuple(row)}: "
                f"bulk=({bank}, {offset}), scalar={expected}"
            )
    return True
