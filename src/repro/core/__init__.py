"""Core partitioning algorithms — the paper's primary contribution.

Public surface:

* :class:`~repro.core.pattern.Pattern` — n-dimensional access patterns.
* :func:`~repro.core.transform.derive_alpha` — the constant-time transform
  construction (Section 4.1) and Theorem 1 checking.
* :func:`~repro.core.partition.minimize_nf` / :func:`partition` —
  Algorithm 1 and the bank-limit schemes (Section 4.3).
* :class:`~repro.core.mapping.BankMapping` — intra-bank addressing and
  storage-overhead accounting (Section 4.4).
* :func:`~repro.core.solver.solve` — the Problem 1 multi-objective driver.
* :class:`~repro.core.opcount.OpCounter` — arithmetic-op instrumentation.
"""

from . import cache as solve_cache
from .analysis import (
    GapSurvey,
    bounding_box_bound,
    exhaustive_min_banks,
    gap_survey,
    measured_vs_predicted,
    nf_upper_bound,
    optimality_gap,
    predict_ops_ltb,
    predict_ops_ours,
)
from .conflict import (
    ConflictProfile,
    conflict_table,
    delta_ii,
    measured_cycles,
    offset_window,
    profile_at,
    verify_conflict_free,
)
from .mapping import (
    BankMapping,
    bank_contents,
    build_mapping,
    max_overhead_elements,
    ours_overhead_elements,
)
from .cache import SolveCache
from .opcount import NULL_COUNTER, OpCounter, counting
from .partition import (
    SWEEP_ENGINES,
    PartitionSolution,
    SweepResult,
    fast_nc,
    minimize_nf,
    pairwise_differences,
    partition,
    same_size_nc,
    same_size_sweep,
    widen_solution,
)
from .packed import PackedBankMapping, packed_mapping
from .pattern import Pattern
from .solver import Objective, SolverResult, solve, solve_joint
from .transform import (
    LinearTransform,
    check_theorem1,
    derive_alpha,
    spread,
    transformed_values,
)

__all__ = [
    "SolveCache",
    "solve_cache",
    "SWEEP_ENGINES",
    "GapSurvey",
    "bounding_box_bound",
    "exhaustive_min_banks",
    "gap_survey",
    "measured_vs_predicted",
    "nf_upper_bound",
    "optimality_gap",
    "predict_ops_ltb",
    "predict_ops_ours",
    "ConflictProfile",
    "conflict_table",
    "delta_ii",
    "measured_cycles",
    "offset_window",
    "profile_at",
    "verify_conflict_free",
    "BankMapping",
    "bank_contents",
    "build_mapping",
    "max_overhead_elements",
    "ours_overhead_elements",
    "NULL_COUNTER",
    "OpCounter",
    "counting",
    "PartitionSolution",
    "SweepResult",
    "fast_nc",
    "minimize_nf",
    "pairwise_differences",
    "partition",
    "same_size_nc",
    "same_size_sweep",
    "widen_solution",
    "PackedBankMapping",
    "packed_mapping",
    "Pattern",
    "Objective",
    "SolverResult",
    "solve",
    "solve_joint",
    "LinearTransform",
    "check_theorem1",
    "derive_alpha",
    "spread",
    "transformed_values",
]
