"""Multi-objective partitioning driver (paper Problem 1).

Problem 1 asks, for a pattern ``P`` of ``m`` elements, for mappings ``B``
and ``F`` minimizing three objectives —

1. ``δP`` toward 0 (additional initiation interval),
2. ``N`` toward ``m`` (bank count),
3. ``ΔW`` toward 0 (storage overhead),

subject to address uniqueness and ``N ≤ N_max``.  The paper resolves the
interplay by fixing an *optimization order* and notes that "different
optimizing orders lead to solutions of different concerns" (e.g. a
zero-storage-overhead demand).  This module makes that knob explicit:

* :data:`Objective.LATENCY` — the paper's default order: drive ``δP`` as
  low as the constraint allows, then minimize ``N`` among the minimal-δ
  candidates (this reproduces the case study's 7-bank choice from the
  tied set {7, 9}).
* :data:`Objective.BANKS` — bank-count-first: the smallest ``N`` whose
  ``δP`` stays within an explicit latency budget ``delta_max`` (default 0,
  i.e. fully parallel).  Lets a designer trade cycles for muxes.
* :data:`Objective.STORAGE` — zero-overhead demand: restrict candidates to
  bank counts dividing ``w_{n-1}`` (overhead is exactly 0 there), then
  minimize ``δP``, then ``N``.

All policies reuse the same derived ``α``; the residual search space is
only the scalar bank count, so every policy costs ``O(N_max · m)`` beyond
Algorithm 1.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..errors import InfeasibleConstraintError
from ..obs.metrics import registry as obs_registry
from ..obs.tracer import span
from . import cache as solve_cache
from .mapping import BankMapping, ours_overhead_elements
from .opcount import OpCounter, resolve
from .partition import PartitionSolution, minimize_nf, same_size_sweep
from .pattern import Pattern


class Objective(enum.Enum):
    """Which Problem 1 objective gets priority after feasibility."""

    LATENCY = "latency"
    BANKS = "banks"
    STORAGE = "storage"


@dataclass(frozen=True)
class SolverResult:
    """A solved instance: the partitioning decision plus its consequences.

    Attributes
    ----------
    solution:
        Bank-count / transform decision.
    mapping:
        Full address mapping when an array shape was supplied, else None.
    overhead_elements:
        ``ΔW`` in elements for the supplied shape (0 when no shape given).
    """

    solution: PartitionSolution
    mapping: Optional[BankMapping]
    overhead_elements: int

    @property
    def objective_vector(self) -> Tuple[int, int, int]:
        """``(δP, N, ΔW)`` — Problem 1's objective tuple."""
        return (
            self.solution.delta_ii,
            self.solution.n_banks,
            self.overhead_elements,
        )


def _divisors(value: int) -> Tuple[int, ...]:
    return tuple(d for d in range(1, value + 1) if value % d == 0)


def _make_solution(
    pattern: Pattern, transform, n_banks: int, n_f: int, delta: int
) -> PartitionSolution:
    return PartitionSolution(
        pattern=pattern,
        transform=transform,
        n_banks=n_banks,
        n_unconstrained=n_f,
        delta_ii=delta,
        scheme="direct",
        algorithm="ours",
    )


def _finish_result(
    solution: PartitionSolution, shape: Sequence[int] | None
) -> SolverResult:
    """Attach the shape-specific consequences (mapping, overhead).

    Cheap arithmetic on top of a solution — this is the part a cache hit
    still recomputes, since it is the only part that depends on the full
    shape rather than the canonical pattern.
    """
    mapping = BankMapping(solution=solution, shape=tuple(shape)) if shape else None
    overhead = (
        ours_overhead_elements(tuple(shape), solution.n_banks) if shape else 0
    )
    return SolverResult(solution=solution, mapping=mapping, overhead_elements=overhead)


def solve(
    pattern: Pattern,
    shape: Sequence[int] | None = None,
    n_max: int | None = None,
    objective: Objective = Objective.LATENCY,
    delta_max: int = 0,
    ops: OpCounter | None = None,
    cache: bool = True,
    canon: Optional[str] = None,
) -> SolverResult:
    """Solve Problem 1 for one pattern under the chosen objective order.

    Parameters
    ----------
    pattern:
        The parallel access pattern.
    shape:
        Array shape; required for :data:`Objective.STORAGE` (overhead
        depends on ``w_{n-1}``) and for materializing a mapping.
    n_max:
        Bank-count ceiling (Problem 1 constraint 2); ``None`` = unlimited.
    objective:
        Optimization-order policy, see module docstring.
    delta_max:
        Latency budget for :data:`Objective.BANKS`: the largest acceptable
        ``δP``.  Ignored by the other policies.
    ops:
        Optional arithmetic-op instrumentation.  Instrumented calls always
        bypass the cache *and* canonicalization — op counts must reflect
        the paper's algorithm on the caller's own pattern.
    cache:
        Look up / store the solution in the canonical solve cache
        (:mod:`repro.core.cache`).  ``False`` forces a fresh solve;
        ``REPRO_SOLVE_CACHE=0`` disables caching process-wide.
    canon:
        Canonicalization mode override (``"symmetry"``/``"translation"``);
        ``None`` follows ``REPRO_SOLVE_CANON``.  Under the symmetry mode
        the solver always runs on the canonical orbit representative and
        maps the solution back into the caller's frame — cold and warm
        paths therefore return bit-identical results by construction.

    Raises
    ------
    InfeasibleConstraintError
        If the policy's candidate set is empty (bad ``n_max``, missing
        shape for STORAGE, or no ``N`` meets ``delta_max`` under BANKS).

    Examples
    --------
    >>> from repro.patterns import log_pattern
    >>> solve(log_pattern()).objective_vector
    (0, 13, 0)
    >>> solve(log_pattern(), n_max=10).solution.n_banks
    7
    """
    if ops is not None:
        # Instrumented calls charge the paper's algorithm on the caller's
        # own pattern: no canonical detour, no memoized answers.
        with span(
            "solve.solve",
            ops=resolve(ops),
            pattern=pattern.name or "?",
            objective=objective.value,
        ):
            return _solve_impl(pattern, shape, n_max, objective, delta_max, ops)

    use_cache = cache and solve_cache.enabled()
    started = time.perf_counter()
    shape_t = tuple(shape) if shape else None
    canon_pattern, op = solve_cache.canonicalize(pattern, mode=canon)
    canon_shape = op.shape_to_canonical(shape_t)
    key = solve_cache.canonical_solve_key(
        canon_pattern.offsets,
        int(canon_shape[-1]) if canon_shape else None,
        n_max,
        objective.value,
        delta_max,
    )
    if use_cache:
        hit = solve_cache.cache().get(key, canon_pattern)
        if hit is not None:
            result = _finish_result(op.solution_to_caller(hit, pattern), shape)
            obs_registry().log_histogram("solve.warm_ms").observe(
                (time.perf_counter() - started) * 1000.0
            )
            return result
    with span(
        "solve.solve",
        ops=resolve(ops),
        pattern=pattern.name or "?",
        objective=objective.value,
    ):
        canon_result = _solve_impl(
            canon_pattern, canon_shape, n_max, objective, delta_max, None
        )
    obs_registry().log_histogram("solve.cold_ms").observe(
        (time.perf_counter() - started) * 1000.0
    )
    if use_cache:
        solve_cache.cache().put(key, canon_result.solution)
    return _finish_result(
        op.solution_to_caller(canon_result.solution, pattern), shape
    )


def _solve_impl(
    pattern: Pattern,
    shape: Sequence[int] | None,
    n_max: int | None,
    objective: Objective,
    delta_max: int,
    ops: OpCounter | None,
) -> SolverResult:
    if n_max is not None and n_max < 1:
        raise InfeasibleConstraintError(f"n_max must be at least 1, got {n_max}")

    n_f, transform, _ = minimize_nf(pattern, ops=ops)

    if objective is Objective.STORAGE:
        if shape is None:
            raise InfeasibleConstraintError(
                "Objective.STORAGE needs the array shape: overhead depends on w[-1]"
            )
        ceiling = n_max if n_max is not None else shape[-1]
        candidates = [d for d in _divisors(shape[-1]) if d <= ceiling]
        if not candidates:
            raise InfeasibleConstraintError(
                f"no divisor of w[-1]={shape[-1]} is <= n_max={ceiling}"
            )
        sweep = same_size_sweep(pattern, max(candidates), transform, ops)
        best = min(candidates, key=lambda n: (sweep.conflicts_by_n[n], n))
        solution = _make_solution(
            pattern, transform, best, n_f, sweep.conflicts_by_n[best] - 1  # type: ignore[operator]
        )
    elif objective is Objective.BANKS:
        if delta_max < 0:
            raise InfeasibleConstraintError(f"delta_max must be >= 0, got {delta_max}")
        ceiling = n_max if n_max is not None else n_f
        sweep = same_size_sweep(pattern, ceiling, transform, ops)
        eligible = [
            n
            for n in range(1, ceiling + 1)
            if sweep.conflicts_by_n[n] - 1 <= delta_max  # type: ignore[operator]
        ]
        if not eligible:
            raise InfeasibleConstraintError(
                f"no bank count <= {ceiling} achieves delta_ii <= {delta_max}; "
                f"best achievable is {min(c for c in sweep.conflicts_by_n if c) - 1}"
            )
        best = eligible[0]
        solution = _make_solution(
            pattern, transform, best, n_f, sweep.conflicts_by_n[best] - 1  # type: ignore[operator]
        )
    elif n_max is None or n_f <= n_max:
        # LATENCY, unconstrained (or slack constraint): Algorithm 1's N_f is
        # optimal — δP = 0 and N_f is the smallest conflict-free count
        # reachable with this transform.
        solution = _make_solution(pattern, transform, n_f, n_f, 0)
    else:
        # LATENCY under a binding constraint: the same-size sweep; among
        # the tied minimal-δ candidates pick the smallest N (objective 2).
        sweep = same_size_sweep(pattern, n_max, transform, ops)
        chosen = sweep.best_candidates[0]
        solution = _make_solution(
            pattern, transform, chosen, n_f, sweep.conflicts_by_n[chosen] - 1  # type: ignore[operator]
        )

    return _finish_result(solution, shape)


def solve_joint(
    patterns: Sequence[Pattern],
    shape: Sequence[int] | None = None,
    n_max: int | None = None,
    objective: Objective = Objective.LATENCY,
    delta_max: int = 0,
    ops: OpCounter | None = None,
    cache: bool = True,
) -> SolverResult:
    """Partition one array accessed by *several* patterns simultaneously.

    Real kernels often read an array through more than one window in the
    same iteration — e.g. a pipelined producer/consumer pair, or an
    unrolled loop whose iterations each apply the base stencil.  A single
    physical banking must serve all of them, so the solution is computed
    for the **union** pattern: separating the union separates every member
    pattern at every offset (each member is a subset of the union at each
    of its instances).

    All patterns must share dimensionality; the returned solution's
    ``pattern`` is the union.

    Examples
    --------
    >>> from repro.patterns import se_pattern
    >>> reader = se_pattern()
    >>> shifted = se_pattern().translated((0, 1))
    >>> solve_joint([reader, shifted]).solution.n_banks >= reader.size
    True
    """
    if not patterns:
        raise InfeasibleConstraintError("solve_joint needs at least one pattern")
    merged = patterns[0]
    for extra in patterns[1:]:
        merged = merged.union(extra)
    merged = merged.with_name("|".join(p.name or "p" for p in patterns))
    return solve(
        merged,
        shape=shape,
        n_max=n_max,
        objective=objective,
        delta_max=delta_max,
        ops=ops,
        cache=cache,
    )
