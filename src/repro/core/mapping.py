"""Intra-bank address mapping and storage overhead (paper Section 4.4).

Given a bank hash ``B(x) = (α·x) % N`` over an array of shape
``(w_0, …, w_{n-1})``, the paper maps element ``x`` to in-bank offset

.. math::

    F(x) = (x_0, …, x_{n-2}, x_{new}), \\qquad
    x_{new} = \\left\\lfloor \\frac{(α·x) \\bmod (K N)}{N} \\right\\rfloor

with ``K = ⌈w_{n-1} / N⌉`` (the paper derives the formula for the
overhead-free prefix ``K = ⌊w_{n-1}/N⌋`` and pads the tail to the next
multiple of ``N``; using the ceiling folds both cases into one formula).
Only the **last** dimension grows, so the per-bank shape is
``(w_0, …, w_{n-2}, K)`` and the storage overhead is

.. math::

    ΔW = (⌈w_{n-1}/N⌉·N − w_{n-1}) · \\prod_{k=0}^{n-2} w_k

elements — at most ``(N−1)·∏_{k<n-1} w_k``, versus LTB's padding of *every*
dimension.  Uniqueness of ``(B, F)`` pairs (the paper's constraint 1) is
proved in DESIGN.md §2 and machine-checked by :func:`verify_bijective`.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from ..errors import DimensionMismatchError, MappingError
from .opcount import OpCounter, resolve
from .partition import PartitionSolution

Shape = Tuple[int, ...]
Address = Tuple[int, int]  # (bank index, linear in-bank offset)


def _validate_shape(shape: Sequence[int]) -> Shape:
    normalized = tuple(int(w) for w in shape)
    if not normalized:
        raise DimensionMismatchError("array shape must have at least one dimension")
    if any(w <= 0 for w in normalized):
        raise DimensionMismatchError(f"array shape must be positive, got {normalized}")
    return normalized


@dataclass(frozen=True)
class BankMapping:
    """Complete address translation for one partitioned array.

    Combines a :class:`PartitionSolution` (which bank?) with the Section 4.4
    offset scheme (where inside the bank?) for a concrete array shape.

    Attributes
    ----------
    solution:
        The partitioning decision (transform, bank count, scheme).
    shape:
        Original array shape ``(w_0, …, w_{n-1})``.
    """

    solution: PartitionSolution
    shape: Shape

    def __post_init__(self) -> None:
        shape = _validate_shape(self.shape)
        object.__setattr__(self, "shape", shape)
        if len(shape) != self.solution.transform.ndim:
            raise DimensionMismatchError(
                f"array is {len(shape)}-dimensional but the transform expects "
                f"{self.solution.transform.ndim} dimensions"
            )

    # -- geometry ----------------------------------------------------------

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def n_banks(self) -> int:
        return self.solution.n_banks

    @property
    def rows_per_bank(self) -> int:
        """``K = ⌈w_{n-1} / N_inner⌉``: padded last-dimension slots per bank.

        For the two-level and wide schemes the inner hash spans ``N_f``
        banks, so the padding granularity is ``N_f`` even though fewer
        physical banks exist.
        """
        return math.ceil(self.shape[-1] / self._inner_banks)

    @property
    def _folded(self) -> bool:
        """Whether several inner banks share one physical bank."""
        return self.solution.scheme in ("two-level", "wide")

    @property
    def _inner_banks(self) -> int:
        if self._folded:
            return self.solution.n_unconstrained
        return self.solution.n_banks

    def _fold_of(self, inner: int) -> Tuple[int, int]:
        """(physical bank, sub-bank slot) an inner bank folds into."""
        if self.solution.scheme == "two-level":
            return inner % self.solution.n_banks, inner // self.solution.n_banks
        if self.solution.scheme == "wide":
            return inner // self.solution.bank_ports, inner % self.solution.bank_ports
        return inner, 0

    @property
    def bank_shape(self) -> Shape:
        """Per-inner-bank shape: ``(w_0, …, w_{n-2}, K)``."""
        return self.shape[:-1] + (self.rows_per_bank,)

    @property
    def inner_bank_size(self) -> int:
        """Elements per inner bank."""
        size = 1
        for w in self.bank_shape:
            size *= w
        return size

    def bank_size(self, bank: int) -> int:
        """Elements allocated in physical bank ``bank``.

        Uniform for the direct scheme; for the folded schemes (two-level,
        wide) a physical bank holds one region per inner bank folded into
        it.
        """
        if not 0 <= bank < self.n_banks:
            raise ValueError(f"bank {bank} out of range [0, {self.n_banks})")
        if not self._folded:
            return self.inner_bank_size
        folded = sum(
            1
            for inner in range(self.solution.n_unconstrained)
            if self._fold_of(inner)[0] == bank
        )
        return folded * self.inner_bank_size

    # -- address translation -------------------------------------------------

    def _check_element(self, element: Sequence[int]) -> Tuple[int, ...]:
        vec = tuple(int(c) for c in element)
        if len(vec) != self.ndim:
            raise DimensionMismatchError(
                f"element has {len(vec)} coordinates, array is {self.ndim}-dimensional"
            )
        for c, w in zip(vec, self.shape):
            if not 0 <= c < w:
                raise MappingError(f"element {vec} outside array of shape {self.shape}")
        return vec

    def bank_of(self, element: Sequence[int], ops: OpCounter | None = None) -> int:
        """Physical bank index ``B(x)``."""
        vec = self._check_element(element)
        return self.solution.bank_of(vec, ops)

    def offset_of(self, element: Sequence[int], ops: OpCounter | None = None) -> int:
        """Linear in-bank offset ``F(x)`` (row-major over the bank shape)."""
        vec = self._check_element(element)
        counter = resolve(ops)
        value = self.solution.transform.apply(vec, ops)
        window = self.rows_per_bank * self._inner_banks
        counter.mod()
        counter.div()
        x_new = (value % window) // self._inner_banks
        coords = vec[:-1] + (x_new,)
        offset = self._ravel(coords, self.bank_shape)
        if self._folded:
            # Disambiguate which folded inner bank this element came from.
            counter.mod()
            counter.div()
            inner = value % self.solution.n_unconstrained
            _, sub_index = self._fold_of(inner)
            offset += sub_index * self.inner_bank_size
        return offset

    def address_of(self, element: Sequence[int], ops: OpCounter | None = None) -> Address:
        """``(bank, offset)`` pair for an element."""
        return self.bank_of(element, ops), self.offset_of(element, ops)

    @staticmethod
    def _ravel(coords: Sequence[int], shape: Shape) -> int:
        linear = 0
        for c, w in zip(coords, shape):
            linear = linear * w + c
        return linear

    # -- storage accounting -----------------------------------------------------

    @property
    def original_elements(self) -> int:
        """``W = ∏ w_i``: elements in the unpartitioned array."""
        total = 1
        for w in self.shape:
            total *= w
        return total

    @property
    def total_bank_elements(self) -> int:
        """``W_b``: total elements allocated across all banks."""
        if not self._folded:
            return self.n_banks * self.inner_bank_size
        return sum(self.bank_size(b) for b in range(self.n_banks))

    @property
    def overhead_elements(self) -> int:
        """``ΔW = W_b − W``: padding elements introduced by partitioning."""
        return self.total_bank_elements - self.original_elements

    # -- verification --------------------------------------------------------

    def iter_elements(self) -> Iterable[Tuple[int, ...]]:
        """All element coordinates of the array, row-major."""
        return itertools.product(*(range(w) for w in self.shape))

    def verify_bijective(self, sample_limit: int | None = None) -> bool:
        """Check constraint 1: no two elements share a ``(bank, offset)`` pair.

        Exhaustive when the array fits under ``sample_limit`` (default:
        always exhaustive); otherwise deterministically strides the array to
        cover ``sample_limit`` elements including the boundary slices where
        padding bugs hide.

        Raises
        ------
        MappingError
            On the first collision found, naming both colliding elements.
        """
        seen: Dict[Address, Tuple[int, ...]] = {}
        elements: Iterable[Tuple[int, ...]] = self.iter_elements()
        if sample_limit is not None and self.original_elements > sample_limit:
            elements = self._sampled_elements(sample_limit)
        for element in elements:
            addr = self.address_of(element)
            if addr[1] >= self.bank_size(addr[0]):
                raise MappingError(
                    f"element {element} mapped to offset {addr[1]} beyond bank "
                    f"{addr[0]} size {self.bank_size(addr[0])}"
                )
            other = seen.get(addr)
            if other is not None:
                raise MappingError(
                    f"elements {other} and {element} collide at bank={addr[0]}, "
                    f"offset={addr[1]}"
                )
            seen[addr] = element
        return True

    def _sampled_elements(self, limit: int) -> Iterable[Tuple[int, ...]]:
        """Deterministic sample biased toward the padded tail of the last axis."""
        # Always include the last 2*N slices of the last dimension (where the
        # ceil-padding logic acts) and stride the rest.
        w_last = self.shape[-1]
        tail_start = max(0, w_last - 2 * self._inner_banks)
        tail = range(tail_start, w_last)
        head_stride = max(1, (w_last * self.original_elements) // (limit * w_last))
        head = range(0, tail_start, head_stride)
        last_values = sorted(set(head) | set(tail))
        outer_ranges = [range(w) for w in self.shape[:-1]]
        # Stride outer dimensions so the total stays near the limit.
        budget_outer = max(1, limit // max(1, len(last_values)))
        outer_total = 1
        for w in self.shape[:-1]:
            outer_total *= w
        stride = max(1, outer_total // budget_outer)
        count = 0
        for idx, outer in enumerate(itertools.product(*outer_ranges)):
            if idx % stride:
                continue
            for last in last_values:
                yield outer + (last,)
                count += 1
        if count == 0:  # pragma: no cover - defensive
            yield tuple(0 for _ in self.shape)


def build_mapping(solution: PartitionSolution, shape: Sequence[int]) -> BankMapping:
    """Convenience constructor matching the paper's two-step flow."""
    return BankMapping(solution=solution, shape=_validate_shape(shape))


def ours_overhead_elements(shape: Sequence[int], n_banks: int) -> int:
    """Closed-form Section 4.4.2 overhead: pad only the last dimension.

    ``(⌈w_{n-1}/N⌉·N − w_{n-1}) · ∏_{k<n-1} w_k``.

    >>> ours_overhead_elements((640, 480), 13)
    640
    """
    shape = _validate_shape(shape)
    if n_banks <= 0:
        raise ValueError(f"n_banks must be positive, got {n_banks}")
    pad = math.ceil(shape[-1] / n_banks) * n_banks - shape[-1]
    outer = 1
    for w in shape[:-1]:
        outer *= w
    return pad * outer


def max_overhead_elements(shape: Sequence[int], n_banks: int) -> int:
    """The paper's worst case ``(N−1)·∏_{k<n-1} w_k``."""
    shape = _validate_shape(shape)
    outer = 1
    for w in shape[:-1]:
        outer *= w
    return (n_banks - 1) * outer


def bank_contents(mapping: BankMapping) -> List[List[Tuple[int, ...]]]:
    """Materialize, per physical bank, the ordered list of original elements.

    Intended for small arrays (visualization, tests); position ``i`` of bank
    ``b`` holds the element mapped to offset ``i`` or is absent for padding.
    """
    banks: List[Dict[int, Tuple[int, ...]]] = [dict() for _ in range(mapping.n_banks)]
    for element in mapping.iter_elements():
        bank, offset = mapping.address_of(element)
        if offset in banks[bank]:
            raise MappingError(
                f"collision while materializing bank {bank} offset {offset}"
            )
        banks[bank][offset] = element
    result: List[List[Tuple[int, ...]]] = []
    for bank_index, content in enumerate(banks):
        size = mapping.bank_size(bank_index)
        result.append([content.get(i, ()) for i in range(size)])
    return result
