"""Zero-overhead tail-packed mapping (paper Section 4.4.2, first option).

Section 4.4.2 offers two ways to place the tail slice
``x_{n-1} ∈ [K·N, w_{n-1})`` that does not fill a whole group of ``N``:

1. *"access them one by one and map them into banks according to their
   bank index, which causes no storage overhead but high complexity"*, or
2. pad the tail to a full group (the default :class:`BankMapping`).

The paper prefers option 2 and only analyzes its overhead; this module
implements option 1 so the trade-off can actually be measured.  The prefix
``x_{n-1} < K·N`` (with ``K = ⌊w_{n-1}/N⌋``) uses the standard overhead-free
formula; each tail element is then appended *compactly* to its bank, right
after the prefix region, in deterministic (row-major) order.  Total bank
storage equals ``W`` exactly — zero overhead — at the price of an
irregular per-bank size and a rank computation (here a precomputed lookup;
in hardware, a small ROM or serialized access) instead of pure arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

from ..errors import MappingError
from .mapping import BankMapping
from .opcount import OpCounter


@dataclass(frozen=True)
class PackedBankMapping(BankMapping):
    """A :class:`BankMapping` whose tail slice is packed, not padded.

    Only the ``"direct"`` scheme is supported (the folded schemes would
    compose the same way but the paper only discusses the direct case).
    """

    _tail_ranks: Dict[Tuple[int, ...], int] = field(
        default_factory=dict, compare=False, repr=False
    )
    _tail_counts: Dict[int, int] = field(
        default_factory=dict, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.solution.scheme != "direct":
            raise MappingError(
                "PackedBankMapping supports the direct scheme only, got "
                f"{self.solution.scheme!r}"
            )
        self._build_tail_index()

    # -- geometry overrides ----------------------------------------------------

    @property
    def prefix_rows(self) -> int:
        """``K = ⌊w_{n-1} / N⌋``: full groups handled by the closed form."""
        return self.shape[-1] // self.n_banks

    @property
    def rows_per_bank(self) -> int:  # noqa: D401 - see base class
        """Prefix rows per bank (the packed tail is accounted separately)."""
        return max(self.prefix_rows, 1) if self.prefix_rows else 0

    @property
    def prefix_bank_size(self) -> int:
        size = self.prefix_rows
        for w in self.shape[:-1]:
            size *= w
        return size

    def bank_size(self, bank: int) -> int:
        if not 0 <= bank < self.n_banks:
            raise ValueError(f"bank {bank} out of range [0, {self.n_banks})")
        return self.prefix_bank_size + self._tail_counts.get(bank, 0)

    @property
    def total_bank_elements(self) -> int:
        return sum(self.bank_size(b) for b in range(self.n_banks))

    # -- tail index ------------------------------------------------------------

    def _tail_start(self) -> int:
        return self.prefix_rows * self.n_banks

    def _build_tail_index(self) -> None:
        """Assign each tail element its compact rank within its bank."""
        import itertools

        start = self._tail_start()
        counters: Dict[int, int] = {}
        ranks: Dict[Tuple[int, ...], int] = {}
        outer = itertools.product(*(range(w) for w in self.shape[:-1]))
        for head in outer:
            for last in range(start, self.shape[-1]):
                element = head + (last,)
                bank = self.solution.bank_of(element)
                ranks[element] = counters.get(bank, 0)
                counters[bank] = counters.get(bank, 0) + 1
        object.__setattr__(self, "_tail_ranks", ranks)
        object.__setattr__(self, "_tail_counts", counters)

    # -- addressing override -------------------------------------------------------

    def offset_of(self, element: Sequence[int], ops: OpCounter | None = None) -> int:
        vec = self._check_element(element)
        if vec[-1] < self._tail_start():
            # Closed-form prefix: the Section 4.4.1 overhead-free formula
            # with K = floor(w/N).
            value = self.solution.transform.apply(vec, ops)
            window = self.prefix_rows * self.n_banks
            x_new = (value % window) // self.n_banks
            coords = vec[:-1] + (x_new,)
            bank_shape = self.shape[:-1] + (self.prefix_rows,)
            return self._ravel(coords, bank_shape)
        return self.prefix_bank_size + self._tail_ranks[vec]

    # -- reporting -----------------------------------------------------------------

    @property
    def tail_elements(self) -> int:
        """Elements handled by the packed (irregular) path."""
        return len(self._tail_ranks)


def packed_mapping(solution, shape: Sequence[int]) -> PackedBankMapping:
    """Build the zero-overhead variant of a direct-scheme solution.

    >>> from repro.core import partition
    >>> from repro.patterns import log_pattern
    >>> mapping = packed_mapping(partition(log_pattern()), (8, 20))
    >>> mapping.overhead_elements
    0
    """
    return PackedBankMapping(solution=solution, shape=tuple(int(w) for w in shape))
