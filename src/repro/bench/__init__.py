"""Continuous performance regression gating.

:mod:`repro.bench.check` compares a fresh :mod:`bench_perf_suite` run
against a committed baseline with noise-tolerant thresholds and exits
nonzero on regression — the ``repro-bench-check`` console script CI runs
on every push.
"""

from .check import compare_documents, main_bench_check

__all__ = ["compare_documents", "main_bench_check"]
