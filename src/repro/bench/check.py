"""``repro-bench-check`` — the continuous performance-regression gate.

Runs the :mod:`bench_perf_suite` workloads fresh, compares every gated
metric against the committed baseline
(``benchmarks/baselines/BENCH_baseline.json``), and exits nonzero when a
metric regressed.  Thresholds are noise-tolerant by construction:

* **Relative slack** — a timing only regresses when it exceeds
  ``baseline × slack`` (default ``--slack 2.5``, so an injected 3×
  slowdown fails while run-to-run jitter passes).
* **Absolute floor** — sub-floor deltas never regress, so a 0.2 ms →
  0.6 ms blip on a microsecond-scale workload cannot fail the gate.
* **Median-of-k** — ``--runs k`` executes the suite ``k`` times and
  gates on the per-metric median, squeezing out scheduler noise.

Examples::

    repro-bench-check                          # gate against the baseline
    repro-bench-check --quick --slack 6        # CI: one fast, tolerant pass
    repro-bench-check --runs 3 --report r.json # careful local run
    repro-bench-check --update-baseline        # re-baseline after a perf PR

Exit status: ``0`` clean, ``1`` regression(s), ``2`` usage/baseline
problems.  Throughput metrics (``rps``) gate in the opposite direction —
a regression is the candidate falling *below* ``baseline / slack``.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import statistics
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

#: Stable ``sys.modules`` key for the loaded suite — tests monkeypatch the
#: module under this key to inject slowdowns without touching the file.
SUITE_MODULE_KEY = "repro_bench_perf_suite"

_REPO_ROOT = Path(__file__).resolve().parents[3]

#: Default committed baseline location (repo-relative).
DEFAULT_BASELINE = _REPO_ROOT / "benchmarks" / "baselines" / "BENCH_baseline.json"

#: Default suite script location (repo-relative).
DEFAULT_SUITE = _REPO_ROOT / "benchmarks" / "bench_perf_suite.py"

#: Gated metrics: (section, metric, kind, floor).  ``kind`` is ``"time"``
#: (lower is better; floor in the metric's own unit) or ``"throughput"``
#: (higher is better).  The serve rows get generous floors — single-request
#: latencies against a live server are the noisiest numbers in the suite.
CHECKS: List[Dict[str, Any]] = [
    {"section": "simulate", "metric": "scalar_s", "kind": "time", "floor": 0.005},
    {"section": "simulate", "metric": "vectorized_s", "kind": "time", "floor": 0.005},
    {"section": "solve", "metric": "cold_s", "kind": "time", "floor": 0.005},
    {"section": "solve", "metric": "warm_s", "kind": "time", "floor": 0.005},
    {"section": "sweep", "metric": "scalar_s", "kind": "time", "floor": 0.005},
    {"section": "sweep", "metric": "vectorized_s", "kind": "time", "floor": 0.005},
    {"section": "ltb_search", "metric": "scalar_s", "kind": "time", "floor": 0.005},
    {"section": "ltb_search", "metric": "vectorized_s", "kind": "time", "floor": 0.005},
    {"section": "baseline_sim", "metric": "scalar_s", "kind": "time", "floor": 0.005},
    {"section": "baseline_sim", "metric": "vectorized_s", "kind": "time", "floor": 0.005},
    # Native-engine columns are emitted only when the compiled extension is
    # built, so they gate as ``optional``: absent from the candidate →
    # skipped (with a visible reason), present → held to the same slack as
    # every other timing.
    {"section": "simulate", "metric": "native_s", "kind": "time", "floor": 0.005, "optional": True},
    {"section": "ltb_search", "metric": "native_s", "kind": "time", "floor": 0.005, "optional": True},
    {"section": "baseline_sim", "metric": "native_s", "kind": "time", "floor": 0.005, "optional": True},
    {"section": "serve", "metric": "p50_ms", "kind": "time", "floor": 25.0},
    {"section": "serve", "metric": "rps", "kind": "throughput", "floor": 50.0},
    {"section": "dag", "metric": "flat_wall_s", "kind": "time", "floor": 0.01},
    {"section": "dag", "metric": "dag_wall_s", "kind": "time", "floor": 0.01},
    {"section": "dag", "metric": "dag_rows_per_s", "kind": "throughput", "floor": 100.0},
    # Zipf warm-traffic rows: latency like the serve rows (noisy, generous
    # floors), plus cold_solves with a zero floor — canonicalization quietly
    # weakening (more distinct solves for the same traffic) is a perf
    # regression even when each individual solve stays fast.
    {"section": "zipf", "metric": "p50_ms", "kind": "time", "floor": 25.0},
    {"section": "zipf", "metric": "p99_ms", "kind": "time", "floor": 50.0},
    {"section": "zipf", "metric": "cold_solves", "kind": "time", "floor": 0.0},
    # Cluster rows: warm throughput through the digest-routing front must
    # not collapse, and no single shard may become a latency hot spot.
    # Floors are generous — multi-process timings on shared CI runners are
    # the noisiest numbers in the suite.
    {"section": "cluster", "metric": "warm_rps", "kind": "throughput", "floor": 20.0},
    {"section": "cluster", "metric": "max_shard_p99_ms", "kind": "time", "floor": 50.0},
]


def load_suite(path: Optional[Path] = None):
    """Import ``bench_perf_suite.py`` under a stable module key."""
    if SUITE_MODULE_KEY in sys.modules:
        return sys.modules[SUITE_MODULE_KEY]
    suite_path = Path(path) if path is not None else DEFAULT_SUITE
    if not suite_path.is_file():
        raise FileNotFoundError(f"bench suite not found: {suite_path}")
    spec = importlib.util.spec_from_file_location(SUITE_MODULE_KEY, suite_path)
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    sys.modules[SUITE_MODULE_KEY] = module
    spec.loader.exec_module(module)
    return module


def run_candidate(
    preset: str,
    repeat: int,
    runs: int,
    suite_path: Optional[Path] = None,
) -> Dict[str, Any]:
    """Run the suite ``runs`` times; gate metrics become per-metric medians."""
    module = load_suite(suite_path)
    documents = [module.run_suite(preset, repeat=repeat) for _ in range(runs)]
    if len(documents) == 1:
        return documents[0]
    merged = documents[0]
    for check in CHECKS:
        section = check["section"]
        metric = check["metric"]
        for i, row in enumerate(merged.get(section, [])):
            samples = [
                doc[section][i][metric]
                for doc in documents
                if metric in doc.get(section, [{}] * (i + 1))[i]
            ]
            if samples:
                row[metric] = statistics.median(samples)
    merged["median_of"] = len(documents)
    return merged


def _rows_by_workload(doc: Dict[str, Any], section: str) -> Dict[str, Dict[str, Any]]:
    return {row["workload"]: row for row in doc.get(section, []) if "workload" in row}


def compare_documents(
    baseline: Dict[str, Any],
    candidate: Dict[str, Any],
    slack: float = 2.5,
) -> Dict[str, Any]:
    """Evaluate every gated metric; returns the full check report.

    A ``time`` metric regresses when ``candidate > baseline * slack`` AND
    the absolute delta exceeds the check's floor; ``throughput`` is the
    mirror image (``candidate < baseline / slack`` and delta over floor).
    A workload present in the baseline but missing from the candidate is a
    regression (the bench silently disappearing must not pass the gate) —
    except for checks marked ``optional``, which are *skipped* when absent
    from the candidate (the native engine's columns only exist on trees
    with the extension built) but still gate whenever present.
    """
    if slack <= 1.0:
        raise ValueError(f"slack must be > 1.0, got {slack}")
    checks: List[Dict[str, Any]] = []
    for check in CHECKS:
        section, metric = check["section"], check["metric"]
        kind, floor = check["kind"], check["floor"]
        optional = bool(check.get("optional"))
        base_rows = _rows_by_workload(baseline, section)
        cand_rows = _rows_by_workload(candidate, section)
        for workload, base_row in base_rows.items():
            if metric not in base_row:
                continue
            entry: Dict[str, Any] = {
                "section": section,
                "workload": workload,
                "metric": metric,
                "kind": kind,
                "baseline": base_row[metric],
            }
            cand_row = cand_rows.get(workload)
            if cand_row is None or metric not in cand_row:
                if optional:
                    entry.update(
                        candidate=None,
                        regression=False,
                        skipped=True,
                        reason=(
                            "optional metric absent from the candidate run "
                            "(native extension not built here)"
                        ),
                    )
                else:
                    entry.update(
                        candidate=None,
                        regression=True,
                        reason="workload missing from the candidate run",
                    )
                checks.append(entry)
                continue
            base = float(base_row[metric])
            cand = float(cand_row[metric])
            entry["candidate"] = cand
            entry["ratio"] = (cand / base) if base else None
            if kind == "throughput":
                regressed = cand < base / slack and (base - cand) > floor
                reason = (
                    f"{metric} fell {base:.6g} -> {cand:.6g} "
                    f"(limit {base / slack:.6g})"
                )
            else:
                regressed = cand > base * slack and (cand - base) > floor
                reason = (
                    f"{metric} rose {base:.6g} -> {cand:.6g} "
                    f"(limit {base * slack:.6g})"
                )
            entry["regression"] = regressed
            if regressed:
                entry["reason"] = reason
            checks.append(entry)
    regressions = [c for c in checks if c["regression"]]
    skipped = [c for c in checks if c.get("skipped")]
    return {
        "slack": slack,
        "checks": checks,
        "checked": len(checks),
        "regressions": len(regressions),
        "skipped": len(skipped),
        "ok": not regressions,
    }


def _print_report(report: Dict[str, Any]) -> None:
    for entry in report["checks"]:
        if entry["regression"]:
            print(
                f"REGRESSION {entry['section']}/{entry['workload']} "
                f"{entry['metric']}: {entry.get('reason', 'missing')}"
            )
    for entry in report["checks"]:
        if entry.get("skipped"):
            print(
                f"skipped {entry['section']}/{entry['workload']} "
                f"{entry['metric']}: {entry['reason']}"
            )
    print(
        f"bench-check: {report['checked']} metric(s) checked, "
        f"{report['regressions']} regression(s), "
        f"{report.get('skipped', 0)} optional skipped "
        f"(slack {report['slack']:g}x)"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench-check",
        description=(
            "Run the perf suite and fail (exit 1) when any gated metric "
            "regressed past the committed baseline."
        ),
    )
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE),
        metavar="PATH",
        help="committed baseline document (default: benchmarks/baselines/)",
    )
    parser.add_argument(
        "--suite",
        default=None,
        metavar="PATH",
        help="bench suite script (default: benchmarks/bench_perf_suite.py)",
    )
    parser.add_argument(
        "--preset",
        choices=["micro", "small", "full"],
        default=None,
        help="workload preset (default: whatever the baseline was run with)",
    )
    parser.add_argument(
        "--repeat", type=int, default=3, help="best-of repetitions per timing"
    )
    parser.add_argument(
        "--runs",
        type=int,
        default=1,
        metavar="K",
        help="suite executions; metrics gate on the per-metric median",
    )
    parser.add_argument(
        "--slack",
        type=float,
        default=2.5,
        help="relative tolerance: fail only past baseline*slack (default 2.5)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="fastest useful pass: --repeat 1 --runs 1 (CI per-push mode)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write the fresh run to the baseline path instead of gating",
    )
    parser.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="also write the full check report as JSON to PATH",
    )
    return parser


def main_bench_check(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``repro-bench-check`` console script."""
    args = build_parser().parse_args(argv)
    if args.quick:
        args.repeat = 1
        args.runs = 1
    if args.runs < 1 or args.repeat < 1:
        print("bench-check: --runs and --repeat must be positive", file=sys.stderr)
        return 2

    baseline_path = Path(args.baseline)
    suite_path = Path(args.suite) if args.suite else None

    if args.update_baseline:
        preset = args.preset or "small"
        doc = run_candidate(preset, args.repeat, args.runs, suite_path)
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        baseline_path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"baseline updated: {baseline_path} (preset {preset})")
        return 0

    if not baseline_path.is_file():
        print(
            f"bench-check: no baseline at {baseline_path} — run with "
            "--update-baseline first",
            file=sys.stderr,
        )
        return 2
    try:
        baseline = json.loads(baseline_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"bench-check: unreadable baseline: {exc}", file=sys.stderr)
        return 2

    preset = args.preset or baseline.get("preset", "small")
    if preset != baseline.get("preset"):
        print(
            f"bench-check: preset {preset!r} does not match the baseline's "
            f"{baseline.get('preset')!r}; comparing anyway (shared workloads only)"
        )
    candidate = run_candidate(preset, args.repeat, args.runs, suite_path)
    report = compare_documents(baseline, candidate, slack=args.slack)
    report["baseline_path"] = str(baseline_path)
    report["preset"] = preset
    report["runs"] = args.runs
    report["repeat"] = args.repeat
    report["candidate"] = candidate
    if args.report:
        Path(args.report).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"report written to {args.report}")
    _print_report(report)
    return 0 if report["ok"] else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main_bench_check())
