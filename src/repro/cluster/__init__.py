"""repro.cluster — sharded multi-worker serving over a store cluster.

The paper's core idea is a mapping function that routes each array element
to the one memory bank that can answer it conflict-free.  This package
applies the same idea one level up: the *solve-key space* (canonical
digests, :meth:`repro.serve.protocol.SolveSpec.canonical_digest`) is
consistent-hashed across N :class:`~repro.serve.server.PartitionServer`
worker processes so the service itself becomes a banked memory —

* :class:`~repro.cluster.ring.HashRing` — the bank-mapping function:
  deterministic digest → shard placement with minimal movement when a
  shard dies (keys re-route to ring successors, everything else stays).
* :class:`~repro.cluster.supervisor.ClusterSupervisor` — spawns one
  worker process per shard (each with its own port and
  :class:`~repro.serve.store.SolutionStore` directory), respawns the dead,
  and backfills a respawned shard's store from its peers.
* :class:`~repro.cluster.router.ClusterRouter` — the front-end process
  owning the public socket; routes ``/solve``/``/simulate`` bodies by
  canonical digest over the ring, fails over to ring successors when a
  shard is down, and aggregates every worker's metrics registry into one
  ``/metrics`` + ``/debug/cluster`` view.
* :class:`~repro.cluster.peers.PeerFetcher` /
  :class:`~repro.cluster.peers.PeerReplicator` — the tiered store's
  third tier: a worker that misses memory and local disk asks the ring's
  other replica holders over HTTP (``GET /peer/solution/<digest>``)
  before solving, and replicates fresh artifacts to its successor so any
  worker answers any warm key.

Artifacts are content-addressed and serialized canonically
(``json.dumps(..., indent=2, sort_keys=True)``), so a peer-fetched,
replicated, or backfilled artifact is byte-identical to the one the
owning shard wrote — the cluster-wide invariant the tests and the
``cluster[]`` bench section assert.

:class:`~repro.cluster.router.LocalCluster` embeds the whole thing
(supervisor + router thread) in a synchronous program, mirroring
:func:`repro.serve.server.serve_in_thread`; ``repro-cluster`` (and
``repro-serve --shards N``) runs it from the command line.  Architecture,
failure model, and the ops runbook live in ``docs/CLUSTER.md``.
"""

from .mapfile import ClusterMap, read_cluster_map, write_cluster_map
from .peers import PeerFetcher, PeerReplicator
from .ring import HashRing
from .router import ClusterRouter, LocalCluster, cluster_in_thread
from .supervisor import ClusterSupervisor

__all__ = [
    "ClusterMap",
    "ClusterRouter",
    "ClusterSupervisor",
    "HashRing",
    "LocalCluster",
    "PeerFetcher",
    "PeerReplicator",
    "cluster_in_thread",
    "read_cluster_map",
    "write_cluster_map",
]
