"""``repro-cluster`` — run a sharded partitioning cluster.

Examples::

    repro-cluster --shards 4 --store-root /var/lib/repro-cluster
    repro-cluster --shards 4 --port 0 --port-file port.txt &
    curl -s -X POST localhost:8642/solve -d '{"benchmark": "log", "n_max": 10}'

One front process (this one) owns the public socket and routes by
canonical digest; ``--shards N`` worker processes each serve their own
store shard under ``<store-root>/shard-<i>/`` on ephemeral local ports.
``--port-file`` writes the *front's* bound port.  SIGINT/SIGTERM stop the
front, then SIGTERM the workers; worker stores are durable, so the fleet
restarts warm.  ``repro-serve --shards N`` is an alias for this command.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
import tempfile
from pathlib import Path
from typing import Optional, Sequence

from .router import ClusterRouter
from .supervisor import ClusterSupervisor


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cluster",
        description=(
            "Serve memory-partitioning solves from a sharded multi-worker "
            "cluster: a digest-routing front over N store-shard workers "
            "with tiered peer lookup and automatic respawn."
        ),
    )
    parser.add_argument(
        "--shards", type=int, default=4, metavar="N", help="worker process count"
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8642, help="front TCP port (0 = ephemeral)"
    )
    parser.add_argument(
        "--port-file",
        metavar="PATH",
        default=None,
        help="write the front's bound port number to PATH after startup",
    )
    parser.add_argument(
        "--store-root",
        metavar="DIR",
        default=None,
        help=(
            "root directory for per-shard stores and the cluster map "
            "(omit for a temporary directory removed on exit)"
        ),
    )
    parser.add_argument(
        "--store-max",
        type=int,
        default=4096,
        help="per-shard store capacity in artifacts",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=0,
        help="solve-tier worker processes per shard (<=1: solve in-process)",
    )
    parser.add_argument(
        "--batch-max",
        type=int,
        default=32,
        help="max distinct solves per micro-batch, per shard",
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        default=256,
        help="per-shard backpressure bound on queued+in-flight solves",
    )
    parser.add_argument(
        "--retry-after",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="Retry-After hint on 429/503 responses",
    )
    parser.add_argument(
        "--prefetch",
        action="store_true",
        help="enable predictive store warming on every shard",
    )
    parser.add_argument(
        "--prefetch-cap",
        type=int,
        default=64,
        metavar="N",
        help="per-shard bound on queued prefetch solves",
    )
    parser.add_argument(
        "--no-respawn",
        action="store_true",
        help="do not respawn dead workers (chaos/debugging aid)",
    )
    parser.add_argument(
        "--debug",
        action="store_true",
        help="enable worker /debug/* endpoints (the front's /debug/cluster "
        "is always on)",
    )
    return parser


async def _run(args: argparse.Namespace, store_root: str) -> int:
    supervisor = ClusterSupervisor(
        shards=args.shards,
        store_root=store_root,
        host=args.host,
        store_max_entries=args.store_max,
        jobs=args.jobs,
        batch_max=args.batch_max,
        max_pending=args.max_pending,
        retry_after_s=args.retry_after,
        prefetch=args.prefetch,
        prefetch_cap=args.prefetch_cap,
        worker_debug=args.debug,
        respawn=not args.no_respawn,
    )
    router = ClusterRouter(
        supervisor, host=args.host, port=args.port, retry_after_s=args.retry_after
    )
    loop = asyncio.get_running_loop()
    try:
        await loop.run_in_executor(None, supervisor.start)
        await router.start()
        if args.port_file:
            Path(args.port_file).write_text(f"{router.port}\n")
        print(
            f"repro-cluster front on {router.host}:{router.port} "
            f"({args.shards} shards, store root: {store_root})",
            flush=True,
        )

        stop = asyncio.Event()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except NotImplementedError:  # pragma: no cover - non-unix
                signal.signal(sig, lambda *_: stop.set())

        serve_task = loop.create_task(router.serve_forever())
        await stop.wait()
        print("repro-cluster: shutting down", flush=True)
        serve_task.cancel()
        try:
            await serve_task
        except asyncio.CancelledError:
            pass
    finally:
        await router.stop()
        await loop.run_in_executor(None, supervisor.stop)
    return 0


def main_cluster(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``repro-cluster`` console script."""
    args = build_parser().parse_args(argv)
    try:
        if args.store_root is None:
            with tempfile.TemporaryDirectory(prefix="repro-cluster-") as tmp:
                return asyncio.run(_run(args, tmp))
        return asyncio.run(_run(args, args.store_root))
    except KeyboardInterrupt:  # pragma: no cover - double ^C during shutdown
        return 130


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main_cluster())
