"""Consistent hashing over the canonical-digest space.

The single-process store already keys artifacts by
:func:`repro.core.cache.stable_digest` — a 256-bit content address.  The
ring places each shard at ``replicas`` pseudo-random points on the
``[0, 2**64)`` circle (virtual nodes, derived from ``sha256`` of the
shard id so placement is deterministic across processes) and maps a
digest to the first shard point at or after the digest's own position.

Why a ring and not ``int(digest, 16) % n``?  The modulo map reshuffles
almost every key when ``n`` changes; the ring moves only the keys whose
arc belonged to the dead shard — exactly the paper's "minimal storage
overhead" criterion applied to shard placement.  :meth:`HashRing.preference`
returns the full ordered walk (owner first, then successors), which is
simultaneously the failover order for the router and the replica
placement order for :class:`~repro.cluster.peers.PeerReplicator`.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Collection, Iterable, List, Optional, Tuple

#: Virtual nodes per shard; 64 keeps the max/mean arc ratio comfortably
#: under 1.5 for small clusters while the ring stays a few-KB structure.
DEFAULT_REPLICAS = 64

_SPACE_BITS = 64
_SPACE_MASK = (1 << _SPACE_BITS) - 1


def _point(label: str) -> int:
    """A deterministic position on the circle for a virtual-node label."""
    raw = hashlib.sha256(label.encode("ascii")).digest()
    return int.from_bytes(raw[:8], "big")


def digest_position(digest: str) -> int:
    """Where a canonical digest sits on the circle.

    The digest is already a uniform hash, so its leading 64 bits *are*
    the position; anything that is not a hex digest (defensive — the
    router sees arbitrary bodies) is re-hashed instead of rejected.
    """
    try:
        return int(digest[:16], 16) & _SPACE_MASK
    except (ValueError, TypeError):
        return _point(f"key:{digest!r}")


class HashRing:
    """An immutable consistent-hash ring over integer shard ids."""

    def __init__(
        self, shard_ids: Iterable[int], replicas: int = DEFAULT_REPLICAS
    ) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be positive, got {replicas}")
        self.shard_ids: Tuple[int, ...] = tuple(sorted(set(int(s) for s in shard_ids)))
        if not self.shard_ids:
            raise ValueError("a ring needs at least one shard")
        self.replicas = replicas
        points: List[Tuple[int, int]] = []
        for shard in self.shard_ids:
            for vnode in range(replicas):
                points.append((_point(f"shard:{shard}:vnode:{vnode}"), shard))
        # Ties (astronomically unlikely) break toward the lower shard id so
        # every process computes the identical ring.
        points.sort()
        self._positions = [p for p, _ in points]
        self._owners = [s for _, s in points]

    def __len__(self) -> int:
        return len(self.shard_ids)

    def owner(self, digest: str) -> int:
        """The shard that owns ``digest`` with every shard alive."""
        return self._owners[self._start(digest)]

    def preference(
        self, digest: str, alive: Optional[Collection[int]] = None
    ) -> List[int]:
        """Distinct shards in ring order from ``digest``'s position.

        The first entry is the owner, the rest are its successors — the
        order in which the router fails over and the replicator places
        copies.  ``alive`` filters the walk without changing its order,
        so a dead owner's keys land on the exact shard that holds their
        replica.
        """
        allowed = None if alive is None else {int(s) for s in alive}
        order: List[int] = []
        seen = set()
        start = self._start(digest)
        for i in range(len(self._owners)):
            shard = self._owners[(start + i) % len(self._owners)]
            if shard in seen:
                continue
            seen.add(shard)
            if allowed is None or shard in allowed:
                order.append(shard)
            if len(seen) == len(self.shard_ids):
                break
        return order

    def _start(self, digest: str) -> int:
        index = bisect.bisect_left(self._positions, digest_position(digest))
        return index % len(self._positions)
