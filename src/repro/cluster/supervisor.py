"""Worker lifecycle: spawn, watch, respawn, backfill.

The supervisor owns N worker processes — each a stock ``repro-serve``
(:mod:`repro.serve.cli`) started with ``--shard-id``/``--cluster-map`` so
its peer API and replication tiers come up — plus the cluster map file
that tells everyone where everyone listens.  Workers bind ephemeral ports
and report them through port files; the supervisor collects them and
rewrites the map atomically, so peers and the router always converge on
the current topology.

Failure model (the part the chaos bench exercises):

1. a worker dies (crash, OOM, SIGKILL) — the monitor thread notices
   within one poll interval and, with ``respawn=True``, relaunches it on
   a fresh port against the *same store shard directory* (artifacts are
   durable; the respawned worker reopens them);
2. during the dead window the router's aliveness view excludes the shard,
   so its keys re-route to ring successors — which hold the replicas the
   dead shard's :class:`~repro.cluster.peers.PeerReplicator` pushed, or
   fetch/solve on demand;
3. once the respawned worker is serving, :meth:`ClusterSupervisor.backfill`
   copies over every artifact the ring says the shard should own but its
   store lacks (keys solved elsewhere during the window).  Backfill is
   idempotent: artifacts are content-addressed and canonically
   serialized, so re-running it rewrites identical bytes and changes
   nothing.

Everything is observable: ``cluster.worker.*`` counters (spawns, deaths,
respawns), ``cluster.backfill.*`` (scanned/copied/errors), and
:meth:`describe` feeds the router's ``/debug/cluster`` endpoint.
"""

from __future__ import annotations

import itertools
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..obs.metrics import registry as obs_registry
from ..serve.client import ServeClient, ServeError
from .mapfile import write_cluster_map
from .ring import DEFAULT_REPLICAS, HashRing

#: How often the monitor thread polls worker liveness (seconds).
MONITOR_POLL_S = 0.15

#: How long one worker may take to write its port file.
SPAWN_TIMEOUT_S = 60.0


class _Worker:
    """Book-keeping for one shard's process."""

    def __init__(self, shard: int) -> None:
        self.shard = shard
        self.proc: Optional[subprocess.Popen] = None
        self.port: Optional[int] = None
        self.restarts = 0
        self.started_at = 0.0
        self.last_exit: Optional[int] = None
        self.death_handled = False

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None


class ClusterSupervisor:
    """Spawn and supervise one ``repro-serve`` worker per shard."""

    def __init__(
        self,
        shards: int,
        store_root: Union[str, Path],
        host: str = "127.0.0.1",
        store_max_entries: int = 4096,
        jobs: int = 0,
        batch_max: int = 32,
        max_pending: int = 256,
        retry_after_s: float = 1.0,
        prefetch: bool = False,
        prefetch_cap: int = 64,
        worker_debug: bool = True,
        respawn: bool = True,
        auto_backfill: bool = True,
        ring_replicas: int = DEFAULT_REPLICAS,
        spawn_timeout_s: float = SPAWN_TIMEOUT_S,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be positive, got {shards}")
        self.shards = shards
        self.host = host
        self.store_root = Path(store_root)
        self.store_root.mkdir(parents=True, exist_ok=True)
        self.map_path = self.store_root / "cluster-map.json"
        self.ring = HashRing(range(shards), replicas=ring_replicas)
        self.respawn = respawn
        self.auto_backfill = auto_backfill
        self.spawn_timeout_s = spawn_timeout_s
        self._worker_args = dict(
            store_max_entries=store_max_entries,
            jobs=jobs,
            batch_max=batch_max,
            max_pending=max_pending,
            retry_after_s=retry_after_s,
            prefetch=prefetch,
            prefetch_cap=prefetch_cap,
            worker_debug=worker_debug,
        )
        self._workers: Dict[int, _Worker] = {
            shard: _Worker(shard) for shard in range(shards)
        }
        self._lock = threading.RLock()
        self._stopping = False
        self._monitor_thread: Optional[threading.Thread] = None
        self._rr = itertools.count()
        self._started_at = 0.0

    # -- topology queries (the router's view) ------------------------------

    def shard_dir(self, shard: int) -> Path:
        return self.store_root / f"shard-{shard}"

    def addr(self, shard: int) -> Tuple[str, int]:
        """Current (host, port) of a shard; raises ``KeyError`` if unknown."""
        with self._lock:
            worker = self._workers[shard]
            if worker.port is None:
                raise KeyError(f"shard {shard} has no bound port yet")
            return self.host, worker.port

    def alive_shards(self) -> List[int]:
        with self._lock:
            return [s for s, w in self._workers.items() if w.alive]

    def preference(self, digest: Optional[str]) -> List[int]:
        """Failover order for a request: live shards, owner first.

        ``digest=None`` (a request whose body carries no solve identity —
        ``/table1``, unparseable bodies the worker must answer 400 for)
        round-robins across live shards instead.
        """
        alive = self.alive_shards()
        if not alive:
            return []
        if digest is None:
            start = next(self._rr) % len(alive)
            return alive[start:] + alive[:start]
        return self.ring.preference(digest, alive=alive)

    def describe(self) -> Dict[str, Any]:
        """Topology snapshot for ``/debug/cluster``."""
        now = time.monotonic()
        with self._lock:
            return {
                "shards": self.shards,
                "host": self.host,
                "map_path": str(self.map_path),
                "ring": {
                    "replicas": self.ring.replicas,
                    "shard_ids": list(self.ring.shard_ids),
                },
                "uptime_s": now - self._started_at if self._started_at else 0.0,
                "workers": [
                    {
                        "shard": w.shard,
                        "pid": w.proc.pid if w.proc is not None else None,
                        "port": w.port,
                        "alive": w.alive,
                        "restarts": w.restarts,
                        "uptime_s": (now - w.started_at) if w.alive else 0.0,
                        "last_exit": w.last_exit,
                        "store_dir": str(self.shard_dir(w.shard)),
                    }
                    for w in self._workers.values()
                ],
            }

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Spawn every worker, wait for all ports, publish the map."""
        registry = obs_registry()
        with self._lock:
            for shard in range(self.shards):
                self._spawn(shard)
        for shard in range(self.shards):
            self._await_port(shard)
        self._write_map()
        self._started_at = time.monotonic()
        registry.gauge("cluster.shards").set(self.shards)
        self._monitor_thread = threading.Thread(
            target=self._monitor, name="repro-cluster-monitor", daemon=True
        )
        self._monitor_thread.start()

    def stop(self) -> None:
        """SIGTERM every worker, reap, SIGKILL stragglers."""
        self._stopping = True
        if self._monitor_thread is not None:
            self._monitor_thread.join(timeout=5.0)
            self._monitor_thread = None
        with self._lock:
            workers = list(self._workers.values())
        for worker in workers:
            if worker.alive:
                worker.proc.send_signal(signal.SIGTERM)
        deadline = time.monotonic() + 15.0
        for worker in workers:
            if worker.proc is None:
                continue
            remaining = max(0.1, deadline - time.monotonic())
            try:
                worker.proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck worker
                worker.proc.kill()
                worker.proc.wait(timeout=5.0)
            worker.last_exit = worker.proc.returncode

    def kill(self, shard: int, sig: int = signal.SIGKILL) -> None:
        """Chaos hook: kill one worker (the monitor will respawn it)."""
        with self._lock:
            worker = self._workers[shard]
            if worker.alive:
                worker.proc.send_signal(sig)

    def __enter__(self) -> "ClusterSupervisor":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.stop()

    # -- spawning ----------------------------------------------------------

    def _port_file(self, shard: int) -> Path:
        return self.store_root / f"shard-{shard}.port"

    def _log_file(self, shard: int) -> Path:
        return self.store_root / f"shard-{shard}.log"

    def _spawn(self, shard: int) -> None:
        """Launch one worker process (caller holds the lock)."""
        worker = self._workers[shard]
        port_file = self._port_file(shard)
        try:
            port_file.unlink()
        except OSError:
            pass
        args = self._worker_args
        command = [
            sys.executable,
            "-m",
            "repro.serve.cli",
            "--host", self.host,
            "--port", "0",
            "--port-file", str(port_file),
            "--store-dir", str(self.shard_dir(shard)),
            "--store-max", str(args["store_max_entries"]),
            "--jobs", str(args["jobs"]),
            "--batch-max", str(args["batch_max"]),
            "--max-pending", str(args["max_pending"]),
            "--retry-after", str(args["retry_after_s"]),
            "--shard-id", str(shard),
            "--cluster-map", str(self.map_path),
        ]
        if args["prefetch"]:
            command += ["--prefetch", "--prefetch-cap", str(args["prefetch_cap"])]
        if args["worker_debug"]:
            command.append("--debug")
        # Workers must import this exact checkout even when the package is
        # not installed (tests, benches): prepend our package root.
        env = dict(os.environ)
        package_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = (
            package_root + (os.pathsep + existing if existing else "")
        )
        log = open(self._log_file(shard), "ab")
        try:
            worker.proc = subprocess.Popen(
                command, stdout=log, stderr=subprocess.STDOUT, env=env
            )
        finally:
            log.close()
        worker.port = None
        worker.started_at = time.monotonic()
        worker.death_handled = False
        obs_registry().counter("cluster.worker.spawns").inc()

    def _await_port(self, shard: int) -> int:
        """Block until a freshly spawned worker reports its port."""
        worker = self._workers[shard]
        port_file = self._port_file(shard)
        deadline = time.monotonic() + self.spawn_timeout_s
        while time.monotonic() < deadline:
            if port_file.exists():
                text = port_file.read_text().strip()
                if text:
                    worker.port = int(text)
                    return worker.port
            if not worker.alive:
                raise RuntimeError(
                    f"shard {shard} worker exited {worker.proc.returncode} "
                    f"during startup (see {self._log_file(shard)})"
                )
            time.sleep(0.02)
        raise RuntimeError(
            f"shard {shard} worker did not report a port within "
            f"{self.spawn_timeout_s:.0f}s"
        )

    def _write_map(self) -> None:
        with self._lock:
            shards = {
                w.shard: (self.host, w.port)
                for w in self._workers.values()
                if w.port is not None
            }
        write_cluster_map(self.map_path, shards)

    # -- the monitor -------------------------------------------------------

    def _monitor(self) -> None:
        registry = obs_registry()
        while not self._stopping:
            time.sleep(MONITOR_POLL_S)
            for shard in range(self.shards):
                with self._lock:
                    worker = self._workers[shard]
                    if (
                        worker.proc is None
                        or worker.alive
                        or worker.death_handled
                        or self._stopping
                    ):
                        continue
                    worker.last_exit = worker.proc.returncode
                    worker.death_handled = True
                    registry.counter("cluster.worker.deaths").inc()
                    if not self.respawn:
                        continue
                    worker.restarts += 1
                    registry.counter("cluster.respawns").inc()
                    self._spawn(shard)
                try:
                    self._await_port(shard)
                except RuntimeError:  # pragma: no cover - respawn crash-loop
                    registry.counter("cluster.worker.respawn_failures").inc()
                    continue
                self._write_map()
                if self.auto_backfill:
                    try:
                        self.backfill(shard)
                    except Exception:  # noqa: BLE001 - never kill the monitor
                        registry.counter("cluster.backfill.errors").inc()

    def wait_all_alive(self, timeout_s: float = 30.0) -> bool:
        """Block until every shard is serving again (tests/benches)."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            with self._lock:
                if all(
                    w.alive and w.port is not None
                    for w in self._workers.values()
                ):
                    return True
            time.sleep(0.02)
        return False

    # -- backfill ----------------------------------------------------------

    def backfill(self, shard: int) -> Dict[str, int]:
        """Copy ring-owned artifacts a shard is missing from its peers.

        Scans every *other* live shard's digest list, keeps the digests
        whose ring owner is ``shard``, and PUTs the ones absent locally
        via the peer API.  Idempotent by construction — re-running copies
        nothing new and rewrites identical bytes for anything raced.
        """
        registry = obs_registry()
        stats = {"scanned": 0, "copied": 0, "errors": 0}
        try:
            target_host, target_port = self.addr(shard)
        except KeyError:
            return stats
        with ServeClient(host=target_host, port=target_port, timeout=30.0) as target:
            try:
                have = set(target.peer_digests())
            except (ServeError, OSError):
                stats["errors"] += 1
                registry.counter("cluster.backfill.errors").inc()
                return stats
            for peer_shard in self.alive_shards():
                if peer_shard == shard:
                    continue
                try:
                    peer_host, peer_port = self.addr(peer_shard)
                except KeyError:
                    continue
                with ServeClient(
                    host=peer_host, port=peer_port, timeout=30.0
                ) as peer:
                    try:
                        peer_digests = peer.peer_digests()
                    except (ServeError, OSError):
                        stats["errors"] += 1
                        registry.counter("cluster.backfill.errors").inc()
                        continue
                    for digest in peer_digests:
                        stats["scanned"] += 1
                        if digest in have:
                            continue
                        if self.ring.owner(digest) != shard:
                            continue
                        try:
                            document = peer.peer_solution(digest)
                            if document is None:
                                continue
                            target.peer_put(digest, document)
                        except (ServeError, OSError):
                            stats["errors"] += 1
                            registry.counter("cluster.backfill.errors").inc()
                            continue
                        have.add(digest)
                        stats["copied"] += 1
        registry.counter("cluster.backfill.scanned").inc(stats["scanned"])
        registry.counter("cluster.backfill.copied").inc(stats["copied"])
        return stats
