"""The tiered store's cluster tier: peer fetch and re-replication.

A worker that misses its in-memory cache *and* its local store shard does
not immediately solve — in a cluster the key may be warm on a sibling
shard (it owns the digest's ring arc, or it solved the key while this
shard was dead).  :class:`PeerFetcher` is the coalescer's ``peer_fetch``
hook: it walks the ring's preference order for the digest, asks each live
peer ``GET /peer/solution/<digest>``, writes the first hit into the local
store **byte-identically** (both ends serialize artifacts canonically, so
replication-on-read is idempotent re-replication), and returns the
decoded solution.  Misses everywhere fall through to a normal solve.

:class:`PeerReplicator` is the write-side mirror — the coalescer's
``on_stored`` hook.  Every fresh solve is queued (bounded, drop-oldest
never blocks the solve path) and a daemon thread pushes the artifact to
the next ``copies - 1`` shards in the digest's preference order via
``PUT /peer/solution/<digest>``.  That is what makes the chaos story
work: when a shard dies, its keys' replicas are exactly where the ring
walk re-routes the requests.

Both classes read peer addresses from the supervisor-maintained map file
(:mod:`repro.cluster.mapfile`) on every operation (mtime-cached), so a
respawned peer's new port propagates without restarts, and both count
into the ``cluster.peer.*`` / ``cluster.replicate.*`` metric families.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple, Union

from ..core.partition import PartitionSolution
from ..io import SerializationError, solution_from_dict
from ..obs import state as obs_state
from ..obs.metrics import registry as obs_registry
from ..obs.tracecontext import trace
from ..obs.tracer import span
from ..serve.client import ServeClient, ServeError
from ..serve.protocol import SolveSpec
from ..serve.store import SolutionStore
from .mapfile import ClusterMap
from .ring import DEFAULT_REPLICAS, HashRing

#: How many shards hold each artifact (the owner plus ``copies - 1``
#: ring successors).  Two survives any single-shard death.
DEFAULT_COPIES = 2

#: Peer HTTP timeout — peers are local-network siblings; a slow peer is
#: treated as down and the walk moves on (or the worker just solves).
DEFAULT_PEER_TIMEOUT_S = 5.0


class _PeerPool:
    """One cached :class:`ServeClient` per peer address, thread-safe."""

    def __init__(self, timeout_s: float) -> None:
        self.timeout_s = timeout_s
        self._lock = threading.Lock()
        self._clients: Dict[Tuple[str, int], ServeClient] = {}

    def client(self, host: str, port: int) -> ServeClient:
        with self._lock:
            client = self._clients.get((host, port))
            if client is None:
                client = ServeClient(host=host, port=port, timeout=self.timeout_s)
                self._clients[(host, port)] = client
            return client

    def discard(self, host: str, port: int) -> None:
        with self._lock:
            client = self._clients.pop((host, port), None)
        if client is not None:
            client.close()

    def close(self) -> None:
        with self._lock:
            clients = list(self._clients.values())
            self._clients.clear()
        for client in clients:
            client.close()


class _RingView:
    """Shared map-file plumbing: a ring over whatever shards the map lists."""

    def __init__(
        self,
        map_path: Union[str, "Any"],
        shard_id: int,
        ring_replicas: int = DEFAULT_REPLICAS,
        timeout_s: float = DEFAULT_PEER_TIMEOUT_S,
    ) -> None:
        self.map = ClusterMap(map_path)
        self.shard_id = int(shard_id)
        self.ring_replicas = ring_replicas
        self.pool = _PeerPool(timeout_s)
        self._ring_key: Optional[Tuple[int, ...]] = None
        self._ring: Optional[HashRing] = None
        self._ring_lock = threading.Lock()

    def ring_for(self, shard_ids: Tuple[int, ...]) -> Optional[HashRing]:
        if not shard_ids:
            return None
        with self._ring_lock:
            if self._ring_key != shard_ids:
                self._ring = HashRing(shard_ids, replicas=self.ring_replicas)
                self._ring_key = shard_ids
            return self._ring

    def peer_order(self, digest: str) -> List[Tuple[int, str, int]]:
        """Ring-preferred ``(shard, host, port)`` peers, excluding self."""
        shards = self.map.shards()
        ring = self.ring_for(tuple(sorted(shards)))
        if ring is None:
            return []
        return [
            (shard, shards[shard][0], shards[shard][1])
            for shard in ring.preference(digest)
            if shard != self.shard_id and shard in shards
        ]

    def close(self) -> None:
        self.pool.close()


class PeerFetcher(_RingView):
    """Read-through to sibling shards; the coalescer's ``peer_fetch`` hook."""

    def __init__(
        self,
        map_path: Union[str, "Any"],
        shard_id: int,
        store: Optional[SolutionStore] = None,
        ring_replicas: int = DEFAULT_REPLICAS,
        timeout_s: float = DEFAULT_PEER_TIMEOUT_S,
    ) -> None:
        super().__init__(map_path, shard_id, ring_replicas, timeout_s)
        self.store = store

    def fetch_document(
        self, digest: str, trace_id: Optional[str] = None
    ) -> Optional[Dict[str, Any]]:
        """Ask ring-preferred peers for the artifact; first hit wins.

        A dead or erroring peer is skipped (counted, connection dropped) —
        exactly the behaviour the dead-shard window needs: the walk
        reaches the replica holder and the request is served warm.
        """
        registry = obs_registry()
        started = time.perf_counter()
        try:
            for shard, host, port in self.peer_order(digest):
                client = self.pool.client(host, port)
                try:
                    document = client.peer_solution(digest, trace_id=trace_id)
                except (ServeError, OSError) as exc:
                    registry.counter("cluster.peer.errors").inc()
                    registry.counter(f"cluster.peer.errors.shard{shard}").inc()
                    if isinstance(exc, OSError):
                        self.pool.discard(host, port)
                    continue
                if document is not None:
                    registry.counter("cluster.peer.hits").inc()
                    registry.counter(f"cluster.peer.hits.shard{shard}").inc()
                    return document
            registry.counter("cluster.peer.misses").inc()
            return None
        finally:
            registry.log_histogram("cluster.peer.fetch_ms").observe(
                (time.perf_counter() - started) * 1000.0
            )

    def __call__(
        self, digest: str, spec: SolveSpec, trace_id: Optional[str] = None
    ) -> Optional[PartitionSolution]:
        """Fetch, persist locally (byte-identical), decode; None on miss."""
        if obs_state.enabled() and trace_id is not None:
            with trace(trace_id):
                with span("cluster.peer.fetch", digest=digest[:12]) as record:
                    solution = self._fetch_solution(digest, spec, trace_id)
                    record.annotate(hit=solution is not None)
                    return solution
        return self._fetch_solution(digest, spec, trace_id)

    def _fetch_solution(
        self, digest: str, spec: SolveSpec, trace_id: Optional[str]
    ) -> Optional[PartitionSolution]:
        document = self.fetch_document(digest, trace_id)
        if document is None:
            return None
        try:
            if self.store is not None:
                # put_document validates and re-serializes canonically, so
                # the local artifact's bytes equal the peer's.
                self.store.put_document(digest, document)
            solution = solution_from_dict(document["solution"])
        except (KeyError, ValueError, SerializationError):
            obs_registry().counter("cluster.peer.invalid").inc()
            return None
        if spec.pattern != solution.pattern:
            solution = dataclasses.replace(solution, pattern=spec.pattern)
        return solution


class PeerReplicator(_RingView):
    """Write-side replication; the coalescer's ``on_stored`` hook."""

    def __init__(
        self,
        map_path: Union[str, "Any"],
        shard_id: int,
        store: SolutionStore,
        copies: int = DEFAULT_COPIES,
        cap: int = 512,
        ring_replicas: int = DEFAULT_REPLICAS,
        timeout_s: float = DEFAULT_PEER_TIMEOUT_S,
    ) -> None:
        if copies < 1:
            raise ValueError(f"copies must be >= 1, got {copies}")
        if cap < 1:
            raise ValueError(f"cap must be positive, got {cap}")
        super().__init__(map_path, shard_id, ring_replicas, timeout_s)
        self.store = store
        self.copies = copies
        self.cap = cap
        self._queue: Deque[str] = deque()
        self._queued: Dict[str, None] = {}
        self._lock = threading.Lock()
        self._wake = threading.Event()
        self._closed = False
        self._busy = False
        self._worker = threading.Thread(
            target=self._run, name=f"repro-replicate-{self.shard_id}", daemon=True
        )
        self._worker.start()

    def offer(self, digest: str, _spec: Optional[SolveSpec] = None) -> None:
        """Queue a freshly stored digest for replication (never blocks)."""
        registry = obs_registry()
        with self._lock:
            if self._closed or digest in self._queued:
                return
            if len(self._queue) >= self.cap:
                registry.counter("cluster.replicate.dropped").inc()
                return
            self._queue.append(digest)
            self._queued[digest] = None
        registry.counter("cluster.replicate.enqueued").inc()
        self._wake.set()

    def _run(self) -> None:
        while True:
            self._wake.wait()
            if self._closed:
                return
            with self._lock:
                if not self._queue:
                    self._wake.clear()
                    continue
                digest = self._queue.popleft()
                self._queued.pop(digest, None)
                self._busy = True
            try:
                self._replicate(digest)
            finally:
                with self._lock:
                    self._busy = False

    def _replicate(self, digest: str) -> None:
        registry = obs_registry()
        document = self.store.get_document(digest)
        if document is None:  # evicted before the worker got to it
            registry.counter("cluster.replicate.skipped").inc()
            return
        targets = self.peer_order(digest)[: max(0, self.copies - 1)]
        if not targets:
            registry.counter("cluster.replicate.skipped").inc()
            return
        for shard, host, port in targets:
            client = self.pool.client(host, port)
            try:
                client.peer_put(digest, document)
            except (ServeError, OSError) as exc:
                registry.counter("cluster.replicate.errors").inc()
                if isinstance(exc, OSError):
                    self.pool.discard(host, port)
                continue
            registry.counter("cluster.replicate.sent").inc()
            registry.counter(f"cluster.replicate.sent.shard{shard}").inc()

    def drain(self, timeout_s: float = 10.0) -> bool:
        """Block until the queue empties (tests/benches); True on success."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            with self._lock:
                if not self._queue and not self._busy and not self._wake.is_set():
                    return True
            time.sleep(0.005)
        with self._lock:
            return not self._queue and not self._busy

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._queue.clear()
            self._queued.clear()
        self._wake.set()
        self._worker.join(timeout=5.0)
        self.pool.close()
