"""The cluster map file: which shard listens where.

One small JSON document, written atomically by the supervisor and read by
every worker and the router::

    {"format": "repro/cluster-map", "version": 1,
     "shards": {"0": {"host": "127.0.0.1", "port": 40001}, ...}}

Workers are spawned on ephemeral ports, so the map is only complete once
every port file has landed; the supervisor rewrites it after each spawn
and respawn.  :class:`ClusterMap` is an mtime-cached reader — callers can
consult it on every request without re-parsing an unchanged file, and a
respawn (new port) propagates to peers on their next lookup.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from pathlib import Path
from typing import Dict, Tuple, Union

MAP_FORMAT = "repro/cluster-map"
MAP_VERSION = 1

#: shard id -> (host, port)
ShardAddrs = Dict[int, Tuple[str, int]]


def write_cluster_map(path: Union[str, Path], shards: ShardAddrs) -> None:
    """Atomically (re)write the map so readers never see a torn file."""
    path = Path(path)
    document = {
        "format": MAP_FORMAT,
        "version": MAP_VERSION,
        "shards": {
            str(shard): {"host": host, "port": int(port)}
            for shard, (host, port) in sorted(shards.items())
        },
    }
    text = json.dumps(document, indent=2, sort_keys=True) + "\n"
    fd, tmp_name = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:  # pragma: no cover - clean up the temp file
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def read_cluster_map(path: Union[str, Path]) -> ShardAddrs:
    """Parse the map; missing or malformed files read as an empty cluster.

    Tolerance is deliberate: workers start *before* the supervisor knows
    every port, so an absent map simply means "no peers yet".
    """
    try:
        document = json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return {}
    if not isinstance(document, dict) or document.get("format") != MAP_FORMAT:
        return {}
    shards: ShardAddrs = {}
    for key, value in (document.get("shards") or {}).items():
        try:
            shards[int(key)] = (str(value["host"]), int(value["port"]))
        except (TypeError, KeyError, ValueError):
            continue
    return shards


class ClusterMap:
    """An mtime-cached view of the map file, safe to poll per request."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._mtime: float = -1.0
        self._shards: ShardAddrs = {}

    def shards(self) -> ShardAddrs:
        """The current shard table (a copy; callers may mutate freely)."""
        try:
            mtime = self.path.stat().st_mtime
        except OSError:
            mtime = -1.0
        with self._lock:
            if mtime != self._mtime:
                self._shards = read_cluster_map(self.path) if mtime >= 0 else {}
                self._mtime = mtime
            return dict(self._shards)

    def addr(self, shard: int) -> Tuple[str, int]:
        """Address of one shard; raises ``KeyError`` when unknown."""
        return self.shards()[shard]
