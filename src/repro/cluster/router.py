"""The cluster front: one public socket, N shards behind it.

:class:`ClusterRouter` is the process clients talk to.  It owns the
listening socket, and for every ``/solve``/``/simulate`` request it:

1. extracts the body's **canonical digest** (the same symmetry-quotient
   identity the workers coalesce and store by — computed once per unique
   body thanks to a small LRU over raw body bytes, since warm traffic
   repeats bodies verbatim);
2. walks the ring's **preference order** restricted to live shards
   (:meth:`ClusterSupervisor.preference`) — the owner first, then its
   successors;
3. **proxies** the request over a pooled keep-alive connection, stamping
   the ``X-Repro-Trace`` header so worker and peer spans join the front's
   trace, and relays the worker's response bytes verbatim (the front
   never re-serializes, so routing cannot perturb response bytes);
4. on a **connection failure** — the dead-shard window — retries the next
   shard in preference order (solves are idempotent and content-
   addressed, so cross-shard retry is always safe).  Only when every live
   candidate fails does the client see ``503 no_live_shard`` with a
   ``Retry-After`` hint.

Bodies without a solve identity (``/table1``, malformed JSON that a
worker must answer ``400`` for) round-robin instead of hashing.

The front also aggregates: ``GET /metrics`` pulls every live worker's
registry dump (``GET /peer/registry``), merges them — per-shard copies
under ``worker.<shard>.*``, cluster totals unprefixed — into a *fresh*
registry together with the front's own, and renders one Prometheus
document.  ``GET /debug/cluster`` reports topology, per-worker health,
per-shard store occupancy and latency summaries.

:class:`LocalCluster` packages supervisor + router behind one object for
synchronous embedding (tests, the ``cluster[]`` bench), mirroring
:func:`repro.serve.server.serve_in_thread`.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple, Union

from ..obs import state as obs_state
from ..obs.export import to_prometheus_text
from ..obs.metrics import LogHistogram, MetricsRegistry, registry as obs_registry
from ..obs.tracecontext import new_trace_id
from ..serve.protocol import (
    ERROR_NO_LIVE_SHARD,
    TRACE_HEADER,
    error_payload,
    parse_simulate_spec,
    parse_solve_spec,
)
from ..serve.server import read_http_request, write_http_response
from .supervisor import ClusterSupervisor

#: Distinct request bodies whose digest we remember (raw bytes -> digest).
DIGEST_CACHE_SIZE = 4096

#: Connect timeout when opening a proxy connection to a worker.
CONNECT_TIMEOUT_S = 5.0

#: Paths routed by canonical digest; everything else round-robins.
_HASHED_PATHS = {"/solve", "/simulate"}

#: Idle proxy connections kept per (shard, port).
_POOL_PER_SHARD = 32


class ClusterRouter:
    """Digest-routing HTTP front over a :class:`ClusterSupervisor`."""

    def __init__(
        self,
        supervisor: ClusterSupervisor,
        host: str = "127.0.0.1",
        port: int = 0,
        retry_after_s: float = 1.0,
    ) -> None:
        self.supervisor = supervisor
        self.host = host
        self.port = port  # rebound after start()
        self.retry_after_s = retry_after_s
        self._server: Optional[asyncio.base_events.Server] = None
        self._conn_tasks: "set[asyncio.Task]" = set()
        self._digest_cache: "OrderedDict[bytes, Optional[str]]" = OrderedDict()
        self._pools: Dict[Tuple[int, int], List[Tuple[Any, Any]]] = {}
        self._started_at = 0.0
        self._requests = 0
        # Per-shard request latency, owned by this router instance (reset
        # per cluster run — what the bench reads); every observation is
        # mirrored into the global registry's cluster.shard<i>.request_ms
        # for /metrics continuity.
        self._shard_latency: Dict[int, LogHistogram] = {}

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Idle keep-alive connections park their handler task in
        # read_http_request; cancel them so loop shutdown is silent.
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._conn_tasks.clear()
        for pool in self._pools.values():
            for _reader, writer in pool:
                writer.close()
        self._pools.clear()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    # -- HTTP plumbing -----------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            while True:
                request = await read_http_request(reader)
                if request is None:
                    break
                method, target, headers, body = request
                keep_alive = headers.get("connection", "keep-alive") != "close"
                status, payload, extra, content_type = await self._route(
                    method, target, headers, body
                )
                write_http_response(
                    writer,
                    status,
                    payload,
                    extra,
                    keep_alive,
                    content_type=content_type,
                    counter_prefix="cluster",
                )
                await writer.drain()
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            ConnectionResetError,
        ):
            pass
        except asyncio.CancelledError:  # router stop() during keep-alive idle
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.CancelledError,
            ):  # pragma: no cover - peer reset / stop() mid-close
                pass

    # -- routing -----------------------------------------------------------

    async def _route(
        self, method: str, target: str, headers: Dict[str, str], body: bytes
    ) -> Tuple[int, Union[Dict[str, Any], str, bytes], Dict[str, str], Optional[str]]:
        self._requests += 1
        registry = obs_registry()
        registry.counter("cluster.requests").inc()
        started = time.monotonic()
        path = target.split("?", 1)[0]
        try:
            if (method, path) == ("GET", "/healthz"):
                return 200, await self._front_healthz(), {}, None
            if (method, path) == ("GET", "/metrics"):
                return 200, await self._aggregate_metrics(), {}, None
            if (method, path) == ("GET", "/debug/cluster"):
                return 200, await self._debug_cluster(), {}, None
            return await self._forward(method, path, headers, body)
        except Exception as exc:  # noqa: BLE001 - the front must not die
            registry.counter("cluster.errors.internal").inc()
            return (
                500,
                error_payload("internal", f"{type(exc).__name__}: {exc}"),
                {},
                None,
            )
        finally:
            registry.log_histogram("cluster.request.latency_ms").observe(
                (time.monotonic() - started) * 1000.0
            )

    def _shard_key(self, path: str, body: bytes) -> Optional[str]:
        """The canonical digest of a request body, LRU-cached by bytes.

        ``None`` means "no solve identity" (non-hashed path, or a body the
        workers will reject as 400) — the caller round-robins those.
        """
        if path not in _HASHED_PATHS:
            return None
        cached = self._digest_cache.get(body)
        if cached is not None or body in self._digest_cache:
            self._digest_cache.move_to_end(body)
            return cached
        digest: Optional[str]
        try:
            doc = json.loads(body.decode("utf-8"))
            if path == "/simulate":
                digest = parse_simulate_spec(doc).solve.canonical_digest()
            else:
                digest = parse_solve_spec(doc).canonical_digest()
        except Exception:  # noqa: BLE001 - workers answer 400 authoritatively
            digest = None
        self._digest_cache[body] = digest
        while len(self._digest_cache) > DIGEST_CACHE_SIZE:
            self._digest_cache.popitem(last=False)
        return digest

    async def _forward(
        self, method: str, path: str, headers: Dict[str, str], body: bytes
    ) -> Tuple[int, bytes, Dict[str, str], Optional[str]]:
        registry = obs_registry()
        digest = self._shard_key(path, body)
        order = self.supervisor.preference(digest)
        trace_id = headers.get(TRACE_HEADER.lower()) or (
            new_trace_id() if obs_state.enabled() else None
        )
        for attempt, shard in enumerate(order):
            started = time.perf_counter()
            try:
                status, resp_body, content_type = await self._proxy(
                    shard, method, path, body, trace_id
                )
            except (OSError, asyncio.IncompleteReadError, EOFError, KeyError):
                # The dead-shard window: this worker is gone, mid-respawn,
                # or its port is not bound yet (KeyError from addr()).
                # Solves are idempotent and content-addressed, so the next
                # shard in ring preference answers instead.
                registry.counter("cluster.route.failover").inc()
                registry.counter(f"cluster.route.failover.shard{shard}").inc()
                continue
            elapsed_ms = (time.perf_counter() - started) * 1000.0
            hist = self._shard_latency.get(shard)
            if hist is None:
                hist = self._shard_latency[shard] = LogHistogram()
            hist.observe(elapsed_ms)
            registry.log_histogram(f"cluster.shard{shard}.request_ms").observe(
                elapsed_ms
            )
            registry.counter(f"cluster.routed.shard{shard}").inc()
            if attempt > 0:
                registry.counter("cluster.route.rerouted").inc()
            extra = {TRACE_HEADER: trace_id} if trace_id else {}
            return status, resp_body, extra, content_type
        registry.counter("cluster.route.exhausted").inc()
        return (
            503,
            error_payload(
                ERROR_NO_LIVE_SHARD,
                "no live shard could serve the request",
                retry_after_s=self.retry_after_s,
            ),
            {"Retry-After": f"{max(1, round(self.retry_after_s))}"},
            None,
        )

    # -- proxying ----------------------------------------------------------

    def _pool_get(self, shard: int, port: int) -> Optional[Tuple[Any, Any]]:
        # Pools keyed by (shard, current port): a respawned worker gets a
        # fresh key, and connections to its dead predecessor are dropped.
        for key in [k for k in self._pools if k[0] == shard and k[1] != port]:
            for _reader, writer in self._pools.pop(key):
                writer.close()
        pool = self._pools.get((shard, port))
        if pool:
            return pool.pop()
        return None

    def _pool_put(self, shard: int, port: int, conn: Tuple[Any, Any]) -> None:
        pool = self._pools.setdefault((shard, port), [])
        if len(pool) < _POOL_PER_SHARD:
            pool.append(conn)
        else:
            conn[1].close()

    async def _proxy(
        self,
        shard: int,
        method: str,
        path: str,
        body: bytes,
        trace_id: Optional[str],
        timeout_s: Optional[float] = None,
    ) -> Tuple[int, bytes, str]:
        """One proxied request to one worker; raises OSError family on death."""
        host, port = self.supervisor.addr(shard)
        for fresh in (False, True):
            conn = None if fresh else self._pool_get(shard, port)
            pooled = conn is not None
            if conn is None:
                conn = await asyncio.wait_for(
                    asyncio.open_connection(host, port), timeout=CONNECT_TIMEOUT_S
                )
            reader, writer = conn
            try:
                head = [
                    f"{method} {path} HTTP/1.1",
                    f"Host: {host}:{port}",
                    f"Content-Length: {len(body)}",
                    "Content-Type: application/json",
                    "Connection: keep-alive",
                ]
                if trace_id:
                    head.append(f"{TRACE_HEADER}: {trace_id}")
                writer.write(("\r\n".join(head) + "\r\n\r\n").encode("ascii") + body)
                await writer.drain()
                result = await asyncio.wait_for(
                    self._read_response(reader), timeout=timeout_s
                )
            except (OSError, asyncio.IncompleteReadError, EOFError, asyncio.TimeoutError):
                writer.close()
                if pooled and not fresh:
                    continue  # stale keep-alive; retry once on a fresh socket
                raise
            status, resp_body, content_type, resp_keep_alive = result
            if resp_keep_alive:
                self._pool_put(shard, port, conn)
            else:
                writer.close()
            return status, resp_body, content_type
        raise AssertionError("unreachable")  # pragma: no cover

    @staticmethod
    async def _read_response(
        reader: asyncio.StreamReader,
    ) -> Tuple[int, bytes, str, bool]:
        line = await reader.readline()
        if not line:
            raise asyncio.IncompleteReadError(line, None)
        parts = line.decode("ascii", "replace").split(None, 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise asyncio.IncompleteReadError(line, None)
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            key, _, value = raw.decode("latin-1").partition(":")
            headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        body = await reader.readexactly(length) if length else b""
        keep_alive = headers.get("connection", "keep-alive") != "close"
        return status, body, headers.get("content-type", "application/json"), keep_alive

    # -- aggregation and introspection -------------------------------------

    async def _worker_json(
        self, shard: int, path: str, timeout_s: float = 15.0
    ) -> Optional[Dict[str, Any]]:
        """GET a JSON document from one worker; None when unreachable."""
        try:
            status, body, _ = await self._proxy(
                shard, "GET", path, b"", None, timeout_s=timeout_s
            )
            if status != 200:
                return None
            return json.loads(body.decode("utf-8"))
        except (OSError, asyncio.IncompleteReadError, EOFError, ValueError,
                asyncio.TimeoutError, KeyError):
            return None

    async def _aggregate_metrics(self) -> str:
        """One Prometheus document for the whole cluster.

        Worker dumps merge into a *fresh* registry — never the process
        global one, which would double-count on every poll — and the
        front's own registry (cluster.* counters, routing histograms)
        merges in last, unprefixed.
        """
        aggregate = MetricsRegistry()
        for shard in self.supervisor.alive_shards():
            dump = await self._worker_json(shard, "/peer/registry")
            if dump is not None:
                try:
                    aggregate.merge(dump)
                except (TypeError, ValueError, KeyError):
                    obs_registry().counter("cluster.metrics.merge_errors").inc()
        aggregate.merge(obs_registry().dump())
        return to_prometheus_text(aggregate)

    async def _front_healthz(self) -> Dict[str, Any]:
        alive = self.supervisor.alive_shards()
        return {
            "status": "ok" if alive else "degraded",
            "role": "cluster-front",
            "uptime_s": time.monotonic() - self._started_at,
            "requests": self._requests,
            "shards": self.supervisor.shards,
            "alive_shards": alive,
        }

    async def _debug_cluster(self) -> Dict[str, Any]:
        """Topology + per-shard health/store stats + routing tallies."""
        registry = obs_registry()
        description = self.supervisor.describe()
        for worker in description["workers"]:
            shard = worker["shard"]
            health = (
                await self._worker_json(shard, "/healthz", timeout_s=5.0)
                if worker["alive"]
                else None
            )
            worker["store"] = (health or {}).get("store")
            worker["pending"] = (health or {}).get("pending")
            worker["routed"] = registry.counter(
                f"cluster.routed.shard{shard}"
            ).value
            worker["latency"] = self.shard_latency_summary().get(shard)
        snapshot = registry.snapshot()
        description["front"] = {
            "host": self.host,
            "port": self.port,
            "requests": self._requests,
            "counters": {
                name: value
                for name, value in snapshot["counters"].items()
                if name.startswith("cluster.")
            },
        }
        return description

    def reset_shard_latency(self) -> None:
        """Forget per-shard latency history (benches reset between phases)."""
        self._shard_latency.clear()

    def shard_latency_summary(self) -> Dict[int, Dict[str, float]]:
        """Per-shard routed-request latency for this router's lifetime."""
        return {
            shard: {
                "count": hist.count,
                "p50_ms": hist.percentile(50),
                "p99_ms": hist.percentile(99),
                "max_ms": hist.max if hist.count else 0.0,
            }
            for shard, hist in sorted(self._shard_latency.items())
        }


class LocalCluster:
    """Supervisor + router, embedded in a synchronous program.

    Construction spawns the worker fleet, waits until every shard serves,
    and binds the front socket on a daemon thread — mirroring
    :class:`repro.serve.server.ThreadedServer` one level up.  ``stop()``
    (or the context manager) tears the whole thing down.
    """

    def __init__(
        self,
        shards: int = 4,
        store_root: Union[str, Any, None] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        **supervisor_kwargs: Any,
    ) -> None:
        self._tmpdir = None
        if store_root is None:
            import tempfile

            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-cluster-")
            store_root = self._tmpdir.name
        self.supervisor = ClusterSupervisor(
            shards=shards, store_root=store_root, host=host, **supervisor_kwargs
        )
        self.router = ClusterRouter(self.supervisor, host=host, port=port)
        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._thread: Optional[threading.Thread] = None
        try:
            self.supervisor.start()
            self._thread = threading.Thread(
                target=self._run, name="repro-cluster-front", daemon=True
            )
            self._thread.start()
            self._started.wait(timeout=30.0)
            if self._startup_error is not None:
                raise self._startup_error
            if not self._started.is_set():  # pragma: no cover - defensive
                raise RuntimeError("cluster front failed to start within 30s")
        except BaseException:
            self.stop()
            raise

    @property
    def port(self) -> int:
        return self.router.port

    @property
    def host(self) -> str:
        return self.router.host

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.router.start())
        except BaseException as exc:  # pragma: no cover - bind failures
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.run_until_complete(self.router.stop())
            self._loop.close()

    def stop(self) -> None:
        """Stop the front, then the worker fleet."""
        if self._thread is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=30.0)
            self._thread = None
        self.supervisor.stop()
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.stop()


def cluster_in_thread(**kwargs: Any) -> LocalCluster:
    """Start a full local cluster; returns once the front port is bound."""
    return LocalCluster(**kwargs)
