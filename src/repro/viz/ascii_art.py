"""ASCII rendering of patterns and bank assignments (paper Figs. 2–3).

Everything the paper shows graphically — access-pattern dot grids, per-dot
bank indices, the storage reorganization — renders here as text so the
reproduction is inspectable without a plotting stack.
"""

from __future__ import annotations

from typing import Callable, List, Mapping, Optional, Sequence, Union

from ..core.mapping import BankMapping, bank_contents
from ..core.partition import PartitionSolution
from ..core.pattern import Pattern
from ..errors import PatternError


def render_pattern(pattern: Pattern, tap: str = "#", empty: str = ".") -> str:
    """Fig. 3-style mask of a 2-D pattern over its bounding box.

    >>> from repro.patterns import se_pattern
    >>> print(render_pattern(se_pattern()))
    .#.
    ###
    .#.
    """
    if pattern.ndim != 2:
        raise PatternError(f"render_pattern needs a 2-D pattern, got {pattern.ndim}-D")
    mask = pattern.to_mask()
    return "\n".join("".join(tap if cell else empty for cell in row) for row in mask)


def render_pattern_3d(pattern: Pattern, tap: str = "#", empty: str = ".") -> str:
    """Slice-by-slice mask of a 3-D pattern (Fig. 3(e) style)."""
    if pattern.ndim != 3:
        raise PatternError(f"render_pattern_3d needs a 3-D pattern, got {pattern.ndim}-D")
    norm = pattern.normalized()
    d0, d1, d2 = norm.extents
    blocks: List[str] = []
    for s in range(d0):
        grid = [[empty] * d2 for _ in range(d1)]
        for (a, b, c) in norm.offsets:
            if a == s:
                grid[b][c] = tap
        blocks.append(f"slice {s}:\n" + "\n".join("".join(row) for row in grid))
    return "\n".join(blocks)


def _bank_glyph(value: int) -> str:
    """Single-character bank label: 0-9 then a-z then '?'."""
    if value < 10:
        return str(value)
    if value < 36:
        return chr(ord("a") + value - 10)
    return "?"


def render_bank_grid(
    solution: PartitionSolution,
    rows: int,
    cols: int,
    highlight: Optional[Pattern] = None,
) -> str:
    """Fig. 2(b)-style grid: each cell shows its bank index.

    ``highlight`` marks one pattern instance's cells with brackets so the
    "any window hits distinct banks" property is visible at a glance.
    """
    if solution.pattern.ndim != 2:
        raise PatternError("render_bank_grid supports 2-D solutions only")
    marked = set(highlight.offsets) if highlight is not None else set()
    lines: List[str] = []
    for r in range(rows):
        cells: List[str] = []
        for c in range(cols):
            glyph = _bank_glyph(solution.bank_of((r, c)))
            cells.append(f"[{glyph}]" if (r, c) in marked else f" {glyph} ")
        lines.append("".join(cells))
    return "\n".join(lines)


def render_bank_layout(mapping: BankMapping, max_width: int = 80) -> str:
    """Fig. 2(e)-style view: each row is one bank's stored elements.

    Intended for small arrays; each slot shows the original coordinates of
    the element stored there (``--`` marks padding).
    """
    contents = bank_contents(mapping)
    lines: List[str] = []
    for bank_index, slots in enumerate(contents):
        rendered = []
        for element in slots:
            rendered.append("(--)" if element == () else "(" + ",".join(map(str, element)) + ")")
        line = f"bank {bank_index:2d}: " + " ".join(rendered)
        if len(line) > max_width:
            line = line[: max_width - 3] + "..."
        lines.append(line)
    return "\n".join(lines)


def render_conflict_histogram(
    counts: Sequence[int], label: Callable[[int], str] = lambda n: str(n + 1)
) -> str:
    """Bar chart of the δP|N sweep (Section 5.1 table as a picture)."""
    lines = []
    for index, count in enumerate(counts):
        lines.append(f"N={label(index):>3}: " + "#" * count + f" ({count})")
    return "\n".join(lines)


def render_utilization(utilization: dict, width: int = 40) -> str:
    """Per-bank occupancy bars (padding shows up as the unfilled tail).

    ``utilization`` is the mapping returned by
    :meth:`repro.hw.BankedMemory.utilization`: bank index → fill fraction.
    """
    if width < 1:
        raise ValueError(f"width must be positive, got {width}")
    lines = []
    for bank in sorted(utilization):
        fraction = utilization[bank]
        filled = round(fraction * width)
        bar = "█" * filled + "·" * (width - filled)
        lines.append(f"bank {bank:3d} |{bar}| {fraction * 100:5.1f}%")
    return "\n".join(lines)


def render_bank_bars(
    counts: Union[Mapping[int, int], Sequence[int]],
    width: int = 40,
    label: str = "bank",
) -> str:
    """Generic per-bank bar chart shared by the heatmap renderers.

    ``counts`` is either a dense sequence (index = bank) or a sparse
    mapping (missing banks render as zero rows — the absence of activity
    on a bank is information too).
    """
    if width < 1:
        raise ValueError(f"width must be positive, got {width}")
    if isinstance(counts, Mapping):
        top = (max(counts) + 1) if counts else 0
        dense = [counts.get(b, 0) for b in range(top)]
    else:
        dense = list(counts)
    peak = max(dense) if dense else 0
    lines = []
    for bank, count in enumerate(dense):
        filled = round(count / peak * width) if peak else 0
        bar = "█" * filled
        lines.append(f"{label} {bank:3d} |{bar:<{width}}| {count}")
    return "\n".join(lines)


def render_access_heatmap(
    access_counts: Union[Mapping[int, int], Sequence[int]], width: int = 40
) -> str:
    """Per-bank access-count bars: load balance of a finished simulation.

    A perfectly balanced banking shows equal bars; a hot bank (the cause
    of δ(II) > 0) sticks out immediately.
    """
    return render_bank_bars(access_counts, width=width)


def render_conflict_heatmap(
    conflict_counts: Union[Mapping[int, int], Sequence[int]], width: int = 40
) -> str:
    """Per-bank conflict bars from the simulator's arbitration counters."""
    return render_bank_bars(conflict_counts, width=width)
