"""ASCII visualization of patterns, bank grids, and layouts."""

from .ascii_art import (
    render_access_heatmap,
    render_bank_bars,
    render_bank_grid,
    render_bank_layout,
    render_conflict_heatmap,
    render_conflict_histogram,
    render_pattern,
    render_pattern_3d,
    render_utilization,
)

__all__ = [
    "render_access_heatmap",
    "render_bank_bars",
    "render_bank_grid",
    "render_bank_layout",
    "render_conflict_heatmap",
    "render_conflict_histogram",
    "render_pattern",
    "render_pattern_3d",
    "render_utilization",
]
