"""3-D volume gradient workload (the Sobel(3D) benchmark, end to end).

The paper's only 3-D pattern, Sobel(3D), drives its largest Table 1 rows.
This workload runs a 3-D gradient over a synthetic volume with every voxel
read going through a 27-bank partitioned memory, verified against the
direct computation — the 3-D analogue of the 2-D edge-detection pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.mapping import BankMapping
from ..core.partition import partition
from ..errors import SimulationError
from ..patterns.kernels import sobel_3d_kernel
from ..patterns.library import sobel3d_pattern
from ..sim.functional import banked_stencil, golden_stencil


@dataclass(frozen=True)
class VolumeGradientReport:
    """Result of a 3-D banked gradient run.

    Attributes
    ----------
    output:
        The gradient response volume (valid-mode).
    matches_golden:
        Bit-exactness against the direct computation.
    memory_cycles:
        Banked-memory cycles for all reads.
    iterations:
        Inner-loop iterations (output voxels).
    n_banks:
        Banks used (27 for the unconstrained Sobel(3D) solution).
    """

    output: "np.ndarray"
    matches_golden: bool
    memory_cycles: int
    iterations: int
    n_banks: int

    @property
    def speedup(self) -> float:
        """Memory-cycle speedup over a single-ported monolithic memory."""
        return 26 * self.iterations / self.memory_cycles


def volume_gradient(
    volume: "np.ndarray", n_max: int | None = None
) -> VolumeGradientReport:
    """Run the 3-D Sobel gradient through banked memory.

    The volume must be at least 3 voxels in every dimension; keep it small
    (the sweep enumerates every output voxel through the Python-level
    memory model).
    """
    volume = np.asarray(volume, dtype=np.int64)
    if volume.ndim != 3:
        raise SimulationError(f"expected a 3-D volume, got {volume.ndim}-D")
    if min(volume.shape) < 3:
        raise SimulationError(f"volume {volume.shape} smaller than the 3x3x3 window")

    pattern = sobel3d_pattern()
    kernel = sobel_3d_kernel()
    solution = partition(pattern, n_max=n_max)
    mapping = BankMapping(solution=solution, shape=volume.shape)
    result = banked_stencil(mapping, volume, kernel)
    golden = golden_stencil(volume, kernel)
    return VolumeGradientReport(
        output=result.output,
        matches_golden=bool(np.array_equal(result.output, golden)),
        memory_cycles=result.total_cycles,
        iterations=result.iterations,
        n_banks=solution.n_banks,
    )
