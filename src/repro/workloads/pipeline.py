"""Full read/write stencil pipelines over a multi-array memory system.

:func:`repro.workloads.edge_detection.detect_edges` banks only the input
array; this module models the complete datapath: the input ``X`` *and* the
output ``Y`` both live in banked memories behind a shared clock, every
iteration issues its reads and its write as transactions, and the total
cycle count is measured — the end-to-end number an accelerator designer
actually cares about.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from ..core.mapping import BankMapping
from ..core.partition import partition
from ..errors import SimulationError
from ..hw.memory_system import MemorySystem, Transaction
from ..patterns import kernel_for, library
from ..sim.functional import golden_stencil


@dataclass(frozen=True)
class FullPipelineReport:
    """Measured behaviour of a read+write banked stencil run.

    Attributes
    ----------
    operator:
        Benchmark pattern name.
    output:
        The computed (valid-mode) result, read back from Y's banks.
    matches_golden:
        Whether the banked output equals the direct computation.
    total_cycles:
        Memory cycles for the whole run (reads and the write overlap
        within an iteration; iterations are non-overlapped).
    iterations:
        Loop iterations executed.
    read_banks / write_banks:
        Banks allocated to X and Y respectively.
    """

    operator: str
    output: "np.ndarray"
    matches_golden: bool
    total_cycles: int
    iterations: int
    read_banks: int
    write_banks: int

    @property
    def cycles_per_iteration(self) -> float:
        return self.total_cycles / self.iterations


def run_full_pipeline(
    image: "np.ndarray",
    operator: str = "log",
    n_max: int | None = None,
    write_banks: int | None = None,
) -> FullPipelineReport:
    """Execute one stencil with both arrays banked, measuring real cycles.

    The write side needs only one bank for a single store per iteration;
    ``write_banks`` lets callers model wider output parallelism (e.g. for
    unrolled loops).
    """
    image = np.asarray(image, dtype=np.int64)
    if image.ndim != 2:
        raise SimulationError(f"expected a 2-D image, got {image.ndim}-D")
    pattern = library.benchmark_pattern(operator)
    if pattern.ndim != 2:
        raise SimulationError(f"operator {operator!r} is not 2-D")
    kernel = kernel_for(operator)

    x_solution = partition(pattern, n_max=n_max)
    x_map = BankMapping(solution=x_solution, shape=image.shape)
    # Output traffic is one store per iteration: a single-bank mapping
    # suffices unless the caller asks for more.
    y_solution = partition(pattern, n_max=write_banks or 1)
    y_map = BankMapping(solution=y_solution, shape=image.shape)

    system = MemorySystem(mappings={"X": x_map, "Y": y_map})
    system.load("X", image)
    system.load("Y", np.zeros(image.shape, dtype=np.int64))

    taps = [tuple(int(c) for c in t) for t in np.argwhere(kernel != 0)]
    weights = {t: int(kernel[t]) for t in taps}
    out_shape = tuple(w - k + 1 for w, k in zip(image.shape, kernel.shape))

    total_cycles = 0
    iterations = 0
    for offset in np.ndindex(*out_shape):
        reads = [tuple(o + t for o, t in zip(offset, tap)) for tap in taps]
        read_result = system.execute(Transaction.make(reads={"X": reads}))
        value = sum(weights[t] * v for t, v in zip(taps, read_result.values["X"]))
        write_result = system.execute(
            Transaction.make(writes={"Y": [(offset, value)]})
        )
        total_cycles += read_result.cycles + write_result.cycles
        iterations += 1

    stored = system.dump("Y")[tuple(slice(0, s) for s in out_shape)]
    golden = golden_stencil(image, kernel)
    return FullPipelineReport(
        operator=operator,
        output=stored,
        matches_golden=bool(np.array_equal(stored, golden)),
        total_cycles=total_cycles,
        iterations=iterations,
        read_banks=x_solution.n_banks,
        write_banks=y_solution.n_banks,
    )
