"""End-to-end edge-detection pipelines on banked memory.

The paper's motivating application (Section 2): run LoG (and friends) over
a frame with every pixel read going through the partitioned banks, and
report both the image result and the memory-cycle accounting.  These
pipelines are what the example scripts and the integration tests drive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..core.mapping import BankMapping
from ..core.partition import PartitionSolution, partition
from ..errors import SimulationError
from ..patterns import kernel_for, library
from ..sim.engine import banked_model, serialized_model
from ..sim.functional import banked_stencil, golden_stencil


@dataclass(frozen=True)
class PipelineReport:
    """Result of one banked edge-detection run.

    Attributes
    ----------
    operator:
        Benchmark pattern name driving the run.
    output:
        The detector response image (valid-mode).
    matches_golden:
        Whether the banked result equals the direct computation.
    memory_cycles:
        Total banked-memory cycles spent on reads.
    serialized_cycles:
        What a single-bank memory would have needed.
    n_banks:
        Banks used.
    """

    operator: str
    output: "np.ndarray"
    matches_golden: bool
    memory_cycles: int
    serialized_cycles: int
    n_banks: int

    @property
    def speedup(self) -> float:
        """Memory-cycle speedup of banking over a single bank."""
        return self.serialized_cycles / self.memory_cycles


def detect_edges(
    image: "np.ndarray",
    operator: str = "log",
    n_max: int | None = None,
) -> PipelineReport:
    """Run one edge-detection operator over an image through banked memory.

    Parameters
    ----------
    image:
        2-D integer image, shape ``(width, height)``.
    operator:
        One of the 2-D Table 1 benchmarks (``log``, ``canny``, ``se``,
        ``median``, ``gaussian``, ``prewitt``).
    n_max:
        Optional bank ceiling (exercises the constrained schemes).
    """
    image = np.asarray(image, dtype=np.int64)
    if image.ndim != 2:
        raise SimulationError(f"detect_edges expects a 2-D image, got {image.ndim}-D")
    pattern = library.benchmark_pattern(operator)
    if pattern.ndim != 2:
        raise SimulationError(f"operator {operator!r} is not a 2-D pattern")
    kernel = kernel_for(operator)

    solution: PartitionSolution = partition(pattern, n_max=n_max)
    mapping = BankMapping(solution=solution, shape=image.shape)
    result = banked_stencil(mapping, image, kernel)
    golden = golden_stencil(image, kernel)

    iterations = result.iterations
    serial = serialized_model(iterations, pattern.size).total_cycles
    banked = banked_model(iterations, result.worst_cycles - 1).total_cycles
    # Use the measured per-read totals for the memory-cycle account; the
    # pipeline models above are for end-to-end reporting in examples.
    return PipelineReport(
        operator=operator,
        output=result.output,
        matches_golden=bool(np.array_equal(result.output, golden)),
        memory_cycles=result.total_cycles,
        serialized_cycles=pattern.size * iterations,
        n_banks=solution.n_banks,
    )


def multi_operator_suite(
    image: "np.ndarray", operators: Tuple[str, ...] = ("log", "se", "prewitt")
) -> Dict[str, PipelineReport]:
    """Run several operators on one frame (the paper's benchmark set)."""
    return {op: detect_edges(image, op) for op in operators}


def edge_density(report: PipelineReport, threshold: int = 128) -> float:
    """Fraction of response pixels above ``threshold`` — a crude edge count."""
    output = np.abs(report.output)
    return float((output > threshold).mean())
