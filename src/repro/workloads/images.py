"""Synthetic test images for the edge-detection workloads.

The paper's motivating application is edge detection on gray-scale frames.
No image files ship with the repository; these generators produce
deterministic frames with known edge structure so pipeline outputs can be
sanity-checked (edges appear where the generator put them).
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError


def _check_shape(width: int, height: int) -> None:
    if width < 1 or height < 1:
        raise SimulationError(f"image dimensions must be positive, got {width}x{height}")


def gradient_image(width: int, height: int, levels: int = 256) -> "np.ndarray":
    """Smooth horizontal ramp: no edges, so edge detectors should be quiet."""
    _check_shape(width, height)
    row = np.linspace(0, levels - 1, width, dtype=np.int64)
    return np.tile(row[:, None], (1, height))


def checkerboard_image(
    width: int, height: int, tile: int = 8, low: int = 0, high: int = 255
) -> "np.ndarray":
    """Checkerboard: dense, axis-aligned edges every ``tile`` pixels."""
    _check_shape(width, height)
    if tile < 1:
        raise SimulationError(f"tile must be positive, got {tile}")
    xs = (np.arange(width) // tile)[:, None]
    ys = (np.arange(height) // tile)[None, :]
    board = (xs + ys) % 2
    return np.where(board == 0, low, high).astype(np.int64)


def box_image(
    width: int, height: int, box_fraction: float = 0.5, low: int = 0, high: int = 255
) -> "np.ndarray":
    """A bright centered rectangle on a dark background: a closed edge loop."""
    _check_shape(width, height)
    if not 0.0 < box_fraction <= 1.0:
        raise SimulationError(f"box_fraction must be in (0, 1], got {box_fraction}")
    image = np.full((width, height), low, dtype=np.int64)
    bw = max(1, int(width * box_fraction))
    bh = max(1, int(height * box_fraction))
    x0 = (width - bw) // 2
    y0 = (height - bh) // 2
    image[x0 : x0 + bw, y0 : y0 + bh] = high
    return image


def noise_image(width: int, height: int, seed: int = 0, levels: int = 256) -> "np.ndarray":
    """Uniform pixel noise (deterministic), for stress and property tests."""
    _check_shape(width, height)
    rng = np.random.default_rng(seed)
    return rng.integers(0, levels, size=(width, height), dtype=np.int64)


def volume(width: int, height: int, depth: int, seed: int = 0) -> "np.ndarray":
    """A 3-D volume with a bright inner box, for the Sobel(3D) workload."""
    _check_shape(width, height)
    if depth < 1:
        raise SimulationError(f"depth must be positive, got {depth}")
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 32, size=(width, height, depth), dtype=np.int64)
    data[width // 4 : 3 * width // 4, height // 4 : 3 * height // 4, depth // 4 : 3 * depth // 4] += 200
    return data
