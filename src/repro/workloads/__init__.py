"""Workloads: synthetic images and banked edge-detection pipelines."""

from .edge_detection import (
    PipelineReport,
    detect_edges,
    edge_density,
    multi_operator_suite,
)
from .pipeline import FullPipelineReport, run_full_pipeline
from .volume3d import VolumeGradientReport, volume_gradient
from .images import (
    box_image,
    checkerboard_image,
    gradient_image,
    noise_image,
    volume,
)

__all__ = [
    "PipelineReport",
    "FullPipelineReport",
    "run_full_pipeline",
    "VolumeGradientReport",
    "volume_gradient",
    "detect_edges",
    "edge_density",
    "multi_operator_suite",
    "box_image",
    "checkerboard_image",
    "gradient_image",
    "noise_image",
    "volume",
]
