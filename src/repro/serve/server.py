"""The asyncio partitioning service: HTTP/1.1 over stdlib streams.

One process, one event loop, one batch pipeline.  Connection handlers
parse requests, enforce deadlines and backpressure, and await shared solve
futures; all CPU-bound work (solves, simulations, Table 1) happens on
executor threads — or pool workers when ``jobs > 1`` — so intake stays
responsive under load.

Endpoints
---------
``POST /solve``
    Body: a solve spec (see :mod:`repro.serve.protocol`).  Coalesced,
    batched, cached (memory + store).  200 with the solution document, or
    a structured error (400/422/429/503/504).
``POST /simulate``
    A solve spec with mandatory ``shape`` plus sweep knobs; the solve goes
    through the same coalescing path, then the cycle simulation runs on an
    executor thread.  Returns solution + simulation report.
``POST /table1``
    ``{"benchmarks": [...], "repetitions": k}`` — regenerates Table 1 rows
    via :func:`repro.eval.table1.build_table`.
``GET /healthz``
    Liveness + queue/store stats, always JSON 200 while the loop is alive.
``GET /metrics``
    The process metrics registry in Prometheus text format
    (:func:`repro.obs.export.to_prometheus_text`), including store
    occupancy gauges and traffic counters.
``GET /debug/traces`` / ``GET /debug/inflight`` / ``GET /debug/store``
    Live debug surface, **off by default** — start the server with
    ``debug=True`` (CLI: ``--debug``) to enable.  ``/debug/traces`` serves
    a bounded ring of recent end-to-end request span trees (requires
    observability, ``REPRO_OBS=1``); ``/debug/inflight`` the coalescer's
    queued/in-flight jobs with ages and trace ids; ``/debug/store`` the
    solution store's occupancy and hit-rate.

Tracing: with observability enabled every request is assigned a trace id
(returned in the response payload as ``trace_id``).  The id travels with
the work — through the coalescer into executor threads and pool workers —
so the finished spans reassemble into one tree per request, retrievable
from ``/debug/traces``.  Requests that coalesce onto another request's
in-flight solve record a *link* to the leader's trace instead of
duplicating its spans.

Deadlines: a request may carry ``timeout_ms``; past-deadline requests get
``504 deadline_exceeded`` — *the coalesced solve keeps running* (other
waiters, or the store, still want the result), only this response is
abandoned.  Backpressure: a full intake queue answers ``429 queue_full``
with a ``Retry-After`` header instead of queueing unboundedly.

:func:`serve_in_thread` runs the whole server on a daemon thread for
tests, benchmarks, and embedding in synchronous programs.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import threading
import time
from collections import OrderedDict
from typing import Any, Awaitable, Callable, Dict, List, Optional, Tuple, Union

from ..core import cache as solve_cache
from ..core.mapping import BankMapping
from ..obs import state as obs_state
from ..obs.export import to_prometheus_text
from ..obs.metrics import registry as obs_registry
from ..obs.reqtrace import REQUEST_SPAN, TraceBuffer, build_trace_tree
from ..obs.tracecontext import new_trace_id, trace
from ..obs.tracer import SpanRecord, span, tracer as obs_tracer
from .coalesce import Coalescer, Outcome, QueueFullError
from .protocol import (
    ERROR_BAD_REQUEST,
    ERROR_DEADLINE,
    ERROR_INTERNAL,
    ERROR_NOT_FOUND,
    ERROR_QUEUE_FULL,
    HTTP_STATUS,
    TRACE_HEADER,
    BadRequestError,
    SimulateSpec,
    SolveSpec,
    error_payload,
    parse_simulate_spec,
    parse_solve_spec,
    parse_timeout_s,
    solution_payload,
)
from .prefetch import Prefetcher
from .store import SolutionStore

#: Largest accepted request body; patterns are small, this is generous.
MAX_BODY_BYTES = 1 << 20

#: Canonical groups tracked for /debug/store (LRU beyond this).
_CANON_GROUPS_MAX = 1024

#: Request span trees kept for ``/debug/traces``.
DEFAULT_TRACE_BUFFER = 128

#: Leak guard on the process tracer: spans belonging to traces that were
#: never finished (e.g. a leader whose response was abandoned past its
#: deadline while its solve kept running) would otherwise accumulate.
_TRACE_RECORD_CAP = 20_000

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class _HttpReply(Exception):
    """Internal control flow: abort the handler with a ready response."""

    def __init__(
        self, status: int, payload: Dict[str, Any], headers: Optional[Dict[str, str]] = None
    ) -> None:
        super().__init__(f"HTTP {status}")
        self.status = status
        self.payload = payload
        self.headers = headers or {}


async def read_http_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
    """Parse one HTTP/1.1 request off a stream; None at end of connection.

    Shared by the worker server and the cluster front
    (:mod:`repro.cluster.router`) — one wire parser, one set of limits.
    Header names are lowercased.
    """
    line = await reader.readline()
    if not line or line in (b"\r\n", b"\n"):
        return None
    try:
        method, target, _version = line.decode("ascii").split()
    except ValueError:
        raise asyncio.IncompleteReadError(line, None)
    headers: Dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        key, _, value = raw.decode("latin-1").partition(":")
        headers[key.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY_BYTES:
        raise asyncio.LimitOverrunError("body too large", length)
    body = await reader.readexactly(length) if length else b""
    return method.upper(), target, headers, body


def write_http_response(
    writer: asyncio.StreamWriter,
    status: int,
    payload: Union[Dict[str, Any], str, bytes],
    extra_headers: Dict[str, str],
    keep_alive: bool,
    content_type: Optional[str] = None,
    counter_prefix: str = "serve",
) -> None:
    """Serialize and queue one response; shared with the cluster front.

    ``bytes`` payloads pass through verbatim (the router relays worker
    response bodies without re-encoding them — byte-identity across
    routing paths is a cluster invariant, so the front never re-serializes
    a worker's JSON).
    """
    if isinstance(payload, bytes):
        body = payload
        content_type = content_type or "application/json"
    elif isinstance(payload, str):
        body = payload.encode("utf-8")
        content_type = content_type or "text/plain; version=0.0.4; charset=utf-8"
    else:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        content_type = content_type or "application/json"
    head = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    head.extend(f"{k}: {v}" for k, v in extra_headers.items())
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("ascii") + body)
    obs_registry().counter(f"{counter_prefix}.http.{status}").inc()


@dataclasses.dataclass
class _RequestContext:
    """Per-request trace identity, threaded through the handler.

    ``links`` collects trace ids of *other* requests whose in-flight work
    this one attached to (the coalesced leader); they end up on the
    ``serve.request`` root span so a follower's tree points at the tree
    that actually contains the solve.
    """

    trace_id: Optional[str] = None
    links: List[str] = dataclasses.field(default_factory=list)


class PartitionServer:
    """A long-lived partitioning service bound to one host/port."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        store_dir: Optional[str] = None,
        store_max_entries: int = 4096,
        jobs: int = 0,
        batch_max: int = 32,
        max_pending: int = 256,
        retry_after_s: float = 1.0,
        solve_delay_s: float = 0.0,
        debug: bool = False,
        trace_buffer_size: int = DEFAULT_TRACE_BUFFER,
        prefetch: bool = False,
        prefetch_cap: int = 64,
        shard_id: Optional[int] = None,
        cluster_map: Optional[str] = None,
        peer_api: Optional[bool] = None,
        replicate: bool = True,
    ) -> None:
        self.host = host
        self.port = port  # rebound to the real port after start()
        self.store = (
            SolutionStore(store_dir, max_entries=store_max_entries)
            if store_dir
            else None
        )
        #: Cluster membership: this worker's shard id and the supervisor-
        #: maintained map file naming every sibling.  The internal /peer/*
        #: API defaults on exactly when the server is part of a cluster.
        self.shard_id = shard_id
        self.cluster_map = cluster_map
        self.peer_api = (
            peer_api
            if peer_api is not None
            else (shard_id is not None or cluster_map is not None)
        )
        self._replicate = replicate
        self.peer_fetcher: Optional[Any] = None
        self.replicator: Optional[Any] = None
        self._prefetch_requested = prefetch
        self._prefetch_cap = prefetch_cap
        self.prefetcher: Optional[Prefetcher] = None
        # canonical digest -> distinct caller (translation-level) digests
        # seen for it; sizes > 1 mean the symmetry quotient is collapsing
        # reflected/permuted variants onto one solve.
        self._canon_groups: "OrderedDict[str, set]" = OrderedDict()
        self._coalescer_config = dict(
            jobs=jobs,
            batch_max=batch_max,
            max_pending=max_pending,
            retry_after_s=retry_after_s,
            solve_delay_s=solve_delay_s,
        )
        self.coalescer: Optional[Coalescer] = None
        self.debug = debug
        self.traces = TraceBuffer(trace_buffer_size)
        self._server: Optional[asyncio.base_events.Server] = None
        self._batch_task: Optional[asyncio.Task] = None
        self._conn_tasks: set = set()
        self._started_at = 0.0
        self._requests = 0

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and start the batch pipeline (and prefetcher)."""
        if self._prefetch_requested and self.store is not None:
            # Late-bound: the coalescer is created just below; "idle" means
            # no foreground jobs queued or in flight.
            self.prefetcher = Prefetcher(
                self.store,
                idle=lambda: self.coalescer is None or self.coalescer.pending == 0,
                cap=self._prefetch_cap,
            )
        if self.cluster_map is not None and self.shard_id is not None:
            # The cluster tiers: read-through to warm peers, write-side
            # replication to ring successors.  Imported lazily — the serve
            # package must not depend on repro.cluster outside cluster mode.
            from ..cluster.peers import PeerFetcher, PeerReplicator

            self.peer_fetcher = PeerFetcher(
                self.cluster_map, self.shard_id, store=self.store
            )
            if self._replicate and self.store is not None:
                self.replicator = PeerReplicator(
                    self.cluster_map, self.shard_id, store=self.store
                )
        self.coalescer = Coalescer(
            store=self.store,
            on_miss=self.prefetcher.observe if self.prefetcher else None,
            peer_fetch=self.peer_fetcher,
            on_stored=self.replicator.offer if self.replicator else None,
            **self._coalescer_config,
        )
        self._batch_task = asyncio.get_running_loop().create_task(
            self.coalescer.run()
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()

    async def stop(self) -> None:
        """Stop accepting, fail queued work, release the port."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Idle keep-alive handlers are parked in _read_request; cancel them
        # so no coroutine outlives the loop (a GC'd parked handler raises
        # "Event loop is closed" from its writer-close finally block).
        if self._conn_tasks:
            for task in list(self._conn_tasks):
                task.cancel()
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
            self._conn_tasks.clear()
        if self._batch_task is not None:
            self._batch_task.cancel()
            try:
                await self._batch_task
            except asyncio.CancelledError:
                pass
            self._batch_task = None
        if self.coalescer is not None:
            self.coalescer.close()
        if self.prefetcher is not None:
            self.prefetcher.close()
            self.prefetcher = None
        if self.replicator is not None:
            self.replicator.close()
            self.replicator = None
        if self.peer_fetcher is not None:
            self.peer_fetcher.close()
            self.peer_fetcher = None

    async def serve_forever(self) -> None:
        """Run until cancelled (the CLI wires signals to cancellation)."""
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    # -- HTTP plumbing -----------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, target, headers, body = request
                keep_alive = headers.get("connection", "keep-alive") != "close"
                status, payload, extra = await self._route(
                    method, target, body, headers
                )
                self._write_response(writer, status, payload, extra, keep_alive)
                await writer.drain()
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            ConnectionResetError,
        ):
            pass  # client went away mid-request; nothing to answer
        except asyncio.CancelledError:
            pass  # server stopping while this connection idled
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.CancelledError,
            ):  # pragma: no cover
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        return await read_http_request(reader)

    def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Union[Dict[str, Any], str],
        extra_headers: Dict[str, str],
        keep_alive: bool,
    ) -> None:
        write_http_response(writer, status, payload, extra_headers, keep_alive)

    # -- routing -----------------------------------------------------------

    async def _route(
        self, method: str, target: str, body: bytes,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Union[Dict[str, Any], str], Dict[str, str]]:
        self._requests += 1
        registry = obs_registry()
        registry.counter("serve.requests").inc()
        started = time.monotonic()
        started_perf = time.perf_counter()
        path = target.split("?", 1)[0]
        # A front-end router (or a peer worker) hands its trace id down in
        # the X-Repro-Trace header; adopting it stitches the worker's spans
        # into the originating request's tree instead of starting a new one.
        incoming_trace = (headers or {}).get(TRACE_HEADER.lower()) or None
        ctx = _RequestContext(
            trace_id=(
                (incoming_trace or new_trace_id())
                if obs_state.enabled()
                else None
            )
        )
        status = 500
        try:
            handler = self._resolve_handler(method, path)
            if ctx.trace_id is None:
                payload = await handler(self._parse_body(body), ctx)
            else:
                with trace(ctx.trace_id):
                    payload = await handler(self._parse_body(body), ctx)
                if isinstance(payload, dict):
                    payload.setdefault("trace_id", ctx.trace_id)
            status = 200
            return 200, payload, {}
        except _HttpReply as reply:
            status = reply.status
            return reply.status, reply.payload, reply.headers
        except BadRequestError as exc:
            status = 400
            return 400, error_payload(ERROR_BAD_REQUEST, str(exc)), {}
        except Exception as exc:  # noqa: BLE001 - the server must not die
            registry.counter("serve.errors.internal").inc()
            return 500, error_payload(ERROR_INTERNAL, f"{type(exc).__name__}: {exc}"), {}
        finally:
            elapsed_ms = (time.monotonic() - started) * 1000.0
            registry.log_histogram("serve.request.latency_ms").observe(elapsed_ms)
            if ctx.trace_id is not None:
                self._finish_trace(ctx, method, path, status, started_perf, elapsed_ms)

    def _finish_trace(
        self,
        ctx: _RequestContext,
        method: str,
        path: str,
        status: int,
        started_perf: float,
        elapsed_ms: float,
    ) -> None:
        """Close out a request's trace: root span, tree build, hand-off.

        The ``serve.request`` root is recorded by hand rather than through
        :func:`~repro.obs.tracer.span` because concurrent requests
        interleave on the event-loop thread — the thread-local nesting
        stack would mis-parent one request's spans under another's root.
        The trace id, not the stack, is what ties the tree together:
        :func:`build_trace_tree` adopts every parentless in-trace span
        (executor threads, pool workers) under this root.
        """
        tr = obs_tracer()
        tr.record(
            SpanRecord(
                span_id=tr.next_id(),
                parent_id=None,
                name=REQUEST_SPAN,
                start=started_perf,
                duration_ms=elapsed_ms,
                thread_id=threading.get_ident(),
                attrs={"method": method, "path": path, "status": status},
                trace_id=ctx.trace_id,
                links=tuple(ctx.links),
            )
        )
        self.traces.add(build_trace_tree(ctx.trace_id, tr.pop_trace(ctx.trace_id)))
        tr.trim(_TRACE_RECORD_CAP)

    def _resolve_handler(
        self, method: str, path: str
    ) -> Callable[[Any, "_RequestContext"], Awaitable[Union[Dict[str, Any], str]]]:
        if path.startswith("/peer/"):
            return self._resolve_peer_handler(method, path)
        routes: Dict[Tuple[str, str], Callable[[Any, Any], Awaitable[Any]]] = {
            ("POST", "/solve"): self._handle_solve,
            ("POST", "/simulate"): self._handle_simulate,
            ("POST", "/table1"): self._handle_table1,
            ("GET", "/healthz"): self._handle_healthz,
            ("GET", "/metrics"): self._handle_metrics,
            ("GET", "/debug/traces"): self._handle_debug_traces,
            ("GET", "/debug/inflight"): self._handle_debug_inflight,
            ("GET", "/debug/store"): self._handle_debug_store,
        }
        handler = routes.get((method, path))
        if handler is None:
            known_paths = {p for _, p in routes}
            if path in known_paths:
                raise _HttpReply(
                    405, error_payload(ERROR_BAD_REQUEST, f"{method} not allowed on {path}")
                )
            raise _HttpReply(404, error_payload(ERROR_NOT_FOUND, f"no route {path}"))
        return handler

    def _resolve_peer_handler(
        self, method: str, path: str
    ) -> Callable[[Any, "_RequestContext"], Awaitable[Union[Dict[str, Any], str]]]:
        """Route the internal /peer/* API (enabled only in cluster mode)."""
        if not self.peer_api:
            raise _HttpReply(
                404,
                error_payload(
                    ERROR_NOT_FOUND,
                    "peer API is disabled (workers enable it in cluster mode)",
                ),
            )
        if path.startswith("/peer/solution/"):
            digest = path[len("/peer/solution/"):]
            if not digest or "/" in digest:
                raise _HttpReply(
                    404, error_payload(ERROR_NOT_FOUND, f"bad peer path {path}")
                )
            if method == "GET":
                return lambda doc, ctx: self._handle_peer_get(digest, doc, ctx)
            if method == "PUT":
                return lambda doc, ctx: self._handle_peer_put(digest, doc, ctx)
            raise _HttpReply(
                405,
                error_payload(ERROR_BAD_REQUEST, f"{method} not allowed on {path}"),
            )
        if (method, path) == ("GET", "/peer/digests"):
            return self._handle_peer_digests
        if (method, path) == ("GET", "/peer/registry"):
            return self._handle_peer_registry
        raise _HttpReply(404, error_payload(ERROR_NOT_FOUND, f"no route {path}"))

    @staticmethod
    def _parse_body(body: bytes) -> Any:
        if not body:
            return {}
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BadRequestError(f"body is not valid JSON: {exc}") from exc

    # -- the solve path ----------------------------------------------------

    def _note_canon_group(self, digest: str, spec: SolveSpec) -> None:
        """Track which caller-frame identities collapse onto one canonical solve."""
        group = self._canon_groups.get(digest)
        if group is None:
            group = set()
            self._canon_groups[digest] = group
            while len(self._canon_groups) > _CANON_GROUPS_MAX:
                self._canon_groups.popitem(last=False)
        else:
            self._canon_groups.move_to_end(digest)
        if len(group) < 256:
            group.add(spec.digest())

    async def _await_solution(
        self, spec: SolveSpec, deadline: Optional[float], ctx: _RequestContext
    ) -> Tuple[Any, str]:
        """Submit a spec and await its (shared) outcome under the deadline.

        The spec is reduced to its canonical-frame twin before intake, so
        requests that differ by translation, reflection, or leading-axis
        permutation coalesce onto one solve; the shared canonical solution
        is mapped back through the spec's own
        :class:`~repro.core.cache.SymmetryOp` — bit-identical to what a
        direct in-process solve of the caller's pattern returns.  Returns
        ``(solution_in_caller_frame, canonical_digest)``.  When the request
        coalesces onto another request's in-flight job, the leader's trace
        id lands in ``ctx.links``.
        """
        assert self.coalescer is not None
        canon_spec, op = spec.canonicalized()
        digest = canon_spec.canonical_digest()
        self._note_canon_group(digest, spec)
        # An already-expired deadline is rejected before intake so a dead
        # request never consumes queue capacity.
        remaining = None if deadline is None else deadline - time.monotonic()
        if remaining is not None and remaining <= 0:
            obs_registry().counter("serve.deadline.expired").inc()
            raise _HttpReply(
                HTTP_STATUS[ERROR_DEADLINE],
                error_payload(ERROR_DEADLINE, "deadline expired before solve"),
            )
        try:
            future, leader_trace = self.coalescer.submit_traced(
                canon_spec, trace_id=ctx.trace_id
            )
            if (
                leader_trace is not None
                and leader_trace != ctx.trace_id
                and leader_trace not in ctx.links
            ):
                ctx.links.append(leader_trace)
        except QueueFullError as exc:
            raise _HttpReply(
                HTTP_STATUS[ERROR_QUEUE_FULL],
                error_payload(
                    ERROR_QUEUE_FULL, str(exc), retry_after_s=exc.retry_after_s
                ),
                headers={"Retry-After": f"{max(1, round(exc.retry_after_s))}"},
            )
        try:
            # Shield: the future is shared with other coalesced waiters and
            # with the store — this request timing out must not cancel it.
            outcome: Outcome = await asyncio.wait_for(
                asyncio.shield(future), timeout=remaining
            )
        except asyncio.TimeoutError:
            obs_registry().counter("serve.deadline.expired").inc()
            raise _HttpReply(
                HTTP_STATUS[ERROR_DEADLINE],
                error_payload(ERROR_DEADLINE, "deadline expired during solve"),
            )
        if outcome[0] != "ok":
            _, code, message = outcome
            raise _HttpReply(
                HTTP_STATUS.get(code, 500), error_payload(code, message)
            )
        return op.solution_to_caller(outcome[1], spec.pattern), digest

    @staticmethod
    def _deadline_from(doc: Any) -> Optional[float]:
        timeout_s = parse_timeout_s(doc)
        return None if timeout_s is None else time.monotonic() + timeout_s

    async def _handle_solve(self, doc: Any, ctx: _RequestContext) -> Dict[str, Any]:
        deadline = self._deadline_from(doc)
        spec = parse_solve_spec(doc)
        solution, digest = await self._await_solution(spec, deadline, ctx)
        return solution_payload(solution, spec, digest)

    async def _handle_simulate(self, doc: Any, ctx: _RequestContext) -> Dict[str, Any]:
        deadline = self._deadline_from(doc)
        sim: SimulateSpec = parse_simulate_spec(doc)
        solution, digest = await self._await_solution(sim.solve, deadline, ctx)
        mapping = BankMapping(solution=solution, shape=sim.solve.shape)
        trace_id = ctx.trace_id

        def _run_simulation():
            from ..sim.memsim import simulate_sweep

            def _sweep():
                return simulate_sweep(
                    mapping,
                    step=sim.step,
                    limit=sim.limit,
                    ports_per_bank=sim.ports_per_bank,
                    verify=sim.verify,
                    engine=sim.engine,
                )

            if trace_id is None:
                return _sweep()
            # Executor threads inherit no request context; re-enter the
            # trace so the sweep's spans land in this request's tree.
            with trace(trace_id):
                with span("serve.simulate", engine=sim.engine):
                    return _sweep()

        loop = asyncio.get_running_loop()
        remaining = None if deadline is None else deadline - time.monotonic()
        if remaining is not None and remaining <= 0:
            raise _HttpReply(
                HTTP_STATUS[ERROR_DEADLINE],
                error_payload(ERROR_DEADLINE, "deadline expired before simulation"),
            )
        try:
            report = await asyncio.wait_for(
                loop.run_in_executor(None, _run_simulation), timeout=remaining
            )
        except asyncio.TimeoutError:
            raise _HttpReply(
                HTTP_STATUS[ERROR_DEADLINE],
                error_payload(ERROR_DEADLINE, "deadline expired during simulation"),
            )
        payload = solution_payload(solution, sim.solve, digest)
        payload["report"] = report.to_dict()
        return payload

    async def _handle_table1(self, doc: Any, _ctx: _RequestContext) -> Dict[str, Any]:
        doc = doc if isinstance(doc, dict) else {}
        deadline = self._deadline_from(doc)
        from ..patterns.library import BENCHMARKS

        benchmarks = doc.get("benchmarks")
        if benchmarks is not None:
            if not isinstance(benchmarks, list) or not benchmarks:
                raise BadRequestError("benchmarks must be a non-empty list")
            unknown = [b for b in benchmarks if b not in BENCHMARKS]
            if unknown:
                raise BadRequestError(f"unknown benchmarks: {unknown}")
        repetitions = doc.get("repetitions", 1)
        if isinstance(repetitions, bool) or not isinstance(repetitions, int) or repetitions < 1:
            raise BadRequestError(f"repetitions must be a positive integer, got {repetitions!r}")

        def _build():
            from ..eval.table1 import build_table

            table = build_table(benchmarks, time_repetitions=repetitions)
            return {
                "rows": [
                    {
                        "benchmark": row.benchmark,
                        "ours": row.ours.to_dict(),
                        "ltb": row.ltb.to_dict(),
                        "storage": {k: list(v) for k, v in row.storage.items()},
                    }
                    for row in table.rows
                ],
                "average_storage_improvement": table.average_storage_improvement,
                "average_operations_improvement": table.average_operations_improvement,
            }

        loop = asyncio.get_running_loop()
        remaining = None if deadline is None else deadline - time.monotonic()
        try:
            return await asyncio.wait_for(
                loop.run_in_executor(None, _build), timeout=remaining
            )
        except asyncio.TimeoutError:
            raise _HttpReply(
                HTTP_STATUS[ERROR_DEADLINE],
                error_payload(ERROR_DEADLINE, "deadline expired during table build"),
            )

    # -- introspection -----------------------------------------------------

    async def _handle_healthz(self, _doc: Any, _ctx: _RequestContext) -> Dict[str, Any]:
        assert self.coalescer is not None
        return {
            "status": "ok",
            "uptime_s": time.monotonic() - self._started_at,
            "requests": self._requests,
            "pending": self.coalescer.pending,
            "jobs": self.coalescer.jobs,
            "batch_max": self.coalescer.batch_max,
            "max_pending": self.coalescer.max_pending,
            "debug": self.debug,
            "store": self.store.stats() if self.store is not None else None,
            "prefetch": (
                self.prefetcher.stats() if self.prefetcher is not None else None
            ),
            "shard": self.shard_id,
            "peer_api": self.peer_api,
        }

    async def _handle_metrics(self, _doc: Any, _ctx: _RequestContext) -> str:
        # Mirror the store's occupancy into gauges (and make sure its
        # traffic counters exist even before the first lookup) so the
        # Prometheus text always carries the full serve.store.* family.
        registry = obs_registry()
        if self.store is not None:
            stats = self.store.stats()
            registry.gauge("serve.store.entries").set(stats["entries"])
            registry.gauge("serve.store.bytes").set(stats["bytes"])
            registry.gauge("serve.store.max_entries").set(stats["max_entries"])
            for name in ("hits", "misses", "writes", "evictions"):
                registry.counter(f"serve.store.{name}").inc(0)
        # The in-memory solve cache's lifetime tallies, as gauges (the
        # matching solve.cache.* counters reset with the registry; the
        # instance tallies don't, and a hit-rate derives from this pair).
        mem = solve_cache.cache()
        registry.gauge("serve.solve_cache.hits").set(mem.hits)
        registry.gauge("serve.solve_cache.misses").set(mem.misses)
        registry.gauge("serve.solve_cache.evictions").set(mem.evictions)
        registry.gauge("serve.solve_cache.entries").set(len(mem))
        registry.gauge("serve.solve_cache.maxsize").set(mem.maxsize)
        # Materialize the prefetch counter family even when it is all-zero
        # so dashboards see the metrics exist as soon as prefetch is on.
        if self.prefetcher is not None:
            for name in (
                "enqueued",
                "dropped",
                "skipped",
                "solved",
                "stored",
                "errors",
            ):
                registry.counter(f"prefetch.{name}").inc(0)
            registry.gauge("prefetch.queued").set(
                self.prefetcher.stats()["queued"]
            )
        return to_prometheus_text()

    # -- debug surface (off unless debug=True) -----------------------------

    def _require_debug(self) -> None:
        if not self.debug:
            raise _HttpReply(
                404,
                error_payload(
                    ERROR_NOT_FOUND,
                    "debug endpoints are disabled (start the server with --debug)",
                ),
            )

    async def _handle_debug_traces(self, _doc: Any, _ctx: _RequestContext) -> Dict[str, Any]:
        self._require_debug()
        return {
            "enabled": obs_state.enabled(),
            "count": len(self.traces),
            "traces": self.traces.snapshot(),
        }

    async def _handle_debug_inflight(self, _doc: Any, _ctx: _RequestContext) -> Dict[str, Any]:
        self._require_debug()
        assert self.coalescer is not None
        return self.coalescer.debug_state()

    async def _handle_debug_store(self, _doc: Any, _ctx: _RequestContext) -> Dict[str, Any]:
        self._require_debug()
        sizes = {
            digest: len(group) for digest, group in self._canon_groups.items()
        }
        return {
            "store": self.store.stats() if self.store is not None else None,
            "prefetch": (
                self.prefetcher.stats() if self.prefetcher is not None else None
            ),
            # How many distinct caller-frame request identities each
            # canonical solve is serving: >1 means symmetry collapse.
            "canonical_groups": {
                "groups": len(sizes),
                "max_size": max(sizes.values()) if sizes else 0,
                "collapsed": sum(1 for v in sizes.values() if v > 1),
                "sizes": {d[:12]: v for d, v in sizes.items()},
            },
        }

    # -- the peer API (cluster-internal; peer_api=True only) ---------------

    def _require_store(self) -> SolutionStore:
        if self.store is None:
            raise _HttpReply(
                404,
                error_payload(ERROR_NOT_FOUND, "this worker has no solution store"),
            )
        return self.store

    async def _handle_peer_get(
        self, digest: str, _doc: Any, _ctx: _RequestContext
    ) -> Dict[str, Any]:
        """Serve a store artifact to a sibling shard, verbatim.

        The response body is the artifact document itself, so the caller
        can persist it byte-identically — content-addressed replication
        needs no separate wire format.
        """
        document = self._require_store().get_document(digest)
        if document is None:
            raise _HttpReply(
                404,
                error_payload(ERROR_NOT_FOUND, f"no artifact for {digest[:12]}"),
            )
        obs_registry().counter("cluster.peer.served").inc()
        return document

    async def _handle_peer_put(
        self, digest: str, doc: Any, _ctx: _RequestContext
    ) -> Dict[str, Any]:
        """Accept a replicated artifact from a sibling shard."""
        store = self._require_store()
        if not isinstance(doc, dict):
            raise BadRequestError("replication body must be an artifact document")
        try:
            store.put_document(digest, doc)
        except Exception as exc:  # noqa: BLE001 - malformed peer payloads are 400s
            raise BadRequestError(f"invalid artifact for {digest[:12]}: {exc}")
        obs_registry().counter("cluster.peer.received").inc()
        return {"stored": digest, "entries": len(store)}

    async def _handle_peer_digests(
        self, _doc: Any, _ctx: _RequestContext
    ) -> Dict[str, Any]:
        """Every digest this shard holds — the backfill scan surface."""
        store = self._require_store()
        return {"shard": self.shard_id, "digests": store.digests()}

    async def _handle_peer_registry(
        self, _doc: Any, _ctx: _RequestContext
    ) -> Dict[str, Any]:
        """This worker's metrics registry as a mergeable dump.

        The cluster front pulls one of these per shard and merges them
        (namespaced ``worker.<shard>.*``) into its aggregated ``/metrics``.
        Store gauges are refreshed first so occupancy is current even if
        ``/metrics`` was never polled on this worker.
        """
        if self.store is not None:
            self.store._publish_gauges()
        worker_id = None if self.shard_id is None else str(self.shard_id)
        return obs_registry().dump(worker_id=worker_id)


class ThreadedServer:
    """A :class:`PartitionServer` running its own event loop on a thread.

    The synchronous embedding used by tests, benchmarks, and the CI smoke:
    construction blocks until the port is bound; :meth:`stop` blocks until
    the loop has fully wound down.
    """

    def __init__(self, **kwargs: Any) -> None:
        self.server = PartitionServer(**kwargs)
        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=30.0)
        if self._startup_error is not None:
            raise self._startup_error
        if not self._started.is_set():  # pragma: no cover - defensive
            raise RuntimeError("server failed to start within 30s")

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def host(self) -> str:
        return self.server.host

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.server.start())
        except BaseException as exc:  # pragma: no cover - bind failures
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.run_until_complete(self.server.stop())
            self._loop.close()

    def stop(self) -> None:
        """Shut the server down and join its thread."""
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=30.0)

    def __enter__(self) -> "ThreadedServer":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.stop()


def serve_in_thread(**kwargs: Any) -> ThreadedServer:
    """Start a server on a daemon thread; returns once the port is bound."""
    return ThreadedServer(**kwargs)
