"""``repro-serve`` — run the partitioning service from the command line.

Examples::

    repro-serve --port 8642 --store-dir ~/.cache/repro-store
    repro-serve --port 0 --port-file port.txt --jobs 4 &
    curl -s -X POST localhost:8642/solve -d '{"benchmark": "log", "n_max": 10}'

``--port 0`` binds an ephemeral port; ``--port-file`` writes the bound
port so scripts (and the CI smoke job) can find the server without racing
its stdout.  SIGINT/SIGTERM shut the server down cleanly: in-flight work
is failed with ``shutting_down`` errors, the store is already durable
(every artifact is written at solve time), and the process exits 0.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
from pathlib import Path
from typing import Optional, Sequence

from .server import DEFAULT_TRACE_BUFFER, PartitionServer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "Serve memory-partitioning solves over HTTP with request "
            "coalescing, micro-batching, and a persistent solution store."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8642, help="TCP port (0 = ephemeral)"
    )
    parser.add_argument(
        "--port-file",
        metavar="PATH",
        default=None,
        help="write the bound port number to PATH after startup",
    )
    parser.add_argument(
        "--store-dir",
        metavar="DIR",
        default=None,
        help="persistent solution store directory (omit for memory-only)",
    )
    parser.add_argument(
        "--store-max",
        type=int,
        default=4096,
        help="store capacity in artifacts (LRU eviction beyond this)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=0,
        help="solve-tier worker processes (<=1: solve in-process)",
    )
    parser.add_argument(
        "--batch-max",
        type=int,
        default=32,
        help="max distinct solves drained into one micro-batch",
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        default=256,
        help="backpressure bound on queued+in-flight distinct solves",
    )
    parser.add_argument(
        "--retry-after",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="Retry-After hint attached to 429 responses",
    )
    parser.add_argument(
        "--prefetch",
        action="store_true",
        help=(
            "warm the store predictively: on each store miss, solve "
            "neighbor specs (adjacent n_max, observed sweep direction) "
            "during idle time (needs --store-dir)"
        ),
    )
    parser.add_argument(
        "--prefetch-cap",
        type=int,
        default=64,
        metavar="N",
        help="bound on queued prefetch neighbor solves",
    )
    parser.add_argument(
        "--debug",
        action="store_true",
        help=(
            "enable the /debug/* endpoints (recent request traces, "
            "in-flight jobs, store occupancy)"
        ),
    )
    parser.add_argument(
        "--trace-buffer",
        type=int,
        default=DEFAULT_TRACE_BUFFER,
        metavar="N",
        help="how many recent request traces /debug/traces retains",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help=(
            "run an N-shard cluster (front router + N workers) instead of "
            "a single server; delegates to repro-cluster with these flags"
        ),
    )
    cluster = parser.add_argument_group(
        "cluster worker (normally set by the supervisor, not by hand)"
    )
    cluster.add_argument(
        "--shard-id",
        type=int,
        default=None,
        metavar="I",
        help="this worker's shard id in a cluster (enables /peer/*)",
    )
    cluster.add_argument(
        "--cluster-map",
        metavar="PATH",
        default=None,
        help="cluster map file listing peer shard addresses",
    )
    return parser


def _cluster_argv(args: argparse.Namespace) -> list:
    """Translate ``repro-serve --shards N ...`` flags to repro-cluster's."""
    argv = [
        "--shards", str(args.shards),
        "--host", args.host,
        "--port", str(args.port),
        "--store-max", str(args.store_max),
        "--jobs", str(args.jobs),
        "--batch-max", str(args.batch_max),
        "--max-pending", str(args.max_pending),
        "--retry-after", str(args.retry_after),
    ]
    if args.port_file:
        argv += ["--port-file", args.port_file]
    if args.store_dir:
        argv += ["--store-root", args.store_dir]
    if args.prefetch:
        argv += ["--prefetch", "--prefetch-cap", str(args.prefetch_cap)]
    if args.debug:
        argv.append("--debug")
    return argv


async def _run(args: argparse.Namespace) -> int:
    server = PartitionServer(
        host=args.host,
        port=args.port,
        store_dir=args.store_dir,
        store_max_entries=args.store_max,
        jobs=args.jobs,
        batch_max=args.batch_max,
        max_pending=args.max_pending,
        retry_after_s=args.retry_after,
        debug=args.debug,
        trace_buffer_size=args.trace_buffer,
        prefetch=args.prefetch,
        prefetch_cap=args.prefetch_cap,
        shard_id=args.shard_id,
        cluster_map=args.cluster_map,
    )
    await server.start()
    if args.port_file:
        Path(args.port_file).write_text(f"{server.port}\n")
    store_note = f", store: {args.store_dir}" if args.store_dir else ""
    print(
        f"repro-serve listening on {server.host}:{server.port}"
        f" (jobs={args.jobs}{store_note})",
        flush=True,
    )

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
        except NotImplementedError:  # pragma: no cover - non-unix fallback
            signal.signal(sig, lambda *_: stop.set())

    serve_task = loop.create_task(server.serve_forever())
    await stop.wait()
    print("repro-serve: shutting down", flush=True)
    serve_task.cancel()
    try:
        await serve_task
    except asyncio.CancelledError:
        pass
    await server.stop()
    return 0


def main_serve(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``repro-serve`` console script."""
    args = build_parser().parse_args(argv)
    if args.shards > 0:
        from ..cluster.cli import main_cluster

        return main_cluster(_cluster_argv(args))
    try:
        return asyncio.run(_run(args))
    except KeyboardInterrupt:  # pragma: no cover - double ^C during shutdown
        return 130


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main_serve())
