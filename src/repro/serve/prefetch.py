"""Predictive store warming: solve likely-next requests during idle time.

Sweep-style clients walk a predictable path through spec space — the same
kernel at ``n_max`` 6, then 8, then 10 — so every store miss is a signal
about the *next* miss.  The :class:`Prefetcher` subscribes to the
coalescer's miss hook (:attr:`repro.serve.coalesce.Coalescer.on_miss`) and
enqueues **low-priority neighbor solves**:

* adjacent bank budgets (``n_max ± 1``), and
* the extrapolated next step in the observed sweep direction (per
  canonical pattern: if the last miss was at ``n_max=6`` and this one at
  ``8``, prefetch ``10``).

Neighbors run through the PR-7 scheduler (:func:`repro.sched.gather` with
``placement="thread"`` tasks, dedup-keyed by canonical digest) on a single
daemon worker that only drains while the foreground intake is idle, and
results land in the :class:`~repro.serve.store.SolutionStore` in the
canonical frame — exactly the artifact a future request would have written
— tagged ``meta["prefetch"] = true``.

Foreground protection is layered: the queue is a hard ``cap`` (drops count
into ``prefetch.dropped``), the worker re-checks the idle predicate
between jobs, and there is exactly one worker thread.  The counter family:

``prefetch.enqueued``
    neighbor specs accepted onto the queue,
``prefetch.dropped``
    neighbors rejected because the queue was at capacity,
``prefetch.skipped``
    drained neighbors that were already in the store (or raced a
    foreground solve there),
``prefetch.solved`` / ``prefetch.stored``
    neighbors actually solved and persisted,
``prefetch.errors``
    neighbor solves that failed (infeasible ``n_max`` etc. — expected at
    sweep edges, never fatal).

All counters surface on the serve ``/metrics`` endpoint and in
``--emit-metrics`` dumps; :meth:`Prefetcher.stats` feeds ``/healthz`` and
``/debug/store``.
"""

from __future__ import annotations

import dataclasses
import threading
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..obs.metrics import registry as obs_registry
from ..sched import Task, gather
from .coalesce import _solve_task
from .protocol import SolveSpec
from .store import SolutionStore

#: Default bound on queued neighbor solves.
DEFAULT_CAP = 64

#: How long the worker sleeps between idle-predicate polls (seconds).
_IDLE_POLL_S = 0.005

#: Sweep histories kept (one per canonical pattern family).
_HISTORY_MAX = 512


class Prefetcher:
    """Idle-time neighbor solver writing into the solution store.

    Parameters
    ----------
    store:
        Destination for prefetched solutions (required — prefetch without
        a durable store would warm nothing a restart could reuse).
    idle:
        Predicate polled before each neighbor solve; the worker only
        proceeds while it returns True (the server passes "no foreground
        jobs queued or in flight").  ``None`` means always idle.
    cap:
        Hard bound on the neighbor queue; excess neighbors are dropped,
        never queued — prefetch must not become backpressure.
    """

    def __init__(
        self,
        store: SolutionStore,
        idle: Optional[Callable[[], bool]] = None,
        cap: int = DEFAULT_CAP,
    ) -> None:
        if cap < 1:
            raise ValueError(f"cap must be positive, got {cap}")
        self.store = store
        self.cap = cap
        self._idle = idle if idle is not None else (lambda: True)
        self._queue: Deque[SolveSpec] = deque()
        self._queued_digests: Dict[str, None] = {}
        self._history: Dict[Tuple, int] = {}
        self._lock = threading.Lock()
        self._wake = threading.Event()
        self._closed = False
        self._worker = threading.Thread(
            target=self._run, name="repro-prefetch", daemon=True
        )
        self._worker.start()

    # -- observation (called from the coalescer's executor thread) ---------

    def observe(self, spec: SolveSpec) -> None:
        """Record a store-miss solve and enqueue its likely neighbors."""
        registry = obs_registry()
        for neighbor in self._neighbors(spec):
            digest = neighbor.canonical_digest()
            with self._lock:
                if self._closed:
                    return
                if digest in self._queued_digests:
                    continue
                if len(self._queue) >= self.cap:
                    registry.counter("prefetch.dropped").inc()
                    continue
                self._queue.append(neighbor)
                self._queued_digests[digest] = None
            registry.counter("prefetch.enqueued").inc()
            self._wake.set()

    def _neighbors(self, spec: SolveSpec) -> List[SolveSpec]:
        """Adjacent ``n_max`` values plus the sweep-direction extrapolation.

        The sweep history is keyed by the canonical pattern (plus the
        non-``n_max`` spec fields), so reflected/permuted variants of one
        kernel share a direction estimate — they share solves, after all.
        """
        if spec.n_max is None:
            return []
        family = (
            spec.pattern.offsets,
            spec.shape,
            spec.objective.value,
            spec.delta_max,
        )
        with self._lock:
            previous = self._history.get(family)
            self._history[family] = spec.n_max
            while len(self._history) > _HISTORY_MAX:
                self._history.pop(next(iter(self._history)))
        candidates: List[int] = []
        if previous is not None and previous != spec.n_max:
            stride = spec.n_max - previous
            candidates.append(spec.n_max + stride)
        candidates.extend((spec.n_max + 1, spec.n_max - 1))
        seen = set()
        out: List[SolveSpec] = []
        for n_max in candidates:
            if n_max < 1 or n_max == spec.n_max or n_max in seen:
                continue
            seen.add(n_max)
            out.append(dataclasses.replace(spec, n_max=n_max))
        return out

    # -- the worker ---------------------------------------------------------

    def _run(self) -> None:
        while True:
            self._wake.wait()
            if self._closed:
                return
            with self._lock:
                if not self._queue:
                    self._wake.clear()
                    continue
                spec = self._queue.popleft()
                self._queued_digests.pop(spec.canonical_digest(), None)
            # Low priority: yield to foreground work before solving.
            while not self._closed and not self._idle():
                self._wake.wait(_IDLE_POLL_S)
            if self._closed:
                return
            self._execute(spec)

    def _execute(self, spec: SolveSpec) -> None:
        registry = obs_registry()
        digest = spec.canonical_digest()
        if digest in self.store.digests():
            registry.counter("prefetch.skipped").inc()
            return
        task = Task(
            _solve_task,
            args=((digest, spec, None),),
            key=("prefetch", digest),
            placement="thread",
            name="prefetch.solve",
        )
        try:
            outcome = gather([task])[0]
        except Exception:  # noqa: BLE001 - a bad neighbor must not kill the worker
            registry.counter("prefetch.errors").inc()
            return
        if outcome[0] != "ok":
            registry.counter("prefetch.errors").inc()
            return
        registry.counter("prefetch.solved").inc()
        self.store.put(
            digest,
            outcome[1],
            meta={
                "pattern": spec.pattern.name,
                "m": spec.pattern.size,
                "prefetch": True,
            },
        )
        registry.counter("prefetch.stored").inc()

    # -- lifecycle / introspection ------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Queue occupancy + the full counter family, for /healthz & debug."""
        registry = obs_registry()
        with self._lock:
            queued = len(self._queue)
        return {
            "queued": queued,
            "cap": self.cap,
            "enqueued": registry.counter("prefetch.enqueued").value,
            "dropped": registry.counter("prefetch.dropped").value,
            "skipped": registry.counter("prefetch.skipped").value,
            "solved": registry.counter("prefetch.solved").value,
            "stored": registry.counter("prefetch.stored").value,
            "errors": registry.counter("prefetch.errors").value,
        }

    def drain(self, timeout_s: float = 5.0) -> bool:
        """Block until the queue is empty (tests/benches); True on success."""
        import time

        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            with self._lock:
                if not self._queue and not self._wake.is_set():
                    return True
                if not self._queue:
                    # Worker may still be mid-solve; give it a beat.
                    pass
            time.sleep(_IDLE_POLL_S)
        with self._lock:
            return not self._queue

    def close(self) -> None:
        """Stop the worker; queued neighbors are discarded."""
        with self._lock:
            self._closed = True
            self._queue.clear()
            self._queued_digests.clear()
        self._wake.set()
        self._worker.join(timeout=5.0)
