"""Predictive store warming: solve likely-next requests during idle time.

Sweep-style clients walk a predictable path through spec space — the same
kernel at ``n_max`` 6, then 8, then 10 — so every store miss is a signal
about the *next* miss.  The :class:`Prefetcher` subscribes to the
coalescer's miss hook (:attr:`repro.serve.coalesce.Coalescer.on_miss`) and
enqueues **low-priority neighbor solves**:

* ``nmax`` — adjacent bank budgets (``n_max ± 1``),
* ``sweep`` — the extrapolated next step in the observed sweep direction
  (per canonical pattern: if the last miss was at ``n_max=6`` and this
  one at ``8``, prefetch ``10``),
* ``unroll`` — the next rung of an unroll-factor ladder: when the
  observed pattern equals :func:`repro.patterns.generators.unrolled`
  of a recently seen base pattern at factor ``k``, prefetch factor
  ``k + 1`` (clients exploring unrolling sweep exactly this ladder), and
* ``shape`` — the next rung of a shape ladder: when consecutive misses
  for one kernel step the array shape by a uniform per-axis ratio or
  increment (``32×32`` then ``64×64`` → prefetch ``128×128``), bounded
  by a volume cap so extrapolation never queues a pathological solve.

Neighbors run through the PR-7 scheduler (:func:`repro.sched.gather` with
``placement="thread"`` tasks, dedup-keyed by canonical digest) on a single
daemon worker that only drains while the foreground intake is idle, and
results land in the :class:`~repro.serve.store.SolutionStore` in the
canonical frame — exactly the artifact a future request would have written
— tagged ``meta["prefetch"] = true``.

Foreground protection is layered: the queue is a hard ``cap`` (drops count
into ``prefetch.dropped``), the worker re-checks the idle predicate
between jobs, and there is exactly one worker thread.  The counter family:

``prefetch.enqueued``
    neighbor specs accepted onto the queue (with per-class breakdowns
    ``prefetch.enqueued.nmax`` / ``.sweep`` / ``.unroll`` / ``.shape``),
``prefetch.dropped``
    neighbors rejected because the queue was at capacity,
``prefetch.skipped``
    drained neighbors that were already in the store (or raced a
    foreground solve there),
``prefetch.solved`` / ``prefetch.stored``
    neighbors actually solved and persisted,
``prefetch.errors``
    neighbor solves that failed (infeasible ``n_max`` etc. — expected at
    sweep edges, never fatal).

All counters surface on the serve ``/metrics`` endpoint and in
``--emit-metrics`` dumps; :meth:`Prefetcher.stats` feeds ``/healthz`` and
``/debug/store``.
"""

from __future__ import annotations

import dataclasses
import threading
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..core.pattern import Pattern
from ..obs.metrics import registry as obs_registry
from ..patterns.generators import unrolled
from ..sched import Task, gather
from .coalesce import _solve_task
from .protocol import SolveSpec
from .store import SolutionStore

#: Default bound on queued neighbor solves.
DEFAULT_CAP = 64

#: How long the worker sleeps between idle-predicate polls (seconds).
_IDLE_POLL_S = 0.005

#: Sweep histories kept (one per canonical pattern family).
_HISTORY_MAX = 512

#: Base patterns remembered per non-pattern spec family, for unroll-ladder
#: detection (a ladder climbs from one of the last few observed kernels).
_BASES_PER_FAMILY = 8

#: Highest unroll factor we try to recognize an observed pattern as.
_UNROLL_MAX = 8

#: Shape-ladder extrapolations whose element count exceeds this are not
#: queued — a runaway geometric sweep must not become a monster solve.
_SHAPE_VOLUME_CAP = 1 << 22


class Prefetcher:
    """Idle-time neighbor solver writing into the solution store.

    Parameters
    ----------
    store:
        Destination for prefetched solutions (required — prefetch without
        a durable store would warm nothing a restart could reuse).
    idle:
        Predicate polled before each neighbor solve; the worker only
        proceeds while it returns True (the server passes "no foreground
        jobs queued or in flight").  ``None`` means always idle.
    cap:
        Hard bound on the neighbor queue; excess neighbors are dropped,
        never queued — prefetch must not become backpressure.
    """

    def __init__(
        self,
        store: SolutionStore,
        idle: Optional[Callable[[], bool]] = None,
        cap: int = DEFAULT_CAP,
    ) -> None:
        if cap < 1:
            raise ValueError(f"cap must be positive, got {cap}")
        self.store = store
        self.cap = cap
        self._idle = idle if idle is not None else (lambda: True)
        self._queue: Deque[SolveSpec] = deque()
        self._queued_digests: Dict[str, None] = {}
        self._history: Dict[Tuple, int] = {}
        self._bases: Dict[Tuple, Deque[Pattern]] = {}
        self._shapes: Dict[Tuple, Tuple[int, ...]] = {}
        self._lock = threading.Lock()
        self._wake = threading.Event()
        self._closed = False
        self._worker = threading.Thread(
            target=self._run, name="repro-prefetch", daemon=True
        )
        self._worker.start()

    # -- observation (called from the coalescer's executor thread) ---------

    def observe(self, spec: SolveSpec) -> None:
        """Record a store-miss solve and enqueue its likely neighbors."""
        registry = obs_registry()
        for klass, neighbor in self._neighbors(spec):
            digest = neighbor.canonical_digest()
            with self._lock:
                if self._closed:
                    return
                if digest in self._queued_digests:
                    continue
                if len(self._queue) >= self.cap:
                    registry.counter("prefetch.dropped").inc()
                    continue
                self._queue.append(neighbor)
                self._queued_digests[digest] = None
            registry.counter("prefetch.enqueued").inc()
            registry.counter(f"prefetch.enqueued.{klass}").inc()
            self._wake.set()

    def _neighbors(self, spec: SolveSpec) -> List[Tuple[str, SolveSpec]]:
        """Classed likely-next specs: ``(class, neighbor)`` pairs.

        Histories are keyed by the canonical pattern (plus the other spec
        fields), so reflected/permuted variants of one kernel share a
        direction estimate — they share solves, after all.  Classes later
        in the list are cheaper guesses; the queue preserves this order so
        the strongest predictions solve first.
        """
        if spec.n_max is None:
            return []
        family = (
            spec.pattern.offsets,
            spec.shape,
            spec.objective.value,
            spec.delta_max,
        )
        with self._lock:
            previous = self._history.get(family)
            self._history[family] = spec.n_max
            while len(self._history) > _HISTORY_MAX:
                self._history.pop(next(iter(self._history)))
        out: List[Tuple[str, SolveSpec]] = []
        seen_digests = set()

        def emit(klass: str, neighbor: SolveSpec) -> None:
            digest = neighbor.canonical_digest()
            if digest not in seen_digests:
                seen_digests.add(digest)
                out.append((klass, neighbor))

        for neighbor in self._unroll_neighbors(spec):
            emit("unroll", neighbor)
        for neighbor in self._shape_neighbors(spec):
            emit("shape", neighbor)
        if previous is not None and previous != spec.n_max:
            stride = spec.n_max - previous
            if spec.n_max + stride >= 1:
                emit("sweep", dataclasses.replace(spec, n_max=spec.n_max + stride))
        for n_max in (spec.n_max + 1, spec.n_max - 1):
            if n_max >= 1:
                emit("nmax", dataclasses.replace(spec, n_max=n_max))
        return out

    def _unroll_neighbors(self, spec: SolveSpec) -> List[SolveSpec]:
        """The next rung when ``spec.pattern`` sits on an unroll ladder.

        An unroll sweep presents ``unrolled(base, 2)``, ``unrolled(base,
        3)``, … for a base kernel the client solved moments ago.  We keep
        the last few observed patterns per non-pattern spec family; if the
        incoming pattern is translation-equal to ``unrolled(base, k)`` for
        one of them, the next request is overwhelmingly likely to be
        ``k + 1``.
        """
        family = (spec.shape, spec.objective.value, spec.delta_max, spec.n_max)
        observed = spec.pattern.normalized()
        with self._lock:
            bases = self._bases.get(family)
            history = list(bases) if bases else []
        out: List[SolveSpec] = []
        for base in history:
            if base.ndim != observed.ndim or base.size >= observed.size:
                continue
            for factor in range(2, _UNROLL_MAX + 1):
                try:
                    rung = unrolled(base, factor)
                except Exception:  # noqa: BLE001 - geometry edge, skip base
                    break
                if rung.size > observed.size:
                    break  # union size grows with factor; overshot already
                if rung.normalized().offsets == observed.offsets:
                    nxt = unrolled(base, factor + 1)
                    out.append(dataclasses.replace(spec, pattern=nxt))
                    break
            if out:
                break  # one ladder match is plenty
        with self._lock:
            bases = self._bases.setdefault(
                family, deque(maxlen=_BASES_PER_FAMILY)
            )
            if observed not in bases:
                bases.append(observed)
            while len(self._bases) > _HISTORY_MAX:
                self._bases.pop(next(iter(self._bases)))
        return out

    def _shape_neighbors(self, spec: SolveSpec) -> List[SolveSpec]:
        """The next rung when consecutive misses climb a shape ladder.

        Detects uniform per-axis progressions between the previous and
        current shape for one kernel: a common integer ratio (``32×32`` →
        ``64×64``, ratio 2) or a common increment (``+16`` per axis).  The
        extrapolated shape must stay under :data:`_SHAPE_VOLUME_CAP`
        elements and keep every extent positive.
        """
        if spec.shape is None:
            return []
        family = (spec.pattern.offsets, spec.objective.value, spec.delta_max,
                  spec.n_max)
        shape = tuple(spec.shape)
        with self._lock:
            previous = self._shapes.get(family)
            self._shapes[family] = shape
            while len(self._shapes) > _HISTORY_MAX:
                self._shapes.pop(next(iter(self._shapes)))
        if previous is None or len(previous) != len(shape) or previous == shape:
            return []
        nxt: Optional[Tuple[int, ...]] = None
        if all(p > 0 and c % p == 0 for p, c in zip(previous, shape)):
            ratios = {c // p for p, c in zip(previous, shape)}
            if len(ratios) == 1 and (ratio := ratios.pop()) > 1:
                nxt = tuple(c * ratio for c in shape)
        if nxt is None:
            deltas = {c - p for p, c in zip(previous, shape)}
            if len(deltas) == 1 and (delta := deltas.pop()) != 0:
                candidate = tuple(c + delta for c in shape)
                if all(extent >= 1 for extent in candidate):
                    nxt = candidate
        if nxt is None:
            return []
        volume = 1
        for extent in nxt:
            volume *= extent
        if volume > _SHAPE_VOLUME_CAP:
            return []
        return [dataclasses.replace(spec, shape=nxt)]

    # -- the worker ---------------------------------------------------------

    def _run(self) -> None:
        while True:
            self._wake.wait()
            if self._closed:
                return
            with self._lock:
                if not self._queue:
                    self._wake.clear()
                    continue
                spec = self._queue.popleft()
                self._queued_digests.pop(spec.canonical_digest(), None)
            # Low priority: yield to foreground work before solving.
            while not self._closed and not self._idle():
                self._wake.wait(_IDLE_POLL_S)
            if self._closed:
                return
            self._execute(spec)

    def _execute(self, spec: SolveSpec) -> None:
        registry = obs_registry()
        digest = spec.canonical_digest()
        if digest in self.store.digests():
            registry.counter("prefetch.skipped").inc()
            return
        task = Task(
            _solve_task,
            args=((digest, spec, None),),
            key=("prefetch", digest),
            placement="thread",
            name="prefetch.solve",
        )
        try:
            outcome = gather([task])[0]
        except Exception:  # noqa: BLE001 - a bad neighbor must not kill the worker
            registry.counter("prefetch.errors").inc()
            return
        if outcome[0] != "ok":
            registry.counter("prefetch.errors").inc()
            return
        registry.counter("prefetch.solved").inc()
        self.store.put(
            digest,
            outcome[1],
            meta={
                "pattern": spec.pattern.name,
                "m": spec.pattern.size,
                "prefetch": True,
            },
        )
        registry.counter("prefetch.stored").inc()

    # -- lifecycle / introspection ------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Queue occupancy + the full counter family, for /healthz & debug."""
        registry = obs_registry()
        with self._lock:
            queued = len(self._queue)
        return {
            "queued": queued,
            "cap": self.cap,
            "enqueued": registry.counter("prefetch.enqueued").value,
            "enqueued_by_class": {
                klass: registry.counter(f"prefetch.enqueued.{klass}").value
                for klass in ("nmax", "sweep", "unroll", "shape")
            },
            "dropped": registry.counter("prefetch.dropped").value,
            "skipped": registry.counter("prefetch.skipped").value,
            "solved": registry.counter("prefetch.solved").value,
            "stored": registry.counter("prefetch.stored").value,
            "errors": registry.counter("prefetch.errors").value,
        }

    def drain(self, timeout_s: float = 5.0) -> bool:
        """Block until the queue is empty (tests/benches); True on success."""
        import time

        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            with self._lock:
                if not self._queue and not self._wake.is_set():
                    return True
                if not self._queue:
                    # Worker may still be mid-solve; give it a beat.
                    pass
            time.sleep(_IDLE_POLL_S)
        with self._lock:
            return not self._queue

    def close(self) -> None:
        """Stop the worker; queued neighbors are discarded."""
        with self._lock:
            self._closed = True
            self._queue.clear()
            self._queued_digests.clear()
        self._wake.set()
        self._worker.join(timeout=5.0)
