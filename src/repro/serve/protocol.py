"""Wire protocol for the partitioning service: JSON in, JSON out.

Every endpoint speaks plain JSON documents over HTTP/1.1 — no framing
beyond ``Content-Length``, no dependencies beyond the stdlib.  This module
is the single place where untrusted request bodies become validated core
objects (and back), so the server, the client, and the tests all share one
schema:

* a **pattern** is ``{"benchmark": "log"}``, ``{"offsets": [[0,1], ...]}``,
  or ``{"mask": ["010", "111", "010"]}`` (plus an optional ``"name"``);
* a **solve spec** adds ``shape``, ``n_max``, ``objective``, ``delta_max``;
* a **simulate spec** adds the sweep knobs (``step``, ``limit``, ``ports``,
  ``verify``, ``engine``) and makes ``shape`` mandatory;
* errors are ``{"error": {"code": ..., "message": ...}}`` with a matching
  HTTP status (the codes are the :data:`ERROR_*` constants below).

Identity: a spec's :meth:`~SolveSpec.cache_key` is exactly the in-memory
solve-cache key, and :meth:`~SolveSpec.digest` is its
:func:`~repro.core.cache.stable_digest`.  The coalescer and the on-disk
store key by the *symmetry* identity instead —
:meth:`~SolveSpec.canonicalized` /  :meth:`~SolveSpec.canonical_digest` —
so requests that differ by translation, per-axis reflection, or a
leading-axis permutation all resolve to one solve, stored once in the
canonical frame and mapped back into each requester's frame through its
:class:`~repro.core.cache.SymmetryOp`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Optional, Tuple

from ..core.cache import (
    SymmetryOp,
    canonical_key,
    canonicalize,
    solve_key,
    stable_digest,
)
from ..core.mapping import BankMapping, ours_overhead_elements
from ..core.partition import PartitionSolution
from ..core.pattern import Pattern
from ..core.solver import Objective
from ..errors import ReproError
from ..io import pattern_to_dict, solution_to_dict

#: Structured error codes carried in ``{"error": {"code": ...}}``.
ERROR_BAD_REQUEST = "bad_request"
ERROR_NOT_FOUND = "not_found"
ERROR_INFEASIBLE = "infeasible"
ERROR_DEADLINE = "deadline_exceeded"
ERROR_QUEUE_FULL = "queue_full"
ERROR_SHUTTING_DOWN = "shutting_down"
ERROR_NO_LIVE_SHARD = "no_live_shard"
ERROR_INTERNAL = "internal"

#: error code → HTTP status the server answers with.
HTTP_STATUS: Dict[str, int] = {
    ERROR_BAD_REQUEST: 400,
    ERROR_NOT_FOUND: 404,
    ERROR_INFEASIBLE: 422,
    ERROR_QUEUE_FULL: 429,
    ERROR_INTERNAL: 500,
    ERROR_SHUTTING_DOWN: 503,
    ERROR_NO_LIVE_SHARD: 503,
    ERROR_DEADLINE: 504,
}

#: Request header carrying the originating trace id across process hops
#: (client → cluster front → worker shard → peer shard), so the spans of
#: one logical request reassemble into one tree no matter where they ran.
TRACE_HEADER = "X-Repro-Trace"

#: Simulation engines a request may name (mirrors ``sim.memsim.ENGINES``).
SIM_ENGINES = ("auto", "scalar", "vectorized", "native")


class BadRequestError(ReproError, ValueError):
    """The request body does not follow the protocol."""


def error_payload(code: str, message: str, **extra: Any) -> Dict[str, Any]:
    """The structured error document every failure path returns."""
    doc: Dict[str, Any] = {"code": code, "message": message}
    doc.update(extra)
    return {"error": doc}


# -- request parsing --------------------------------------------------------


def _require_mapping(doc: Any) -> Dict[str, Any]:
    if not isinstance(doc, dict):
        raise BadRequestError(f"request body must be a JSON object, got {type(doc).__name__}")
    return doc


def parse_pattern(doc: Dict[str, Any]) -> Pattern:
    """Build the request's pattern from one of the three accepted forms."""
    name = doc.get("name", "")
    if not isinstance(name, str):
        raise BadRequestError("pattern name must be a string")
    if "benchmark" in doc:
        from ..patterns.library import BENCHMARKS, benchmark_pattern

        bench = doc["benchmark"]
        if bench not in BENCHMARKS:
            raise BadRequestError(
                f"unknown benchmark {bench!r}; one of {sorted(BENCHMARKS)}"
            )
        return benchmark_pattern(bench)
    if "offsets" in doc:
        try:
            return Pattern(doc["offsets"], name=name)
        except ReproError as exc:
            raise BadRequestError(f"bad offsets: {exc}") from exc
    if "mask" in doc:
        rows = doc["mask"]
        try:
            grid = [
                [int(ch) for ch in row] if isinstance(row, str) else list(row)
                for row in rows
            ]
            return Pattern.from_mask(grid, name=name or "mask")
        except (ReproError, TypeError, ValueError) as exc:
            raise BadRequestError(f"bad mask: {exc}") from exc
    raise BadRequestError(
        "pattern source required: one of 'benchmark', 'offsets', or 'mask'"
    )


def _parse_shape(doc: Dict[str, Any], ndim: int) -> Optional[Tuple[int, ...]]:
    raw = doc.get("shape")
    if raw is None:
        return None
    try:
        shape = tuple(int(w) for w in raw)
    except (TypeError, ValueError) as exc:
        raise BadRequestError(f"shape must be a list of integers, got {raw!r}") from exc
    if len(shape) != ndim:
        raise BadRequestError(
            f"shape {shape} does not match pattern dimensionality {ndim}"
        )
    if any(w < 1 for w in shape):
        raise BadRequestError(f"shape extents must be positive, got {shape}")
    return shape


def _parse_optional_int(doc: Dict[str, Any], field: str, minimum: int) -> Optional[int]:
    raw = doc.get(field)
    if raw is None:
        return None
    if isinstance(raw, bool) or not isinstance(raw, int):
        raise BadRequestError(f"{field} must be an integer, got {raw!r}")
    if raw < minimum:
        raise BadRequestError(f"{field} must be >= {minimum}, got {raw}")
    return raw


@dataclass(frozen=True)
class SolveSpec:
    """A validated ``solve`` request: everything that identifies a solution."""

    pattern: Pattern
    shape: Optional[Tuple[int, ...]]
    n_max: Optional[int]
    objective: Objective
    delta_max: int

    def cache_key(self) -> Hashable:
        """The translation-normalized solve-cache key (:func:`solve_key`)."""
        return solve_key(
            self.pattern, self.shape, self.n_max, self.objective.value, self.delta_max
        )

    def digest(self) -> str:
        """Cross-process identity: :func:`stable_digest` of :meth:`cache_key`."""
        return stable_digest(self.cache_key())

    def canonical_cache_key(self) -> Hashable:
        """The symmetry-quotient key (:func:`repro.core.cache.canonical_key`).

        Equal for every spec in the pattern's symmetry orbit (same shape
        tail / ``n_max`` / objective / ``delta_max``) — this is what the
        in-memory cache actually indexes by under the canonical pipeline.
        """
        return canonical_key(
            self.pattern, self.shape, self.n_max, self.objective.value, self.delta_max
        )

    def canonical_digest(self) -> str:
        """Orbit-wide identity: what the coalescer and the store key by."""
        return stable_digest(self.canonical_cache_key())

    def canonicalized(self) -> Tuple["SolveSpec", SymmetryOp]:
        """The canonical-frame twin of this spec plus the op mapping back.

        The returned spec's pattern is the orbit representative and its
        shape is permuted into the canonical frame (the innermost extent
        stays put — permutations are restricted to leading axes).  Solving
        the canonical spec and applying
        :meth:`~repro.core.cache.SymmetryOp.solution_to_caller` yields a
        solution in this spec's own frame, bit-identical to solving this
        spec directly.
        """
        canon_pattern, op = canonicalize(self.pattern)
        if op.is_identity and canon_pattern.offsets == self.pattern.offsets:
            return self, op
        return (
            dataclasses.replace(
                self,
                pattern=canon_pattern,
                shape=op.shape_to_canonical(self.shape),
            ),
            op,
        )


@dataclass(frozen=True)
class SimulateSpec:
    """A validated ``simulate`` request: a solve spec plus sweep knobs."""

    solve: SolveSpec
    step: int
    limit: Optional[int]
    ports_per_bank: int
    verify: bool
    engine: str


def parse_solve_spec(doc: Any) -> SolveSpec:
    """Validate a ``solve`` request body."""
    doc = _require_mapping(doc)
    pattern = parse_pattern(doc)
    shape = _parse_shape(doc, pattern.ndim)
    objective_raw = doc.get("objective", Objective.LATENCY.value)
    try:
        objective = Objective(objective_raw)
    except ValueError as exc:
        raise BadRequestError(
            f"unknown objective {objective_raw!r}; one of "
            f"{[o.value for o in Objective]}"
        ) from exc
    delta_max = _parse_optional_int(doc, "delta_max", 0)
    return SolveSpec(
        pattern=pattern,
        shape=shape,
        n_max=_parse_optional_int(doc, "n_max", 1),
        objective=objective,
        delta_max=0 if delta_max is None else delta_max,
    )


def parse_simulate_spec(doc: Any) -> SimulateSpec:
    """Validate a ``simulate`` request body (``shape`` is mandatory)."""
    doc = _require_mapping(doc)
    spec = parse_solve_spec(doc)
    if spec.shape is None:
        raise BadRequestError("simulate requires an array shape")
    step = _parse_optional_int(doc, "step", 1)
    ports = _parse_optional_int(doc, "ports", 1)
    engine = doc.get("engine", "auto")
    if engine not in SIM_ENGINES:
        raise BadRequestError(f"unknown engine {engine!r}; one of {SIM_ENGINES}")
    if engine == "native":
        from ..native import available

        if not available():
            raise BadRequestError(
                "engine 'native' requires the compiled extension, which is "
                "not available in this server (build it with `make "
                "build-ext`, or use engine 'auto' for silent fallback)"
            )
    verify = doc.get("verify", True)
    if not isinstance(verify, bool):
        raise BadRequestError(f"verify must be a boolean, got {verify!r}")
    return SimulateSpec(
        solve=spec,
        step=1 if step is None else step,
        limit=_parse_optional_int(doc, "limit", 1),
        ports_per_bank=1 if ports is None else ports,
        verify=verify,
        engine=engine,
    )


def parse_timeout_s(doc: Any) -> Optional[float]:
    """Per-request deadline in seconds, from a ``timeout_ms`` field.

    ``None`` (absent) means no deadline; any number is accepted — a
    non-positive budget simply expires immediately, which is the documented
    way to probe the deadline path.
    """
    if not isinstance(doc, dict):
        return None
    raw = doc.get("timeout_ms")
    if raw is None:
        return None
    if isinstance(raw, bool) or not isinstance(raw, (int, float)):
        raise BadRequestError(f"timeout_ms must be a number, got {raw!r}")
    return float(raw) / 1000.0


# -- response building ------------------------------------------------------


def solution_payload(
    solution: PartitionSolution, spec: SolveSpec, digest: str
) -> Dict[str, Any]:
    """The ``solve`` response body for one solved spec.

    The solution travels in the same ``repro/partition-solution`` JSON
    format :mod:`repro.io` persists, so a client can feed the response
    straight into :func:`repro.io.solution_from_dict` and obtain an object
    bit-identical to a direct in-process :func:`repro.core.solver.solve`.
    """
    overhead = (
        ours_overhead_elements(spec.shape, solution.n_banks) if spec.shape else 0
    )
    payload: Dict[str, Any] = {
        "key": digest,
        "solution": solution_to_dict(solution),
        "objective_vector": [solution.delta_ii, solution.n_banks, overhead],
        "overhead_elements": overhead,
    }
    if spec.shape:
        mapping = BankMapping(solution=solution, shape=spec.shape)
        payload["mapping"] = {
            "shape": list(spec.shape),
            "rows_per_bank": mapping.rows_per_bank,
            "total_bank_elements": mapping.total_bank_elements,
        }
    return payload


def request_payload(spec: SolveSpec) -> Dict[str, Any]:
    """The canonical request body for a spec (what the client sends)."""
    doc: Dict[str, Any] = {"offsets": pattern_to_dict(spec.pattern)["offsets"]}
    if spec.pattern.name:
        doc["name"] = spec.pattern.name
    if spec.shape is not None:
        doc["shape"] = list(spec.shape)
    if spec.n_max is not None:
        doc["n_max"] = spec.n_max
    if spec.objective is not Objective.LATENCY:
        doc["objective"] = spec.objective.value
    if spec.delta_max:
        doc["delta_max"] = spec.delta_max
    return doc
