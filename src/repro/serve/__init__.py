"""repro.serve — the partitioning library as a long-lived service.

Everything before this package is a one-shot pipeline: a CLI starts, the
caches warm, the answer prints, the process — and every warmed cache —
dies.  ``repro.serve`` keeps the fast paths resident and puts an HTTP API
in front of them:

* :class:`~repro.serve.server.PartitionServer` — stdlib-asyncio HTTP
  server exposing ``/solve``, ``/simulate``, ``/table1``, ``/healthz``,
  and Prometheus ``/metrics``; per-request deadlines, structured errors,
  and 429 backpressure.
* :class:`~repro.serve.coalesce.Coalescer` — request coalescing (identical
  canonical solves share one in-flight job) and micro-batching into the
  solve tier (:func:`repro.eval.parallel.run_parallel`).
* :class:`~repro.serve.store.SolutionStore` — content-addressed on-disk
  artifacts keyed by :func:`repro.core.cache.stable_digest`, LRU-bounded,
  layered under the in-memory solve cache so a restarted server serves
  its old working set with zero new solves.
* :class:`~repro.serve.prefetch.Prefetcher` — predictive store warming:
  each store miss enqueues low-priority neighbor solves (adjacent
  ``n_max``, the observed sweep direction, unroll-factor ladders, shape
  ladders) that run through the task scheduler while the foreground
  intake is idle.
* :class:`~repro.serve.client.ServeClient` — blocking client speaking the
  same protocol, with optional bounded-jittered retries on 429/503 and
  transport errors; ``repro-serve`` (:mod:`repro.serve.cli`) runs the
  server.

Scale-out lives one package over: :mod:`repro.cluster` shards this server
N ways behind a digest-routing front with a tiered (memory → local store
→ peer shard) lookup path.

Protocol, batching, and store semantics are documented in
``docs/SERVING.md``; the cluster in ``docs/CLUSTER.md``.
"""

from .client import (
    DeadlineExceededError,
    InfeasibleRequestError,
    ServeClient,
    ServeError,
    ServerBusyError,
)
from .coalesce import Coalescer, QueueFullError
from .prefetch import Prefetcher
from .protocol import (
    TRACE_HEADER,
    BadRequestError,
    SimulateSpec,
    SolveSpec,
    parse_simulate_spec,
    parse_solve_spec,
)
from .server import PartitionServer, ThreadedServer, serve_in_thread
from .store import SolutionStore

__all__ = [
    "BadRequestError",
    "Coalescer",
    "DeadlineExceededError",
    "InfeasibleRequestError",
    "PartitionServer",
    "Prefetcher",
    "QueueFullError",
    "ServeClient",
    "ServeError",
    "ServerBusyError",
    "SimulateSpec",
    "SolutionStore",
    "SolveSpec",
    "TRACE_HEADER",
    "ThreadedServer",
    "parse_simulate_spec",
    "parse_solve_spec",
    "serve_in_thread",
]
