"""Content-addressed on-disk store of canonical partitioning solutions.

The in-memory solve cache (:mod:`repro.core.cache`) dies with the process;
a serving tier restarts — deploys, crashes, autoscaling — and re-solving
the whole working set after every restart is exactly the latency cliff a
warm store avoids.  The :class:`SolutionStore` persists each canonical
:class:`~repro.core.partition.PartitionSolution` as one small JSON artifact
named by the :func:`~repro.core.cache.stable_digest` of its solve key:

``<root>/<digest>.json`` — ``{"format": "repro/serve-solution", "digest",
"solution": <repro/partition-solution document>, "meta": {...}}``

Properties the server relies on:

* **Content-addressed** — the digest *is* the identity, so concurrent
  writers of the same key write the same bytes and a half-updated
  directory can never alias two different solutions.
* **Atomic writes** — artifacts land via ``os.replace`` of a temp file, so
  a crash mid-write leaves either the old artifact or none.
* **LRU-bounded** — at most ``max_entries`` artifacts; access order is
  tracked in memory and persisted via file mtimes, so the LRU order
  survives restarts (coarsely — mtime granularity — which is fine for an
  eviction heuristic).
* **Self-healing** — a corrupt or hand-edited artifact fails
  :func:`~repro.io.solution_from_dict` validation, is deleted, and counts
  as a miss; the server then just re-solves.

Hits, misses, writes, and evictions are mirrored into the metrics registry
under ``serve.store.*``.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..core.partition import PartitionSolution
from ..core.pattern import Pattern
from ..io import SerializationError, solution_from_dict, solution_to_dict
from ..obs.metrics import registry as obs_registry

_FORMAT = "repro/serve-solution"
_VERSION = 1

#: Default artifact cap; ~1 KiB each, so the default store stays small.
DEFAULT_MAX_ENTRIES = 4096


class SolutionStore:
    """A directory of solved partitioning decisions, keyed by solve digest."""

    def __init__(
        self,
        root: Union[str, Path],
        max_entries: int = DEFAULT_MAX_ENTRIES,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.evictions = 0
        # Least-recently-used first; rebuilt from mtimes so eviction order
        # survives restarts.  Sizes are tracked incrementally so the
        # ``bytes`` stat never needs a directory walk.
        self._index: "OrderedDict[str, Path]" = OrderedDict()
        self._sizes: Dict[str, int] = {}
        for path in sorted(
            self.root.glob("*.json"), key=lambda p: (p.stat().st_mtime, p.name)
        ):
            self._index[path.stem] = path
            try:
                self._sizes[path.stem] = path.stat().st_size
            except OSError:  # pragma: no cover - racing deleters
                self._sizes[path.stem] = 0
        self._publish_gauges()

    def _publish_gauges(self) -> None:
        """Mirror occupancy into gauges on every mutation, not just when
        ``/metrics`` polls: a cluster front pulls worker registries as
        dumps, and only mutation-time gauges make per-shard entry/byte
        counts (the rebalancing signal) visible through that path."""
        with self._lock:
            entries = len(self._index)
            size = sum(self._sizes.values())
        registry = obs_registry()
        registry.gauge("serve.store.entries").set(entries)
        registry.gauge("serve.store.bytes").set(size)
        registry.gauge("serve.store.max_entries").set(self.max_entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    def digests(self) -> List[str]:
        """Stored digests, least-recently-used first."""
        with self._lock:
            return list(self._index)

    # -- lookup ------------------------------------------------------------

    def get(
        self, digest: str, pattern: Optional[Pattern] = None
    ) -> Optional[PartitionSolution]:
        """Load the solution stored under ``digest``, or ``None``.

        On a hit the artifact's access time advances (both in the in-memory
        LRU and on disk) and, when ``pattern`` is given, the caller's own
        pattern is re-attached — mirroring the in-memory cache's behaviour
        for translated requests.  Lookup latency (hit or miss) lands in
        the ``serve.store.get_ms`` log histogram.
        """
        started = time.perf_counter()
        try:
            with self._lock:
                path = self._index.get(digest)
            if path is None:
                self._miss()
                return None
            try:
                payload = json.loads(path.read_text())
                solution = self._validate(digest, payload)
            except (OSError, ValueError, SerializationError):
                # Corrupt, truncated, or foreign file: drop it and re-solve.
                self._discard(digest, path)
                self._miss()
                return None
            with self._lock:
                if digest in self._index:
                    self._index.move_to_end(digest)
                self.hits += 1
            try:
                os.utime(path)
            except OSError:  # pragma: no cover - mtime refresh is best-effort
                pass
            obs_registry().counter("serve.store.hits").inc()
            if pattern is not None and solution.pattern != pattern:
                solution = dataclasses.replace(solution, pattern=pattern)
            return solution
        finally:
            obs_registry().log_histogram("serve.store.get_ms").observe(
                (time.perf_counter() - started) * 1000.0
            )

    def get_document(self, digest: str) -> Optional[Dict[str, Any]]:
        """The raw artifact document under ``digest``, or ``None``.

        The peer-fetch tier's read path: it hands back exactly what the
        file holds (validated — a corrupt artifact is discarded and reads
        as absent) without touching the hit/miss tallies, so serving a
        peer does not skew this shard's own hit-rate.  The LRU position
        *does* advance: a key a peer wants is a key the cluster is using.
        """
        with self._lock:
            path = self._index.get(digest)
        if path is None:
            return None
        try:
            payload = json.loads(path.read_text())
            self._validate(digest, payload)
        except (OSError, ValueError, SerializationError):
            self._discard(digest, path)
            return None
        with self._lock:
            if digest in self._index:
                self._index.move_to_end(digest)
        try:
            os.utime(path)
        except OSError:  # pragma: no cover - mtime refresh is best-effort
            pass
        obs_registry().counter("serve.store.doc_reads").inc()
        return payload

    def put_document(self, digest: str, document: Dict[str, Any]) -> Path:
        """Store an artifact document fetched from a peer, byte-identically.

        Validates first (a malicious or torn peer answer must not poison
        the store), then routes through :meth:`put` — both ends serialize
        with ``json.dumps(..., indent=2, sort_keys=True)``, so the bytes
        this writes equal the bytes the peer holds; content-addressing
        keeps re-replication and backfill idempotent.
        """
        solution = self._validate(digest, document)
        meta = document.get("meta")
        if not isinstance(meta, dict):
            meta = {}
        obs_registry().counter("serve.store.doc_writes").inc()
        return self.put(digest, solution, meta=meta)

    def _validate(self, digest: str, payload: Any) -> PartitionSolution:
        if not isinstance(payload, dict) or payload.get("format") != _FORMAT:
            raise SerializationError(f"not a {_FORMAT} artifact")
        if payload.get("digest") != digest:
            raise SerializationError("artifact digest does not match its filename")
        return solution_from_dict(payload["solution"])

    def _miss(self) -> None:
        with self._lock:
            self.misses += 1
        obs_registry().counter("serve.store.misses").inc()

    def _discard(self, digest: str, path: Path) -> None:
        with self._lock:
            self._index.pop(digest, None)
            self._sizes.pop(digest, None)
        try:
            path.unlink()
        except OSError:  # pragma: no cover - racing deleters are fine
            pass
        self._publish_gauges()

    # -- insertion ---------------------------------------------------------

    def put(
        self,
        digest: str,
        solution: PartitionSolution,
        meta: Optional[Dict[str, Any]] = None,
    ) -> Path:
        """Persist ``solution`` under ``digest``; evict LRU entries over cap."""
        path = self.root / f"{digest}.json"
        document = {
            "format": _FORMAT,
            "version": _VERSION,
            "digest": digest,
            "solution": solution_to_dict(solution),
            "meta": meta or {},
        }
        text = json.dumps(document, indent=2, sort_keys=True) + "\n"
        fd, tmp_name = tempfile.mkstemp(dir=str(self.root), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
            os.replace(tmp_name, path)
        except BaseException:  # pragma: no cover - clean up the temp file
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        evicted: List[Path] = []
        with self._lock:
            self._index[digest] = path
            self._index.move_to_end(digest)
            self._sizes[digest] = len(text.encode("utf-8"))
            while len(self._index) > self.max_entries:
                old_digest, old = self._index.popitem(last=False)
                self._sizes.pop(old_digest, None)
                evicted.append(old)
            self.writes += 1
            self.evictions += len(evicted)
        for old in evicted:
            try:
                old.unlink()
            except OSError:  # pragma: no cover
                pass
        registry = obs_registry()
        registry.counter("serve.store.writes").inc()
        if evicted:
            registry.counter("serve.store.evictions").inc(len(evicted))
        self._publish_gauges()
        return path

    # -- reporting ---------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Health-endpoint view: occupancy, traffic tallies, location."""
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "root": str(self.root),
                "entries": len(self._index),
                "max_entries": self.max_entries,
                "bytes": sum(self._sizes.values()),
                "hits": self.hits,
                "misses": self.misses,
                "writes": self.writes,
                "evictions": self.evictions,
                "hit_rate": (self.hits / lookups) if lookups else None,
            }
