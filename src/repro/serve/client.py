"""Blocking Python client for the partitioning service.

A thin, dependency-free wrapper over :mod:`http.client` that speaks the
:mod:`repro.serve.protocol` schema and converts structured error bodies
into a small exception hierarchy:

* :class:`ServeError` — base; carries ``code`` and ``http_status``.
* :class:`ServerBusyError` — 429 backpressure; carries ``retry_after_s``.
* :class:`DeadlineExceededError` — the per-request deadline expired
  server-side.
* :class:`InfeasibleRequestError` — the solver proved the constraints
  unsatisfiable (a *successful* negative answer, distinct from transport
  failures).

The client is deliberately synchronous — callers embedding it in an async
program should run it in an executor; the service side is where the
concurrency lives.

Retries are **off by default**: construct with ``retries=N`` to make the
client absorb transient failures — 429 backpressure (honoring the
server's ``retry_after_s`` hint), 503 answers (a restarting worker, a
cluster front with no live shard), and transport errors (connection
refused during a worker respawn) — with jittered exponential backoff
(``backoff_s`` seeding the schedule).  Structural errors (400/404/422/
500/504) never retry.  This is the same client the cluster's peer-fetch
and backfill tiers use (:mod:`repro.cluster.peers`), via the ``peer_*``
methods at the bottom.

Example
-------
>>> from repro.serve.client import ServeClient           # doctest: +SKIP
>>> with ServeClient(port=8642) as client:               # doctest: +SKIP
...     sol = client.solve_solution(benchmark="log", n_max=10)
...     sol.n_banks
7
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..core.partition import PartitionSolution
from ..core.pattern import Pattern
from ..errors import ReproError
from ..io import pattern_to_dict, solution_from_dict
from .protocol import (
    ERROR_DEADLINE,
    ERROR_INFEASIBLE,
    ERROR_QUEUE_FULL,
    TRACE_HEADER,
)


class ServeError(ReproError):
    """A structured error answer from the service."""

    def __init__(self, code: str, message: str, http_status: int) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.http_status = http_status


class ServerBusyError(ServeError):
    """429: the intake queue is full; honor ``retry_after_s``."""

    def __init__(self, message: str, http_status: int, retry_after_s: float) -> None:
        super().__init__(ERROR_QUEUE_FULL, message, http_status)
        self.retry_after_s = retry_after_s


class DeadlineExceededError(ServeError):
    """504: the request's ``timeout_ms`` budget expired server-side."""


class InfeasibleRequestError(ServeError):
    """422: the solver proved the requested constraints unsatisfiable."""


def _raise_for(code: str, message: str, status: int, doc: Dict[str, Any]) -> None:
    if code == ERROR_QUEUE_FULL:
        raise ServerBusyError(message, status, float(doc.get("retry_after_s", 1.0)))
    if code == ERROR_DEADLINE:
        raise DeadlineExceededError(code, message, status)
    if code == ERROR_INFEASIBLE:
        raise InfeasibleRequestError(code, message, status)
    raise ServeError(code, message, status)


def _pattern_fields(
    pattern: Optional[Pattern],
    benchmark: Optional[str],
    mask: Optional[Sequence[str]],
) -> Dict[str, Any]:
    sources = sum(x is not None for x in (pattern, benchmark, mask))
    if sources != 1:
        raise ValueError("exactly one of pattern=, benchmark=, mask= is required")
    if pattern is not None:
        doc = pattern_to_dict(pattern)
        fields: Dict[str, Any] = {"offsets": doc["offsets"]}
        if doc["name"]:
            fields["name"] = doc["name"]
        return fields
    if benchmark is not None:
        return {"benchmark": benchmark}
    return {"mask": list(mask)}  # type: ignore[arg-type]


#: Errors the retry loop treats as transient: backpressure, a server that
#: is restarting or has no live shard behind it, and transport failures.
_RETRYABLE_HTTP = (429, 503)


class ServeClient:
    """One keep-alive HTTP connection to a :class:`PartitionServer`.

    ``retries`` counts *additional* attempts after the first (0 keeps the
    historical fail-fast behaviour); ``backoff_s`` is the base delay,
    doubled per attempt up to ``max_backoff_s`` and jittered ±25% so a
    herd of retrying clients does not re-stampede in lockstep.  A 429's
    ``retry_after_s`` hint, when present, overrides the computed delay.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8642,
        timeout: float = 30.0,
        retries: int = 0,
        backoff_s: float = 0.05,
        max_backoff_s: float = 2.0,
    ) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if backoff_s < 0 or max_backoff_s < 0:
            raise ValueError("backoff_s and max_backoff_s must be >= 0")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff_s = backoff_s
        self.max_backoff_s = max_backoff_s
        self._rng = random.Random()
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- connection management --------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    # -- transport ---------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, bytes, str]:
        payload = json.dumps(body).encode("utf-8") if body is not None else None
        send_headers = {"Content-Type": "application/json"} if payload else {}
        if headers:
            send_headers.update(headers)
        conn = self._connection()
        try:
            conn.request(method, path, body=payload, headers=send_headers)
            response = conn.getresponse()
            data = response.read()
            return response.status, data, response.headers.get_content_type()
        except (http.client.HTTPException, socket.error):
            # Stale keep-alive (server restarted, idle timeout): one clean
            # retry on a fresh connection, then let the error propagate.
            self.close()
            conn = self._connection()
            conn.request(method, path, body=payload, headers=send_headers)
            response = conn.getresponse()
            data = response.read()
            return response.status, data, response.headers.get_content_type()

    def _delay(self, attempt: int, hint: Optional[float] = None) -> float:
        """The jittered backoff before retry ``attempt`` (0-based)."""
        delay = min(self.backoff_s * (2.0 ** attempt), self.max_backoff_s)
        if hint is not None:
            delay = min(max(hint, 0.0), self.max_backoff_s)
        return delay * (1.0 + self._rng.uniform(-0.25, 0.25))

    def _with_retries(self, call: Callable[[], Any]) -> Any:
        """Run ``call``, absorbing up to ``self.retries`` transient failures."""
        for attempt in range(self.retries + 1):
            try:
                return call()
            except ServeError as exc:
                if attempt >= self.retries or exc.http_status not in _RETRYABLE_HTTP:
                    raise
                hint = getattr(exc, "retry_after_s", None)
                time.sleep(self._delay(attempt, hint))
            except (http.client.HTTPException, socket.error):
                # _request already burned its one clean-reconnect attempt;
                # reaching here means the server end is really down (e.g. a
                # worker mid-respawn), so wait before trying again.
                if attempt >= self.retries:
                    raise
                self.close()
                time.sleep(self._delay(attempt))
        raise AssertionError("unreachable")  # pragma: no cover

    def _json_once(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Dict[str, Any]:
        status, data, _ = self._request(method, path, body, headers)
        try:
            doc = json.loads(data.decode("utf-8")) if data else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServeError("internal", f"unparseable response: {exc}", status) from exc
        if status != 200:
            error = doc.get("error", {}) if isinstance(doc, dict) else {}
            _raise_for(
                error.get("code", "internal"),
                error.get("message", f"HTTP {status}"),
                status,
                error,
            )
        return doc

    def _json(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Dict[str, Any]:
        return self._with_retries(
            lambda: self._json_once(method, path, body, headers)
        )

    # -- endpoints ---------------------------------------------------------

    def solve(
        self,
        pattern: Optional[Pattern] = None,
        benchmark: Optional[str] = None,
        mask: Optional[Sequence[str]] = None,
        shape: Optional[Sequence[int]] = None,
        n_max: Optional[int] = None,
        objective: str = "latency",
        delta_max: int = 0,
        timeout_ms: Optional[float] = None,
    ) -> Dict[str, Any]:
        """POST /solve; returns the raw response document."""
        body = _pattern_fields(pattern, benchmark, mask)
        if shape is not None:
            body["shape"] = [int(w) for w in shape]
        if n_max is not None:
            body["n_max"] = int(n_max)
        if objective != "latency":
            body["objective"] = objective
        if delta_max:
            body["delta_max"] = int(delta_max)
        if timeout_ms is not None:
            body["timeout_ms"] = timeout_ms
        return self._json("POST", "/solve", body)

    def solve_solution(self, **kwargs: Any) -> PartitionSolution:
        """:meth:`solve`, decoded into a :class:`PartitionSolution`.

        The decoded object is bit-identical to what a direct in-process
        :func:`repro.core.solver.solve` returns for the same arguments.
        """
        return solution_from_dict(self.solve(**kwargs)["solution"])

    def simulate(
        self,
        shape: Sequence[int],
        pattern: Optional[Pattern] = None,
        benchmark: Optional[str] = None,
        mask: Optional[Sequence[str]] = None,
        n_max: Optional[int] = None,
        step: int = 1,
        limit: Optional[int] = None,
        ports: int = 1,
        verify: bool = True,
        engine: str = "auto",
        timeout_ms: Optional[float] = None,
    ) -> Dict[str, Any]:
        """POST /simulate; returns solution + simulation report document."""
        body = _pattern_fields(pattern, benchmark, mask)
        body["shape"] = [int(w) for w in shape]
        if n_max is not None:
            body["n_max"] = int(n_max)
        if step != 1:
            body["step"] = step
        if limit is not None:
            body["limit"] = limit
        if ports != 1:
            body["ports"] = ports
        if not verify:
            body["verify"] = False
        if engine != "auto":
            body["engine"] = engine
        if timeout_ms is not None:
            body["timeout_ms"] = timeout_ms
        return self._json("POST", "/simulate", body)

    def table1(
        self,
        benchmarks: Optional[List[str]] = None,
        repetitions: int = 1,
        timeout_ms: Optional[float] = None,
    ) -> Dict[str, Any]:
        """POST /table1; returns measured rows for the requested benchmarks."""
        body: Dict[str, Any] = {"repetitions": repetitions}
        if benchmarks is not None:
            body["benchmarks"] = list(benchmarks)
        if timeout_ms is not None:
            body["timeout_ms"] = timeout_ms
        return self._json("POST", "/table1", body)

    def healthz(self) -> Dict[str, Any]:
        """GET /healthz."""
        return self._json("GET", "/healthz")

    def metrics_text(self) -> str:
        """GET /metrics — the raw Prometheus exposition text."""
        status, data, _ = self._request("GET", "/metrics")
        if status != 200:
            raise ServeError("internal", f"/metrics returned HTTP {status}", status)
        return data.decode("utf-8")

    # -- debug surface (server must run with debug enabled) ----------------

    def debug_traces(self) -> Dict[str, Any]:
        """GET /debug/traces — recent end-to-end request span trees."""
        return self._json("GET", "/debug/traces")

    def debug_inflight(self) -> Dict[str, Any]:
        """GET /debug/inflight — the coalescer's queued/in-flight jobs."""
        return self._json("GET", "/debug/inflight")

    def debug_store(self) -> Dict[str, Any]:
        """GET /debug/store — solution-store occupancy and hit-rate."""
        return self._json("GET", "/debug/store")

    # -- peer protocol (workers running with the peer API enabled) ---------

    def peer_solution(
        self, digest: str, trace_id: Optional[str] = None
    ) -> Optional[Dict[str, Any]]:
        """GET /peer/solution/<digest> — the raw store artifact, or None.

        Returns the artifact document exactly as the peer's store holds it
        (so writing it locally reproduces the same bytes); a 404 — the
        peer does not have the key — is a normal answer, not an error.
        """
        headers = {TRACE_HEADER: trace_id} if trace_id else None

        def _call() -> Optional[Dict[str, Any]]:
            status, data, _ = self._request(
                "GET", f"/peer/solution/{digest}", headers=headers
            )
            if status == 404:
                return None
            doc = json.loads(data.decode("utf-8")) if data else {}
            if status != 200:
                error = doc.get("error", {}) if isinstance(doc, dict) else {}
                _raise_for(
                    error.get("code", "internal"),
                    error.get("message", f"HTTP {status}"),
                    status,
                    error,
                )
            return doc

        return self._with_retries(_call)

    def peer_put(
        self,
        digest: str,
        document: Dict[str, Any],
        trace_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        """PUT /peer/solution/<digest> — replicate an artifact to a peer."""
        headers = {TRACE_HEADER: trace_id} if trace_id else None
        return self._json(
            "PUT", f"/peer/solution/{digest}", document, headers=headers
        )

    def peer_digests(self) -> List[str]:
        """GET /peer/digests — every digest the peer's store holds."""
        return list(self._json("GET", "/peer/digests").get("digests", []))

    def peer_registry(self) -> Dict[str, Any]:
        """GET /peer/registry — the worker's metrics registry as a dump.

        The document is what :meth:`repro.obs.metrics.MetricsRegistry.dump`
        produces; the cluster front merges one per shard into its
        aggregated ``/metrics`` view.
        """
        return self._json("GET", "/peer/registry")
