"""Blocking Python client for the partitioning service.

A thin, dependency-free wrapper over :mod:`http.client` that speaks the
:mod:`repro.serve.protocol` schema and converts structured error bodies
into a small exception hierarchy:

* :class:`ServeError` — base; carries ``code`` and ``http_status``.
* :class:`ServerBusyError` — 429 backpressure; carries ``retry_after_s``.
* :class:`DeadlineExceededError` — the per-request deadline expired
  server-side.
* :class:`InfeasibleRequestError` — the solver proved the constraints
  unsatisfiable (a *successful* negative answer, distinct from transport
  failures).

The client is deliberately synchronous — callers embedding it in an async
program should run it in an executor; the service side is where the
concurrency lives.

Example
-------
>>> from repro.serve.client import ServeClient           # doctest: +SKIP
>>> with ServeClient(port=8642) as client:               # doctest: +SKIP
...     sol = client.solve_solution(benchmark="log", n_max=10)
...     sol.n_banks
7
"""

from __future__ import annotations

import http.client
import json
import socket
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..core.partition import PartitionSolution
from ..core.pattern import Pattern
from ..errors import ReproError
from ..io import pattern_to_dict, solution_from_dict
from .protocol import ERROR_DEADLINE, ERROR_INFEASIBLE, ERROR_QUEUE_FULL


class ServeError(ReproError):
    """A structured error answer from the service."""

    def __init__(self, code: str, message: str, http_status: int) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.http_status = http_status


class ServerBusyError(ServeError):
    """429: the intake queue is full; honor ``retry_after_s``."""

    def __init__(self, message: str, http_status: int, retry_after_s: float) -> None:
        super().__init__(ERROR_QUEUE_FULL, message, http_status)
        self.retry_after_s = retry_after_s


class DeadlineExceededError(ServeError):
    """504: the request's ``timeout_ms`` budget expired server-side."""


class InfeasibleRequestError(ServeError):
    """422: the solver proved the requested constraints unsatisfiable."""


def _raise_for(code: str, message: str, status: int, doc: Dict[str, Any]) -> None:
    if code == ERROR_QUEUE_FULL:
        raise ServerBusyError(message, status, float(doc.get("retry_after_s", 1.0)))
    if code == ERROR_DEADLINE:
        raise DeadlineExceededError(code, message, status)
    if code == ERROR_INFEASIBLE:
        raise InfeasibleRequestError(code, message, status)
    raise ServeError(code, message, status)


def _pattern_fields(
    pattern: Optional[Pattern],
    benchmark: Optional[str],
    mask: Optional[Sequence[str]],
) -> Dict[str, Any]:
    sources = sum(x is not None for x in (pattern, benchmark, mask))
    if sources != 1:
        raise ValueError("exactly one of pattern=, benchmark=, mask= is required")
    if pattern is not None:
        doc = pattern_to_dict(pattern)
        fields: Dict[str, Any] = {"offsets": doc["offsets"]}
        if doc["name"]:
            fields["name"] = doc["name"]
        return fields
    if benchmark is not None:
        return {"benchmark": benchmark}
    return {"mask": list(mask)}  # type: ignore[arg-type]


class ServeClient:
    """One keep-alive HTTP connection to a :class:`PartitionServer`."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8642, timeout: float = 30.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- connection management --------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    # -- transport ---------------------------------------------------------

    def _request(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Tuple[int, bytes, str]:
        payload = json.dumps(body).encode("utf-8") if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        conn = self._connection()
        try:
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            data = response.read()
            return response.status, data, response.headers.get_content_type()
        except (http.client.HTTPException, socket.error):
            # Stale keep-alive (server restarted, idle timeout): one clean
            # retry on a fresh connection, then let the error propagate.
            self.close()
            conn = self._connection()
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            data = response.read()
            return response.status, data, response.headers.get_content_type()

    def _json(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        status, data, _ = self._request(method, path, body)
        try:
            doc = json.loads(data.decode("utf-8")) if data else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServeError("internal", f"unparseable response: {exc}", status) from exc
        if status != 200:
            error = doc.get("error", {}) if isinstance(doc, dict) else {}
            _raise_for(
                error.get("code", "internal"),
                error.get("message", f"HTTP {status}"),
                status,
                error,
            )
        return doc

    # -- endpoints ---------------------------------------------------------

    def solve(
        self,
        pattern: Optional[Pattern] = None,
        benchmark: Optional[str] = None,
        mask: Optional[Sequence[str]] = None,
        shape: Optional[Sequence[int]] = None,
        n_max: Optional[int] = None,
        objective: str = "latency",
        delta_max: int = 0,
        timeout_ms: Optional[float] = None,
    ) -> Dict[str, Any]:
        """POST /solve; returns the raw response document."""
        body = _pattern_fields(pattern, benchmark, mask)
        if shape is not None:
            body["shape"] = [int(w) for w in shape]
        if n_max is not None:
            body["n_max"] = int(n_max)
        if objective != "latency":
            body["objective"] = objective
        if delta_max:
            body["delta_max"] = int(delta_max)
        if timeout_ms is not None:
            body["timeout_ms"] = timeout_ms
        return self._json("POST", "/solve", body)

    def solve_solution(self, **kwargs: Any) -> PartitionSolution:
        """:meth:`solve`, decoded into a :class:`PartitionSolution`.

        The decoded object is bit-identical to what a direct in-process
        :func:`repro.core.solver.solve` returns for the same arguments.
        """
        return solution_from_dict(self.solve(**kwargs)["solution"])

    def simulate(
        self,
        shape: Sequence[int],
        pattern: Optional[Pattern] = None,
        benchmark: Optional[str] = None,
        mask: Optional[Sequence[str]] = None,
        n_max: Optional[int] = None,
        step: int = 1,
        limit: Optional[int] = None,
        ports: int = 1,
        verify: bool = True,
        engine: str = "auto",
        timeout_ms: Optional[float] = None,
    ) -> Dict[str, Any]:
        """POST /simulate; returns solution + simulation report document."""
        body = _pattern_fields(pattern, benchmark, mask)
        body["shape"] = [int(w) for w in shape]
        if n_max is not None:
            body["n_max"] = int(n_max)
        if step != 1:
            body["step"] = step
        if limit is not None:
            body["limit"] = limit
        if ports != 1:
            body["ports"] = ports
        if not verify:
            body["verify"] = False
        if engine != "auto":
            body["engine"] = engine
        if timeout_ms is not None:
            body["timeout_ms"] = timeout_ms
        return self._json("POST", "/simulate", body)

    def table1(
        self,
        benchmarks: Optional[List[str]] = None,
        repetitions: int = 1,
        timeout_ms: Optional[float] = None,
    ) -> Dict[str, Any]:
        """POST /table1; returns measured rows for the requested benchmarks."""
        body: Dict[str, Any] = {"repetitions": repetitions}
        if benchmarks is not None:
            body["benchmarks"] = list(benchmarks)
        if timeout_ms is not None:
            body["timeout_ms"] = timeout_ms
        return self._json("POST", "/table1", body)

    def healthz(self) -> Dict[str, Any]:
        """GET /healthz."""
        return self._json("GET", "/healthz")

    def metrics_text(self) -> str:
        """GET /metrics — the raw Prometheus exposition text."""
        status, data, _ = self._request("GET", "/metrics")
        if status != 200:
            raise ServeError("internal", f"/metrics returned HTTP {status}", status)
        return data.decode("utf-8")

    # -- debug surface (server must run with debug enabled) ----------------

    def debug_traces(self) -> Dict[str, Any]:
        """GET /debug/traces — recent end-to-end request span trees."""
        return self._json("GET", "/debug/traces")

    def debug_inflight(self) -> Dict[str, Any]:
        """GET /debug/inflight — the coalescer's queued/in-flight jobs."""
        return self._json("GET", "/debug/inflight")

    def debug_store(self) -> Dict[str, Any]:
        """GET /debug/store — solution-store occupancy and hit-rate."""
        return self._json("GET", "/debug/store")
