"""Request intake: coalescing, micro-batching, and the solve tier.

The server's throughput story is *not* "one asyncio task per solve".
Partitioning solves are CPU-bound, so the intake path instead:

1. **Coalesces** — every request is reduced to its canonical solve digest
   (:meth:`~repro.serve.protocol.SolveSpec.canonical_digest`, the
   symmetry-quotient identity); requests whose digest matches a queued or
   in-flight job attach to that job's future instead of scheduling work.
   Sixteen clients asking for translated — or reflected, or leading-axis
   permuted — copies of the same stencil cost exactly one solve.
2. **Micro-batches** — queued distinct jobs drain in batches (up to
   ``batch_max``) into one executor hop, so the event loop pays one
   thread handoff per batch, not per request.
3. **Solves through the shared tier** — each batch runs through the DAG
   scheduler (:func:`repro.sched.map_tasks`, digest-keyed): inline
   in-process for ``jobs <= 1`` (default; shares the in-memory solve
   cache and metrics registry with the server process), or on a bounded
   process pool for ``jobs > 1`` (a crashed worker reschedules its task
   once on a fresh pool).  ``REPRO_SCHED=0`` falls back to the flat
   :func:`repro.eval.parallel.run_parallel` tier.
4. **Checks the store first** — a :class:`~repro.serve.store.SolutionStore`
   hit resolves the job without any solve and seeds the in-memory cache,
   which is what makes a warm restart serve its old working set with zero
   new solves.

Jobs resolve to *outcome tuples* — ``("ok", PartitionSolution)`` or
``("err", code, message)`` — rather than raised exceptions, because one
outcome may fan out to many waiters and an exception instance must not be
shared across tasks that may add context to it.

Backpressure is a hard bound on distinct queued-plus-in-flight jobs:
:meth:`Coalescer.submit` raises :class:`QueueFullError` (the server maps
it to ``429`` + ``Retry-After``) instead of queueing unboundedly.
Attaching to an existing job is always allowed — it costs no work.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, Callable, ContextManager, Dict, List, Optional, Tuple

from ..core import cache as solve_cache
from ..core.solver import solve
from ..errors import InfeasibleConstraintError, ReproError
from ..obs import state as obs_state
from ..obs.metrics import registry as obs_registry
from ..obs.tracecontext import trace
from ..obs.tracer import span
from ..sched import map_tasks
from .protocol import ERROR_INFEASIBLE, ERROR_INTERNAL, ERROR_SHUTTING_DOWN, SolveSpec
from .store import SolutionStore

#: Outcome tuple: ("ok", solution) | ("err", code, message).
Outcome = Tuple[Any, ...]

#: A batch item: (digest, spec, trace id of the leader request or None).
BatchItem = Tuple[str, SolveSpec, Optional[str]]


def _trace_ctx(trace_id: Optional[str]) -> "ContextManager[Any]":
    """Re-enter a request's trace on a foreign thread/process, if any."""
    return trace(trace_id) if trace_id is not None else nullcontext()


class QueueFullError(ReproError):
    """The intake queue is at capacity; retry after ``retry_after_s``."""

    def __init__(self, pending: int, retry_after_s: float) -> None:
        super().__init__(
            f"solve queue is full ({pending} jobs pending); "
            f"retry in {retry_after_s:g}s"
        )
        self.pending = pending
        self.retry_after_s = retry_after_s


def _solve_outcome(spec: SolveSpec) -> Outcome:
    try:
        result = solve(
            spec.pattern,
            shape=spec.shape,
            n_max=spec.n_max,
            objective=spec.objective,
            delta_max=spec.delta_max,
        )
        return ("ok", result.solution)
    except InfeasibleConstraintError as exc:
        return ("err", ERROR_INFEASIBLE, str(exc))
    except Exception as exc:  # noqa: BLE001 - a worker must never leak raises
        return ("err", ERROR_INTERNAL, f"{type(exc).__name__}: {exc}")


def _solve_task(item: BatchItem) -> Outcome:
    """One canonical solve, as a picklable top-level task function.

    Runs either in the server process (serial tier) or in a pool worker;
    either way it returns only the canonical
    :class:`~repro.core.partition.PartitionSolution` — mappings are shape
    arithmetic the requester rebuilds, and shipping them across a process
    border would just serialize redundant state.

    The leader's trace id travels in the item payload (workers inherit no
    ambient state), so a ``serve.solve`` span recorded here — in whichever
    process — lands in the requesting trace's tree.
    """
    digest, spec, trace_id = item
    if not obs_state.enabled():
        return _solve_outcome(spec)
    with _trace_ctx(trace_id):
        with span(
            "serve.solve", digest=digest[:12], pattern=spec.pattern.name or "?"
        ):
            return _solve_outcome(spec)


def _store_lookup(
    store: SolutionStore, digest: str, spec: SolveSpec, trace_id: Optional[str]
):
    if not obs_state.enabled():
        return store.get(digest, spec.pattern)
    with _trace_ctx(trace_id):
        with span("serve.store.get", digest=digest[:12]) as lookup:
            stored = store.get(digest, spec.pattern)
            lookup.annotate(hit=stored is not None)
            return stored


def _execute_batch(
    batch: List[BatchItem],
    store: Optional[SolutionStore],
    jobs: int,
    solve_delay_s: float,
    on_miss: Optional[Callable[[SolveSpec], None]] = None,
    peer_fetch: Optional[
        Callable[[str, SolveSpec, Optional[str]], Optional[Any]]
    ] = None,
    on_stored: Optional[Callable[[str, SolveSpec], None]] = None,
) -> Dict[str, Outcome]:
    """Resolve one micro-batch of distinct jobs (runs on an executor thread).

    Store hits short-circuit; in a cluster, local misses then try the
    ``peer_fetch`` tier — a warm sibling shard returns the stored artifact
    over HTTP, which lands in the local store byte-identically (content-
    addressed replication-on-read) before solving is even considered.
    The remainder solves through the scheduler's
    :func:`~repro.sched.map_tasks` tier, keyed by canonical digest (the
    coalescer already deduplicates upstream, so the keys are belt-and-
    braces against a caller that batches duplicates directly).  Fresh
    solutions are persisted to the store, announced to ``on_stored`` (the
    cluster's replicator, so a successor shard gets a copy), and seeded
    into the in-memory solve cache so later requests hit without touching
    disk.  Each item carries its leader's trace id, so store lookups,
    peer fetches, and solves span into the right request tree even though
    the batch serves many requests at once.
    """
    if solve_delay_s > 0:
        time.sleep(solve_delay_s)
    outcomes: Dict[str, Outcome] = {}
    to_solve: List[BatchItem] = []
    for digest, spec, trace_id in batch:
        stored = (
            _store_lookup(store, digest, spec, trace_id)
            if store is not None
            else None
        )
        if stored is None and peer_fetch is not None:
            try:
                stored = peer_fetch(digest, spec, trace_id)
            except Exception:  # noqa: BLE001 - peers must never fail a batch
                obs_registry().counter("cluster.peer.tier_errors").inc()
                stored = None
        if stored is not None:
            if solve_cache.enabled():
                solve_cache.cache().put(spec.canonical_cache_key(), stored)
            outcomes[digest] = ("ok", stored)
        else:
            to_solve.append((digest, spec, trace_id))
    if to_solve:
        # jobs <= 1 (including the CLI's `--jobs 0` default) means the
        # serial in-process tier; the scheduler spells that `jobs=None`.
        results = map_tasks(
            _solve_task,
            to_solve,
            jobs=jobs if jobs > 1 else None,
            keys=[digest for digest, _spec, _tid in to_solve],
        )
        for (digest, spec, _trace_id), outcome in zip(to_solve, results):
            outcomes[digest] = outcome
            if outcome[0] != "ok":
                continue
            solution = outcome[1]
            if store is not None:
                store.put(
                    digest,
                    solution,
                    meta={"pattern": spec.pattern.name, "m": spec.pattern.size},
                )
                if on_stored is not None:
                    try:
                        on_stored(digest, spec)
                    except Exception:  # noqa: BLE001 - replication is best-effort
                        obs_registry().counter("cluster.replicate.hook_errors").inc()
            # In the process-pool tier the solve happened in a worker whose
            # cache is invisible here; seed the server's own cache so the
            # next identical request is an in-memory hit.
            if jobs > 1 and solve_cache.enabled():
                solve_cache.cache().put(spec.canonical_cache_key(), solution)
            if on_miss is not None:
                try:
                    on_miss(spec)
                except Exception:  # noqa: BLE001 - prefetch must never fail a batch
                    obs_registry().counter("prefetch.observe_errors").inc()
    return outcomes


@dataclass
class _Job:
    spec: SolveSpec
    future: "asyncio.Future[Outcome]"
    trace_id: Optional[str] = None
    submitted_at: float = 0.0


@dataclass
class _Flight:
    """An in-flight job: its shared future plus debug/trace provenance."""

    future: "asyncio.Future[Outcome]"
    trace_id: Optional[str] = None
    started_at: float = 0.0


class Coalescer:
    """Single-event-loop intake queue; see the module docstring.

    Not thread-safe by design: :meth:`submit` must be called from the
    event loop that runs :meth:`run` (the store and solve tiers it drives
    *are* thread/process safe).
    """

    def __init__(
        self,
        store: Optional[SolutionStore] = None,
        jobs: int = 0,
        batch_max: int = 32,
        max_pending: int = 256,
        retry_after_s: float = 1.0,
        solve_delay_s: float = 0.0,
        on_miss: Optional[Callable[[SolveSpec], None]] = None,
        peer_fetch: Optional[
            Callable[[str, SolveSpec, Optional[str]], Optional[Any]]
        ] = None,
        on_stored: Optional[Callable[[str, SolveSpec], None]] = None,
    ) -> None:
        if batch_max < 1:
            raise ValueError(f"batch_max must be positive, got {batch_max}")
        if max_pending < 1:
            raise ValueError(f"max_pending must be positive, got {max_pending}")
        self.store = store
        self.jobs = jobs
        self.batch_max = batch_max
        self.max_pending = max_pending
        self.retry_after_s = retry_after_s
        self.solve_delay_s = solve_delay_s
        #: Called (on the executor thread) with each spec that required a
        #: fresh solve — the predictive prefetcher's observation hook.
        self.on_miss = on_miss
        #: Cluster tier: called (digest, spec, trace_id) after a local
        #: store miss, before solving; returns the canonical solution if a
        #: sibling shard had the key warm, else None.
        self.peer_fetch = peer_fetch
        #: Cluster tier: called (digest, spec) after a fresh solve landed
        #: in the local store — the replicator's enqueue hook.
        self.on_stored = on_stored
        self._queued: "OrderedDict[str, _Job]" = OrderedDict()
        self._inflight: Dict[str, _Flight] = {}
        self._wake = asyncio.Event()
        self._closed = False

    # -- intake ------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Distinct jobs queued or in flight (the backpressure quantity)."""
        return len(self._queued) + len(self._inflight)

    def submit(
        self, spec: SolveSpec, trace_id: Optional[str] = None
    ) -> "asyncio.Future[Outcome]":
        """Queue a solve (or attach to its in-flight twin); returns its future.

        The returned future is shared between every coalesced requester —
        callers must not cancel it directly (wrap waits in
        ``asyncio.shield``) and must re-attach their own pattern to the
        resulting canonical solution.
        """
        return self.submit_traced(spec, trace_id)[0]

    def submit_traced(
        self, spec: SolveSpec, trace_id: Optional[str] = None
    ) -> Tuple["asyncio.Future[Outcome]", Optional[str]]:
        """:meth:`submit`, also reporting who owns the solve's trace.

        Returns ``(future, leader_trace_id)``: ``leader_trace_id`` is
        ``None`` when this request *is* the leader (it scheduled the job,
        its trace will contain the solve spans) and the leader's trace id
        when the request coalesced onto existing work — the caller records
        that as a span *link* instead of duplicating the leader's subtree.
        """
        registry = obs_registry()
        if self._closed:
            loop = asyncio.get_running_loop()
            future: "asyncio.Future[Outcome]" = loop.create_future()
            future.set_result(
                ("err", ERROR_SHUTTING_DOWN, "server is shutting down")
            )
            return future, None
        digest = spec.canonical_digest()
        inflight = self._inflight.get(digest)
        if inflight is not None:
            registry.counter("serve.coalesce.attached").inc()
            return inflight.future, inflight.trace_id
        queued = self._queued.get(digest)
        if queued is not None:
            registry.counter("serve.coalesce.attached").inc()
            return queued.future, queued.trace_id
        if self.pending >= self.max_pending:
            registry.counter("serve.coalesce.rejected").inc()
            raise QueueFullError(self.pending, retry_after_s=self.retry_after_s)
        loop = asyncio.get_running_loop()
        job = _Job(
            spec=spec,
            future=loop.create_future(),
            trace_id=trace_id,
            submitted_at=time.monotonic(),
        )
        self._queued[digest] = job
        registry.counter("serve.coalesce.scheduled").inc()
        self._wake.set()
        return job.future, None

    # -- the batch loop ----------------------------------------------------

    async def run(self) -> None:
        """Drain the queue forever in micro-batches; cancel to stop."""
        loop = asyncio.get_running_loop()
        registry = obs_registry()
        try:
            while True:
                await self._wake.wait()
                batch: List[BatchItem] = []
                futures: Dict[str, "asyncio.Future[Outcome]"] = {}
                while self._queued and len(batch) < self.batch_max:
                    digest, job = self._queued.popitem(last=False)
                    self._inflight[digest] = _Flight(
                        future=job.future,
                        trace_id=job.trace_id,
                        started_at=time.monotonic(),
                    )
                    batch.append((digest, job.spec, job.trace_id))
                    futures[digest] = job.future
                if not self._queued:
                    self._wake.clear()
                if not batch:
                    continue
                registry.histogram("serve.batch.size").observe(len(batch))
                try:
                    outcomes = await loop.run_in_executor(
                        None,
                        _execute_batch,
                        batch,
                        self.store,
                        self.jobs,
                        self.solve_delay_s,
                        self.on_miss,
                        self.peer_fetch,
                        self.on_stored,
                    )
                except Exception as exc:  # noqa: BLE001 - keep the loop alive
                    outcomes = {
                        digest: ("err", ERROR_INTERNAL, f"batch failed: {exc}")
                        for digest, _spec, _tid in batch
                    }
                for digest, future in futures.items():
                    self._inflight.pop(digest, None)
                    if not future.done():
                        future.set_result(
                            outcomes.get(
                                digest,
                                ("err", ERROR_INTERNAL, "job produced no outcome"),
                            )
                        )
        finally:
            self.close()

    def close(self) -> None:
        """Refuse new work and fail everything still queued or in flight."""
        self._closed = True
        shutdown: Outcome = ("err", ERROR_SHUTTING_DOWN, "server is shutting down")
        for job in self._queued.values():
            if not job.future.done():
                job.future.set_result(shutdown)
        self._queued.clear()
        for flight in self._inflight.values():
            if not flight.future.done():
                flight.future.set_result(shutdown)
        self._inflight.clear()

    # -- debug -------------------------------------------------------------

    def debug_state(self) -> Dict[str, Any]:
        """Point-in-time view of the intake queue for ``/debug/inflight``."""
        now = time.monotonic()
        return {
            "pending": self.pending,
            "max_pending": self.max_pending,
            "queued": [
                {
                    "digest": digest,
                    "pattern": job.spec.pattern.name,
                    "age_s": round(now - job.submitted_at, 6),
                    "trace_id": job.trace_id,
                }
                for digest, job in self._queued.items()
            ],
            "inflight": [
                {
                    "digest": digest,
                    "age_s": round(now - flight.started_at, 6),
                    "trace_id": flight.trace_id,
                }
                for digest, flight in self._inflight.items()
            ],
        }
