"""repro — Efficient memory partitioning for parallel data access.

A production-quality reproduction of *Efficient Memory Partitioning for
Parallel Data Access in Multidimensional Arrays* (Meng, Yin, Ouyang, Liu,
Wei — DAC 2015).

Quickstart
----------
>>> from repro import Pattern, partition, BankMapping
>>> stencil = Pattern([(0, 1), (1, 0), (1, 1), (1, 2), (2, 1)], name="cross")
>>> solution = partition(stencil)          # constant-time transform + Algorithm 1
>>> solution.n_banks
5
>>> mapping = BankMapping(solution=solution, shape=(64, 64))
>>> mapping.overhead_elements               # only the last dimension pads
64

Subpackages
-----------
``repro.core``
    The paper's algorithms: pattern algebra, the Section 4.1 linear
    transform, Algorithm 1, bank-limit schemes, intra-bank mapping,
    the Problem 1 multi-objective solver.
``repro.baselines``
    LTB (Wang et al., DAC 2013) and naive cyclic/block/duplication schemes.
``repro.patterns``
    The seven Table 1 benchmark patterns plus generators.
``repro.hw``
    M9K block-RAM model, banked memory fabric, resource estimation.
``repro.sim``
    Cycle-level simulation and functional (golden-model) verification.
``repro.hls``
    Mini loop-nest front-end: parse → extract pattern → schedule → codegen.
``repro.eval``
    Harnesses regenerating Table 1 and the Sections 2/5.1 case study.
``repro.viz``
    ASCII rendering of patterns and bank assignments (Figs 2–3).
``repro.workloads``
    Synthetic images and end-to-end edge-detection pipelines.
"""

from .core import (
    BankMapping,
    LinearTransform,
    Objective,
    OpCounter,
    PartitionSolution,
    Pattern,
    SolverResult,
    derive_alpha,
    minimize_nf,
    partition,
    solve,
)
from .errors import (
    DimensionMismatchError,
    HardwareModelError,
    HLSError,
    InfeasibleConstraintError,
    MappingError,
    NativeUnavailableError,
    PartitioningError,
    PatternError,
    ReproError,
    SimulationError,
)

__version__ = "1.0.0"

__all__ = [
    "BankMapping",
    "LinearTransform",
    "Objective",
    "OpCounter",
    "PartitionSolution",
    "Pattern",
    "SolverResult",
    "derive_alpha",
    "minimize_nf",
    "partition",
    "solve",
    "DimensionMismatchError",
    "HardwareModelError",
    "HLSError",
    "InfeasibleConstraintError",
    "MappingError",
    "NativeUnavailableError",
    "PartitioningError",
    "PatternError",
    "ReproError",
    "SimulationError",
    "__version__",
]
