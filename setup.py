"""Legacy setup shim + optional native-extension build.

The primary build configuration lives in pyproject.toml.  This file exists
so that environments without the `wheel` package (where PEP 660 editable
installs fail) can still do `python setup.py develop`, and to carry the
*optional* compiled fast tier (`repro.native._native`).

The extension is never built by default — a plain install must work on
boxes without a C compiler.  It is compiled only when explicitly requested:

    make build-ext
    # or: REPRO_BUILD_NATIVE=1 python setup.py build_ext --inplace

Without the extension, `engine="auto"` uses the NumPy engines and
`engine="native"` raises NativeUnavailableError (see docs/PERFORMANCE.md).
"""
import os
import sys

from setuptools import setup

ext_modules = []
if os.environ.get("REPRO_BUILD_NATIVE") == "1" or "build_ext" in sys.argv:
    from setuptools import Extension

    ext_modules.append(
        Extension(
            "repro.native._native",
            sources=["src/repro/native/_nativemodule.c"],
            extra_compile_args=["-O3"],
        )
    )

setup(ext_modules=ext_modules)
