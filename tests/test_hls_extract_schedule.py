"""Unit tests for pattern extraction and nest scheduling."""

import pytest

from repro.core import partition
from repro.errors import HLSError
from repro.hls import (
    banking_speedup,
    build_nest,
    extract_pattern,
    extract_read_groups,
    log_kernel_nest,
    parse_kernel,
    required_banks,
    schedule_nest,
    unpartitioned_ii,
)
from repro.patterns import log_pattern


class TestExtraction:
    def test_log_kernel_pattern(self):
        pattern = extract_pattern(log_kernel_nest())
        assert pattern.size == 13
        assert pattern.normalized() == log_pattern().normalized()

    def test_group_metadata(self):
        groups = extract_read_groups(log_kernel_nest())
        assert set(groups) == {"X"}
        group = groups["X"]
        assert group.array == "X"
        assert len(group.refs) == 13
        assert group.linear_signature == ((("i", 1),), (("j", 1),))

    def test_duplicate_refs_collapse(self):
        nest = parse_kernel("for (i = 0; i <= 3; i++) Y[i] = X[i] + X[i] + X[i+1];")
        assert extract_pattern(nest).size == 2

    def test_multiple_arrays_need_explicit_name(self):
        nest = parse_kernel("for (i = 0; i <= 3; i++) Y[i] = A[i] + B[i+1];")
        with pytest.raises(HLSError, match="several arrays"):
            extract_pattern(nest)
        assert extract_pattern(nest, "A").size == 1

    def test_unknown_array(self):
        nest = parse_kernel("for (i = 0; i <= 3; i++) Y[i] = X[i];")
        with pytest.raises(HLSError, match="not read"):
            extract_pattern(nest, "Z")

    def test_non_uniform_rejected(self):
        nest = parse_kernel("for (i = 0; i <= 3; i++) Y[i] = X[i] + X[2*i];")
        with pytest.raises(HLSError, match="not uniformly generated"):
            extract_read_groups(nest)

    def test_broadcast_read_rejected(self):
        nest = parse_kernel("for (i = 0; i <= 3; i++) Y[i] = X[0];")
        with pytest.raises(HLSError, match="no loop variable"):
            extract_read_groups(nest)

    def test_required_banks(self):
        assert required_banks(log_kernel_nest()) == 13


class TestScheduling:
    def test_unconstrained_ii_is_one(self):
        assert schedule_nest(log_kernel_nest()).ii == 1

    def test_constrained_ii(self):
        schedule = schedule_nest(log_kernel_nest(), n_max=10)
        assert schedule.ii == 2
        assert schedule.solution_for("X").n_banks == 7

    def test_total_cycles_formula(self):
        schedule = schedule_nest(log_kernel_nest())
        trips = log_kernel_nest().trip_count
        assert schedule.total_cycles == schedule.depth + (trips - 1)

    def test_unpartitioned_ii(self):
        assert unpartitioned_ii(log_kernel_nest()) == 13

    def test_banking_speedup_near_m(self):
        speedup = banking_speedup(log_kernel_nest())
        assert 12.5 < speedup <= 13.0

    def test_precomputed_solutions_respected(self):
        solution = partition(extract_pattern(log_kernel_nest()), n_max=10)
        schedule = schedule_nest(log_kernel_nest(), solutions={"X": solution})
        assert schedule.ii == 2

    def test_multi_array_ii_is_max(self):
        nest = build_nest(
            [("i", 0, 9), ("j", 0, 9)],
            [("A", (0, 0)), ("A", (0, 1)), ("B", (0, 0))],
            arrays={"A": (12, 12), "B": (12, 12)},
        )
        schedule = schedule_nest(nest)
        assert schedule.ii == 1
        assert schedule.total_banks == 3  # A gets 2 banks, B gets 1

    def test_solution_for_unknown_array(self):
        schedule = schedule_nest(log_kernel_nest())
        with pytest.raises(HLSError):
            schedule.solution_for("Q")
