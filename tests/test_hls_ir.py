"""Unit tests for the loop-nest IR."""

import pytest

from repro.errors import HLSError
from repro.hls import AffineIndex, ArrayRef, Loop, LoopNest, Statement


class TestAffineIndex:
    def test_make_normalizes(self):
        a = AffineIndex.make({"i": 1, "j": 0}, 3)
        assert a.coefficients == (("i", 1),)
        assert a.constant == 3

    def test_evaluate(self):
        a = AffineIndex.make({"i": 2, "j": -1}, 5)
        assert a.evaluate({"i": 3, "j": 4}) == 7

    def test_evaluate_unbound_raises(self):
        with pytest.raises(HLSError):
            AffineIndex.make({"i": 1}).evaluate({"j": 0})

    def test_shifted(self):
        a = AffineIndex.make({"i": 1}, 2).shifted(3)
        assert a.constant == 5

    def test_str(self):
        assert str(AffineIndex.make({"i": 1}, -2)) == "i-2"
        assert str(AffineIndex.make({}, 0)) == "0"
        assert str(AffineIndex.make({"i": 3}, 0)) == "3*i"

    def test_equality_order_insensitive(self):
        a = AffineIndex.make({"i": 1, "j": 2})
        b = AffineIndex.make({"j": 2, "i": 1})
        assert a == b


class TestArrayRef:
    def ref(self):
        return ArrayRef(
            array="X",
            indices=(AffineIndex.make({"i": 1}, -1), AffineIndex.make({"j": 1}, 2)),
        )

    def test_signatures(self):
        r = self.ref()
        assert r.linear_signature == ((("i", 1),), (("j", 1),))
        assert r.constant_vector == (-1, 2)

    def test_evaluate(self):
        assert self.ref().evaluate({"i": 5, "j": 1}) == (4, 3)

    def test_str(self):
        assert str(self.ref()) == "X[i-1][j+2]"


class TestLoop:
    def test_trip_count(self):
        assert Loop(var="i", lower=2, upper=637).trip_count == 636

    def test_strided(self):
        assert Loop(var="i", lower=0, upper=9, step=2).trip_count == 5
        assert list(Loop(var="i", lower=0, upper=4, step=2).values()) == [0, 2, 4]

    def test_validation(self):
        with pytest.raises(HLSError):
            Loop(var="i", lower=0, upper=5, step=0)
        with pytest.raises(HLSError):
            Loop(var="i", lower=5, upper=0)


class TestLoopNest:
    def make(self):
        read = ArrayRef(array="X", indices=(AffineIndex.make({"i": 1}),))
        return LoopNest(
            loops=(Loop(var="i", lower=0, upper=9),),
            statement=Statement(reads=(read,)),
            arrays=(("X", (10,)),),
        )

    def test_trip_count(self):
        assert self.make().trip_count == 10

    def test_array_shape_lookup(self):
        nest = self.make()
        assert nest.array_shape("X") == (10,)
        with pytest.raises(HLSError):
            nest.array_shape("Y")

    def test_duplicate_loop_vars_rejected(self):
        read = ArrayRef(array="X", indices=(AffineIndex.make({"i": 1}),))
        with pytest.raises(HLSError):
            LoopNest(
                loops=(Loop(var="i", lower=0, upper=1), Loop(var="i", lower=0, upper=1)),
                statement=Statement(reads=(read,)),
            )

    def test_empty_nest_rejected(self):
        with pytest.raises(HLSError):
            LoopNest(loops=(), statement=Statement(reads=()))

    def test_statement_queries(self):
        x = ArrayRef(array="X", indices=(AffineIndex.make({"i": 1}),))
        y = ArrayRef(array="Y", indices=(AffineIndex.make({"i": 1}),))
        stmt = Statement(reads=(x, y, x))
        assert stmt.read_arrays == ("X", "Y")
        assert len(stmt.reads_of("X")) == 2
