"""Unit tests for the block-RAM model."""

import pytest

from repro.errors import HardwareModelError
from repro.hw import M9K, M9K_BITS, BlockRAM, overhead_blocks


class TestCapacityModel:
    def test_paper_anchor_ours_log_sd(self):
        # 640 overhead elements * 16 bits = 10240 bits -> 2 blocks.
        assert overhead_blocks(640) == 2

    def test_paper_anchor_ltb_log_sd(self):
        # 5450 * 16 = 87200 bits -> 10 blocks.
        assert overhead_blocks(5450) == 10

    def test_zero_elements(self):
        assert overhead_blocks(0) == 0

    def test_exact_fit(self):
        assert M9K.capacity_blocks(576, 16) == 1  # 9216 bits exactly
        assert M9K.capacity_blocks(577, 16) == 2

    def test_width_scaling(self):
        assert M9K.capacity_blocks(1000, 8) == 1
        assert M9K.capacity_blocks(1000, 32) == 4

    def test_validation(self):
        with pytest.raises(HardwareModelError):
            M9K.capacity_blocks(-1)
        with pytest.raises(HardwareModelError):
            M9K.capacity_blocks(10, 0)


class TestGeometryModel:
    def test_best_mode_exact(self):
        assert M9K.best_mode(16) == (16, 512)

    def test_best_mode_rounds_up(self):
        assert M9K.best_mode(10) == (16, 512)

    def test_best_mode_wider_than_modes(self):
        width, depth = M9K.best_mode(64)
        assert width == 36 and depth == 256

    def test_blocks_for_depth(self):
        # 16-bit bank of 600 elements: x16 mode holds 512 -> 2 ranks.
        assert M9K.blocks_for(600, 16) == 2

    def test_blocks_for_wide_elements(self):
        # 64-bit elements: ceil(64/36) = 2 lanes.
        assert M9K.blocks_for(256, 64) == 2

    def test_zero_depth(self):
        assert M9K.blocks_for(0) == 0

    def test_geometry_at_least_capacity(self):
        for depth in (1, 100, 512, 513, 5000):
            assert M9K.blocks_for(depth, 16) >= M9K.capacity_blocks(depth, 16)

    def test_negative_depth(self):
        with pytest.raises(HardwareModelError):
            M9K.blocks_for(-1)


class TestCustomBlock:
    def test_constants(self):
        assert M9K_BITS == 9216
        assert M9K.bits == M9K_BITS

    def test_custom_primitive(self):
        m20k = BlockRAM(bits=20480, modes=((32, 512),), name="M20K")
        assert m20k.capacity_blocks(640, 32) == 1

    def test_invalid_primitive(self):
        with pytest.raises(HardwareModelError):
            BlockRAM(bits=0)
        with pytest.raises(HardwareModelError):
            BlockRAM(modes=((0, 512),))
