"""The shrinker, and the fuzzer's reason to exist: an injected bug dies.

The centerpiece (`TestInjectedBug`) monkeypatches a classic off-by-one
into the two-level scheme's ``N_c = ceil(N_f / ceil(N_f / N_max))``
computation and runs the real suite over it.  If the oracles are sound,
the suite must fail; if the shrinker is sound, the surviving
counterexample must be tiny.  This is the self-test that proves a future
regression of this exact kind cannot ship while the fuzz tier runs.
"""

from __future__ import annotations

import importlib

import pytest

from repro.verify import CaseSpec, run_oracles, run_suite, shrink_case
from repro.verify.shrink import same_oracle

partition_mod = importlib.import_module("repro.core.partition")


def _case(**overrides):
    payload = {
        "seed": 0,
        "index": 0,
        "label": "unit",
        "offsets": [[0, 1], [1, 0], [1, 1], [1, 2], [2, 1]],
        "shape": [10, 12],
        "n_max": 4,
        "scheme": "two-level",
    }
    payload.update(overrides)
    return CaseSpec.from_dict(payload)


@pytest.fixture()
def off_by_one_nc(monkeypatch):
    """fast_nc returns N_c - 1: banks fold too tightly, claims go stale."""
    real = partition_mod.fast_nc

    def buggy(n_f, n_max, ops=None):
        n_c, rounds = real(n_f, n_max, ops=ops)
        return (max(1, n_c - 1), rounds)

    monkeypatch.setattr(partition_mod, "fast_nc", buggy)


class TestInjectedBug:
    def test_suite_catches_and_shrinks_the_defect(self, off_by_one_nc):
        # jobs=None keeps everything in this process so the monkeypatch is
        # visible; oracles solve with cache=False so memoization of the
        # healthy solver cannot mask the patched fast_nc.
        report = run_suite(100, 0, jobs=None, shrink=True)
        assert not report.ok, "injected N_c off-by-one survived 100 cases"
        oracles_hit = set(report.failures_by_oracle())
        # The defect manifests behaviorally: the solution claims fewer
        # accesses per bank than the simulator (and the exhaustive shift
        # check) actually observe.
        assert oracles_hit & {"delta_claim", "sim_differential"}

        assert report.counterexamples
        shrunk_cases = [
            CaseSpec.from_dict(a["shrunk"]) for a in report.counterexamples
        ]
        # Greedy shrinking lands on local minima, so a rare counterexample
        # can stay 3-D — but every one must be tiny, and the suite must
        # surface at least one at <= 2 dimensions (most collapse to 1-D).
        for shrunk in shrunk_cases:
            assert shrunk.volume <= 16
            assert len(shrunk.offsets) <= 5
        assert min(case.ndim for case in shrunk_cases) <= 2

    def test_shrunk_counterexample_still_fails_same_oracle(self, off_by_one_nc):
        report = run_suite(100, 0, jobs=None, shrink=True)
        artifact = report.counterexamples[0]
        shrunk = CaseSpec.from_dict(artifact["shrunk"])
        outcome = run_oracles(shrunk)
        assert artifact["failure"]["oracle"] in {f.oracle for f in outcome.failures}

    def test_healthy_solver_passes_the_identical_suite(self):
        # The control arm: the self-test is only meaningful if the same
        # 100 cases are clean without the injected defect.
        assert run_suite(100, 0, jobs=None, shrink=False).ok


class TestShrinkMechanics:
    def test_passing_case_is_rejected(self):
        with pytest.raises(ValueError, match="failing case"):
            shrink_case(_case(), same_oracle("delta_claim"))

    def test_budget_bounds_evaluations(self, off_by_one_nc):
        failing = next(
            case
            for case in (run_suite(100, 0, jobs=None, shrink=False)).failing_records
            for case in [CaseSpec.from_dict(case["case"])]
        )
        _, _, evaluations = shrink_case(
            failing, same_oracle(run_oracles(failing).failures[0].oracle), budget=5
        )
        assert evaluations <= 5

    def test_result_is_a_local_minimum(self, off_by_one_nc):
        from repro.verify.shrink import _candidates

        record = run_suite(100, 0, jobs=None, shrink=False).failing_records[0]
        case = CaseSpec.from_dict(record["case"])
        oracle = record["failures"][0]["oracle"]
        predicate = same_oracle(oracle)
        shrunk, failure, _ = shrink_case(case, predicate)
        assert failure.oracle == oracle
        assert predicate(shrunk) is not None
        # No single further transformation keeps the failure alive.
        assert all(predicate(c) is None for c in _candidates(shrunk))

    def test_shrink_keeps_specs_valid(self, off_by_one_nc):
        report = run_suite(100, 0, jobs=None, shrink=True)
        for artifact in report.counterexamples:
            CaseSpec.from_dict(artifact["shrunk"])  # validates on construction
