"""Unit tests for repro.core.partition (Algorithm 1 and bank-limit schemes)."""

import pytest

from repro.core import (
    OpCounter,
    Pattern,
    derive_alpha,
    fast_nc,
    minimize_nf,
    pairwise_differences,
    partition,
    same_size_nc,
    same_size_sweep,
)
from repro.patterns import (
    EXPECTED_BANKS,
    gaussian_pattern,
    log_pattern,
    median_pattern,
    prewitt_pattern,
)


class TestPairwiseDifferences:
    def test_values(self):
        assert sorted(pairwise_differences([1, 4, 6])) == [2, 3, 5]

    def test_count_is_m_choose_2(self):
        diffs = pairwise_differences(list(range(7)))
        assert len(diffs) == 21

    def test_repeats_kept(self):
        assert sorted(pairwise_differences([0, 1, 2])) == [1, 1, 2]

    def test_charges_one_sub_per_pair(self):
        ops = OpCounter()
        pairwise_differences([1, 2, 3, 4], ops)
        assert ops.counts["sub"] == 6


class TestMinimizeNf:
    @pytest.mark.parametrize(
        "factory, expected",
        [
            (log_pattern, 13),
            (prewitt_pattern, 9),
            (median_pattern, 8),
            (gaussian_pattern, 13),
        ],
    )
    def test_table1_bank_counts(self, factory, expected):
        n_f, _, _ = minimize_nf(factory())
        assert n_f == expected

    def test_all_benchmarks(self, all_benchmarks):
        for name, pattern in all_benchmarks:
            n_f, _, _ = minimize_nf(pattern)
            assert n_f == EXPECTED_BANKS[name][0], name

    def test_residues_distinct_at_nf(self, all_benchmarks):
        for name, pattern in all_benchmarks:
            n_f, transform, z = minimize_nf(pattern)
            residues = [v % n_f for v in z]
            assert len(set(residues)) == pattern.size, name

    def test_nf_at_least_pattern_size(self, all_benchmarks):
        for _, pattern in all_benchmarks:
            n_f, _, _ = minimize_nf(pattern)
            assert n_f >= pattern.size

    def test_no_smaller_valid_n_with_same_alpha(self, all_benchmarks):
        """Algorithm 1's result is minimal for the derived transform."""
        for name, pattern in all_benchmarks:
            n_f, _, z = minimize_nf(pattern)
            for n in range(pattern.size, n_f):
                residues = [v % n for v in z]
                assert len(set(residues)) < pattern.size, (name, n)

    def test_singleton(self):
        n_f, _, _ = minimize_nf(Pattern([(3, 3)]))
        assert n_f == 1

    def test_dense_line_needs_exactly_m(self):
        n_f, _, _ = minimize_nf(Pattern([(i,) for i in range(6)]))
        assert n_f == 6

    def test_translation_invariant(self):
        a, _, _ = minimize_nf(log_pattern())
        b, _, _ = minimize_nf(log_pattern().translated((9, 9)))
        assert a == b

    def test_reuses_provided_transform(self):
        t = derive_alpha(log_pattern())
        n_f, transform, _ = minimize_nf(log_pattern(), transform=t)
        assert transform is t
        assert n_f == 13


class TestFastNc:
    def test_paper_example(self):
        # Nf = 13, Nmax = 10 -> F = 2, Nc = 7.
        assert fast_nc(13, 10) == (7, 2)

    def test_no_constraint_hit(self):
        assert fast_nc(5, 10) == (5, 1)

    def test_equal_boundary(self):
        assert fast_nc(10, 10) == (10, 1)

    def test_tight_constraint(self):
        # Nf = 27, Nmax = 4 -> F = 7, Nc = 4.
        assert fast_nc(27, 4) == (4, 7)

    def test_rounds_cover_all_banks(self):
        for n_f in range(1, 40):
            for n_max in range(1, 20):
                n_c, rounds = fast_nc(n_f, n_max)
                assert n_c <= n_max
                assert n_c * rounds >= n_f

    def test_rejects_bad_nmax(self):
        with pytest.raises(ValueError):
            fast_nc(13, 0)


class TestSameSizeSweep:
    def test_paper_case_study_row(self):
        sweep = same_size_sweep(log_pattern(), 10)
        assert sweep.conflicts_by_n[1:] == (13, 9, 5, 6, 5, 3, 2, 3, 2, 3)

    def test_candidates_7_and_9(self):
        sweep = same_size_sweep(log_pattern(), 10)
        assert sweep.best_candidates == (7, 9)
        assert sweep.best_n == 7
        assert sweep.delta_ii == 1

    def test_n1_conflicts_equal_m(self, all_benchmarks):
        for _, pattern in all_benchmarks:
            sweep = same_size_sweep(pattern, 1)
            assert sweep.conflicts_by_n[1] == pattern.size

    def test_same_size_nc_wrapper(self):
        assert same_size_nc(log_pattern(), 10) == (7, 1)

    def test_rejects_bad_nmax(self):
        with pytest.raises(ValueError):
            same_size_sweep(log_pattern(), 0)

    def test_mode_bound(self):
        """deltaP|N+1 is at least ceil(m / N) for any N."""
        sweep = same_size_sweep(log_pattern(), 13)
        m = log_pattern().size
        for n in range(1, 14):
            assert sweep.conflicts_by_n[n] >= -(-m // n)


class TestPartition:
    def test_unconstrained(self, log_solution):
        assert log_solution.n_banks == 13
        assert log_solution.delta_ii == 0
        assert log_solution.scheme == "direct"

    def test_paper_bank_indices(self):
        solution = partition(log_pattern().translated((2, 2)))
        banks = [solution.bank_of(d) for d in solution.pattern.offsets]
        assert banks == [1, 5, 6, 7, 9, 10, 11, 12, 0, 2, 3, 4, 8]

    def test_constrained_same_size(self):
        solution = partition(log_pattern(), n_max=10)
        assert solution.n_banks == 7
        assert solution.delta_ii == 1
        assert solution.n_unconstrained == 13

    def test_constrained_fast(self):
        solution = partition(log_pattern(), n_max=10, same_size=False)
        assert solution.n_banks == 7
        assert solution.scheme == "two-level"
        assert solution.delta_ii == 1

    def test_slack_constraint_keeps_nf(self):
        solution = partition(log_pattern(), n_max=20)
        assert solution.n_banks == 13
        assert solution.delta_ii == 0

    def test_two_level_bank_indices_within_range(self):
        solution = partition(log_pattern(), n_max=10, same_size=False)
        banks = solution.bank_indices()
        assert all(0 <= b < 7 for b in banks)

    def test_two_level_at_most_two_per_bank(self):
        solution = partition(log_pattern(), n_max=10, same_size=False)
        banks = solution.bank_indices()
        assert max(banks.count(b) for b in set(banks)) <= 2

    def test_cycles_per_access(self):
        assert partition(log_pattern()).cycles_per_access == 1
        assert partition(log_pattern(), n_max=10).cycles_per_access == 2

    def test_bank_indices_offset_invariant(self, log_solution):
        base = log_solution.bank_indices()
        histogram = sorted(base)
        for offset in [(1, 0), (0, 1), (5, 7)]:
            shifted = log_solution.bank_indices(offset)
            # conflict structure (multiset cardinalities) is preserved
            assert len(set(shifted)) == len(set(base))
        assert len(set(histogram)) == 13
